"""Unit tests for GROUP BY result-size estimation (Section 3.5)."""

import numpy as np
import pytest

from repro.core import GroupCountEstimator, RobustCardinalityEstimator
from repro.errors import EstimationError
from repro.expressions import col


@pytest.fixture
def group_estimator(tpch_stats):
    robust = RobustCardinalityEstimator(tpch_stats, policy=0.5)
    return GroupCountEstimator(robust)


class TestGroupEstimation:
    def test_fk_grouping_close_to_truth(self, group_estimator, tpch_db):
        estimate = group_estimator.estimate_groups(
            {"lineitem"}, ["lineitem.l_partkey"]
        )
        truth = len(np.unique(tpch_db.table("lineitem").column("l_partkey")))
        assert truth * 0.3 <= estimate <= truth * 3.5

    def test_grouping_via_joined_table(self, group_estimator, tpch_db):
        estimate = group_estimator.estimate_groups(
            {"lineitem", "part"}, ["part.p_size"]
        )
        truth = len(np.unique(tpch_db.table("part").column("p_size")))
        assert truth * 0.3 <= estimate <= truth * 4

    def test_predicate_reduces_groups(self, group_estimator):
        unfiltered = group_estimator.estimate_groups(
            {"lineitem"}, ["lineitem.l_partkey"]
        )
        filtered = group_estimator.estimate_groups(
            {"lineitem"},
            ["lineitem.l_partkey"],
            col("lineitem.l_shipdate").between("1997-07-01", "1997-07-10"),
        )
        assert filtered < unfiltered

    def test_multi_column_groups(self, group_estimator):
        single = group_estimator.estimate_groups(
            {"lineitem"}, ["lineitem.l_partkey"]
        )
        double = group_estimator.estimate_groups(
            {"lineitem"}, ["lineitem.l_partkey", "lineitem.l_quantity"]
        )
        assert double >= single * 0.9

    def test_chao_method(self, tpch_stats):
        robust = RobustCardinalityEstimator(tpch_stats, policy=0.5)
        chao = GroupCountEstimator(robust, method="chao")
        estimate = chao.estimate_groups({"part"}, ["part.p_size"])
        assert 10 <= estimate <= 200

    def test_unknown_method_raises(self, tpch_stats):
        robust = RobustCardinalityEstimator(tpch_stats, policy=0.5)
        with pytest.raises(EstimationError):
            GroupCountEstimator(robust, method="magic8ball")

    def test_empty_group_by_raises(self, group_estimator):
        with pytest.raises(EstimationError):
            group_estimator.estimate_groups({"lineitem"}, [])

    def test_missing_synopsis_raises(self, group_estimator):
        with pytest.raises(EstimationError):
            group_estimator.estimate_groups(
                {"part", "customer"}, ["part.p_size"]
            )
