"""Repository hygiene: documentation references resolve.

Docs that point at files which don't exist rot silently; these tests
keep README/DESIGN/EXPERIMENTS/docs honest.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent
DOCS = [
    ROOT / "README.md",
    ROOT / "DESIGN.md",
    ROOT / "EXPERIMENTS.md",
    ROOT / "docs" / "architecture.md",
    ROOT / "docs" / "paper_walkthrough.md",
]


class TestDocsExist:
    def test_all_documents_present(self):
        for path in DOCS + [ROOT / "REPORT.md"]:
            assert path.exists(), path

    def test_markdown_links_resolve(self):
        link = re.compile(r"\]\(((?!http)[^)#]+)\)")
        for doc in DOCS:
            for target in link.findall(doc.read_text()):
                resolved = (doc.parent / target).resolve()
                assert resolved.exists(), f"{doc.name} links to missing {target}"


class TestReferencedArtifactsExist:
    def test_bench_files_mentioned_in_design_exist(self):
        text = (ROOT / "DESIGN.md").read_text()
        for name in re.findall(r"benchmarks/(test_\w+\.py)", text):
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_bench_files_mentioned_in_experiments_exist(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for name in re.findall(r"`(test_\w+\.py)`", text):
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_modules_mentioned_in_walkthrough_importable(self):
        import importlib

        text = (ROOT / "docs" / "paper_walkthrough.md").read_text()
        for module in set(re.findall(r"`(repro\.[a-z_.]+)`", text)):
            # strip trailing attribute references like repro.core.magic
            parts = module.split(".")
            for cut in range(len(parts), 1, -1):
                candidate = ".".join(parts[:cut])
                try:
                    importlib.import_module(candidate)
                    break
                except ImportError:
                    continue
            else:
                pytest.fail(f"walkthrough references unimportable {module}")

    def test_examples_mentioned_in_readme_exist(self):
        text = (ROOT / "README.md").read_text()
        for name in re.findall(r"`(\w+\.py)` \|", text):
            assert (ROOT / "examples" / name).exists(), name

    def test_every_example_listed_in_readme(self):
        text = (ROOT / "README.md").read_text()
        for path in (ROOT / "examples").glob("*.py"):
            assert path.name in text, f"{path.name} missing from README"
