"""Unit tests for the StatisticsManager."""

import pytest

from repro.errors import StatisticsError
from repro.stats import StatisticsManager


class TestUpdateStatistics:
    def test_builds_samples_for_every_table(self, tpch_stats, tpch_db):
        for name in tpch_db.table_names:
            assert tpch_stats.sample_for(name) is not None
            assert tpch_stats.synopsis_for(name) is not None

    def test_builds_histograms_for_numeric_columns(self, tpch_stats):
        assert tpch_stats.histogram("lineitem", "l_shipdate") is not None
        assert tpch_stats.histogram("part", "p_size") is not None

    def test_no_histograms_for_string_columns(self, tpch_stats):
        assert tpch_stats.histogram("part", "p_brand") is None

    def test_sample_size_recorded(self, tpch_stats):
        assert tpch_stats.sample_size == 500
        assert tpch_stats.sample_for("lineitem").size == 500

    def test_table_rows(self, tpch_stats, tpch_db):
        assert tpch_stats.table_rows("part") == tpch_db.table("part").num_rows


class TestSynopsisCovering:
    def test_exact_root_match(self, tpch_stats):
        synopsis = tpch_stats.synopsis_covering({"lineitem", "orders"})
        assert synopsis is not None
        assert synopsis.root_table == "lineitem"

    def test_full_set(self, tpch_stats):
        synopsis = tpch_stats.synopsis_covering(
            {"lineitem", "orders", "customer", "part"}
        )
        assert synopsis is not None

    def test_mid_chain(self, tpch_stats):
        synopsis = tpch_stats.synopsis_covering({"orders", "customer"})
        assert synopsis.root_table == "orders"

    def test_disconnected_returns_none(self, tpch_stats):
        assert tpch_stats.synopsis_covering({"part", "customer"}) is None

    def test_unknown_table_returns_none(self, tpch_stats):
        assert tpch_stats.synopsis_covering({"ghost"}) is None


class TestDropStatistics:
    def test_drop_synopsis(self, tpch_db):
        manager = StatisticsManager(tpch_db)
        manager.update_statistics(sample_size=100, seed=0)
        manager.drop_synopsis("lineitem")
        assert manager.synopsis_for("lineitem") is None
        assert manager.synopsis_covering({"lineitem", "part"}) is None
        # other statistics untouched
        assert manager.sample_for("lineitem") is not None

    def test_drop_sample(self, tpch_db):
        manager = StatisticsManager(tpch_db)
        manager.update_statistics(sample_size=100, seed=0)
        manager.drop_sample("part")
        assert manager.sample_for("part") is None

    def test_drop_histograms(self, tpch_db):
        manager = StatisticsManager(tpch_db)
        manager.update_statistics(sample_size=100, seed=0)
        manager.drop_histograms("part")
        assert manager.histogram("part", "p_size") is None
        assert manager.histogram("lineitem", "l_shipdate") is not None

    def test_require_synopsis_raises_when_missing(self, tpch_db):
        manager = StatisticsManager(tpch_db)
        with pytest.raises(StatisticsError):
            manager.require_synopsis("lineitem")


class TestDeterminism:
    def test_same_seed_same_sample(self, tpch_db):
        import numpy as np

        a = StatisticsManager(tpch_db)
        a.update_statistics(sample_size=100, seed=3)
        b = StatisticsManager(tpch_db)
        b.update_statistics(sample_size=100, seed=3)
        assert np.array_equal(
            a.sample_for("lineitem").row_ids, b.sample_for("lineitem").row_ids
        )

    def test_partial_update(self, tpch_db):
        manager = StatisticsManager(tpch_db)
        manager.update_statistics(sample_size=50, seed=0, tables=["part"])
        assert manager.sample_for("part") is not None
        assert manager.sample_for("lineitem") is None


class TestSynopsisCoveringErrorDiscipline:
    def test_catalog_errors_mean_no_synopsis(self, tpch_stats, monkeypatch):
        from repro.errors import CatalogError

        def raising(tables):
            raise CatalogError("no rooted FK tree")

        monkeypatch.setattr(
            tpch_stats.database, "root_relation", raising
        )
        assert tpch_stats.synopsis_covering({"lineitem", "orders"}) is None

    def test_unexpected_errors_propagate(self, tpch_stats, monkeypatch):
        """Regression: a bare ``except Exception`` here used to turn
        genuine bugs in root-relation resolution into a silent "no
        synopsis", sending estimates down the fallback chain with no
        indication anything was wrong."""

        def raising(tables):
            raise RuntimeError("bug in root_relation")

        monkeypatch.setattr(
            tpch_stats.database, "root_relation", raising
        )
        with pytest.raises(RuntimeError, match="bug in root_relation"):
            tpch_stats.synopsis_covering({"lineitem", "orders"})


class TestVersionEpoch:
    def test_versions_unique_across_managers(self, tpch_db):
        a = StatisticsManager(tpch_db)
        b = StatisticsManager(tpch_db)
        a.update_statistics(sample_size=50, seed=0, tables=["part"])
        b.update_statistics(sample_size=50, seed=0, tables=["part"])
        assert a.version != b.version

    def test_bump_version_monotonic_and_floored(self, tpch_db):
        manager = StatisticsManager(tpch_db)
        first = manager.bump_version()
        second = manager.bump_version(floor=first + 100)
        assert second > first + 100
        third = manager.bump_version(floor=0)  # floor below current
        assert third > second


class TestHealthIssues:
    def test_fresh_manager_reports_nothing_built(self, tpch_db):
        issues = StatisticsManager(tpch_db).health_issues()
        assert issues == [
            "no statistics built (every estimate will fall back)"
        ]

    def test_complete_statistics_healthy(self, tpch_stats):
        assert tpch_stats.health_issues() == []

    def test_missing_pieces_reported_per_table(self, tpch_db):
        manager = StatisticsManager(tpch_db)
        manager.update_statistics(sample_size=50, seed=0)
        manager.drop_sample("part")
        manager.drop_synopsis("lineitem")
        issues = manager.health_issues()
        assert "table 'part': no sample" in issues
        assert "table 'lineitem': no join synopsis" in issues

    def test_out_of_range_sample_reported(self, tpch_db):
        manager = StatisticsManager(tpch_db)
        manager.update_statistics(sample_size=50, seed=0)
        sample = manager.sample_for("part")
        sample.row_ids[0] = tpch_db.table("part").num_rows + 1
        issues = manager.health_issues()
        assert any("sample row ids out of range" in issue for issue in issues)
