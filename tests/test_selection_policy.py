"""SelectionPolicy value objects and the resolve_policy coercion point."""

from __future__ import annotations

import pytest

from repro.core import AGGRESSIVE, MODERATE
from repro.selection import (
    HistogramPolicy,
    PenaltyPolicy,
    PolicyError,
    SelectionPolicy,
    ThresholdPolicy,
    resolve_policy,
)


class TestThresholdPolicy:
    def test_default_is_moderate(self):
        assert ThresholdPolicy().q == MODERATE

    def test_spellings_normalize_to_equal_policies(self):
        # "80", 80, and 0.8 are the same confidence level.
        assert ThresholdPolicy("80") == ThresholdPolicy(0.8)
        assert ThresholdPolicy("aggressive") == ThresholdPolicy(AGGRESSIVE)
        assert hash(ThresholdPolicy("80")) == hash(ThresholdPolicy(0.8))

    def test_kind_and_estimator(self):
        policy = ThresholdPolicy(0.8)
        assert policy.kind == "threshold"
        assert policy.estimator_kind == "robust"

    def test_cache_key_and_describe(self):
        policy = ThresholdPolicy(0.8)
        assert policy.cache_key() == ("threshold", 0.8)
        assert policy.describe() == "T=80%"

    def test_spec_roundtrip(self):
        policy = ThresholdPolicy(0.05)
        assert resolve_policy(policy.spec()) == policy


class TestPenaltyPolicy:
    def test_defaults(self):
        policy = PenaltyPolicy()
        assert policy.samples == 24
        assert policy.risk == "expected"
        assert policy.alpha == 1.0
        assert policy.kind == "penalty"
        assert policy.estimator_kind == "robust"

    def test_cache_keys_distinguish_risk_modes(self):
        expected = PenaltyPolicy(samples=16)
        cvar = PenaltyPolicy(samples=16, risk="cvar", alpha=0.9)
        assert expected.cache_key() != cvar.cache_key()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"risk": "variance"},
            {"samples": 0},
            {"samples": 5000},
            {"alpha": 0.0},
            {"alpha": 1.5},
        ],
    )
    def test_invalid_construction_rejected(self, kwargs):
        with pytest.raises(PolicyError):
            PenaltyPolicy(**kwargs)

    def test_spec_roundtrip(self):
        for policy in (
            PenaltyPolicy(samples=8),
            PenaltyPolicy(samples=32, risk="cvar", alpha=0.95),
        ):
            assert resolve_policy(policy.spec()) == policy

    def test_describe_names_the_risk(self):
        assert "CVaR" in PenaltyPolicy(risk="cvar", alpha=0.9).describe()
        assert "E[penalty]" in PenaltyPolicy().describe()


class TestHistogramPolicy:
    def test_surface(self):
        policy = HistogramPolicy()
        assert policy.kind == "histogram"
        assert policy.estimator_kind == "histogram"
        assert policy.cache_key() == ("histogram",)
        assert resolve_policy(policy.spec()) == policy


class TestResolvePolicy:
    def test_policy_passthrough(self):
        policy = PenaltyPolicy(samples=8)
        assert resolve_policy(policy) is policy

    def test_numbers_become_threshold_policies(self):
        assert resolve_policy(0.8) == ThresholdPolicy(0.8)

    @pytest.mark.parametrize(
        "spec, policy",
        [
            ("histogram", HistogramPolicy()),
            ("threshold", ThresholdPolicy()),
            ("threshold:0.2", ThresholdPolicy(0.2)),
            ("penalty", PenaltyPolicy()),
            ("expected", PenaltyPolicy()),
            ("expected:8", PenaltyPolicy(samples=8)),
            ("cvar:0.9", PenaltyPolicy(risk="cvar", alpha=0.9)),
            ("cvar:0.9:16", PenaltyPolicy(samples=16, risk="cvar", alpha=0.9)),
            ("80", ThresholdPolicy(0.8)),
            ("moderate", ThresholdPolicy(MODERATE)),
        ],
    )
    def test_spec_strings(self, spec, policy):
        assert resolve_policy(spec) == policy

    @pytest.mark.parametrize(
        "spec",
        [
            "histogram:5",
            "cvar",
            "cvar:abc",
            "expected:many",
            "bogus:zzz",
            "",
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(PolicyError):
            resolve_policy(spec)

    def test_non_string_non_number_rejected(self):
        with pytest.raises(PolicyError):
            resolve_policy(["cvar"])
        with pytest.raises(PolicyError):
            resolve_policy(True)

    def test_base_class_is_abstract_ish(self):
        base = SelectionPolicy()
        with pytest.raises(NotImplementedError):
            base.kind
