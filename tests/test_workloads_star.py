"""Tests for the star-schema generator's handcrafted distribution."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import StarConfig, build_star_database


class TestConfig:
    def test_window(self):
        assert StarConfig(num_dim=1000).window == 100

    def test_true_join_fraction(self):
        config = StarConfig(aligned_fraction=0.12)
        assert config.true_join_fraction(0) == pytest.approx(0.012)
        assert config.true_join_fraction(50) == pytest.approx(0.006)
        assert config.true_join_fraction(100) == 0.0
        assert config.true_join_fraction(150) == 0.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            StarConfig(num_fact=10)
        with pytest.raises(WorkloadError):
            StarConfig(num_dim=15)
        with pytest.raises(WorkloadError):
            StarConfig(aligned_fraction=1.5)


class TestGeneratedDatabase:
    def test_tables(self, star_db, star_config):
        assert set(star_db.table_names) == {"dim1", "dim2", "dim3", "fact"}
        assert star_db.table("fact").num_rows == star_config.num_fact
        assert star_db.table("dim1").num_rows == star_config.num_dim

    def test_integrity(self, star_db):
        star_db.validate()

    def test_fk_indexes(self, star_db):
        for i in (1, 2, 3):
            assert star_db.has_index("fact", f"f_dim{i}key")

    def test_dim_attr_identity(self, star_db):
        dim = star_db.table("dim1")
        assert np.array_equal(dim.column("d_key"), dim.column("d_attr"))

    def test_marginals_uniform(self, star_db, star_config):
        """Every 10 % window on every dimension joins ≈10 % of fact rows,
        regardless of its position — 1-D statistics can't distinguish
        queries."""
        fact = star_db.table("fact")
        window = star_config.window
        for column in ("f_dim1key", "f_dim2key", "f_dim3key"):
            keys = fact.column(column)
            for start in (0, 200, 500, 900):
                fraction = (
                    (keys >= start) & (keys < start + window)
                ).mean()
                assert fraction == pytest.approx(0.10, abs=0.01)

    def test_triple_join_fraction_tracks_shift(self, star_db, star_config):
        """The joint fraction matches the designed q(d) while marginals
        stay fixed — the handcrafted Experiment 3 property."""
        fact = star_db.table("fact")
        k1 = fact.column("f_dim1key")
        k2 = fact.column("f_dim2key")
        k3 = fact.column("f_dim3key")
        window = star_config.window
        for shift in (0, 50, 100):
            joint = (
                (k1 < window)
                & (k2 >= shift)
                & (k2 < shift + window)
                & (k3 < window)
            ).mean()
            assert joint == pytest.approx(
                star_config.true_join_fraction(shift), abs=0.004
            )

    def test_phase_shifted_rows_never_triple_join(self, star_db, star_config):
        """Only aligned rows can satisfy all three canonical windows."""
        fact = star_db.table("fact")
        k1, k2, k3 = (
            fact.column("f_dim1key"),
            fact.column("f_dim2key"),
            fact.column("f_dim3key"),
        )
        window = star_config.window
        joiners = (k1 < window) & (k2 < window) & (k3 < window)
        # every triple-joiner is aligned: k1 == k2 == k3
        assert np.array_equal(k1[joiners], k2[joiners])
        assert np.array_equal(k1[joiners], k3[joiners])

    def test_deterministic(self, star_config):
        a = build_star_database(star_config)
        b = build_star_database(star_config)
        assert np.array_equal(
            a.table("fact").column("f_dim2key"), b.table("fact").column("f_dim2key")
        )
