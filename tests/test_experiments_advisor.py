"""Tests for the threshold advisor."""

import pytest

from repro.errors import ReproError
from repro.experiments import recommend_threshold
from repro.workloads import ShippingDatesTemplate


@pytest.fixture(scope="module")
def workload(tpch_db):
    template = ShippingDatesTemplate()
    return [template.instantiate(shift) for shift in (260, 230, 210, 195)]


class TestAdvisor:
    @pytest.fixture(scope="class")
    def balanced(self, tpch_db, workload):
        return recommend_threshold(
            tpch_db, workload, risk_aversion=1.0, sample_size=300, seeds=(0, 1)
        )

    def test_recommends_a_candidate(self, balanced):
        assert balanced.threshold in (0.05, 0.20, 0.50, 0.80, 0.95)
        assert balanced.profile.mean_time > 0

    def test_candidates_reported(self, balanced):
        assert len(balanced.candidates) == 5
        labels = {point.label for point in balanced.candidates}
        assert "T=95%" in labels

    def test_recommendation_minimizes_objective(self, balanced):
        objective = lambda p: p.mean_time + 1.0 * p.std_time
        best = min(balanced.candidates, key=objective)
        assert balanced.profile.label == best.label

    def test_risk_aversion_moves_threshold_up(self, tpch_db, workload):
        throughput = recommend_threshold(
            tpch_db, workload, risk_aversion=0.0, sample_size=300, seeds=(0, 1)
        )
        paranoid = recommend_threshold(
            tpch_db, workload, risk_aversion=50.0, sample_size=300, seeds=(0, 1)
        )
        assert paranoid.threshold >= throughput.threshold
        # extreme risk aversion lands on the paper's "predictability is
        # paramount" setting
        assert paranoid.threshold == 0.95

    def test_str(self, balanced):
        text = str(balanced)
        assert "T=" in text and "mean" in text

    def test_validation(self, tpch_db):
        with pytest.raises(ReproError):
            recommend_threshold(tpch_db, [], risk_aversion=1.0)
        with pytest.raises(ReproError):
            recommend_threshold(
                tpch_db,
                [ShippingDatesTemplate().instantiate(200)],
                risk_aversion=-1.0,
            )
