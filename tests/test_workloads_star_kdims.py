"""Tests for K-dimensional star schemas (beyond the paper's 3)."""

import numpy as np
import pytest

from repro.core import ExactCardinalityEstimator, RobustCardinalityEstimator
from repro.engine import ExecutionContext, StarSemiJoin
from repro.errors import WorkloadError
from repro.optimizer import Optimizer
from repro.stats import StatisticsManager
from repro.workloads import StarConfig, StarJoinTemplate, build_star_database


@pytest.fixture(scope="module")
def star5_config():
    return StarConfig(
        num_fact=20_000, num_dim=1000, aligned_fraction=0.12, seed=3, num_dims=5
    )


@pytest.fixture(scope="module")
def star5_db(star5_config):
    return build_star_database(star5_config)


class TestKDimGeneration:
    def test_tables(self, star5_db):
        assert set(star5_db.table_names) == {
            "dim1", "dim2", "dim3", "dim4", "dim5", "fact",
        }
        star5_db.validate()

    def test_fact_fk_indexes(self, star5_db):
        for i in range(1, 6):
            assert star5_db.has_index("fact", f"f_dim{i}key")

    def test_marginals_uniform_all_dims(self, star5_db, star5_config):
        fact = star5_db.table("fact")
        window = star5_config.window
        for i in range(1, 6):
            keys = fact.column(f"f_dim{i}key")
            fraction = (keys < window).mean()
            assert fraction == pytest.approx(0.10, abs=0.015)

    def test_joint_fraction_still_handcrafted(self, star5_db, star5_config):
        """Only aligned rows satisfy all five canonical windows."""
        fact = star5_db.table("fact")
        window = star5_config.window
        joint = np.ones(fact.num_rows, dtype=bool)
        for i in range(1, 6):
            joint &= fact.column(f"f_dim{i}key") < window
        assert joint.mean() == pytest.approx(
            star5_config.true_join_fraction(0), abs=0.006
        )

    def test_too_many_dims_rejected(self):
        with pytest.raises(WorkloadError):
            StarConfig(num_dims=20)
        with pytest.raises(WorkloadError):
            StarConfig(num_dims=1)

    def test_default_unchanged(self):
        assert StarConfig().num_dims == 3


class TestKDimOptimization:
    def test_six_table_star_optimizes(self, star5_db, star5_config):
        """The optimizer handles 2^5−1 = 31 semijoin splits plus the DP."""
        template = StarJoinTemplate(star5_config.num_dim, num_dims=5)
        query = template.instantiate(90)
        planned = Optimizer(star5_db, ExactCardinalityEstimator(star5_db)).optimize(
            query
        )
        frame = planned.plan.execute(ExecutionContext(star5_db))
        truth = ExactCardinalityEstimator(star5_db).estimate(
            set(query.tables), query.predicate
        )
        # aggregate on top: 1 row; the interesting check is the count
        assert frame.num_rows == 1
        assert planned.estimated_cost > 0
        assert truth.cardinality >= 0

    def test_semijoin_wins_at_zero(self, star5_db, star5_config):
        template = StarJoinTemplate(star5_config.num_dim, num_dims=5)
        planned = Optimizer(
            star5_db, ExactCardinalityEstimator(star5_db)
        ).optimize(template.instantiate(100))
        kinds = {type(op) for op in planned.plan.walk()}
        assert StarSemiJoin in kinds

    def test_robust_estimation_on_wide_star(self, star5_db, star5_config):
        stats = StatisticsManager(star5_db)
        stats.update_statistics(sample_size=400, seed=1)
        template = StarJoinTemplate(star5_config.num_dim, num_dims=5)
        query = template.instantiate(50)
        estimate = RobustCardinalityEstimator(stats, policy=0.8).estimate(
            set(query.tables), query.predicate
        )
        assert estimate.source == "synopsis"
        assert estimate.root_table == "fact"
