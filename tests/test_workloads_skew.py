"""Tests for the Zipf part-skew knob and estimation under skew."""

import numpy as np
import pytest

from repro.core import ExactCardinalityEstimator, RobustCardinalityEstimator
from repro.errors import WorkloadError
from repro.expressions import col
from repro.stats import StatisticsManager
from repro.workloads import TpchConfig, build_tpch_database


@pytest.fixture(scope="module")
def skewed_db():
    return build_tpch_database(
        TpchConfig(num_lineitem=12_000, seed=4, part_skew=1.0)
    )


class TestSkewGeneration:
    def test_negative_skew_rejected(self):
        with pytest.raises(WorkloadError):
            TpchConfig(num_lineitem=1000, part_skew=-0.5)

    def test_zero_skew_roughly_uniform(self):
        database = build_tpch_database(TpchConfig(num_lineitem=12_000, seed=4))
        keys = database.table("lineitem").column("l_partkey")
        _, counts = np.unique(keys, return_counts=True)
        assert counts.max() < 8 * max(1, counts.min())

    def test_skew_concentrates_popularity(self, skewed_db):
        keys = skewed_db.table("lineitem").column("l_partkey")
        _, counts = np.unique(keys, return_counts=True)
        counts = np.sort(counts)[::-1]
        top_share = counts[: max(1, len(counts) // 100)].sum() / counts.sum()
        # the top 1% of parts carry far more than 1% of lineitems
        assert top_share > 0.05

    def test_integrity_preserved(self, skewed_db):
        skewed_db.validate()

    def test_deterministic(self):
        a = build_tpch_database(TpchConfig(num_lineitem=2000, seed=9, part_skew=0.8))
        b = build_tpch_database(TpchConfig(num_lineitem=2000, seed=9, part_skew=0.8))
        assert np.array_equal(
            a.table("lineitem").column("l_partkey"),
            b.table("lineitem").column("l_partkey"),
        )


class TestEstimationUnderSkew:
    def test_synopsis_estimate_still_tracks_truth(self, skewed_db):
        """Sampling is skew-agnostic: the synopsis estimate remains
        unbiased even when join fan-outs are wildly uneven."""
        predicate = (col("part.p_size") <= 10) & (
            col("lineitem.l_quantity") > 25
        )
        truth = ExactCardinalityEstimator(skewed_db).estimate(
            {"lineitem", "part"}, predicate
        )
        estimates = []
        for seed in range(8):
            stats = StatisticsManager(skewed_db)
            stats.update_statistics(sample_size=500, seed=seed)
            estimator = RobustCardinalityEstimator(stats, policy=0.5)
            estimates.append(
                estimator.estimate({"lineitem", "part"}, predicate).selectivity
            )
        assert np.mean(estimates) == pytest.approx(truth.selectivity, abs=0.02)

    def test_plans_still_correct(self, skewed_db):
        from repro.engine import ExecutionContext
        from repro.optimizer import Optimizer, SPJQuery

        predicate = col("part.p_size") <= 5
        query = SPJQuery(["lineitem", "part"], predicate)
        planned = Optimizer(
            skewed_db, ExactCardinalityEstimator(skewed_db)
        ).optimize(query)
        frame = planned.plan.execute(ExecutionContext(skewed_db))
        truth = ExactCardinalityEstimator(skewed_db).estimate(
            {"lineitem", "part"}, predicate
        )
        assert frame.num_rows == truth.cardinality
