"""Unit tests for the SPJQuery specification."""

import pytest

from repro.engine import AggregateSpec
from repro.errors import OptimizationError
from repro.expressions import col
from repro.optimizer import SPJQuery


class TestConstruction:
    def test_basic(self):
        query = SPJQuery(["lineitem"], col("lineitem.l_quantity") > 1)
        assert query.tables == ("lineitem",)

    def test_duplicate_tables_removed(self):
        query = SPJQuery(["a", "b", "a"])
        assert query.tables == ("a", "b")

    def test_empty_tables_raises(self):
        with pytest.raises(OptimizationError):
            SPJQuery([])

    def test_str(self):
        query = SPJQuery(
            ["lineitem", "orders"],
            col("lineitem.l_quantity") > 1,
            aggregates=[AggregateSpec("sum", "lineitem.l_quantity", "q")],
            group_by=["orders.o_orderkey"],
        )
        text = str(query)
        assert "lineitem" in text and "GROUP BY" in text


class TestJoinEdges:
    def test_edges_found(self, tpch_db):
        query = SPJQuery(["lineitem", "orders", "part"])
        edges = query.join_edges(tpch_db)
        pairs = {(e.child, e.parent) for e in edges}
        assert pairs == {("lineitem", "orders"), ("lineitem", "part")}

    def test_edge_columns_qualified(self, tpch_db):
        query = SPJQuery(["lineitem", "orders"])
        [edge] = query.join_edges(tpch_db)
        assert edge.child_column == "lineitem.l_orderkey"
        assert edge.parent_column == "orders.o_orderkey"

    def test_no_edges_single_table(self, tpch_db):
        assert SPJQuery(["lineitem"]).join_edges(tpch_db) == []


class TestValidation:
    def test_valid_query(self, tpch_db):
        SPJQuery(
            ["lineitem", "orders"], col("lineitem.l_quantity") > 1
        ).validate(tpch_db)

    def test_unknown_table_raises(self, tpch_db):
        with pytest.raises(Exception):
            SPJQuery(["ghost"]).validate(tpch_db)

    def test_disconnected_tables_raise(self, tpch_db):
        with pytest.raises(Exception):
            SPJQuery(["part", "customer"]).validate(tpch_db)

    def test_predicate_on_foreign_table_raises(self, tpch_db):
        query = SPJQuery(["lineitem"], col("part.p_size") > 1)
        with pytest.raises(OptimizationError, match="not in query"):
            query.validate(tpch_db)

    def test_unqualified_column_raises(self, tpch_db):
        query = SPJQuery(["lineitem"], col("l_quantity") > 1)
        with pytest.raises(OptimizationError, match="unqualified"):
            query.validate(tpch_db)

    def test_unknown_column_raises(self, tpch_db):
        query = SPJQuery(["lineitem"], col("lineitem.zzz") > 1)
        with pytest.raises(OptimizationError, match="no column"):
            query.validate(tpch_db)


class TestPredicateRouting:
    def test_per_table(self):
        query = SPJQuery(
            ["lineitem", "part"],
            (col("lineitem.l_quantity") > 1) & (col("part.p_size") < 10),
        )
        routed = query.predicates_per_table()
        assert set(routed) == {"lineitem", "part"}

    def test_no_predicate(self):
        assert SPJQuery(["lineitem"]).predicates_per_table() == {}
