"""Tests for the fault-injection and graceful-degradation layer."""

import numpy as np
import pytest

from repro.core import MagicDistribution
from repro.errors import EstimationError, StatisticsError
from repro.faults import (
    ARCHIVE_FAULTS,
    ChaosHarness,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    FaultyEstimator,
    INVARIANTS,
    RUNTIME_FAULTS,
    apply_archive_fault,
    generate_fault_plans,
    magic_envelope,
    span_violations,
)
from repro.faults.plan import FaultPlanError
from repro.stats import StatisticsManager, load_statistics, save_statistics

from tests.conftest import make_two_table_db

QUERY = "SELECT COUNT(*) FROM lineitem WHERE lineitem.l_quantity > 45"
JOIN_QUERY = (
    "SELECT COUNT(*) FROM lineitem, part "
    "WHERE part.p_size <= 10 AND lineitem.l_quantity > 30"
)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultSpec(kind="set-fire-to-disk")

    def test_rate_bounds(self):
        with pytest.raises(FaultPlanError, match="rate"):
            FaultSpec(kind="estimator-error", rate=1.5)

    def test_negative_delay_rejected(self):
        with pytest.raises(FaultPlanError, match="delay"):
            FaultSpec(kind="estimator-delay", delay_seconds=-1.0)

    def test_kind_partition(self):
        assert set(FAULT_KINDS) == set(ARCHIVE_FAULTS) | set(RUNTIME_FAULTS)
        assert not set(ARCHIVE_FAULTS) & set(RUNTIME_FAULTS)

    def test_plan_splits_specs(self):
        plan = FaultPlan(
            name="p",
            seed=1,
            specs=(
                FaultSpec(kind="archive-missing-npz"),
                FaultSpec(kind="drop-sample"),
            ),
        )
        assert [s.kind for s in plan.archive_specs] == ["archive-missing-npz"]
        assert [s.kind for s in plan.runtime_specs] == ["drop-sample"]


class TestGenerateFaultPlans:
    def test_deterministic(self):
        a = generate_fault_plans(10, seed=42, tables=("part", "lineitem"))
        b = generate_fault_plans(10, seed=42, tables=("part", "lineitem"))
        assert a == b

    def test_seed_changes_plans(self):
        a = generate_fault_plans(10, seed=1)
        b = generate_fault_plans(10, seed=2)
        assert a != b

    def test_respects_max_faults(self):
        for plan in generate_fault_plans(30, seed=0, max_faults=2):
            assert 1 <= len(plan.specs) <= 2

    def test_distinct_kinds_within_plan(self):
        for plan in generate_fault_plans(30, seed=3):
            kinds = [s.kind for s in plan.specs]
            assert len(kinds) == len(set(kinds))

    def test_count_validated(self):
        with pytest.raises(FaultPlanError, match="count"):
            generate_fault_plans(0)


class TestMagicEnvelope:
    def test_matches_magic_distribution(self):
        lo, hi = magic_envelope(0.8)
        assert lo == pytest.approx(
            MagicDistribution(0.1).selectivity(0.8)
        )
        assert hi == pytest.approx(
            MagicDistribution(0.9).selectivity(0.8)
        )

    def test_conjuncts_shrink_lower_edge(self):
        lo1, hi1 = magic_envelope(0.8, conjuncts=1)
        lo3, hi3 = magic_envelope(0.8, conjuncts=3)
        assert lo3 == pytest.approx(lo1**3)
        assert hi3 == hi1
        assert lo3 < lo1

    def test_single_magic_span_inside_envelope(self):
        quantile = MagicDistribution(0.1).selectivity(0.8)
        record = {
            "estimation": [
                {
                    "tables": ["lineitem"],
                    "source": "magic",
                    "threshold": 0.8,
                    "quantile": quantile,
                }
            ]
        }
        assert span_violations(record, conjunct_bound=2) == []

    def test_out_of_envelope_magic_span_flagged(self):
        record = {
            "estimation": [
                {
                    "tables": ["lineitem"],
                    "source": "magic",
                    "threshold": 0.8,
                    "quantile": 0.999,
                }
            ]
        }
        violations = span_violations(record, conjunct_bound=1)
        assert len(violations) == 1
        assert "fallback-envelope" in violations[0]

    def test_invalid_quantile_flagged_for_any_source(self):
        record = {
            "estimation": [
                {
                    "tables": ["part"],
                    "source": "synopsis",
                    "threshold": 0.8,
                    "quantile": 1.7,
                }
            ]
        }
        violations = span_violations(record, conjunct_bound=1)
        assert len(violations) == 1
        assert "outside [0, 1]" in violations[0]

    def test_list_lanes_checked_per_threshold(self):
        lo_t, hi_t = 0.5, 0.9
        record = {
            "estimation": [
                {
                    "tables": ["lineitem"],
                    "source": "magic",
                    "threshold": [lo_t, hi_t],
                    "quantile": [
                        MagicDistribution(0.1).selectivity(lo_t),
                        0.9999,  # outside the envelope for hi_t
                    ],
                }
            ]
        }
        violations = span_violations(record, conjunct_bound=1)
        assert len(violations) == 1
        assert f"T={hi_t:g}" in violations[0]


class TestFaultyEstimator:
    class _Inner:
        def estimate(self, tables, predicate, hint=None):
            return "estimate"

        def estimate_many(self, tables, predicate, thresholds):
            return "many"

        def describe(self):
            return "inner"

    def test_deterministic_error_sequence(self):
        def run():
            estimator = FaultyEstimator(
                self._Inner(), np.random.default_rng(5), error_rate=0.5
            )
            outcomes = []
            for _ in range(20):
                try:
                    estimator.estimate(set(), None)
                    outcomes.append("ok")
                except EstimationError:
                    outcomes.append("err")
            return outcomes, estimator.errors_fired

        first, second = run(), run()
        assert first == second
        assert first[1] > 0  # the configured rate actually fires

    def test_zero_rate_never_fires(self):
        estimator = FaultyEstimator(
            self._Inner(), np.random.default_rng(0), error_rate=0.0
        )
        for _ in range(50):
            assert estimator.estimate(set(), None) == "estimate"
        assert estimator.errors_fired == 0
        assert estimator.calls == 50

    def test_delegates_and_describes(self):
        estimator = FaultyEstimator(self._Inner(), np.random.default_rng(0))
        assert estimator.estimate_many(set(), None, [0.5]) == "many"
        assert estimator.describe() == "faulty(inner)"


@pytest.fixture(scope="module")
def chaos_db():
    return make_two_table_db()


@pytest.fixture(scope="module")
def pristine_archive(chaos_db, tmp_path_factory):
    path = tmp_path_factory.mktemp("chaos") / "stats"
    manager = StatisticsManager(chaos_db)
    manager.update_statistics(sample_size=64, seed=5)
    save_statistics(manager, path)
    return path


class TestArchiveFaults:
    """Every corruption mode must be rejected by the loader."""

    @pytest.mark.parametrize("kind", ARCHIVE_FAULTS)
    def test_corrupted_archive_rejected(
        self, chaos_db, pristine_archive, tmp_path, kind
    ):
        import shutil

        copy = tmp_path / "corrupted"
        shutil.copytree(pristine_archive, copy)
        spec = FaultSpec(kind=kind)
        description = apply_archive_fault(
            copy, spec, np.random.default_rng(3)
        )
        assert description
        with pytest.raises(StatisticsError):
            load_statistics(chaos_db, copy)

    def test_runtime_kind_rejected(self, pristine_archive):
        with pytest.raises(FaultPlanError, match="not an archive fault"):
            apply_archive_fault(
                pristine_archive,
                FaultSpec(kind="drop-sample"),
                np.random.default_rng(0),
            )


class TestChaosHarness:
    def test_requires_queries(self, chaos_db):
        with pytest.raises(Exception, match="at least one query"):
            ChaosHarness(chaos_db, [])

    def test_sweep_passes_all_invariants(self, chaos_db, tmp_path):
        harness = ChaosHarness(
            chaos_db,
            [QUERY, JOIN_QUERY],
            sample_size=64,
            statistics_seed=5,
            workdir=tmp_path,
        )
        plans = generate_fault_plans(
            20, seed=0, tables=("part", "lineitem")
        )
        report = harness.run(plans)
        summary = report.format_summary()
        assert report.passed, summary
        assert len(report.outcomes) == 20
        # The sweep must actually exercise degraded operation, not
        # just happy paths that trivially satisfy the invariants.
        assert sum(1 for o in report.outcomes if o.degradations) >= 5
        assert all(o.queries_run >= 4 for o in report.outcomes)
        assert "PASS" in summary

    def test_invariant_names_stable(self):
        assert INVARIANTS == (
            "executable-plan",
            "fallback-envelope",
            "cache-versioning",
            "degradation-attributed",
        )
