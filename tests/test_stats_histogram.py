"""Unit tests for equi-depth histograms."""

import numpy as np
import pytest

from repro.errors import StatisticsError
from repro.stats import EquiDepthHistogram


@pytest.fixture
def uniform():
    rng = np.random.default_rng(0)
    return rng.integers(0, 10_000, 20_000)


class TestConstruction:
    def test_bucket_counts_sum_to_total(self, uniform):
        histogram = EquiDepthHistogram(uniform, 250)
        assert histogram.counts.sum() == len(uniform)

    def test_buckets_capped_by_rows(self):
        histogram = EquiDepthHistogram(np.arange(10), 250)
        assert histogram.num_buckets <= 10

    def test_roughly_equal_depth(self, uniform):
        histogram = EquiDepthHistogram(uniform, 100)
        depths = histogram.counts
        assert depths.max() < 3 * depths.min()

    def test_distinct_values_exact_for_unique_column(self):
        histogram = EquiDepthHistogram(np.arange(1000), 50)
        assert histogram.distinct_values == 1000

    def test_rejects_strings(self):
        with pytest.raises(StatisticsError):
            EquiDepthHistogram(np.array(["a", "b"]), 10)

    def test_rejects_empty(self):
        with pytest.raises(StatisticsError):
            EquiDepthHistogram(np.array([], dtype=np.int64), 10)

    def test_rejects_bad_bucket_count(self, uniform):
        with pytest.raises(StatisticsError):
            EquiDepthHistogram(uniform, 0)

    def test_heavy_hitter_single_bucket(self):
        values = np.concatenate([np.full(900, 7), np.arange(100)])
        histogram = EquiDepthHistogram(values, 10)
        assert histogram.selectivity_eq(7) == pytest.approx(0.9, abs=0.05)


class TestRangeSelectivity:
    def test_full_range_is_one(self, uniform):
        histogram = EquiDepthHistogram(uniform, 250)
        assert histogram.selectivity_range(None, None) == pytest.approx(1.0)

    def test_half_range(self, uniform):
        histogram = EquiDepthHistogram(uniform, 250)
        estimate = histogram.selectivity_range(0, 4999)
        truth = (uniform <= 4999).mean()
        assert estimate == pytest.approx(truth, abs=0.02)

    def test_narrow_range(self, uniform):
        histogram = EquiDepthHistogram(uniform, 250)
        estimate = histogram.selectivity_range(1000, 1099)
        truth = ((uniform >= 1000) & (uniform <= 1099)).mean()
        assert estimate == pytest.approx(truth, abs=0.005)

    def test_out_of_domain_is_zero(self, uniform):
        histogram = EquiDepthHistogram(uniform, 250)
        assert histogram.selectivity_range(20_000, 30_000) == 0.0
        assert histogram.selectivity_range(-10, -1) == 0.0

    def test_inverted_range_is_zero(self, uniform):
        histogram = EquiDepthHistogram(uniform, 250)
        assert histogram.selectivity_range(100, 50) == 0.0

    def test_skewed_data(self):
        rng = np.random.default_rng(1)
        skewed = (rng.pareto(2.0, 20_000) * 100).astype(np.int64)
        histogram = EquiDepthHistogram(skewed, 250)
        for hi in (50, 200, 1000):
            truth = (skewed <= hi).mean()
            assert histogram.selectivity_range(None, hi) == pytest.approx(
                truth, abs=0.03
            )


class TestEqualitySelectivity:
    def test_uniform_point(self, uniform):
        histogram = EquiDepthHistogram(uniform, 250)
        estimate = histogram.selectivity_eq(5000)
        assert estimate == pytest.approx(1 / 10_000, rel=1.0)

    def test_out_of_domain_zero(self, uniform):
        histogram = EquiDepthHistogram(uniform, 250)
        assert histogram.selectivity_eq(-5) == 0.0
        assert histogram.selectivity_eq(99_999) == 0.0

    def test_binary_column(self):
        values = np.concatenate([np.zeros(750, dtype=np.int64), np.ones(250, dtype=np.int64)])
        histogram = EquiDepthHistogram(values, 250)
        assert histogram.selectivity_eq(0) == pytest.approx(0.75, abs=0.01)
        assert histogram.selectivity_eq(1) == pytest.approx(0.25, abs=0.01)


class TestAviFailureMode:
    """The estimator knows marginals but cannot see correlations —
    the exact failure mode of paper Experiments 1–3."""

    def test_marginals_right_joint_wrong(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 1000, 50_000)
        b = a + rng.integers(0, 10, 50_000)  # near-perfect correlation
        hist_a = EquiDepthHistogram(a, 250)
        hist_b = EquiDepthHistogram(b, 250)
        sel_a = hist_a.selectivity_range(100, 199)
        sel_b = hist_b.selectivity_range(500, 599)
        avi = sel_a * sel_b
        truth = ((a >= 100) & (a <= 199) & (b >= 500) & (b <= 599)).mean()
        # marginals individually fine...
        assert sel_a == pytest.approx((( a >= 100) & (a <= 199)).mean(), abs=0.01)
        # ...but the AVI joint estimate is wildly off (truth is 0)
        assert truth == 0.0
        assert avi > 0.005
