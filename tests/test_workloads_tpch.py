"""Tests for the TPC-H-shaped generator."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import TpchConfig, build_tpch_database
from repro.workloads.tpch import MAX_RECEIPT_LAG, PART_CORR_SPREAD


class TestConfig:
    def test_ratios(self):
        config = TpchConfig(num_lineitem=60_000)
        assert config.num_orders == 15_000
        assert config.num_part == 4_000
        assert config.num_customer == 1_500

    def test_too_small_raises(self):
        with pytest.raises(WorkloadError):
            TpchConfig(num_lineitem=10)


class TestGeneratedDatabase:
    def test_tables_and_sizes(self, tpch_db):
        assert set(tpch_db.table_names) == {
            "customer",
            "orders",
            "part",
            "lineitem",
        }
        assert tpch_db.table("lineitem").num_rows == 12_000
        assert tpch_db.table("orders").num_rows == 3_000

    def test_referential_integrity(self, tpch_db):
        tpch_db.validate()  # raises on violation

    def test_physical_design(self, tpch_db):
        assert tpch_db.clustering_column("lineitem") == "l_orderkey"
        assert tpch_db.clustering_column("orders") == "o_orderkey"
        assert tpch_db.has_index("lineitem", "l_shipdate")
        assert tpch_db.has_index("lineitem", "l_receiptdate")
        assert tpch_db.has_index("lineitem", "l_partkey")

    def test_lineitem_stored_in_orderkey_order(self, tpch_db):
        keys = tpch_db.table("lineitem").column("l_orderkey")
        assert (np.diff(keys) >= 0).all()

    def test_date_correlation(self, tpch_db):
        """Receipt follows shipment within the configured lag window —
        the correlation Experiment 1 exploits."""
        table = tpch_db.table("lineitem")
        lag = table.column("l_receiptdate") - table.column("l_shipdate")
        assert lag.min() >= 1
        assert lag.max() <= MAX_RECEIPT_LAG

    def test_part_correlation(self, tpch_db):
        """p_c2 tracks p_c1 within the spread — Experiment 2's injected
        correlated distribution."""
        part = tpch_db.table("part")
        offset = part.column("p_c2") - part.column("p_c1")
        assert offset.min() >= 0
        assert offset.max() < PART_CORR_SPREAD

    def test_deterministic(self):
        a = build_tpch_database(TpchConfig(num_lineitem=2000, seed=9))
        b = build_tpch_database(TpchConfig(num_lineitem=2000, seed=9))
        assert np.array_equal(
            a.table("lineitem").column("l_shipdate"),
            b.table("lineitem").column("l_shipdate"),
        )

    def test_seeds_differ(self):
        a = build_tpch_database(TpchConfig(num_lineitem=2000, seed=1))
        b = build_tpch_database(TpchConfig(num_lineitem=2000, seed=2))
        assert not np.array_equal(
            a.table("lineitem").column("l_shipdate"),
            b.table("lineitem").column("l_shipdate"),
        )

    def test_marginal_window_selectivities_in_band(self, tpch_db):
        """Each 92-day date window selects a few percent of lineitem —
        the fixed marginal the histograms see."""
        from repro.catalog import date_ordinal

        ship = tpch_db.table("lineitem").column("l_shipdate")
        lo, hi = date_ordinal("1997-07-01"), date_ordinal("1997-09-30")
        marginal = ((ship >= lo) & (ship <= hi)).mean()
        assert 0.01 < marginal < 0.08
