"""Interface-contract tests every estimator must satisfy."""

import inspect

import pytest

from repro.core import (
    BayesNetCardinalityEstimator,
    CardinalityEstimator,
    ExactCardinalityEstimator,
    FixedSelectivityEstimator,
    HistogramCardinalityEstimator,
    RobustCardinalityEstimator,
)
from repro.expressions import col


def estimator_instances(tpch_db, tpch_stats):
    return {
        "exact": ExactCardinalityEstimator(tpch_db),
        "robust": RobustCardinalityEstimator(tpch_stats, policy=0.8),
        "histogram": HistogramCardinalityEstimator(tpch_stats),
        "bayes": BayesNetCardinalityEstimator(tpch_stats),
        "fixed": FixedSelectivityEstimator(tpch_db, default=0.05),
    }


CASES = [
    ({"lineitem"}, None),
    ({"lineitem"}, col("lineitem.l_quantity") > 25),
    (
        {"lineitem"},
        col("lineitem.l_shipdate").between("1997-07-01", "1997-09-30")
        & col("lineitem.l_receiptdate").between("1997-07-01", "1997-09-30"),
    ),
    ({"lineitem", "part"}, col("part.p_size") <= 10),
    ({"lineitem", "orders"}, col("orders.o_totalprice") > 100_000),
    (
        {"lineitem", "orders", "customer", "part"},
        (col("part.p_size") <= 25) & (col("customer.c_acctbal") > 0),
    ),
]


@pytest.mark.parametrize("case_index", range(len(CASES)))
@pytest.mark.parametrize(
    "name", ["exact", "robust", "histogram", "bayes", "fixed"]
)
class TestEstimatorContract:
    def test_selectivity_in_unit_interval(
        self, tpch_db, tpch_stats, name, case_index
    ):
        estimator = estimator_instances(tpch_db, tpch_stats)[name]
        tables, predicate = CASES[case_index]
        estimate = estimator.estimate(tables, predicate)
        assert 0.0 <= estimate.selectivity <= 1.0

    def test_cardinality_anchored_to_root(
        self, tpch_db, tpch_stats, name, case_index
    ):
        estimator = estimator_instances(tpch_db, tpch_stats)[name]
        tables, predicate = CASES[case_index]
        estimate = estimator.estimate(tables, predicate)
        root_rows = tpch_db.table(estimate.root_table).num_rows
        assert estimate.cardinality == pytest.approx(
            estimate.selectivity * root_rows
        )
        assert estimate.root_table == tpch_db.root_relation(tables)

    def test_deterministic(self, tpch_db, tpch_stats, name, case_index):
        estimator = estimator_instances(tpch_db, tpch_stats)[name]
        tables, predicate = CASES[case_index]
        a = estimator.estimate(tables, predicate)
        b = estimator.estimate(tables, predicate)
        assert a.selectivity == b.selectivity

    def test_tables_echoed(self, tpch_db, tpch_stats, name, case_index):
        estimator = estimator_instances(tpch_db, tpch_stats)[name]
        tables, predicate = CASES[case_index]
        estimate = estimator.estimate(tables, predicate)
        assert estimate.tables == frozenset(tables)

    def test_describe_nonempty(self, tpch_db, tpch_stats, name, case_index):
        estimator = estimator_instances(tpch_db, tpch_stats)[name]
        assert estimator.describe()


ALL_ESTIMATORS = (
    BayesNetCardinalityEstimator,
    CardinalityEstimator,
    ExactCardinalityEstimator,
    FixedSelectivityEstimator,
    HistogramCardinalityEstimator,
    RobustCardinalityEstimator,
)


def _signature_fields(func):
    """(name, kind, default, annotation) per parameter, self excluded."""
    return [
        (p.name, p.kind, p.default, p.annotation)
        for p in inspect.signature(func).parameters.values()
        if p.name != "self"
    ]


class TestProtocolParity:
    """The estimator protocol: one keyword signature, everywhere.

    The optimizer, session service, and experiment harness call
    estimators positionally and by keyword; any drift in parameter
    names, defaults, or order between implementations is an API break
    that type checkers won't catch (no Protocol/ABC here). These tests
    pin every override to the base signature.
    """

    @pytest.mark.parametrize("cls", ALL_ESTIMATORS)
    def test_estimate_signature_matches_base(self, cls):
        assert _signature_fields(cls.estimate) == _signature_fields(
            CardinalityEstimator.estimate
        ), cls.__name__

    @pytest.mark.parametrize("cls", ALL_ESTIMATORS)
    def test_estimate_many_signature_matches_base(self, cls):
        assert _signature_fields(cls.estimate_many) == _signature_fields(
            CardinalityEstimator.estimate_many
        ), cls.__name__

    def test_every_estimator_has_estimate_many(self):
        """The base default makes threshold-blind estimators (exact,
        fixed) satisfy the vectorized interface without overriding."""
        for cls in ALL_ESTIMATORS:
            assert callable(getattr(cls, "estimate_many"))
        assert (
            ExactCardinalityEstimator.estimate_many
            is CardinalityEstimator.estimate_many
        )
        assert (
            FixedSelectivityEstimator.estimate_many
            is CardinalityEstimator.estimate_many
        )


GRID = (0.05, 0.50, 0.95)


@pytest.mark.parametrize(
    "name", ["exact", "robust", "histogram", "bayes", "fixed"]
)
class TestEstimateManyConsistency:
    """estimate_many == looping estimate with each threshold as hint."""

    @pytest.mark.parametrize("case_index", range(len(CASES)))
    def test_grid_matches_looped_estimates(
        self, tpch_db, tpch_stats, name, case_index
    ):
        estimator = estimator_instances(tpch_db, tpch_stats)[name]
        tables, predicate = CASES[case_index]
        many = estimator.estimate_many(tables, predicate, GRID)
        assert len(many) == len(GRID)
        looped = [
            estimator.estimate(tables, predicate, hint=t) for t in GRID
        ]
        for vectored, scalar in zip(many, looped):
            assert vectored.selectivity == scalar.selectivity
            assert vectored.cardinality == scalar.cardinality
            assert vectored.root_table == scalar.root_table

    def test_accepts_any_sequence(self, tpch_db, tpch_stats, name):
        """Grids arrive as lists, tuples, or arrays; all must work."""
        estimator = estimator_instances(tpch_db, tpch_stats)[name]
        tables, predicate = CASES[1]
        as_tuple = estimator.estimate_many(tables, predicate, GRID)
        as_list = estimator.estimate_many(tables, predicate, list(GRID))
        assert [e.selectivity for e in as_tuple] == [
            e.selectivity for e in as_list
        ]
