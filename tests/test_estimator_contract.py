"""Interface-contract tests every estimator must satisfy."""

import pytest

from repro.core import (
    ExactCardinalityEstimator,
    FixedSelectivityEstimator,
    HistogramCardinalityEstimator,
    RobustCardinalityEstimator,
)
from repro.expressions import col


def estimator_instances(tpch_db, tpch_stats):
    return {
        "exact": ExactCardinalityEstimator(tpch_db),
        "robust": RobustCardinalityEstimator(tpch_stats, policy=0.8),
        "histogram": HistogramCardinalityEstimator(tpch_stats),
        "fixed": FixedSelectivityEstimator(tpch_db, default=0.05),
    }


CASES = [
    ({"lineitem"}, None),
    ({"lineitem"}, col("lineitem.l_quantity") > 25),
    (
        {"lineitem"},
        col("lineitem.l_shipdate").between("1997-07-01", "1997-09-30")
        & col("lineitem.l_receiptdate").between("1997-07-01", "1997-09-30"),
    ),
    ({"lineitem", "part"}, col("part.p_size") <= 10),
    ({"lineitem", "orders"}, col("orders.o_totalprice") > 100_000),
    (
        {"lineitem", "orders", "customer", "part"},
        (col("part.p_size") <= 25) & (col("customer.c_acctbal") > 0),
    ),
]


@pytest.mark.parametrize("case_index", range(len(CASES)))
@pytest.mark.parametrize("name", ["exact", "robust", "histogram", "fixed"])
class TestEstimatorContract:
    def test_selectivity_in_unit_interval(
        self, tpch_db, tpch_stats, name, case_index
    ):
        estimator = estimator_instances(tpch_db, tpch_stats)[name]
        tables, predicate = CASES[case_index]
        estimate = estimator.estimate(tables, predicate)
        assert 0.0 <= estimate.selectivity <= 1.0

    def test_cardinality_anchored_to_root(
        self, tpch_db, tpch_stats, name, case_index
    ):
        estimator = estimator_instances(tpch_db, tpch_stats)[name]
        tables, predicate = CASES[case_index]
        estimate = estimator.estimate(tables, predicate)
        root_rows = tpch_db.table(estimate.root_table).num_rows
        assert estimate.cardinality == pytest.approx(
            estimate.selectivity * root_rows
        )
        assert estimate.root_table == tpch_db.root_relation(tables)

    def test_deterministic(self, tpch_db, tpch_stats, name, case_index):
        estimator = estimator_instances(tpch_db, tpch_stats)[name]
        tables, predicate = CASES[case_index]
        a = estimator.estimate(tables, predicate)
        b = estimator.estimate(tables, predicate)
        assert a.selectivity == b.selectivity

    def test_tables_echoed(self, tpch_db, tpch_stats, name, case_index):
        estimator = estimator_instances(tpch_db, tpch_stats)[name]
        tables, predicate = CASES[case_index]
        estimate = estimator.estimate(tables, predicate)
        assert estimate.tables == frozenset(tables)

    def test_describe_nonempty(self, tpch_db, tpch_stats, name, case_index):
        estimator = estimator_instances(tpch_db, tpch_stats)[name]
        assert estimator.describe()
