"""Unit tests for repro.expressions.frame."""

import numpy as np
import pytest

from repro.errors import ExpressionError
from repro.expressions import Frame


@pytest.fixture
def frame():
    return Frame(
        {
            "t.a": np.array([1, 2, 3, 4]),
            "t.b": np.array([10.0, 20.0, 30.0, 40.0]),
            "u.a": np.array([5, 6, 7, 8]),
        }
    )


class TestConstruction:
    def test_num_rows(self, frame):
        assert frame.num_rows == 4

    def test_empty(self):
        assert Frame({}).num_rows == 0

    def test_ragged_raises(self):
        with pytest.raises(ExpressionError):
            Frame({"a": np.array([1]), "b": np.array([1, 2])})

    def test_from_table(self, two_table_db):
        table = two_table_db.table("part")
        frame = Frame.from_table(table)
        assert frame.num_rows == table.num_rows
        assert "part.p_size" in frame.column_names

    def test_from_table_rows(self, two_table_db):
        table = two_table_db.table("part")
        frame = Frame.from_table_rows(table, np.array([0, 2]))
        assert frame.num_rows == 2
        assert frame.column("part.p_partkey")[1] == 2


class TestColumnResolution:
    def test_qualified(self, frame):
        assert frame.column("t.a")[0] == 1

    def test_unqualified_unique(self, frame):
        assert frame.column("b")[1] == 20.0

    def test_unqualified_ambiguous_raises(self, frame):
        with pytest.raises(ExpressionError, match="ambiguous"):
            frame.column("a")

    def test_missing_raises(self, frame):
        with pytest.raises(ExpressionError, match="no column"):
            frame.column("zzz")

    def test_contains(self, frame):
        assert "t.a" in frame
        assert "b" in frame
        assert "a" not in frame  # ambiguous counts as absent
        assert "zzz" not in frame


class TestTransforms:
    def test_mask(self, frame):
        out = frame.mask(np.array([True, False, True, False]))
        assert out.num_rows == 2
        assert list(out.column("t.a")) == [1, 3]

    def test_mask_wrong_length_raises(self, frame):
        with pytest.raises(ExpressionError):
            frame.mask(np.array([True]))

    def test_mask_wrong_dtype_raises(self, frame):
        with pytest.raises(ExpressionError):
            frame.mask(np.array([1, 0, 1, 0]))

    def test_take(self, frame):
        out = frame.take(np.array([3, 0, 0]))
        assert list(out.column("t.a")) == [4, 1, 1]

    def test_select(self, frame):
        out = frame.select(["t.b"])
        assert out.column_names == ["t.b"]

    def test_merge(self, frame):
        other = Frame({"v.x": np.arange(4)})
        merged = frame.merged_with(other)
        assert merged.num_rows == 4
        assert "v.x" in merged.column_names

    def test_merge_length_mismatch_raises(self, frame):
        with pytest.raises(ExpressionError):
            frame.merged_with(Frame({"v.x": np.arange(3)}))

    def test_merge_duplicate_column_raises(self, frame):
        with pytest.raises(ExpressionError, match="duplicate"):
            frame.merged_with(Frame({"t.a": np.arange(4)}))
