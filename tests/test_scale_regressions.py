"""Tracing and chaos regressions over the zero-copy execution path.

The zero-copy refactor changed how operators build their output frames
(selection vectors instead of copies) and added a shared scan cache.
Neither may disturb the observability layer:

1. ``operator_spans`` re-executes each subtree in a fresh context to
   attribute work per operator; with lazy frames the subtraction
   arithmetic must still be exact — own-work non-negative everywhere
   and the spans summing to the root totals — and the attribution must
   be identical whether the *measured* run used a scan cache or not.
2. The ``ChaosHarness`` invariants (executable-plan, fallback-envelope,
   cache-versioning, degradation-attributed) must keep passing with
   zero-copy operators as the engine default.
"""

import numpy as np
import pytest

from repro.cost import CostModel
from repro.engine import (
    ExecOptions,
    ExecutionContext,
    HashAggregate,
    HashJoin,
    IndexSeek,
    IndexedNLJoin,
    MergeJoin,
    ScanCache,
    SeqScan,
)
from repro.engine.aggregate import AggregateSpec
from repro.engine.scans import IndexCondition
from repro.expressions import col
from repro.faults import ChaosHarness, generate_fault_plans
from repro.obs import execution_span, operator_spans

from tests.conftest import make_two_table_db

QUERY = "SELECT COUNT(*) FROM lineitem WHERE lineitem.l_quantity > 45"
JOIN_QUERY = (
    "SELECT COUNT(*) FROM lineitem, part "
    "WHERE part.p_size <= 10 AND lineitem.l_quantity > 30"
)


@pytest.fixture(scope="module")
def db():
    return make_two_table_db(n_part=80, n_lineitem=4000)


def make_plans(db):
    """Hand-built plans covering scans, joins, and aggregation."""
    scan_part = SeqScan("part", col("part.p_size") <= 20)
    scan_lineitem = SeqScan("lineitem", col("lineitem.l_quantity") > 10)
    seek = IndexSeek(
        "lineitem",
        IndexCondition("l_partkey", 0, 30),
        residual=col("lineitem.l_quantity") > 5,
    )
    return {
        "seqscan": scan_part,
        "hashjoin": HashJoin(
            scan_part, scan_lineitem, "part.p_partkey", "lineitem.l_partkey"
        ),
        "mergejoin": MergeJoin(
            scan_part, scan_lineitem, "part.p_partkey", "lineitem.l_partkey"
        ),
        "indexednl": IndexedNLJoin(
            scan_part,
            "lineitem",
            "part.p_partkey",
            "l_partkey",
            residual=col("lineitem.l_quantity") > 5,
        ),
        "seek-agg": HashAggregate(
            seek,
            group_by=["lineitem.l_partkey"],
            aggregates=[
                AggregateSpec("sum", "lineitem.l_quantity", "total_qty"),
                AggregateSpec("count", "lineitem.l_id", "n"),
            ],
        ),
    }


class TestOperatorSpanAttribution:
    @pytest.mark.parametrize("name", ["seqscan", "hashjoin", "mergejoin",
                                      "indexednl", "seek-agg"])
    def test_spans_sum_to_root_and_own_work_nonnegative(self, db, name):
        plan = make_plans(db)[name]
        spans, root_counters, root_rows = operator_spans(plan, db)
        assert root_rows == plan.execute(ExecutionContext(db)).num_rows
        totals = {k: 0 for k in root_counters.as_dict()}
        for span in spans:
            assert span["own_work"] >= 0, span["operator"]
            for key, value in span["counters"].items():
                assert value >= 0, f"{span['operator']}: {key}"
                totals[key] += value
        assert totals == root_counters.as_dict()

    @pytest.mark.parametrize("name", ["hashjoin", "seek-agg"])
    def test_attribution_independent_of_scan_cache(self, db, name):
        plan = make_plans(db)[name]
        # Measured run with a warm scan cache: execute twice so the
        # second pass is served from the cache, then trace.
        cache = ScanCache()
        options = ExecOptions(scan_cache=cache)
        plan.execute(ExecutionContext(db, options))
        warm_ctx = ExecutionContext(db, options)
        plan.execute(warm_ctx)
        assert cache.hits > 0
        cold_ctx = ExecutionContext(db)
        plan.execute(cold_ctx)
        # Unit of account: cached and uncached runs charge identically.
        assert warm_ctx.counters.as_dict() == cold_ctx.counters.as_dict()
        # And the traced attribution reproduces those same totals.
        spans, root_counters, _ = operator_spans(plan, db)
        assert root_counters.as_dict() == cold_ctx.counters.as_dict()

    def test_execution_span_over_lazy_plan(self, db):
        plan = make_plans(db)["hashjoin"]
        cost_model = CostModel()
        ctx = ExecutionContext(db)
        frame = plan.execute(ctx)
        span = execution_span(
            plan,
            db,
            cost_model,
            simulated_seconds=cost_model.time_from_counters(ctx.counters),
            actual_rows=frame.num_rows,
        )
        assert span["actual_rows"] == frame.num_rows
        assert span["counters"] == ctx.counters.as_dict()
        assert span["total_work"] == ctx.counters.total_work()
        assert len(span["operators"]) == 3  # join + two scans
        assert span["time_breakdown"]


class TestChaosOverZeroCopyOperators:
    def test_chaos_sweep_green(self, db, tmp_path):
        harness = ChaosHarness(
            db,
            [QUERY, JOIN_QUERY],
            sample_size=64,
            statistics_seed=5,
            workdir=tmp_path,
        )
        plans = generate_fault_plans(8, seed=0, tables=("part", "lineitem"))
        report = harness.run(plans)
        assert report.passed, report.format_summary()
        assert len(report.outcomes) == 8
