"""Unit tests for join synopses (the Section 3.2 construction)."""

import numpy as np
import pytest

from repro.errors import StatisticsError
from repro.expressions import col
from repro.stats import build_join_synopsis
from repro.stats.join_synopsis import fk_join_frame

from repro.catalog import Column, ColumnType, Database, ForeignKey, Schema, Table


class TestBuildSynopsis:
    def test_covers_all_ancestors(self, tpch_db):
        synopsis = build_join_synopsis(tpch_db, "lineitem", 200, rng=0)
        assert synopsis.covered_tables == {"lineitem", "orders", "customer", "part"}

    def test_row_count_equals_sample_size(self, tpch_db):
        synopsis = build_join_synopsis(tpch_db, "lineitem", 200, rng=0)
        assert synopsis.frame.num_rows == 200
        assert synopsis.size == 200

    def test_leaf_table_synopsis_is_plain_sample(self, tpch_db):
        synopsis = build_join_synopsis(tpch_db, "part", 100, rng=0)
        assert synopsis.covered_tables == {"part"}

    def test_mid_chain_root(self, tpch_db):
        synopsis = build_join_synopsis(tpch_db, "orders", 100, rng=0)
        assert synopsis.covered_tables == {"orders", "customer"}

    def test_fk_values_align_with_parent_keys(self, tpch_db):
        synopsis = build_join_synopsis(tpch_db, "lineitem", 300, rng=1)
        frame = synopsis.frame
        assert np.array_equal(
            frame.column("lineitem.l_orderkey"), frame.column("orders.o_orderkey")
        )
        assert np.array_equal(
            frame.column("lineitem.l_partkey"), frame.column("part.p_partkey")
        )
        assert np.array_equal(
            frame.column("orders.o_custkey"), frame.column("customer.c_custkey")
        )

    def test_covers_predicate(self, tpch_db):
        synopsis = build_join_synopsis(tpch_db, "lineitem", 100, rng=0)
        assert synopsis.covers({"lineitem", "part"})
        assert synopsis.covers({"lineitem"})
        assert not synopsis.covers({"lineitem", "ghost"})

    def test_count_satisfying_none_is_size(self, tpch_db):
        synopsis = build_join_synopsis(tpch_db, "lineitem", 150, rng=0)
        assert synopsis.count_satisfying(None) == 150

    def test_count_satisfying_cross_table_predicate(self, tpch_db):
        synopsis = build_join_synopsis(tpch_db, "lineitem", 400, rng=0)
        predicate = (col("part.p_size") <= 25) & (
            col("lineitem.l_quantity") > 25
        )
        k = synopsis.count_satisfying(predicate)
        assert 0 < k < 400

    def test_estimate_is_unbiased_for_join_predicate(self, tpch_db):
        """The MLE k/n from the synopsis converges on the true joint
        selectivity — the property AVI-based estimation lacks."""
        predicate = (col("part.p_size") <= 10) & (
            col("lineitem.l_quantity") > 40
        )
        truth_frame, _ = fk_join_frame(
            tpch_db, "lineitem", restrict_to={"lineitem", "part"}
        )
        truth = predicate.evaluate(truth_frame).mean()
        estimates = [
            build_join_synopsis(tpch_db, "lineitem", 500, rng=seed).count_satisfying(
                predicate
            )
            / 500
            for seed in range(20)
        ]
        assert np.mean(estimates) == pytest.approx(truth, abs=0.015)

    def test_invalid_size_raises(self, tpch_db):
        with pytest.raises(StatisticsError):
            build_join_synopsis(tpch_db, "lineitem", 0)

    def test_deterministic_given_seed(self, tpch_db):
        a = build_join_synopsis(tpch_db, "lineitem", 50, rng=9)
        b = build_join_synopsis(tpch_db, "lineitem", 50, rng=9)
        assert np.array_equal(
            a.frame.column("lineitem.l_linenumber"),
            b.frame.column("lineitem.l_linenumber"),
        )


class TestFkJoinFrame:
    def test_full_join_preserves_cardinality(self, tpch_db):
        frame, covered = fk_join_frame(tpch_db, "lineitem")
        assert frame.num_rows == tpch_db.table("lineitem").num_rows
        assert covered == {"lineitem", "orders", "customer", "part"}

    def test_restricted_join(self, tpch_db):
        frame, covered = fk_join_frame(
            tpch_db, "lineitem", restrict_to={"lineitem", "orders"}
        )
        assert covered == {"lineitem", "orders"}
        assert "part.p_size" not in frame.column_names

    def test_dangling_fk_raises(self):
        parent = Table(
            "p",
            Schema([Column("pk", ColumnType.INT64)], primary_key="pk"),
            {"pk": np.arange(3)},
        )
        child = Table(
            "c",
            Schema(
                [Column("ck", ColumnType.INT64), Column("fk", ColumnType.INT64)],
                primary_key="ck",
                foreign_keys=[ForeignKey("fk", "p", "pk")],
            ),
            {"ck": np.arange(3), "fk": np.array([0, 1, 7])},
        )
        db = Database([parent, child])  # deliberately not validated
        with pytest.raises(StatisticsError, match="dangling"):
            fk_join_frame(db, "c")

    def test_diamond_fk_graph_raises(self):
        """Two paths to the same ancestor are rejected (tree required)."""
        top = Table(
            "top",
            Schema([Column("tk", ColumnType.INT64)], primary_key="tk"),
            {"tk": np.arange(2)},
        )
        mid_a = Table(
            "mid_a",
            Schema(
                [Column("ak", ColumnType.INT64), Column("a_tk", ColumnType.INT64)],
                primary_key="ak",
                foreign_keys=[ForeignKey("a_tk", "top", "tk")],
            ),
            {"ak": np.arange(2), "a_tk": np.arange(2)},
        )
        mid_b = Table(
            "mid_b",
            Schema(
                [Column("bk", ColumnType.INT64), Column("b_tk", ColumnType.INT64)],
                primary_key="bk",
                foreign_keys=[ForeignKey("b_tk", "top", "tk")],
            ),
            {"bk": np.arange(2), "b_tk": np.arange(2)},
        )
        bottom = Table(
            "bottom",
            Schema(
                [
                    Column("k", ColumnType.INT64),
                    Column("f_a", ColumnType.INT64),
                    Column("f_b", ColumnType.INT64),
                ],
                primary_key="k",
                foreign_keys=[
                    ForeignKey("f_a", "mid_a", "ak"),
                    ForeignKey("f_b", "mid_b", "bk"),
                ],
            ),
            {"k": np.arange(2), "f_a": np.arange(2), "f_b": np.arange(2)},
        )
        db = Database([top, mid_a, mid_b, bottom])
        with pytest.raises(StatisticsError, match="tree"):
            fk_join_frame(db, "bottom")
