"""Tests for cardinality auditing and plan-sensitivity analysis."""

import pytest

from repro.core import (
    ExactCardinalityEstimator,
    HistogramCardinalityEstimator,
    RobustCardinalityEstimator,
)
from repro.experiments import (
    audit_plan,
    format_audit,
    format_sensitivity,
    sensitivity_sweep,
    worst_q_error,
)
from repro.expressions import col
from repro.optimizer import Optimizer, SPJQuery
from repro.workloads import ShippingDatesTemplate

CORRELATED = col("lineitem.l_shipdate").between("1997-07-01", "1997-09-30") & col(
    "lineitem.l_receiptdate"
).between("1997-07-01", "1997-09-30")


class TestAudit:
    def test_exact_estimator_audits_clean(self, tpch_db):
        planned = Optimizer(tpch_db, ExactCardinalityEstimator(tpch_db)).optimize(
            SPJQuery(["lineitem", "part"], col("part.p_size") <= 10)
        )
        entries = audit_plan(planned, tpch_db)
        assert len(entries) == len(list(planned.plan.walk()))
        # with exact cardinalities every estimate matches reality
        assert worst_q_error(entries) == pytest.approx(1.0, abs=1e-9)

    def test_histogram_estimator_shows_error_on_correlation(self, tpch_db, tpch_stats):
        planned = Optimizer(
            tpch_db, HistogramCardinalityEstimator(tpch_stats)
        ).optimize(SPJQuery(["lineitem"], CORRELATED))
        entries = audit_plan(planned, tpch_db)
        # the AVI underestimate is visible as a large q-error
        assert worst_q_error(entries) > 3.0

    def test_robust_estimator_much_closer(self, tpch_db, tpch_stats):
        robust = Optimizer(
            tpch_db, RobustCardinalityEstimator(tpch_stats, policy=0.5)
        ).optimize(SPJQuery(["lineitem"], CORRELATED))
        histogram = Optimizer(
            tpch_db, HistogramCardinalityEstimator(tpch_stats)
        ).optimize(SPJQuery(["lineitem"], CORRELATED))
        assert worst_q_error(audit_plan(robust, tpch_db)) < worst_q_error(
            audit_plan(histogram, tpch_db)
        )

    def test_depths_match_tree(self, tpch_db):
        planned = Optimizer(tpch_db, ExactCardinalityEstimator(tpch_db)).optimize(
            SPJQuery(["lineitem", "orders", "part"], col("part.p_size") <= 10)
        )
        entries = audit_plan(planned, tpch_db)
        assert entries[0].depth == 0
        assert max(e.depth for e in entries) >= 1

    def test_format(self, tpch_db):
        planned = Optimizer(tpch_db, ExactCardinalityEstimator(tpch_db)).optimize(
            SPJQuery(["lineitem"], CORRELATED)
        )
        text = format_audit(audit_plan(planned, tpch_db))
        assert "est rows" in text and "q-err" in text

    def test_q_error_none_without_estimate(self):
        from repro.experiments import AuditEntry

        entry = AuditEntry("x", 0, None, 10)
        assert entry.q_error is None

    def test_q_error_symmetric(self):
        from repro.experiments import AuditEntry

        over = AuditEntry("x", 0, 100.0, 10)
        under = AuditEntry("x", 0, 10.0, 100)
        assert over.q_error == pytest.approx(under.q_error)


class TestSensitivity:
    @pytest.fixture(scope="class")
    def reports(self, tpch_db, tpch_stats):
        template = ShippingDatesTemplate()
        estimators = {
            "robust@80": RobustCardinalityEstimator(tpch_stats, policy=0.8),
            "histograms": HistogramCardinalityEstimator(tpch_stats),
        }
        params = [270, 240, 215, 200, 190]
        return sensitivity_sweep(tpch_db, template, estimators, params)

    def test_reports_cover_all_points(self, reports):
        assert len(reports["robust@80"].points) == 5

    def test_oracle_regret_nonnegative(self, reports):
        for report in reports.values():
            assert all(point.regret >= 0 for point in report.points)

    def test_robust_has_less_regret_than_histograms(self, reports):
        assert (
            reports["robust@80"].total_regret
            < reports["histograms"].total_regret
        )

    def test_robust_switches_plans(self, reports):
        """The robust estimator adapts across the sweep; the histogram
        baseline never does."""
        assert len(reports["robust@80"].switch_points()) >= 1
        assert len(reports["histograms"].switch_points()) == 0

    def test_agreement_rates(self, reports):
        assert (
            reports["robust@80"].agreement_rate
            >= reports["histograms"].agreement_rate
        )

    def test_format(self, reports):
        text = format_sensitivity(reports)
        assert "mean regret" in text and "robust@80" in text
