"""Feedback store: aggregation, persistence, the namespace fence.

The store's two contracts under test here:

* **Determinism** — aggregation is commutative and serialization is
  canonical, so recording the same observations in any order (from
  any worker count) produces byte-identical store contents;
* **The fence** — a provider bound to one namespace never serves
  observations from another; the only way around it is the explicit
  ``enforce_namespace=False`` escape hatch the hot-swap regression
  test uses.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.cli import main
from repro.core import JEFFREYS
from repro.feedback import (
    FEEDBACK_FORMAT_VERSION,
    FeedbackError,
    FeedbackProvider,
    FeedbackStore,
    feedback_key,
)

OBSERVATIONS = [
    ("epoch=1", ("lineitem",), "k1", 100.0, 80.0),
    ("epoch=1", ("lineitem",), "k1", 120.0, 90.0),
    ("epoch=1", ("lineitem", "part"), "k2", 5.0, 50.0),
    ("epoch=2", ("lineitem",), "k1", 200.0, 150.0),
    ("epoch=1", ("part",), "k3", 7.0, None),
]


def fill(store: FeedbackStore, observations=OBSERVATIONS) -> FeedbackStore:
    for namespace, tables, key, observed, estimated in observations:
        store.record(
            namespace,
            tables=tables,
            predicate_key=key,
            observed_rows=observed,
            estimated_rows=estimated,
        )
    return store


class TestRecordAndAggregate:
    def test_key_is_sorted_tables_plus_predicate(self):
        assert feedback_key(("b", "a"), "pred") == "a+b|pred"

    def test_observation_aggregates(self):
        store = fill(FeedbackStore())
        obs = store.observation("epoch=1", ("lineitem",), "k1")
        assert obs.observations == 2
        assert obs.mean_rows == pytest.approx(110.0)
        assert obs.rows_min == 100.0
        assert obs.rows_max == 120.0
        # q-errors: 100/80 = 1.25 and 120/90 = 1.333...
        assert obs.geomean_q_error == pytest.approx(
            (1.25 * (120 / 90)) ** 0.5
        )

    def test_missing_key_and_namespace_are_none(self):
        store = fill(FeedbackStore())
        assert store.observation("epoch=1", ("orders",), "k9") is None
        assert store.observation("epoch=9", ("lineitem",), "k1") is None

    def test_estimate_free_record_has_unit_qerror(self):
        store = fill(FeedbackStore())
        obs = store.observation("epoch=1", ("part",), "k3")
        assert obs.geomean_q_error == pytest.approx(1.0)
        assert obs.qerr_max == 1.0

    def test_generation_counts_every_mutation(self):
        store = FeedbackStore()
        assert store.generation == 0
        fill(store)
        assert store.generation == len(OBSERVATIONS)
        store.reset("epoch=2")
        assert store.generation == len(OBSERVATIONS) + 1
        # Resetting a namespace that is already gone is not a mutation.
        store.reset("epoch=2")
        assert store.generation == len(OBSERVATIONS) + 1

    def test_empty_namespace_or_tables_rejected(self):
        store = FeedbackStore()
        with pytest.raises(FeedbackError, match="namespace"):
            store.record(
                "", tables=("t",), predicate_key="k", observed_rows=1.0
            )
        with pytest.raises(FeedbackError, match="table"):
            store.record(
                "ns", tables=(), predicate_key="k", observed_rows=1.0
            )


class TestDeterminism:
    def test_bytes_identical_for_any_record_order(self):
        baseline = fill(FeedbackStore()).to_bytes()
        rng = random.Random(13)
        for _ in range(5):
            shuffled = list(OBSERVATIONS)
            rng.shuffle(shuffled)
            assert fill(FeedbackStore(), shuffled).to_bytes() == baseline

    def test_bytes_identical_across_worker_partitions(self):
        # Two workers harvesting disjoint partitions into one store
        # (in either interleaving) match the single-worker bytes.
        single = fill(FeedbackStore()).to_bytes()
        a, b = OBSERVATIONS[::2], OBSERVATIONS[1::2]
        assert fill(fill(FeedbackStore(), a), b).to_bytes() == single
        assert fill(fill(FeedbackStore(), b), a).to_bytes() == single

    def test_save_load_roundtrip_is_byte_identical(self, tmp_path):
        store = fill(FeedbackStore())
        path = store.save(tmp_path / "fb.json")
        assert FeedbackStore.load(path).to_bytes() == store.to_bytes()


class TestPersistenceValidation:
    def test_save_is_atomic_no_staging_left(self, tmp_path):
        store = fill(FeedbackStore())
        path = store.save(tmp_path / "fb.json")
        assert path.exists()
        assert not list(tmp_path.glob(".fb.json.staging-*"))

    def test_unreadable_file_raises(self, tmp_path):
        path = tmp_path / "fb.json"
        path.write_text("{broken", encoding="utf-8")
        with pytest.raises(FeedbackError, match="unreadable"):
            FeedbackStore.load(path)

    def test_non_object_raises(self, tmp_path):
        path = tmp_path / "fb.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(FeedbackError, match="not an object"):
            FeedbackStore.load(path)

    def test_wrong_format_version_raises(self, tmp_path):
        path = tmp_path / "fb.json"
        path.write_text(
            json.dumps(
                {"format_version": FEEDBACK_FORMAT_VERSION + 1,
                 "namespaces": {}}
            ),
            encoding="utf-8",
        )
        with pytest.raises(FeedbackError, match="format version"):
            FeedbackStore.load(path)

    def test_missing_record_fields_raise(self, tmp_path):
        path = tmp_path / "fb.json"
        path.write_text(
            json.dumps(
                {
                    "format_version": FEEDBACK_FORMAT_VERSION,
                    "namespaces": {"epoch=1": {"k": {"tables": ["t"]}}},
                }
            ),
            encoding="utf-8",
        )
        with pytest.raises(FeedbackError, match="missing fields"):
            FeedbackStore.load(path)

    def test_invalid_values_raise(self, tmp_path):
        store = fill(FeedbackStore())
        raw = json.loads(store.to_bytes())
        slot = raw["namespaces"]["epoch=1"]
        slot[next(iter(slot))]["rows_sum"] = "not-a-number"
        path = tmp_path / "fb.json"
        path.write_text(json.dumps(raw), encoding="utf-8")
        with pytest.raises(FeedbackError, match="invalid values"):
            FeedbackStore.load(path)

    def test_zero_observations_raise(self, tmp_path):
        store = fill(FeedbackStore())
        raw = json.loads(store.to_bytes())
        slot = raw["namespaces"]["epoch=1"]
        slot[next(iter(slot))]["observations"] = 0
        path = tmp_path / "fb.json"
        path.write_text(json.dumps(raw), encoding="utf-8")
        with pytest.raises(FeedbackError, match="no observations"):
            FeedbackStore.load(path)


class TestProviderFence:
    def test_bound_namespace_folds(self):
        store = fill(FeedbackStore())
        provider = FeedbackProvider(store, "epoch=1", weight=10.0)
        result = provider.pseudo_counts(("lineitem",), "k1", 1000.0)
        assert result is not None
        alpha, beta, attribution = result
        # mean_rows=110 over total=1000 -> s=0.11; 2 observations at
        # weight 10 -> mass 20.
        assert alpha == pytest.approx(20 * 0.11)
        assert beta == pytest.approx(20 * 0.89)
        assert attribution["namespace"] == "epoch=1"
        assert attribution["observations"] == 2
        assert provider.counters()["folds"] == 1

    def test_foreign_namespace_refused_and_counted(self):
        store = fill(FeedbackStore())
        provider = FeedbackProvider(store, "epoch=3")
        assert provider.pseudo_counts(("lineitem",), "k1", 1000.0) is None
        assert provider.counters() == {
            "folds": 0, "misses": 0, "stale_refused": 1, "stale_hits": 0,
        }

    def test_unknown_key_is_a_miss_not_a_refusal(self):
        store = fill(FeedbackStore())
        provider = FeedbackProvider(store, "epoch=1")
        assert provider.pseudo_counts(("orders",), "k9", 1000.0) is None
        assert provider.counters()["misses"] == 1
        assert provider.counters()["stale_refused"] == 0

    def test_unenforced_provider_serves_stale_and_counts_it(self):
        store = fill(FeedbackStore())
        provider = FeedbackProvider(
            store, "epoch=3", enforce_namespace=False
        )
        result = provider.pseudo_counts(("lineitem",), "k1", 1000.0)
        assert result is not None
        assert result[2]["namespace"] == "epoch=1"
        assert provider.counters()["stale_hits"] == 1

    def test_selectivity_clamped_to_unit_interval(self):
        store = FeedbackStore()
        store.record(
            "ns", tables=("t",), predicate_key="k", observed_rows=500.0
        )
        provider = FeedbackProvider(store, "ns", weight=8.0)
        alpha, beta, attribution = provider.pseudo_counts(("t",), "k", 100.0)
        assert attribution["observed_selectivity"] == 1.0
        assert beta == 0.0

    def test_mass_caps_at_max_observations(self):
        store = FeedbackStore()
        for _ in range(20):
            store.record(
                "ns", tables=("t",), predicate_key="k", observed_rows=10.0
            )
        provider = FeedbackProvider(
            store, "ns", weight=4.0, max_observations=8
        )
        _, _, attribution = provider.pseudo_counts(("t",), "k", 100.0)
        assert attribution["pseudo_mass"] == 4.0 * 8

    def test_adjusted_prior_folds_counts_and_renames(self):
        provider = FeedbackProvider(FeedbackStore(), "ns")
        prior = provider.adjusted_prior(JEFFREYS, (3.0, 5.0))
        assert prior.alpha == pytest.approx(JEFFREYS.alpha + 3.0)
        assert prior.beta == pytest.approx(JEFFREYS.beta + 5.0)
        assert prior.name.endswith("+feedback")

    def test_nonpositive_total_or_weight_rejected(self):
        store = fill(FeedbackStore())
        provider = FeedbackProvider(store, "epoch=1")
        assert provider.pseudo_counts(("lineitem",), "k1", 0.0) is None
        with pytest.raises(FeedbackError, match="weight"):
            FeedbackProvider(store, "epoch=1", weight=0.0)


class TestFeedbackCli:
    def test_report_prints_namespaces(self, tmp_path, capsys):
        path = fill(FeedbackStore()).save(tmp_path / "fb.json")
        assert main(["feedback", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "epoch=1: 3 keys, 4 observations" in out
        assert "lineitem|k1" in out

    def test_report_json_is_parseable(self, tmp_path, capsys):
        path = fill(FeedbackStore()).save(tmp_path / "fb.json")
        assert main(["feedback", "report", "--json", str(path)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["epoch=1"]["keys"] == 3

    def test_report_unknown_namespace_fails(self, tmp_path, capsys):
        path = fill(FeedbackStore()).save(tmp_path / "fb.json")
        code = main(
            ["feedback", "report", "--namespace", "epoch=9", str(path)]
        )
        assert code == 1
        assert "epoch=9" in capsys.readouterr().err

    def test_reset_namespace_saves_back(self, tmp_path, capsys):
        path = fill(FeedbackStore()).save(tmp_path / "fb.json")
        code = main(
            ["feedback", "reset", "--namespace", "epoch=1", str(path)]
        )
        assert code == 0
        assert "dropped 3 keys" in capsys.readouterr().out
        assert FeedbackStore.load(path).namespaces() == ["epoch=2"]

    def test_reset_everything(self, tmp_path, capsys):
        path = fill(FeedbackStore()).save(tmp_path / "fb.json")
        assert main(["feedback", "reset", str(path)]) == 0
        assert FeedbackStore.load(path).namespaces() == []

    def test_corrupt_store_reports_error(self, tmp_path, capsys):
        path = tmp_path / "fb.json"
        path.write_text("nope", encoding="utf-8")
        assert main(["feedback", "report", str(path)]) == 1
        assert "error" in capsys.readouterr().err
