"""Unit tests for TableSample."""

import numpy as np
import pytest

from repro.errors import StatisticsError
from repro.expressions import col
from repro.stats import TableSample

from repro.catalog import Column, ColumnType, Schema, Table


@pytest.fixture
def table():
    return Table(
        "t",
        Schema([Column("k", ColumnType.INT64), Column("v", ColumnType.FLOAT64)]),
        {"k": np.arange(1000), "v": np.linspace(0, 1, 1000)},
    )


class TestTableSample:
    def test_size(self, table):
        sample = TableSample(table, 100, rng=0)
        assert sample.size == 100
        assert sample.frame.num_rows == 100

    def test_qualified_columns(self, table):
        sample = TableSample(table, 10, rng=0)
        assert "t.k" in sample.frame.column_names

    def test_with_replacement_can_repeat(self, table):
        # a sample larger than the table must contain repeats
        sample = TableSample(table, 2000, rng=0)
        assert len(np.unique(sample.row_ids)) < 2000

    def test_deterministic_given_seed(self, table):
        a = TableSample(table, 50, rng=42)
        b = TableSample(table, 50, rng=42)
        assert np.array_equal(a.row_ids, b.row_ids)

    def test_different_seeds_differ(self, table):
        a = TableSample(table, 50, rng=1)
        b = TableSample(table, 50, rng=2)
        assert not np.array_equal(a.row_ids, b.row_ids)

    def test_count_satisfying(self, table):
        sample = TableSample(table, 500, rng=0)
        k = sample.count_satisfying(col("t.v") <= 0.5)
        assert 0 <= k <= 500
        # about half should satisfy; allow broad sampling slack
        assert 175 <= k <= 325

    def test_count_is_unbiased(self, table):
        predicate = col("t.v") <= 0.2
        ks = [
            TableSample(table, 200, rng=seed).count_satisfying(predicate)
            for seed in range(30)
        ]
        assert np.mean(ks) / 200 == pytest.approx(0.2, abs=0.03)

    def test_invalid_size_raises(self, table):
        with pytest.raises(StatisticsError):
            TableSample(table, 0)

    def test_empty_table_raises(self):
        empty = Table(
            "e",
            Schema([Column("k", ColumnType.INT64)]),
            {"k": np.array([], dtype=np.int64)},
        )
        with pytest.raises(StatisticsError):
            TableSample(empty, 10)
