"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAnalyze:
    @pytest.mark.parametrize("figure", [1, 4, 5, 6, 7, 8])
    def test_figures_print(self, capsys, figure):
        assert main(["analyze", "--figure", str(figure)]) == 0
        out = capsys.readouterr().out
        assert f"Figure {figure}" in out

    def test_figure6_contents(self, capsys):
        main(["analyze", "--figure", "6"])
        out = capsys.readouterr().out
        assert "T=80%" in out and "mean=" in out

    def test_figure4_worked_numbers(self, capsys):
        main(["analyze", "--figure", "4"])
        out = capsys.readouterr().out
        assert "10.1%" in out

    def test_invalid_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--figure", "12"])


class TestExperiment:
    def test_exp1_small(self, capsys):
        code = main(
            [
                "experiment",
                "exp1",
                "--scale",
                "8000",
                "--seeds",
                "1",
                "--points",
                "3",
                "--sample-size",
                "200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Histograms" in out
        assert "performance vs predictability" in out

    def test_exp3_small(self, capsys):
        code = main(
            [
                "experiment",
                "exp3",
                "--scale",
                "5000",
                "--seeds",
                "1",
                "--points",
                "3",
                "--sample-size",
                "200",
            ]
        )
        assert code == 0
        assert "exp3-star-join" in capsys.readouterr().out


class TestSql:
    def test_explain_only(self, capsys):
        code = main(
            [
                "sql",
                "SELECT COUNT(*) FROM lineitem WHERE lineitem.l_quantity > 45",
                "--scale",
                "5000",
                "--explain-only",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HashAggregate" in out

    def test_execute(self, capsys):
        code = main(
            [
                "sql",
                "SELECT SUM(lineitem.l_extendedprice) AS rev FROM lineitem "
                "WHERE lineitem.l_quantity > 45",
                "--scale",
                "5000",
                "--estimator",
                "exact",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rows: 1" in out
        assert "simulated execution time" in out

    def test_histogram_estimator(self, capsys):
        code = main(
            [
                "sql",
                "SELECT COUNT(*) FROM lineitem, part WHERE part.p_size < 5",
                "--scale",
                "5000",
                "--estimator",
                "histogram",
                "--sample-size",
                "100",
                "--explain-only",
            ]
        )
        assert code == 0

    def test_threshold_accepted(self, capsys):
        code = main(
            [
                "sql",
                "SELECT COUNT(*) FROM lineitem "
                "WHERE lineitem.l_quantity > 45 OPTION (CONFIDENCE 95)",
                "--scale",
                "5000",
                "--sample-size",
                "100",
                "--threshold",
                "conservative",
                "--explain-only",
            ]
        )
        assert code == 0

    def test_star_workload(self, capsys):
        code = main(
            [
                "sql",
                "SELECT COUNT(*) FROM fact, dim1 WHERE dim1.d_attr < 100",
                "--workload",
                "star",
                "--scale",
                "5000",
                "--estimator",
                "exact",
            ]
        )
        assert code == 0


class TestTrace:
    @pytest.fixture(scope="class")
    def trace_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("traces") / "exp1.jsonl"
        code = main(
            [
                "experiment",
                "exp1",
                "--scale",
                "5000",
                "--seeds",
                "1",
                "--points",
                "2",
                "--sample-size",
                "200",
                "--trace-out",
                str(path),
            ]
        )
        assert code == 0
        return path

    def test_experiment_trace_out_writes_jsonl(self, trace_file, capsys):
        from repro.obs import read_traces

        records = read_traces(trace_file)
        assert records and all(r["kind"] == "query" for r in records)
        capsys.readouterr()

    def test_summarize(self, trace_file, capsys):
        assert main(["trace", "summarize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "Q-error by config" in out
        assert "plan shapes by config" in out

    def test_summarize_single_query(self, trace_file, capsys):
        from repro.obs import read_traces

        trace_id = read_traces(trace_file)[0]["trace_id"]
        capsys.readouterr()
        code = main(["trace", "summarize", str(trace_file), "--query", trace_id])
        assert code == 0
        out = capsys.readouterr().out
        assert "chosen plan:" in out
        assert "estimation evidence" in out

    def test_summarize_missing_file_fails(self, tmp_path, capsys):
        code = main(["trace", "summarize", str(tmp_path / "absent.jsonl")])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_summarize_rejects_bad_schema(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": 999}\n')
        assert main(["trace", "summarize", str(bad)]) == 1
        assert "schema" in capsys.readouterr().err

    def test_sql_trace(self, tmp_path, capsys):
        out_path = tmp_path / "sql.jsonl"
        code = main(
            [
                "sql",
                "SELECT COUNT(*) FROM lineitem WHERE lineitem.l_quantity > 45",
                "--scale",
                "5000",
                "--sample-size",
                "100",
                "--trace-out",
                str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chosen plan:" in out
        assert "execution breakdown" in out
        from repro.obs import read_traces

        (record,) = read_traces(out_path)
        assert record["template"] == "sql/tpch"
        assert record["execution"]["actual_rows"] == 1

    def test_perf_flag_prints_summary(self, capsys):
        code = main(
            [
                "experiment",
                "exp1",
                "--scale",
                "5000",
                "--seeds",
                "1",
                "--points",
                "2",
                "--sample-size",
                "200",
                "--perf",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "perf summary:" in out
        assert "hit rate" in out
        assert "quantile-table hits" in out

    def test_metrics_out(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.prom"
        code = main(
            [
                "experiment",
                "exp1",
                "--scale",
                "5000",
                "--seeds",
                "1",
                "--points",
                "2",
                "--sample-size",
                "200",
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        text = metrics.read_text()
        assert "# TYPE repro_perf_events_total counter" in text
        assert "repro_cache_hit_rate" in text


class TestObservabilityFlagParity:
    """sql and experiment share one observability flag set."""

    OBS_FLAGS = {"--trace", "--trace-out", "--metrics-out"}

    def _option_strings(self, sub):
        return {
            opt for action in sub._actions for opt in action.option_strings
        }

    def test_both_subcommands_have_all_flags(self):
        from repro.cli import _build_parser

        parser = _build_parser()
        choices = parser._subparsers._group_actions[0].choices
        for name in ("sql", "experiment"):
            missing = self.OBS_FLAGS - self._option_strings(choices[name])
            assert not missing, f"{name} is missing {missing}"

    def test_sql_metrics_out(self, tmp_path, capsys):
        metrics = tmp_path / "sql_metrics.prom"
        code = main(
            [
                "sql",
                "SELECT COUNT(*) FROM lineitem WHERE lineitem.l_quantity > 45",
                "--scale",
                "5000",
                "--sample-size",
                "100",
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        assert "metrics written to" in capsys.readouterr().out
        text = metrics.read_text()
        assert "# TYPE repro_session_prepares_total counter" in text
        assert "repro_session_executes_total" in text
        assert "repro_session_plan_cache" in text


class TestTopLevel:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out


class TestExperimentExp2:
    def test_exp2_small(self, capsys):
        code = main(
            [
                "experiment",
                "exp2",
                "--scale",
                "8000",
                "--seeds",
                "1",
                "--points",
                "3",
                "--sample-size",
                "200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "exp2-three-table" in out
        assert "Histograms" in out


class TestReport:
    def test_report_generated(self, tmp_path, capsys):
        output = tmp_path / "REPORT.md"
        code = main(
            [
                "report",
                "--output",
                str(output),
                "--scale",
                "6000",
                "--fact-rows",
                "5000",
                "--seeds",
                "1",
            ]
        )
        assert code == 0
        text = output.read_text()
        assert "Figure 4" in text
        assert "Experiment 1 / Figure 9" in text
        assert "Experiment 3 / Figure 11" in text
        assert "Histograms" in text


class TestChaos:
    def test_small_sweep_passes(self, capsys):
        code = main(
            [
                "chaos",
                "--plans", "4",
                "--seed", "0",
                "--scale", "1500",
                "--sample-size", "80",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "chaos sweep: 4 fault plans" in out
        assert out.strip().endswith("PASS")

    def test_verbose_lists_every_plan(self, capsys):
        code = main(
            [
                "chaos",
                "--plans", "2",
                "--seed", "1",
                "--scale", "1500",
                "--sample-size", "80",
                "--verbose",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert out.count("[ok]") == 2

    def test_bad_plan_count_rejected(self, capsys):
        with pytest.raises(Exception, match="count"):
            main(["chaos", "--plans", "0", "--scale", "1500"])


class TestServeBench:
    def test_small_run_passes(self, capsys, tmp_path):
        out_path = tmp_path / "serve.json"
        code = main(
            [
                "serve-bench",
                "--tenants", "2",
                "--operations", "40",
                "--scale", "1500",
                "--sample-size", "48",
                "--swaps", "1",
                "--json-out", str(out_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "serving load: " in out
        assert "p99=" in out
        assert "stale served 0" in out
        assert out.strip().endswith("PASS")
        import json

        report = json.loads(out_path.read_text())
        assert report["operations"]["requested"] == 40
        assert report["stale_served"] == 0
        assert report["server"]["isolation"]["isolated"]
        assert report["swaps_performed"] == 1

    def test_scaling_flag_reports_speedup(self, capsys):
        code = main(
            [
                "serve-bench",
                "--tenants", "2",
                "--operations", "30",
                "--scale", "1500",
                "--sample-size", "48",
                "--swaps", "0",
                "--scaling",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "cached-prepare scaling (paced):" in out
        assert "1->8 speedup:" in out
