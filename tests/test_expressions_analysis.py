"""Unit tests for repro.expressions.analysis (sargability, routing)."""

import pytest

from repro.expressions import col, lit
from repro.expressions.analysis import (
    as_range_condition,
    in_list_atoms,
    merge_range_conditions,
    predicates_by_table,
    split_conjuncts,
    split_sargable,
)


class TestSplitConjuncts:
    def test_none(self):
        assert split_conjuncts(None) == []

    def test_single(self):
        predicate = col("t.a") > 1
        assert split_conjuncts(predicate) == [predicate]

    def test_and(self):
        a, b, c = col("t.a") > 1, col("t.b") > 2, col("t.c") > 3
        assert len(split_conjuncts(a & b & c)) == 3

    def test_or_not_split(self):
        predicate = (col("t.a") > 1) | (col("t.b") > 2)
        assert split_conjuncts(predicate) == [predicate]


class TestPredicatesByTable:
    def test_routing(self):
        predicate = (col("t.a") > 1) & (col("u.b") > 2) & (col("t.c") < 3)
        routed = predicates_by_table(predicate)
        assert set(routed) == {"t", "u"}
        assert routed["t"].columns() == {("t", "a"), ("t", "c")}

    def test_cross_table_conjunct_goes_to_empty_key(self):
        predicate = (col("t.a") == col("u.b")) & (col("t.c") > 1)
        routed = predicates_by_table(predicate)
        assert "" in routed
        assert routed[""].columns() == {("t", "a"), ("u", "b")}

    def test_none(self):
        assert predicates_by_table(None) == {}


class TestAsRangeCondition:
    def test_between(self):
        condition = as_range_condition(col("t.a").between(1, 5))
        assert condition.low == 1 and condition.high == 5
        assert condition.low_inclusive and condition.high_inclusive

    def test_comparison_forms(self):
        lt = as_range_condition(col("t.a") < 5)
        assert lt.high == 5 and not lt.high_inclusive and lt.low is None
        le = as_range_condition(col("t.a") <= 5)
        assert le.high == 5 and le.high_inclusive
        gt = as_range_condition(col("t.a") > 5)
        assert gt.low == 5 and not gt.low_inclusive and gt.high is None
        ge = as_range_condition(col("t.a") >= 5)
        assert ge.low == 5 and ge.low_inclusive

    def test_equality(self):
        condition = as_range_condition(col("t.a") == 5)
        assert condition.is_equality
        assert condition.low == condition.high == 5

    def test_reversed_sides(self):
        condition = as_range_condition(lit(5) < col("t.a"))
        assert condition.low == 5 and not condition.low_inclusive

    def test_not_equal_is_not_sargable(self):
        assert as_range_condition(col("t.a") != 5) is None

    def test_column_vs_column_not_sargable(self):
        assert as_range_condition(col("t.a") < col("t.b")) is None

    def test_arithmetic_not_sargable(self):
        assert as_range_condition((col("t.a") + 1) < 5) is None

    def test_string_predicates_not_sargable(self):
        assert as_range_condition(col("t.s").contains("x")) is None


class TestMergeRangeConditions:
    def test_intersection(self):
        conditions = [
            as_range_condition(col("t.a") >= 5),
            as_range_condition(col("t.a") < 9),
        ]
        merged = merge_range_conditions(conditions)
        [(key, condition)] = merged.items()
        assert key == ("t", "a")
        assert condition.low == 5 and condition.low_inclusive
        assert condition.high == 9 and not condition.high_inclusive

    def test_tighter_bound_wins(self):
        conditions = [
            as_range_condition(col("t.a") >= 2),
            as_range_condition(col("t.a") >= 7),
        ]
        merged = merge_range_conditions(conditions)
        assert merged[("t", "a")].low == 7

    def test_equal_bounds_exclusivity_wins(self):
        conditions = [
            as_range_condition(col("t.a") > 5),
            as_range_condition(col("t.a") >= 5),
        ]
        merged = merge_range_conditions(conditions)
        assert not merged[("t", "a")].low_inclusive

    def test_different_columns_kept_separate(self):
        conditions = [
            as_range_condition(col("t.a") >= 5),
            as_range_condition(col("t.b") < 3),
        ]
        assert len(merge_range_conditions(conditions)) == 2


class TestSplitSargable:
    def test_all_sargable(self):
        predicate = (col("t.a") >= 1) & (col("t.b") <= 2)
        ranges, residual = split_sargable(predicate)
        assert len(ranges) == 2
        assert residual is None

    def test_mixed(self):
        predicate = (col("t.a") >= 1) & col("t.s").contains("x")
        ranges, residual = split_sargable(predicate)
        assert len(ranges) == 1
        assert residual is not None

    def test_none(self):
        assert split_sargable(None) == ([], None)


class TestInListAtoms:
    def test_match(self):
        atom = in_list_atoms(col("t.a").isin([1, 2]))
        assert atom is not None
        ref, values = atom
        assert ref.name == "a" and values == [1, 2]

    def test_non_match(self):
        assert in_list_atoms(col("t.a") > 1) is None
