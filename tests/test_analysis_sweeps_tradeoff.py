"""Tests for the Figure 5–8 sweeps and the Figure 6 tradeoff curve."""

import numpy as np
import pytest

from repro.analysis import (
    EstimationModel,
    high_crossover_model,
    paper_default_model,
    sample_size_sweep,
    threshold_sweep,
    tradeoff_curve,
    tradeoff_from_times,
)
from repro.analysis.sweeps import DEFAULT_SELECTIVITIES, PAPER_THRESHOLDS

MODEL = paper_default_model()


class TestThresholdSweep:
    def test_figure5_shape(self):
        curves = threshold_sweep(MODEL, sample_size=1000)
        assert set(curves) == set(PAPER_THRESHOLDS)
        # T=95%: flat at the stable plan's cost (Section 5.2.1)
        t95 = curves[0.95]
        assert t95.std() < 0.2
        assert t95[0] == pytest.approx(35.0, abs=0.5)
        # T=5%: excellent at p=0, terrible in the middle
        t05 = curves[0.05]
        assert t05[0] == pytest.approx(5.0, abs=0.5)
        assert t05.max() > 45.0

    def test_low_threshold_underestimates(self):
        """Higher T → more overestimation → stable plans at low p."""
        curves = threshold_sweep(MODEL, sample_size=1000)
        # at a selectivity just above the crossover the low-threshold
        # settings keep (wrongly) choosing the risky plan
        index = 5  # 0.25%
        assert curves[0.05][index] > curves[0.80][index]

    def test_figure8_high_crossover_insensitive(self):
        """Figure 8: at a ≈5.2 % crossover the threshold barely matters."""
        grid = np.arange(0.0, 0.20001, 0.01)
        curves = threshold_sweep(
            high_crossover_model(), sample_size=1000, selectivities=grid
        )
        stacked = np.stack(list(curves.values()))
        relative_spread = (stacked.max(axis=0) - stacked.min(axis=0)) / stacked.mean(
            axis=0
        )
        # excluding the tiny-selectivity corner, curves nearly coincide
        assert relative_spread[2:].max() < 0.25


class TestSampleSizeSweep:
    def test_figure7_larger_samples_better(self):
        curves = sample_size_sweep(MODEL, (100, 250, 500, 1000), threshold=0.5)
        # n=1000 dominates n=250 in mean time over the grid
        assert curves[1000].mean() < curves[250].mean()

    def test_figure12_self_adjusting_anomaly(self):
        """A 50-tuple sample at T=50 % can never justify the risky plan:
        the optimizer always chooses the stable plan (Section 6.2.4)."""
        curves = sample_size_sweep(MODEL, (50,), threshold=0.5)
        scan_cost = MODEL.cost(0, DEFAULT_SELECTIVITIES)
        assert np.allclose(curves[50], scan_cost)


class TestTradeoffCurve:
    def test_figure6_shape(self):
        points = tradeoff_curve(MODEL, sample_size=1000)
        stds = [p.std_time for p in points]
        means = {p.label: p.mean_time for p in points}
        # predictability improves monotonically with the threshold
        assert stds == sorted(stds, reverse=True)
        # the best mean is at T=80%, not at the unbiased 50% (paper 5.2.1)
        assert means["T=80%"] < means["T=50%"]
        assert means["T=80%"] < means["T=95%"]
        assert means["T=80%"] < means["T=5%"]

    def test_labels(self):
        points = tradeoff_curve(MODEL, sample_size=200, thresholds=(0.5,))
        assert points[0].label == "T=50%"


class TestTradeoffFromTimes:
    def test_mean_std(self):
        point = tradeoff_from_times("x", [1.0, 2.0, 3.0])
        assert point.mean_time == pytest.approx(2.0)
        assert point.std_time == pytest.approx(np.std([1.0, 2.0, 3.0]))

    def test_constant_times_zero_std(self):
        assert tradeoff_from_times("x", [4.0, 4.0]).std_time == 0.0


class TestSampleSizeTradeoff:
    def test_figure12_analytical_shape(self):
        from repro.analysis import sample_size_tradeoff_curve

        points = {p.label: p for p in sample_size_tradeoff_curve(MODEL)}
        # n=50: the self-adjusting anomaly — near-zero variance
        assert points["n=50"].std_time < 1.0
        # larger samples dominate mid-size samples on both axes
        assert points["n=2500"].mean_time < points["n=250"].mean_time
        assert points["n=2500"].std_time < points["n=250"].std_time

    def test_labels(self):
        from repro.analysis import sample_size_tradeoff_curve

        points = sample_size_tradeoff_curve(MODEL, (100,))
        assert points[0].label == "n=100"
