"""Open-interval semantics at bucket boundaries (histogram + IndexSeek).

Regression suite: strict bounds (``<``/``>``) at a bucket-boundary
value historically estimated and fetched the same rows as their
inclusive twins, because the boundary point mass was counted (and the
index range included the edge) regardless of inclusivity. Both layers
must now distinguish ``x < boundary`` from ``x <= boundary``.
"""

import numpy as np
import pytest

from repro.engine import ExecutionContext, IndexSeek, SeqScan
from repro.engine.scans import IndexCondition
from repro.expressions import col
from repro.stats.histogram import EquiDepthHistogram

from tests.conftest import make_two_table_db


class TestHistogramBoundaryInclusivity:
    """Two heavy values, one per bucket: every estimate is exact."""

    @pytest.fixture(scope="class")
    def hist(self):
        values = np.array([1.0] * 50 + [2.0] * 50)
        return EquiDepthHistogram(values, num_buckets=2)

    def test_strict_upper_excludes_boundary_mass(self, hist):
        assert hist.selectivity_range(None, 2, high_inclusive=False) == 0.5
        assert hist.selectivity_range(None, 2, high_inclusive=True) == 1.0

    def test_strict_lower_excludes_boundary_mass(self, hist):
        assert hist.selectivity_range(1, None, low_inclusive=False) == 0.5
        assert hist.selectivity_range(1, None, low_inclusive=True) == 1.0

    def test_empty_open_interval(self, hist):
        assert hist.selectivity_range(1, 2, False, False) == 0.0

    def test_degenerate_range_needs_both_bounds_inclusive(self, hist):
        assert hist.selectivity_range(2, 2, True, True) == 0.5
        assert hist.selectivity_range(2, 2, True, False) == 0.0
        assert hist.selectivity_range(2, 2, False, True) == 0.0

    def test_uniform_data_tracks_truth_at_boundaries(self):
        values = np.arange(100, dtype=float)
        hist = EquiDepthHistogram(values, num_buckets=4)
        boundary = float(hist.uppers[1])  # an interior bucket edge
        strict = hist.selectivity_range(None, boundary, high_inclusive=False)
        inclusive = hist.selectivity_range(None, boundary, high_inclusive=True)
        assert inclusive == pytest.approx(strict + 1 / 100)
        truth = float((values < boundary).mean())
        assert strict == pytest.approx(truth, abs=0.02)


class TestIndexSeekOpenIntervals:
    """IndexSeek must fetch exactly the rows of the (half-)open range."""

    @pytest.fixture(scope="class")
    def database(self):
        return make_two_table_db()

    @pytest.fixture(scope="class")
    def shipdates(self, database):
        return database.table("lineitem").column("l_shipdate")

    @pytest.fixture(scope="class")
    def edge(self, shipdates):
        # a value that actually occurs, so inclusivity matters
        return int(np.sort(shipdates)[len(shipdates) // 2])

    def _seek_rows(self, database, condition):
        seek = IndexSeek("lineitem", condition)
        return seek.execute(ExecutionContext(database)).num_rows

    def test_strict_vs_inclusive_upper(self, database, shipdates, edge):
        strict = self._seek_rows(
            database, IndexCondition("l_shipdate", None, edge, True, False)
        )
        inclusive = self._seek_rows(
            database, IndexCondition("l_shipdate", None, edge, True, True)
        )
        assert strict == int((shipdates < edge).sum())
        assert inclusive == int((shipdates <= edge).sum())
        assert strict < inclusive

    def test_strict_vs_inclusive_lower(self, database, shipdates, edge):
        strict = self._seek_rows(
            database, IndexCondition("l_shipdate", edge, None, False, True)
        )
        inclusive = self._seek_rows(
            database, IndexCondition("l_shipdate", edge, None, True, True)
        )
        assert strict == int((shipdates > edge).sum())
        assert inclusive == int((shipdates >= edge).sum())
        assert strict < inclusive

    def test_half_open_band(self, database, shipdates, edge):
        high = edge + 30
        rows = self._seek_rows(
            database, IndexCondition("l_shipdate", edge, high, True, False)
        )
        assert rows == int(((shipdates >= edge) & (shipdates < high)).sum())

    def test_seek_matches_seq_scan(self, database, edge):
        """The same strict predicate through either access path."""
        predicate = col("lineitem.l_shipdate") < edge
        scan = SeqScan("lineitem", predicate)
        scanned = scan.execute(ExecutionContext(database)).num_rows
        sought = self._seek_rows(
            database, IndexCondition("l_shipdate", None, edge, True, False)
        )
        assert sought == scanned
