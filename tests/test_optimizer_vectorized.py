"""Equivalence of the threshold-vectorized DP with per-threshold planning.

The tentpole guarantee: ``Optimizer.optimize_many(query, grid)`` must
pick the same plan and produce the same estimates at every grid point
as running ``optimize`` once per threshold with ``hint=t``. The fig-9
(single-table shipping dates) and fig-10 (three-table part
correlation) workloads exercise both the single-table access-path
choice and the join-order DP.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import JEFFREYS, RobustCardinalityEstimator
from repro.errors import OptimizationError
from repro.experiments import ExperimentRunner, default_configs
from repro.optimizer import Optimizer, keep_best, keep_best_vector
from repro.optimizer.candidates import PlanCandidate
from repro.workloads import PartCorrelationTemplate, ShippingDatesTemplate

PAPER_GRID = (0.05, 0.20, 0.50, 0.80, 0.95)


def scalar_plans(optimizer, query, grid):
    """The per-threshold reference: one fresh optimization per grid point."""
    return [optimizer.optimize(replace(query, hint=t)) for t in grid]


def assert_equivalent(vector_planned, scalar_planned):
    """Same chosen plan; same estimates up to float tolerance."""
    assert len(vector_planned) == len(scalar_planned)
    for vec, ref in zip(vector_planned, scalar_planned):
        assert vec.plan.signature() == ref.plan.signature()
        assert vec.estimated_cost == pytest.approx(ref.estimated_cost, rel=1e-9)
        assert vec.estimated_rows == pytest.approx(ref.estimated_rows, rel=1e-9)


class TestKeepBestVector:
    """Unit-level: vector pruning is the union of per-lane scalar pruning."""

    @staticmethod
    def _pool():
        def cand(cost, order=None):
            return PlanCandidate(None, frozenset({"t"}), 1.0, cost, order)

        return [
            cand(np.array([3.0, 1.0, 2.0])),
            cand(np.array([1.0, 2.0, 2.0])),  # ties lane 2: first wins
            cand(np.array([2.0, 3.0, 4.0]), order="t.a"),
            cand(np.array([4.0, 4.0, 1.5]), order="t.a"),
        ]

    def test_matches_scalar_keep_best_per_lane(self):
        pool = self._pool()
        vector_best = keep_best_vector(pool, 3)
        for lane in range(3):
            lane_pool = [
                PlanCandidate(c.operator, c.tables, c.rows, float(c.cost[lane]), c.order)
                for c in pool
            ]
            scalar_best = keep_best(lane_pool)
            for slot, winner in scalar_best.items():
                kept_costs = [float(c.cost[lane]) for c in vector_best[slot]]
                assert winner.cost in kept_costs

    def test_tie_takes_first_candidate(self):
        # lane 0 ties at 2.0: scalar keep_best's strict < keeps the
        # first candidate, and argmin's first-index rule must agree.
        a = PlanCandidate(None, frozenset({"t"}), 1.0, np.array([2.0, 2.0]))
        b = PlanCandidate(None, frozenset({"t"}), 1.0, np.array([2.0, 3.0]))
        best = keep_best_vector([a, b], 2)
        assert best[None] == [a]

    def test_scalar_costs_broadcast(self):
        pool = [
            PlanCandidate(None, frozenset({"t"}), 1.0, 5.0),
            PlanCandidate(None, frozenset({"t"}), 1.0, np.array([6.0, 4.0])),
        ]
        best = keep_best_vector(pool, 2)
        kept_ids = {id(c) for c in best[None]}
        assert kept_ids == {id(c) for c in pool}  # each wins one lane

    def test_empty_pool(self):
        assert keep_best_vector([], 4) == {}


class TestOptimizeManyEquivalence:
    @pytest.fixture(scope="class")
    def robust_optimizer(self, tpch_db, tpch_stats):
        estimator = RobustCardinalityEstimator(tpch_stats, policy=0.5)
        return Optimizer(tpch_db, estimator)

    def test_fig9_single_table_grid(self, robust_optimizer, tpch_db):
        template = ShippingDatesTemplate()
        for param, _ in template.params_for_targets(tpch_db, [0.0, 0.003, 0.02], step=8):
            query = template.instantiate(param)
            vector = robust_optimizer.optimize_many(query, PAPER_GRID)
            scalar = scalar_plans(robust_optimizer, query, PAPER_GRID)
            assert_equivalent(vector, scalar)

    def test_fig10_three_table_grid(self, robust_optimizer):
        template = PartCorrelationTemplate()
        lo, hi = template.param_range()
        for param in (lo, (lo + hi) // 2, hi):
            query = template.instantiate(param)
            vector = robust_optimizer.optimize_many(query, PAPER_GRID)
            scalar = scalar_plans(robust_optimizer, query, PAPER_GRID)
            assert_equivalent(vector, scalar)

    def test_alternatives_cover_scalar_alternatives(self, robust_optimizer):
        """The vector finalist pool is the union of per-lane winners, so
        per threshold it is a cost-sorted superset of the scalar pool."""
        query = PartCorrelationTemplate().instantiate(
            PartCorrelationTemplate().param_range()[0]
        )
        vector = robust_optimizer.optimize_many(query, PAPER_GRID)
        scalar = scalar_plans(robust_optimizer, query, PAPER_GRID)
        for vec, ref in zip(vector, scalar):
            vec_costs = [c.cost for c in vec.alternatives]
            assert vec_costs == sorted(vec_costs)
            vec_by_sig = {
                c.operator.signature(): c.cost for c in vec.alternatives
            }
            # the scalar winner is also the vector lane's cheapest
            best_sig = ref.alternatives[0].operator.signature()
            assert vec.alternatives[0].operator.signature() == best_sig
            for rc in ref.alternatives:
                sig = rc.operator.signature()
                if sig in vec_by_sig:
                    assert vec_by_sig[sig] == pytest.approx(rc.cost, rel=1e-9)

    def test_estimates_slice_matches_scalar(self, robust_optimizer):
        query = ShippingDatesTemplate().instantiate(30)
        vector = robust_optimizer.optimize_many(query, (0.2, 0.8))
        scalar = scalar_plans(robust_optimizer, query, (0.2, 0.8))
        for vec, ref in zip(vector, scalar):
            assert set(vec.estimates) == set(ref.estimates)
            for key, ref_est in ref.estimates.items():
                assert vec.estimates[key].cardinality == pytest.approx(
                    ref_est.cardinality, rel=1e-9
                )

    def test_explain_renders_scalar_annotations(self, robust_optimizer):
        """Vector planning must not leave array annotations behind."""
        query = ShippingDatesTemplate().instantiate(30)
        for planned in robust_optimizer.optimize_many(query, PAPER_GRID):
            text = planned.explain()
            assert "rows=" in text and "cost=" in text

    def test_single_point_grid_matches_optimize(self, robust_optimizer):
        query = ShippingDatesTemplate().instantiate(60)
        (vector,) = robust_optimizer.optimize_many(query, (0.8,))
        scalar = robust_optimizer.optimize(replace(query, hint=0.8))
        assert vector.plan.signature() == scalar.plan.signature()
        assert vector.estimated_cost == pytest.approx(scalar.estimated_cost)

    def test_empty_grid_raises(self, robust_optimizer):
        query = ShippingDatesTemplate().instantiate(60)
        with pytest.raises(OptimizationError):
            robust_optimizer.optimize_many(query, ())

    def test_lut_backs_the_vector_pass(self, tpch_db, tpch_stats):
        estimator = RobustCardinalityEstimator(tpch_stats, policy=0.5)
        optimizer = Optimizer(tpch_db, estimator)
        optimizer.optimize_many(ShippingDatesTemplate().instantiate(30), PAPER_GRID)
        assert estimator.lut_hits > 0


class TestRunnerVectorization:
    """End-to-end: the harness's grouped multi-threshold planning is
    record-identical to the per-config scalar path."""

    @pytest.fixture(scope="class")
    def arms(self, tpch_db):
        template = ShippingDatesTemplate()
        params = template.params_for_targets(tpch_db, [0.0, 0.003], step=8)
        configs = default_configs(
            thresholds=(0.05, 0.50, 0.95), include_histogram=False
        )
        results = {}
        for vectorize in (False, True):
            runner = ExperimentRunner(
                tpch_db,
                template,
                sample_size=300,
                seeds=(0, 1),
                vectorize_thresholds=vectorize,
            )
            results[vectorize] = runner.run(params, configs)
        return results

    def test_records_identical(self, arms):
        assert arms[True].records == arms[False].records

    def test_vector_arm_counts_passes_and_lut_hits(self, arms):
        assert arms[True].perf.vector_passes > 0
        assert arms[True].perf.lut_hits > 0
        assert arms[False].perf.vector_passes == 0

    def test_perf_flag_recorded(self, arms):
        assert arms[True].perf.vectorize_thresholds is True
        assert arms[False].perf.vectorize_thresholds is False
        assert "vector_passes" in arms[True].perf.as_dict()
