"""Tests for statistics persistence (save/load round trip)."""

import json
import shutil

import numpy as np
import pytest

from repro.core import RobustCardinalityEstimator
from repro.errors import StatisticsError
from repro.expressions import col
from repro.stats import StatisticsManager, load_statistics, save_statistics


@pytest.fixture
def saved(tpch_db, tmp_path):
    manager = StatisticsManager(tpch_db)
    manager.update_statistics(sample_size=300, seed=17)
    save_statistics(manager, tmp_path / "stats")
    return manager, tmp_path / "stats"


class TestRoundTrip:
    def test_samples_identical(self, tpch_db, saved):
        original, path = saved
        restored = load_statistics(tpch_db, path)
        for name in tpch_db.table_names:
            assert np.array_equal(
                original.sample_for(name).row_ids,
                restored.sample_for(name).row_ids,
            )

    def test_synopses_identical(self, tpch_db, saved):
        original, path = saved
        restored = load_statistics(tpch_db, path)
        predicate = (col("part.p_size") <= 10) & (
            col("lineitem.l_quantity") > 25
        )
        assert original.synopsis_for("lineitem").count_satisfying(
            predicate
        ) == restored.synopsis_for("lineitem").count_satisfying(predicate)
        assert (
            restored.synopsis_for("lineitem").covered_tables
            == original.synopsis_for("lineitem").covered_tables
        )

    def test_histograms_identical(self, tpch_db, saved):
        original, path = saved
        restored = load_statistics(tpch_db, path)
        for column in ("l_shipdate", "l_quantity"):
            a = original.histogram("lineitem", column)
            b = restored.histogram("lineitem", column)
            assert np.array_equal(a.uppers, b.uppers)
            assert np.array_equal(a.counts, b.counts)
            assert a.selectivity_range(a.minimum, a.uppers[10]) == pytest.approx(
                b.selectivity_range(b.minimum, b.uppers[10])
            )

    def test_sample_size_restored(self, tpch_db, saved):
        _, path = saved
        restored = load_statistics(tpch_db, path)
        assert restored.sample_size == 300

    def test_estimates_identical(self, tpch_db, saved):
        original, path = saved
        restored = load_statistics(tpch_db, path)
        predicate = col("lineitem.l_shipdate").between("1997-07-01", "1997-09-30")
        a = RobustCardinalityEstimator(original, policy=0.8).estimate(
            {"lineitem"}, predicate
        )
        b = RobustCardinalityEstimator(restored, policy=0.8).estimate(
            {"lineitem"}, predicate
        )
        assert a.selectivity == b.selectivity


class TestErrors:
    def test_missing_manifest_raises(self, tpch_db, tmp_path):
        with pytest.raises(StatisticsError, match="manifest"):
            load_statistics(tpch_db, tmp_path / "nowhere")

    def test_bad_version_raises(self, tpch_db, saved, tmp_path):
        _, path = saved
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = 999
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StatisticsError, match="format"):
            load_statistics(tpch_db, path)

    def test_mismatched_database_raises(self, saved, two_table_db):
        _, path = saved
        with pytest.raises(StatisticsError):
            load_statistics(two_table_db, path)

    def test_partial_statistics_saved(self, tpch_db, tmp_path):
        manager = StatisticsManager(tpch_db)
        manager.update_statistics(sample_size=100, seed=0, tables=["part"])
        save_statistics(manager, tmp_path / "partial")
        restored = load_statistics(tpch_db, tmp_path / "partial")
        assert restored.sample_for("part") is not None
        assert restored.sample_for("lineitem") is None

    def test_empty_statistics_round_trip(self, tpch_db, tmp_path):
        save_statistics(StatisticsManager(tpch_db), tmp_path / "empty")
        restored = load_statistics(tpch_db, tmp_path / "empty")
        for name in tpch_db.table_names:
            assert restored.sample_for(name) is None
            assert restored.synopsis_for(name) is None

    def test_unknown_table_raises(self, tpch_db, saved):
        _, path = saved
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["tables"]["phantom"] = manifest["tables"]["part"]
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StatisticsError, match="unknown table"):
            load_statistics(tpch_db, path)

    def test_garbage_manifest_raises(self, tpch_db, saved):
        _, path = saved
        (path / "manifest.json").write_text('{"tables": [truncated')
        with pytest.raises(StatisticsError, match="unreadable"):
            load_statistics(tpch_db, path)

    def test_non_dict_manifest_raises(self, tpch_db, saved):
        _, path = saved
        (path / "manifest.json").write_text('["not", "a", "manifest"]')
        with pytest.raises(StatisticsError, match="malformed"):
            load_statistics(tpch_db, path)

    def test_missing_npz_raises(self, tpch_db, saved):
        _, path = saved
        (path / "part.npz").unlink()
        with pytest.raises(StatisticsError, match="missing"):
            load_statistics(tpch_db, path)

    def test_truncated_npz_raises(self, tpch_db, saved):
        _, path = saved
        data = (path / "lineitem.npz").read_bytes()
        (path / "lineitem.npz").write_bytes(data[: len(data) // 2])
        with pytest.raises(StatisticsError, match="corrupt"):
            load_statistics(tpch_db, path)

    def test_manifest_promising_missing_array_raises(self, tpch_db, saved):
        _, path = saved
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["tables"]["part"]["histograms"].append("no_such_column")
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StatisticsError, match="promised by the manifest"):
            load_statistics(tpch_db, path)

    @pytest.mark.parametrize(
        "array_key", ["sample_row_ids", "synopsis_row_ids"]
    )
    def test_out_of_range_row_ids_raise(self, tpch_db, saved, array_key):
        _, path = saved
        target = path / "lineitem.npz"
        with np.load(target) as handle:
            arrays = {key: handle[key] for key in handle.files}
        ids = arrays[array_key].copy()
        ids[0] = tpch_db.table("lineitem").num_rows + 7
        arrays[array_key] = ids
        np.savez_compressed(target, **arrays)
        with pytest.raises(StatisticsError, match="out of range"):
            load_statistics(tpch_db, path)


class TestAtomicSave:
    """A failed save must never corrupt an existing archive."""

    def test_failed_save_preserves_existing_archive(
        self, tpch_db, saved, monkeypatch
    ):
        original, path = saved
        expected = {
            name: original.sample_for(name).row_ids.copy()
            for name in tpch_db.table_names
        }

        fresh = StatisticsManager(tpch_db)
        fresh.update_statistics(sample_size=120, seed=99)
        calls = []

        def failing_savez(*args, **kwargs):
            calls.append(1)
            if len(calls) >= 2:  # die mid-archive, after one table
                raise OSError("disk full")
            return real_savez(*args, **kwargs)

        real_savez = np.savez_compressed
        monkeypatch.setattr(np, "savez_compressed", failing_savez)
        with pytest.raises(OSError, match="disk full"):
            save_statistics(fresh, path)
        monkeypatch.undo()

        # The old archive is still complete and loads the old sample.
        restored = load_statistics(tpch_db, path)
        for name, row_ids in expected.items():
            assert np.array_equal(restored.sample_for(name).row_ids, row_ids)

    def test_failed_save_leaves_no_partial_fresh_archive(
        self, tpch_db, tmp_path, monkeypatch
    ):
        manager = StatisticsManager(tpch_db)
        manager.update_statistics(sample_size=100, seed=3)
        calls = []

        def failing_savez(*args, **kwargs):
            calls.append(1)
            if len(calls) >= 2:
                raise OSError("disk full")
            return real_savez(*args, **kwargs)

        real_savez = np.savez_compressed
        monkeypatch.setattr(np, "savez_compressed", failing_savez)
        target = tmp_path / "fresh"
        with pytest.raises(OSError):
            save_statistics(manager, target)
        monkeypatch.undo()

        # Nothing (and in particular no half-written archive) landed.
        assert not target.exists()
        with pytest.raises(StatisticsError, match="manifest"):
            load_statistics(tpch_db, target)
        # The staging directory was cleaned up too.
        assert list(tmp_path.iterdir()) == []

    def test_interrupted_swap_rolls_back(self, tpch_db, saved, monkeypatch):
        import repro.stats.persistence as persistence

        original, path = saved
        fresh = StatisticsManager(tpch_db)
        fresh.update_statistics(sample_size=120, seed=99)

        real_replace = persistence.os.replace
        calls = []

        def failing_replace(src, dst):
            calls.append((src, dst))
            if len(calls) == 2:  # the staging -> target rename
                raise OSError("interrupted")
            return real_replace(src, dst)

        monkeypatch.setattr(persistence.os, "replace", failing_replace)
        with pytest.raises(OSError, match="interrupted"):
            save_statistics(fresh, path)
        monkeypatch.undo()

        restored = load_statistics(tpch_db, path)
        assert np.array_equal(
            restored.sample_for("part").row_ids,
            original.sample_for("part").row_ids,
        )

    def test_save_overwrites_cleanly(self, tpch_db, saved):
        original, path = saved
        fresh = StatisticsManager(tpch_db)
        fresh.update_statistics(sample_size=120, seed=99)
        save_statistics(fresh, path)
        restored = load_statistics(tpch_db, path)
        assert restored.sample_size == 120
        assert not np.array_equal(
            restored.sample_for("part").row_ids,
            original.sample_for("part").row_ids,
        )


class TestStatisticsEpoch:
    """Loaded managers must never collide with each other (or their
    saver) on ``version`` — cache keys embed it."""

    def test_load_allocates_fresh_version(self, tpch_db, saved):
        original, path = saved
        restored = load_statistics(tpch_db, path)
        assert restored.version != original.version
        assert restored.version > 0

    def test_two_loads_of_same_archive_differ(self, tpch_db, saved):
        _, path = saved
        first = load_statistics(tpch_db, path)
        second = load_statistics(tpch_db, path)
        assert first.version != second.version

    def test_two_archives_never_share_a_version(self, tpch_db, saved, tmp_path):
        _, path = saved
        other = tmp_path / "other"
        shutil.copytree(path, other)
        a = load_statistics(tpch_db, path)
        b = load_statistics(tpch_db, other)
        assert a.version != b.version

    def test_epoch_floor_respected(self, tpch_db, saved):
        _, path = saved
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["statistics_epoch"] = 10_000_000
        (path / "manifest.json").write_text(json.dumps(manifest))
        restored = load_statistics(tpch_db, path)
        assert restored.version > 10_000_000

    def test_version_moves_on_every_mutation(self, tpch_db, saved):
        _, path = saved
        restored = load_statistics(tpch_db, path)
        seen = {restored.version}
        restored.drop_synopsis("lineitem")
        assert restored.version not in seen
        seen.add(restored.version)
        restored.drop_sample("lineitem")
        assert restored.version not in seen
