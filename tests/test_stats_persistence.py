"""Tests for statistics persistence (save/load round trip)."""

import json

import numpy as np
import pytest

from repro.core import RobustCardinalityEstimator
from repro.errors import StatisticsError
from repro.expressions import col
from repro.stats import StatisticsManager, load_statistics, save_statistics


@pytest.fixture
def saved(tpch_db, tmp_path):
    manager = StatisticsManager(tpch_db)
    manager.update_statistics(sample_size=300, seed=17)
    save_statistics(manager, tmp_path / "stats")
    return manager, tmp_path / "stats"


class TestRoundTrip:
    def test_samples_identical(self, tpch_db, saved):
        original, path = saved
        restored = load_statistics(tpch_db, path)
        for name in tpch_db.table_names:
            assert np.array_equal(
                original.sample_for(name).row_ids,
                restored.sample_for(name).row_ids,
            )

    def test_synopses_identical(self, tpch_db, saved):
        original, path = saved
        restored = load_statistics(tpch_db, path)
        predicate = (col("part.p_size") <= 10) & (
            col("lineitem.l_quantity") > 25
        )
        assert original.synopsis_for("lineitem").count_satisfying(
            predicate
        ) == restored.synopsis_for("lineitem").count_satisfying(predicate)
        assert (
            restored.synopsis_for("lineitem").covered_tables
            == original.synopsis_for("lineitem").covered_tables
        )

    def test_histograms_identical(self, tpch_db, saved):
        original, path = saved
        restored = load_statistics(tpch_db, path)
        for column in ("l_shipdate", "l_quantity"):
            a = original.histogram("lineitem", column)
            b = restored.histogram("lineitem", column)
            assert np.array_equal(a.uppers, b.uppers)
            assert np.array_equal(a.counts, b.counts)
            assert a.selectivity_range(a.minimum, a.uppers[10]) == pytest.approx(
                b.selectivity_range(b.minimum, b.uppers[10])
            )

    def test_sample_size_restored(self, tpch_db, saved):
        _, path = saved
        restored = load_statistics(tpch_db, path)
        assert restored.sample_size == 300

    def test_estimates_identical(self, tpch_db, saved):
        original, path = saved
        restored = load_statistics(tpch_db, path)
        predicate = col("lineitem.l_shipdate").between("1997-07-01", "1997-09-30")
        a = RobustCardinalityEstimator(original, policy=0.8).estimate(
            {"lineitem"}, predicate
        )
        b = RobustCardinalityEstimator(restored, policy=0.8).estimate(
            {"lineitem"}, predicate
        )
        assert a.selectivity == b.selectivity


class TestErrors:
    def test_missing_manifest_raises(self, tpch_db, tmp_path):
        with pytest.raises(StatisticsError, match="manifest"):
            load_statistics(tpch_db, tmp_path / "nowhere")

    def test_bad_version_raises(self, tpch_db, saved, tmp_path):
        _, path = saved
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = 999
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StatisticsError, match="format"):
            load_statistics(tpch_db, path)

    def test_mismatched_database_raises(self, saved, two_table_db):
        _, path = saved
        with pytest.raises(StatisticsError):
            load_statistics(two_table_db, path)

    def test_partial_statistics_saved(self, tpch_db, tmp_path):
        manager = StatisticsManager(tpch_db)
        manager.update_statistics(sample_size=100, seed=0, tables=["part"])
        save_statistics(manager, tmp_path / "partial")
        restored = load_statistics(tpch_db, tmp_path / "partial")
        assert restored.sample_for("part") is not None
        assert restored.sample_for("lineitem") is None
