"""Tests for the what-if FixedSelectivityEstimator."""

import pytest

from repro.core import FixedSelectivityEstimator
from repro.engine import ExecutionContext
from repro.errors import EstimationError
from repro.expressions import col
from repro.optimizer import Optimizer, SPJQuery


class TestFixedEstimator:
    def test_default_selectivity(self, tpch_db):
        estimator = FixedSelectivityEstimator(tpch_db, default=0.02)
        estimate = estimator.estimate({"lineitem"}, col("lineitem.l_quantity") > 0)
        assert estimate.selectivity == 0.02
        assert estimate.cardinality == pytest.approx(
            0.02 * tpch_db.table("lineitem").num_rows
        )
        assert estimate.source == "fixed"

    def test_no_predicate_is_full(self, tpch_db):
        estimator = FixedSelectivityEstimator(tpch_db, default=0.02)
        estimate = estimator.estimate({"lineitem"}, None)
        assert estimate.selectivity == 1.0

    def test_overrides(self, tpch_db):
        estimator = FixedSelectivityEstimator(
            tpch_db,
            default=0.5,
            overrides={frozenset({"lineitem", "part"}): 0.001},
        )
        joined = estimator.estimate(
            {"lineitem", "part"}, col("part.p_size") > 0
        )
        single = estimator.estimate({"part"}, col("part.p_size") > 0)
        assert joined.selectivity == 0.001
        assert single.selectivity == 0.5

    def test_validation(self, tpch_db):
        with pytest.raises(EstimationError):
            FixedSelectivityEstimator(tpch_db, default=1.5)
        with pytest.raises(EstimationError):
            FixedSelectivityEstimator(
                tpch_db, overrides={frozenset({"part"}): -0.1}
            )
        with pytest.raises(EstimationError):
            FixedSelectivityEstimator(tpch_db).estimate(set(), None)

    def test_describe(self, tpch_db):
        assert "0.02" in FixedSelectivityEstimator(tpch_db, 0.02).describe()


class TestWhatIfPlanning:
    def test_forced_selectivity_flips_plan(self, tpch_db):
        """What-if: below the crossover the optimizer gambles, above it
        plays safe — with no statistics involved at all."""
        predicate = col("lineitem.l_shipdate").between("1997-07-01", "1997-09-30") & col(
            "lineitem.l_receiptdate"
        ).between("1997-07-01", "1997-09-30")
        query = SPJQuery(["lineitem"], predicate)
        plans = {}
        for selectivity in (0.0005, 0.05):
            estimator = FixedSelectivityEstimator(tpch_db, default=selectivity)
            planned = Optimizer(tpch_db, estimator).optimize(query)
            plans[selectivity] = type(planned.plan).__name__
        # With one flat selectivity for everything, a single seek beats
        # the intersection (same fetch count, fewer leaf scans).
        assert plans[0.0005].startswith("Index")
        assert plans[0.05] == "SeqScan"

    def test_plans_still_return_correct_rows(self, tpch_db):
        """Even absurd what-if estimates never change query results."""
        predicate = col("lineitem.l_quantity") > 40
        query = SPJQuery(["lineitem"], predicate)
        truth = None
        for selectivity in (0.001, 0.999):
            estimator = FixedSelectivityEstimator(tpch_db, default=selectivity)
            planned = Optimizer(tpch_db, estimator).optimize(query)
            frame = planned.plan.execute(ExecutionContext(tpch_db))
            if truth is None:
                truth = frame.num_rows
            assert frame.num_rows == truth
