"""Tests for the multi-tenant serving layer.

Covers admission control (both limits, shed reasons, release pairing),
the worker-pool server (submit/serve semantics, metrics, retry
backoff), the seeded load generator (deterministic schedules,
percentile accounting), and the headline concurrency claim: archives
hot-swapped into tenants *under live load* never produce a stale
serving or a cross-tenant plan — asserted from the server's own
runtime evidence (version ledgers + stale counter), not from code
inspection.
"""

import threading
import time

import pytest

from repro.service import SessionConfig
from repro.serving import (
    AdmissionConfig,
    AdmissionController,
    AdmissionError,
    LoadConfig,
    QueryServer,
    SHED_GLOBAL,
    SHED_TENANT,
    ServerOverloaded,
    ServingError,
    TenantSpec,
    build_schedule,
    run_load,
)
from repro.stats import StatisticsManager
from repro.workloads import QUERY_BATTERY, TpchConfig, build_tpch_database

QUERY = "SELECT COUNT(*) FROM lineitem WHERE lineitem.l_quantity > 45"


@pytest.fixture(scope="module")
def tenant_dbs():
    return [
        build_tpch_database(TpchConfig(num_lineitem=1500, seed=20 + i))
        for i in range(2)
    ]


@pytest.fixture(scope="module")
def tenant_specs(tenant_dbs):
    return [
        TenantSpec(
            name=f"tenant-{i}",
            database=db,
            config=SessionConfig(sample_size=48, statistics_seed=20 + i),
        )
        for i, db in enumerate(tenant_dbs)
    ]


def make_server(tenant_specs, **kwargs):
    kwargs.setdefault("worker_threads", 2)
    return QueryServer(tenant_specs, **kwargs)


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_config_validated(self):
        with pytest.raises(AdmissionError, match="global_limit"):
            AdmissionConfig(global_limit=0)
        with pytest.raises(AdmissionError, match="tenant_queue_depth"):
            AdmissionConfig(tenant_queue_depth=-1)

    def test_tenant_queue_binds_first(self):
        ctl = AdmissionController(
            AdmissionConfig(global_limit=10, tenant_queue_depth=2)
        )
        assert ctl.try_admit("a") is None
        assert ctl.try_admit("a") is None
        assert ctl.try_admit("a") == SHED_TENANT
        # Another tenant still has room: the bound is per tenant.
        assert ctl.try_admit("b") is None

    def test_global_limit_binds_across_tenants(self):
        ctl = AdmissionController(
            AdmissionConfig(global_limit=3, tenant_queue_depth=10)
        )
        assert ctl.try_admit("a") is None
        assert ctl.try_admit("b") is None
        assert ctl.try_admit("c") is None
        assert ctl.try_admit("d") == SHED_GLOBAL

    def test_release_reopens_capacity(self):
        ctl = AdmissionController(
            AdmissionConfig(global_limit=1, tenant_queue_depth=1)
        )
        assert ctl.try_admit("a") is None
        assert ctl.try_admit("a") == SHED_TENANT
        ctl.release("a")
        assert ctl.try_admit("a") is None

    def test_unpaired_release_raises(self):
        ctl = AdmissionController()
        with pytest.raises(AdmissionError, match="without matching admit"):
            ctl.release("ghost")

    def test_metrics_and_snapshot(self):
        ctl = AdmissionController(
            AdmissionConfig(global_limit=4, tenant_queue_depth=1)
        )
        assert ctl.try_admit("a") is None
        assert ctl.try_admit("a") == SHED_TENANT
        assert ctl.try_admit("b") is None
        snap = ctl.snapshot()
        assert snap["admitted"] == 2
        assert snap["shed"] == 1
        assert snap["shed_by_reason"][SHED_TENANT] == 1
        assert snap["shed_by_reason"][SHED_GLOBAL] == 0
        assert snap["tenants"]["a"] == {
            "admitted": 1, "shed": 1, "outstanding": 1,
        }
        assert snap["outstanding"] == 2

    def test_decisions_atomic_under_contention(self):
        """Concurrent admits never exceed either limit."""
        ctl = AdmissionController(
            AdmissionConfig(global_limit=8, tenant_queue_depth=3)
        )
        peak = []
        peak_lock = threading.Lock()

        def worker(tenant):
            for _ in range(300):
                if ctl.try_admit(tenant) is None:
                    occ = ctl.occupancy()
                    with peak_lock:
                        peak.append(
                            (occ["global"], occ["tenants"][tenant])
                        )
                    ctl.release(tenant)

        threads = [
            threading.Thread(target=worker, args=(f"t{i % 3}",))
            for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert peak
        assert max(g for g, _ in peak) <= 8
        assert max(t for _, t in peak) <= 3
        assert ctl.occupancy()["global"] == 0


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------
class TestQueryServer:
    def test_rejects_bad_config(self, tenant_specs):
        with pytest.raises(ServingError, match="at least one tenant"):
            QueryServer([])
        with pytest.raises(ServingError, match="duplicate"):
            QueryServer([tenant_specs[0], tenant_specs[0]])
        with pytest.raises(ServingError, match="worker_threads"):
            QueryServer(tenant_specs, worker_threads=0)

    def test_unknown_tenant(self, tenant_specs):
        with make_server(tenant_specs) as server:
            with pytest.raises(ServingError, match="unknown tenant"):
                server.submit("nobody", QUERY)

    def test_execute_round_trip(self, tenant_specs):
        with make_server(tenant_specs) as server:
            served = server.serve("tenant-0", QUERY)
            assert served.tenant == "tenant-0"
            assert served.rows == 1
            assert served.statistics_version > 0
            assert not served.stale
            assert served.latency_seconds > 0
            # Second serving of the same statement is a plan-cache hit.
            again = server.serve("tenant-0", QUERY)
            assert again.plan_cached

    def test_prepare_only(self, tenant_specs):
        with make_server(tenant_specs) as server:
            served = server.serve("tenant-0", QUERY, execute=False)
            assert served.rows is None
            assert served.simulated_seconds == 0.0

    def test_per_tenant_sessions_are_isolated_objects(self, tenant_specs):
        with make_server(tenant_specs) as server:
            s0 = server.session("tenant-0")
            s1 = server.session("tenant-1")
            assert s0 is not s1
            assert s0.plan_cache is not s1.plan_cache
            assert s0.metrics is not s1.metrics

    def test_submit_sheds_when_saturated(self, tenant_specs):
        server = make_server(
            tenant_specs,
            worker_threads=1,
            admission=AdmissionConfig(global_limit=2, tenant_queue_depth=2),
            service_time_floor=0.05,
        )
        with server:
            first = server.submit("tenant-0", QUERY, execute=False)
            second = server.submit("tenant-0", QUERY, execute=False)
            with pytest.raises(ServerOverloaded) as excinfo:
                server.submit("tenant-0", QUERY, execute=False)
            assert excinfo.value.tenant == "tenant-0"
            assert excinfo.value.reason == SHED_TENANT
            shed = server.metrics.counter(
                "repro_serving_shed_total",
                "Operations shed by admission control, "
                "by tenant and binding limit.",
            )
            assert shed.value(tenant="tenant-0", reason=SHED_TENANT) == 1
            assert first.result(timeout=5).tenant == "tenant-0"
            assert second.result(timeout=5).tenant == "tenant-0"

    def test_serve_retries_through_sheds(self, tenant_specs):
        server = make_server(
            tenant_specs,
            worker_threads=1,
            admission=AdmissionConfig(global_limit=1, tenant_queue_depth=1),
            service_time_floor=0.005,
        )
        with server:
            results = []
            errors = []

            def client():
                try:
                    results.append(
                        server.serve("tenant-0", QUERY, execute=False)
                    )
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=client) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert len(results) == 6
            retries = server.metrics.counter(
                "repro_serving_retries_total",
                "Resubmissions after an admission shed, by tenant.",
            )
            # With limit 1 and 6 concurrent clients, some must have
            # been shed and retried rather than failed.
            assert retries.value(tenant="tenant-0") > 0

    def test_worker_errors_propagate_and_release(self, tenant_specs):
        with make_server(tenant_specs) as server:
            future = server.submit("tenant-0", "SELECT nope FROM nowhere")
            with pytest.raises(Exception):
                future.result(timeout=5)
            errors = server.metrics.counter(
                "repro_serving_errors_total",
                "Operations that raised inside the worker, by tenant.",
            )
            assert errors.value(tenant="tenant-0") == 1
            # The slot was released: the server still serves.
            assert server.admission.occupancy()["global"] == 0
            assert server.serve("tenant-0", QUERY).rows == 1

    def test_closed_server_refuses(self, tenant_specs):
        server = make_server(tenant_specs)
        server.close()
        with pytest.raises(ServingError, match="closed"):
            server.submit("tenant-0", QUERY)

    def test_stats_schema(self, tenant_specs):
        with make_server(tenant_specs) as server:
            server.serve("tenant-0", QUERY)
            stats = server.stats()
            assert stats["stale_served"] == 0
            assert stats["isolation"]["isolated"]
            assert stats["admission"]["admitted"] == 1
            assert set(stats["tenants"]) == {"tenant-0", "tenant-1"}
            tenant = stats["tenants"]["tenant-0"]
            assert tenant["statistics_version"] > 0
            assert tenant["health"] == "healthy"
            assert "hit_rate" in tenant["plan_cache"]


# ----------------------------------------------------------------------
# Statistics hot-swap under load (the headline invariant)
# ----------------------------------------------------------------------
class TestSwapUnderLoad:
    def test_swap_bumps_floor_and_serves_fresh(self, tenant_dbs,
                                               tenant_specs):
        with make_server(tenant_specs) as server:
            before = server.serve("tenant-0", QUERY)
            fresh = StatisticsManager(tenant_dbs[0])
            fresh.update_statistics(sample_size=48, seed=999)
            version = server.swap_statistics("tenant-0", fresh)
            assert version > before.statistics_version
            after = server.serve("tenant-0", QUERY)
            assert after.statistics_version == version
            assert not after.plan_cached  # new version, structurally new key
            assert not after.stale

    def test_no_stale_or_cross_tenant_servings_under_swap_load(
        self, tenant_dbs, tenant_specs
    ):
        """Hot-swap archives into both tenants while 4 client threads
        hammer them: zero stale servings, zero cross-tenant versions.
        """
        server = make_server(
            tenant_specs,
            worker_threads=4,
            admission=AdmissionConfig(global_limit=32,
                                      tenant_queue_depth=16),
        )
        with server:
            stop = threading.Event()
            served = []
            errors = []
            ledger = threading.Lock()
            queries = list(QUERY_BATTERY.values())

            def client(index):
                tenant = f"tenant-{index % 2}"
                i = 0
                while not stop.is_set():
                    sql = queries[(index + i) % len(queries)]
                    try:
                        result = server.serve(
                            tenant, sql, execute=bool(i % 2)
                        )
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                        return
                    with ledger:
                        served.append(result)
                    i += 1

            threads = [
                threading.Thread(target=client, args=(i,), daemon=True)
                for i in range(4)
            ]
            for t in threads:
                t.start()
            swapped = {"tenant-0": [], "tenant-1": []}
            for round_index in range(3):
                for index, db in enumerate(tenant_dbs):
                    tenant = f"tenant-{index}"
                    fresh = StatisticsManager(db)
                    fresh.update_statistics(
                        sample_size=48, seed=1000 + 10 * round_index + index
                    )
                    swapped[tenant].append(
                        server.swap_statistics(tenant, fresh)
                    )
                    time.sleep(0.02)
            stop.set()
            for t in threads:
                t.join()
            assert not errors
            assert len(served) > 20

            # 1. Zero stale servings: no op completed below the version
            # floor in force when it was submitted.
            assert all(not op.stale for op in served)
            stale = server.metrics.counter(
                "repro_serving_stale_served_total",
                "Operations served below their tenant's statistics "
                "version floor (must stay 0).",
            )
            assert sum(
                stale.value(tenant=t) for t in server.tenant_names
            ) == 0

            # 2. Zero cross-tenant servings: the version sets are
            # disjoint, so no plan-cache entry crossed a tenant.
            report = server.isolation_report()
            assert report["isolated"], report["violations"]
            assert report["violations"] == {}

            # 3. Every swapped-in version actually went live, and the
            # final servings ran at each tenant's last version.
            for tenant, versions in swapped.items():
                tail = [
                    op.statistics_version
                    for op in served if op.tenant == tenant
                ]
                assert tail, f"no servings recorded for {tenant}"
                assert max(tail) == versions[-1]

            # 4. Swap traffic was really concurrent with serving: some
            # operations were served under pre-swap versions too.
            for tenant, versions in swapped.items():
                tenant_versions = {
                    op.statistics_version
                    for op in served if op.tenant == tenant
                }
                assert len(tenant_versions) >= 2


# ----------------------------------------------------------------------
# Load generator
# ----------------------------------------------------------------------
class TestLoadGenerator:
    def test_schedule_is_deterministic(self):
        config = LoadConfig(tenants=3, operations=200)
        names = ["a", "b", "c"]
        first = build_schedule(config, names)
        second = build_schedule(config, names)
        assert first == second
        assert len(first) == 200
        assert {t for t, _, _ in first} == set(names)

    def test_schedule_is_skewed(self):
        config = LoadConfig(tenants=4, operations=2000, skew=1.2)
        names = ["a", "b", "c", "d"]
        schedule = build_schedule(config, names)
        counts = {n: 0 for n in names}
        for tenant, _, _ in schedule:
            counts[tenant] += 1
        assert counts["a"] > counts["d"] * 2  # hot tenant dominates

    def test_config_validated(self):
        with pytest.raises(ValueError, match="tenants"):
            LoadConfig(tenants=0)
        with pytest.raises(ValueError, match="operations"):
            LoadConfig(operations=0)

    def test_small_run_end_to_end(self):
        config = LoadConfig(
            tenants=2, operations=40, load_threads=4, worker_threads=2,
            num_lineitem=1200, sample_size=48, swaps=1,
        )
        result = run_load(config)
        report = result.to_dict()
        ops = report["operations"]
        assert ops["completed"] + ops["shed_exhausted"] == 40
        assert ops["failed"] == 0
        assert report["stale_served"] == 0
        assert report["swaps_performed"] == 1
        assert report["server"]["isolation"]["isolated"]
        latency = report["latency"]
        assert 0 < latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
        assert report["throughput_ops_per_s"] > 0
        per_tenant = report["per_tenant"]
        assert per_tenant
        for slot in per_tenant.values():
            assert 0.0 <= slot["cache_hit_rate"] <= 1.0
