"""Unit tests for scan operators (SeqScan, IndexSeek, IndexIntersect)."""

import numpy as np
import pytest

from repro.engine import ExecutionContext, IndexIntersect, IndexSeek, SeqScan
from repro.engine.scans import IndexCondition
from repro.errors import ExecutionError
from repro.expressions import col

from tests.conftest import make_two_table_db


@pytest.fixture
def db():
    return make_two_table_db()


def run(op, db):
    ctx = ExecutionContext(db)
    frame = op.execute(ctx)
    return frame, ctx.counters


class TestSeqScan:
    def test_full_scan(self, db):
        frame, counters = run(SeqScan("lineitem"), db)
        table = db.table("lineitem")
        assert frame.num_rows == table.num_rows
        assert counters.seq_pages == table.num_pages
        assert counters.cpu_rows == table.num_rows
        assert counters.random_ios == 0

    def test_filtered_scan(self, db):
        predicate = col("lineitem.l_quantity") > 25
        frame, counters = run(SeqScan("lineitem", predicate), db)
        expected = (db.table("lineitem").column("l_quantity") > 25).sum()
        assert frame.num_rows == expected
        assert counters.rows_output == expected
        # filtering does not change I/O
        assert counters.seq_pages == db.table("lineitem").num_pages

    def test_qualified_output_columns(self, db):
        frame, _ = run(SeqScan("part"), db)
        assert "part.p_size" in frame.column_names


class TestIndexSeek:
    def test_basic_range(self, db):
        condition = IndexCondition("l_shipdate", 729100, 729200)
        frame, counters = run(IndexSeek("lineitem", condition), db)
        ship = db.table("lineitem").column("l_shipdate")
        expected = ((ship >= 729100) & (ship <= 729200)).sum()
        assert frame.num_rows == expected
        assert counters.index_entries == expected
        assert counters.random_ios == expected  # nonclustered
        assert counters.seq_pages == 0

    def test_clustered_seek_reads_pages(self, db):
        condition = IndexCondition("l_id", 0, 499)
        frame, counters = run(IndexSeek("lineitem", condition), db)
        assert frame.num_rows == 500
        assert counters.random_ios == 0
        assert counters.seq_pages >= 1

    def test_residual(self, db):
        condition = IndexCondition("l_shipdate", 729100, 729200)
        residual = col("lineitem.l_quantity") > 25
        frame, counters = run(IndexSeek("lineitem", condition, residual), db)
        table = db.table("lineitem")
        ship = table.column("l_shipdate")
        qty = table.column("l_quantity")
        expected = ((ship >= 729100) & (ship <= 729200) & (qty > 25)).sum()
        assert frame.num_rows == expected
        assert counters.cpu_rows > 0

    def test_missing_index_raises(self, db):
        with pytest.raises(ExecutionError, match="no index"):
            run(IndexSeek("lineitem", IndexCondition("l_quantity", 0, 10)), db)

    def test_exclusive_bounds(self, db):
        inclusive = IndexCondition("l_shipdate", 729100, 729200)
        exclusive = IndexCondition(
            "l_shipdate", 729100, 729200, low_inclusive=False, high_inclusive=False
        )
        frame_in, _ = run(IndexSeek("lineitem", inclusive), db)
        frame_ex, _ = run(IndexSeek("lineitem", exclusive), db)
        assert frame_ex.num_rows <= frame_in.num_rows


class TestIndexIntersect:
    def test_two_conditions(self, db):
        conditions = [
            IndexCondition("l_shipdate", 729100, 729200),
            IndexCondition("l_receiptdate", 729100, 729200),
        ]
        frame, counters = run(IndexIntersect("lineitem", conditions), db)
        table = db.table("lineitem")
        ship = table.column("l_shipdate")
        receipt = table.column("l_receiptdate")
        expected = (
            (ship >= 729100) & (ship <= 729200)
            & (receipt >= 729100) & (receipt <= 729200)
        ).sum()
        assert frame.num_rows == expected
        # one random fetch per survivor, not per index entry
        assert counters.random_ios == expected
        assert counters.index_entries > expected
        assert counters.index_lookups == 2

    def test_matches_seqscan_result(self, db):
        conditions = [
            IndexCondition("l_shipdate", 729100, 729200),
            IndexCondition("l_receiptdate", 729150, 729250),
        ]
        predicate = col("lineitem.l_shipdate").between(729100, 729200) & col(
            "lineitem.l_receiptdate"
        ).between(729150, 729250)
        frame_idx, _ = run(IndexIntersect("lineitem", conditions), db)
        frame_scan, _ = run(SeqScan("lineitem", predicate), db)
        assert frame_idx.num_rows == frame_scan.num_rows
        assert sorted(frame_idx.column("lineitem.l_id")) == sorted(
            frame_scan.column("lineitem.l_id")
        )

    def test_requires_two_conditions(self, db):
        with pytest.raises(ExecutionError):
            IndexIntersect("lineitem", [IndexCondition("l_shipdate", 0, 1)])

    def test_residual(self, db):
        conditions = [
            IndexCondition("l_shipdate", 729100, 729250),
            IndexCondition("l_receiptdate", 729100, 729250),
        ]
        residual = col("lineitem.l_quantity") > 40
        frame, _ = run(IndexIntersect("lineitem", conditions, residual), db)
        assert (frame.column("lineitem.l_quantity") > 40).all()
