"""Tests for the TPC-H query battery, storage footprint, and CI coverage."""

import numpy as np
import pytest

from repro.core import (
    ExactCardinalityEstimator,
    RobustCardinalityEstimator,
    SelectivityPosterior,
)
from repro.engine import ExecutionContext
from repro.optimizer import Optimizer
from repro.stats import (
    StatisticsManager,
    database_footprint,
    format_footprint,
    table_footprint,
)
from repro.workloads import QUERY_BATTERY, parse_battery


class TestQueryBattery:
    def test_all_queries_parse(self, tpch_db):
        queries = parse_battery(tpch_db)
        assert set(queries) == set(QUERY_BATTERY)

    @pytest.mark.parametrize("name", sorted(QUERY_BATTERY))
    def test_each_query_optimizes_and_runs(self, tpch_db, name):
        query = parse_battery(tpch_db)[name]
        planned = Optimizer(tpch_db, ExactCardinalityEstimator(tpch_db)).optimize(
            query
        )
        frame = planned.plan.execute(ExecutionContext(tpch_db))
        assert frame.num_rows >= 0
        assert planned.estimated_cost > 0

    def test_battery_runs_under_robust_estimator(self, tpch_db, tpch_stats):
        estimator = RobustCardinalityEstimator(tpch_stats, policy=0.8)
        optimizer = Optimizer(tpch_db, estimator)
        for query in parse_battery(tpch_db).values():
            planned = optimizer.optimize(query)
            planned.plan.execute(ExecutionContext(tpch_db))

    def test_hints_preserved(self, tpch_db):
        queries = parse_battery(tpch_db)
        assert queries["brand_audit"].hint == "conservative"
        assert queries["correlated_dates"].hint == 0.80


class TestStorageFootprint:
    """The §6.1 parity claim: a 500-tuple sample ≈ 250-bucket
    histograms on each attribute."""

    def test_parity_at_paper_parameters(self, tpch_db):
        manager = StatisticsManager(tpch_db)
        manager.update_statistics(sample_size=500, histogram_buckets=250, seed=0)
        footprint = table_footprint(manager, "lineitem")
        # The paper's arithmetic: 500 × 8 per column for the sample vs
        # ≤250 × 16 per column for histograms — within a small factor.
        # (Our lineitem is only 12k rows, so some histograms have fewer
        # than 250 buckets; parity is approximate, as in the paper.)
        assert 0.5 <= footprint.ratio <= 4.0

    def test_paper_exact_arithmetic(self, tpch_db):
        """With full 250-bucket histograms on every column, the ratio
        is exactly 500·8 / 250·16 = 1.0 per column."""
        sample_side = 500 * 8
        histogram_side = 250 * (8 + 2 * 4)
        assert sample_side / histogram_side == 1.0

    def test_database_footprint_covers_all_tables(self, tpch_db):
        manager = StatisticsManager(tpch_db)
        manager.update_statistics(sample_size=100, seed=0)
        footprints = database_footprint(manager)
        assert {f.table for f in footprints} == set(tpch_db.table_names)

    def test_format(self, tpch_db):
        manager = StatisticsManager(tpch_db)
        manager.update_statistics(sample_size=100, seed=0)
        text = format_footprint(database_footprint(manager))
        assert "lineitem" in text and "ratio" in text

    def test_no_statistics_zero_bytes(self, tpch_db):
        manager = StatisticsManager(tpch_db)
        footprint = table_footprint(manager, "part")
        assert footprint.sample_bytes == 0
        assert footprint.histogram_bytes == 0


class TestCredibleIntervalCoverage:
    def test_bayesian_coverage_matches_level(self):
        """When the true selectivity is drawn from the prior, the 90 %
        credible interval contains it ~90 % of the time — the defining
        calibration property of the Section 3.3 posterior."""
        rng = np.random.default_rng(123)
        n = 200
        trials = 400
        hits = 0
        for _ in range(trials):
            p = rng.beta(0.5, 0.5)  # drawn from the Jeffreys prior
            k = rng.binomial(n, p)
            low, high = SelectivityPosterior(k, n).credible_interval(0.90)
            hits += low <= p <= high
        coverage = hits / trials
        assert coverage == pytest.approx(0.90, abs=0.045)

    def test_undercoverage_without_bayes(self):
        """A naive ±2σ normal interval around k/n breaks down at the
        extremes (k=0 gives a zero-width interval) — the failure the
        Bayesian treatment avoids."""
        rng = np.random.default_rng(7)
        n = 200
        failures = 0
        for _ in range(200):
            p = rng.beta(0.5, 0.5)
            k = rng.binomial(n, p)
            mle = k / n
            sigma = np.sqrt(max(mle * (1 - mle), 1e-12) / n)
            if not (mle - 2 * sigma <= p <= mle + 2 * sigma):
                failures += 1
        # the naive interval misses far more often than 5 %
        assert failures / 200 > 0.08
