"""Tests for IndexUnionSeek (IN-list index-OR strategy)."""

import pytest

from repro.core import ExactCardinalityEstimator
from repro.cost import CostModel
from repro.engine import ExecutionContext, IndexUnionSeek, SeqScan
from repro.errors import ExecutionError
from repro.expressions import col
from repro.optimizer import Optimizer, SPJQuery

from tests.conftest import make_two_table_db


@pytest.fixture
def db():
    return make_two_table_db(n_part=50, n_lineitem=3000)


@pytest.fixture
def sparse_db():
    """A lineitem whose shipdate domain is huge, so each IN-list value
    matches well under one row on average — the index-union regime."""
    import numpy as np

    from repro.catalog import Column, ColumnType, Database, Schema, Table

    rng = np.random.default_rng(3)
    n = 20_000
    lineitem = Table(
        "lineitem",
        Schema(
            [
                Column("l_id", ColumnType.INT64),
                Column("l_shipdate", ColumnType.INT64),
                Column("l_quantity", ColumnType.FLOAT64),
            ],
            primary_key="l_id",
        ),
        {
            "l_id": np.arange(n),
            "l_shipdate": rng.integers(0, 1_000_000, n),
            "l_quantity": rng.uniform(1, 50, n),
        },
    )
    database = Database([lineitem])
    database.validate()
    database.create_index("lineitem", "l_id", clustered=True)
    database.create_index("lineitem", "l_shipdate")
    return database


class TestOperator:
    def test_matches_scan(self, db):
        dates = [729100, 729200, 729300]
        union = IndexUnionSeek("lineitem", "l_shipdate", dates)
        scan = SeqScan("lineitem", col("lineitem.l_shipdate").isin(dates))
        a = union.execute(ExecutionContext(db))
        b = scan.execute(ExecutionContext(db))
        assert a.num_rows == b.num_rows
        assert sorted(a.column("lineitem.l_id")) == sorted(
            b.column("lineitem.l_id")
        )

    def test_counters(self, db):
        dates = [729100, 729200]
        ctx = ExecutionContext(db)
        frame = IndexUnionSeek("lineitem", "l_shipdate", dates).execute(ctx)
        assert ctx.counters.index_lookups == 2
        assert ctx.counters.random_ios == frame.num_rows
        assert ctx.counters.seq_pages == 0

    def test_duplicate_values_deduped(self, db):
        union = IndexUnionSeek("lineitem", "l_shipdate", [729100, 729100])
        assert union.values == [729100]
        ctx = ExecutionContext(db)
        union.execute(ctx)
        assert ctx.counters.index_lookups == 1

    def test_residual(self, db):
        dates = [729100, 729200, 729300]
        residual = col("lineitem.l_quantity") > 25
        frame = IndexUnionSeek("lineitem", "l_shipdate", dates, residual).execute(
            ExecutionContext(db)
        )
        assert (frame.column("lineitem.l_quantity") > 25).all()

    def test_empty_values_raise(self, db):
        with pytest.raises(ExecutionError):
            IndexUnionSeek("lineitem", "l_shipdate", [])

    def test_missing_index_raises(self, db):
        union = IndexUnionSeek("lineitem", "l_quantity", [5])
        with pytest.raises(ExecutionError, match="no index"):
            union.execute(ExecutionContext(db))

    def test_clustered_column_reads_pages(self, db):
        ctx = ExecutionContext(db)
        IndexUnionSeek("lineitem", "l_id", [1, 2, 3]).execute(ctx)
        assert ctx.counters.random_ios == 0
        assert ctx.counters.seq_pages >= 1

    def test_label(self, db):
        label = IndexUnionSeek("lineitem", "l_shipdate", list(range(10))).label()
        assert "IN" in label and "..." in label


class TestOptimizerIntegration:
    def test_union_path_generated(self, db):
        """The union path is always *generated* for indexed IN-lists,
        even when the scan ultimately prunes it in the DP."""
        from repro.optimizer.access import access_paths

        exact = ExactCardinalityEstimator(db)
        predicate = col("lineitem.l_shipdate").isin([729100, 729200])
        paths = access_paths(
            db, CostModel(), lambda t, p: exact.estimate(t, p), "lineitem", predicate
        )
        kinds = {type(p.operator) for p in paths}
        assert IndexUnionSeek in kinds

    def test_union_chosen_at_low_selectivity(self, sparse_db):
        predicate = col("lineitem.l_shipdate").isin([17, 9_999, 123_456])
        query = SPJQuery(["lineitem"], predicate)
        planned = Optimizer(sparse_db, ExactCardinalityEstimator(sparse_db)).optimize(
            query
        )
        assert isinstance(planned.plan, IndexUnionSeek)

    def test_scan_chosen_for_huge_in_list(self, db):
        # an IN list covering most of the domain → scan wins
        dates = list(range(729000, 729365))
        predicate = col("lineitem.l_shipdate").isin(dates)
        query = SPJQuery(["lineitem"], predicate)
        planned = Optimizer(db, ExactCardinalityEstimator(db)).optimize(query)
        assert isinstance(planned.plan, SeqScan)

    def test_cost_matches_execution(self, db):
        model = CostModel()
        predicate = col("lineitem.l_shipdate").isin([729050, 729150, 729250]) & (
            col("lineitem.l_quantity") > 10
        )
        query = SPJQuery(["lineitem"], predicate)
        planned = Optimizer(db, ExactCardinalityEstimator(db), model).optimize(query)
        ctx = ExecutionContext(db)
        planned.plan.execute(ctx)
        assert planned.estimated_cost == pytest.approx(
            model.time_from_counters(ctx.counters), rel=1e-9
        )

    def test_result_correct(self, db):
        predicate = col("lineitem.l_shipdate").isin([729050, 729150])
        query = SPJQuery(["lineitem"], predicate)
        planned = Optimizer(db, ExactCardinalityEstimator(db)).optimize(query)
        frame = planned.plan.execute(ExecutionContext(db))
        truth = ExactCardinalityEstimator(db).estimate({"lineitem"}, predicate)
        assert frame.num_rows == truth.cardinality

    def test_recost_matches(self, sparse_db):
        from repro.optimizer import PlanCoster

        exact = ExactCardinalityEstimator(sparse_db)
        predicate = col("lineitem.l_shipdate").isin([17, 9_999]) & (
            col("lineitem.l_quantity") > 10
        )
        planned = Optimizer(sparse_db, exact).optimize(
            SPJQuery(["lineitem"], predicate)
        )
        union_candidate = next(
            c
            for c in planned.alternatives
            if isinstance(c.operator, IndexUnionSeek)
        )
        coster = PlanCoster(
            sparse_db, CostModel(), lambda t, p: exact.estimate(t, p).cardinality
        )
        cost, rows = coster.cost(union_candidate.operator)
        assert cost == pytest.approx(union_candidate.cost, rel=1e-9)

    def test_sql_in_list_uses_union(self, sparse_db):
        from repro.sql import parse_query

        query = parse_query(
            "SELECT COUNT(*) FROM lineitem "
            "WHERE lineitem.l_shipdate IN (17, 9999)",
            sparse_db,
        )
        planned = Optimizer(sparse_db, ExactCardinalityEstimator(sparse_db)).optimize(
            query
        )
        assert "IndexUnionSeek" in planned.plan.explain()
