"""Unit tests for execution-cost distributions (Figures 2 and 3)."""

import numpy as np
import pytest
from scipy import integrate

from repro.analysis import (
    cost_cdf,
    cost_pdf,
    cost_percentile,
    figure2_plans,
    preference_flip_threshold,
)
from repro.core import SelectivityPosterior
from repro.errors import ReproError
from repro.analysis.model import LinearCostPlan


@pytest.fixture
def posterior():
    """The Figure 2 posterior: 50 of 200 sample tuples satisfy."""
    return SelectivityPosterior(50, 200)


@pytest.fixture
def plans():
    return figure2_plans().plans


class TestCostPdf:
    def test_integrates_to_one(self, posterior, plans):
        for plan in plans:
            low = plan.cost(0.0, 1.0)
            high = plan.cost(1.0, 1.0)
            total, _ = integrate.quad(
                lambda c, p=plan: cost_pdf(p, posterior, np.array([c]))[0],
                low,
                high,
                limit=200,
            )
            assert total == pytest.approx(1.0, abs=1e-4)

    def test_risky_plan_spread_wider(self, posterior, plans):
        """Figure 2: Plan 1's cost density is much wider than Plan 2's."""
        grid1 = np.linspace(plans[0].cost(0, 1), plans[0].cost(1, 1), 4000)
        grid2 = np.linspace(plans[1].cost(0, 1), plans[1].cost(1, 1), 4000)
        pdf1 = cost_pdf(plans[0], posterior, grid1)
        pdf2 = cost_pdf(plans[1], posterior, grid2)
        assert pdf2.max() > 3 * pdf1.max()  # stable plan: tall, narrow

    def test_zero_outside_support(self, posterior, plans):
        assert cost_pdf(plans[0], posterior, np.array([-1000.0]))[0] == 0.0

    def test_non_increasing_plan_raises(self, posterior):
        flat = LinearCostPlan("flat", 5.0, 0.0)
        with pytest.raises(ReproError):
            cost_pdf(flat, posterior, np.array([5.0]))


class TestCostCdf:
    def test_monotone(self, posterior, plans):
        grid = np.linspace(0, 140, 200)
        cdf = cost_cdf(plans[0], posterior, grid)
        assert (np.diff(cdf) >= -1e-12).all()

    def test_paper_figure_2_ranges(self, posterior, plans):
        """Figure 2 narrative: Plan 2's cost is almost certainly between
        30 and 33, while Plan 1 ranges from ~20 to ~40."""
        plan2_low = cost_cdf(plans[1], posterior, np.array([30.0]))[0]
        plan2_high = cost_cdf(plans[1], posterior, np.array([33.0]))[0]
        assert plan2_high - plan2_low > 0.95
        plan1_low = cost_cdf(plans[0], posterior, np.array([20.0]))[0]
        plan1_high = cost_cdf(plans[0], posterior, np.array([40.0]))[0]
        assert plan1_high - plan1_low > 0.95
        assert plan1_low > 0.001 or plan1_high < 0.9999  # genuinely spread


class TestCostPercentile:
    def test_paper_worked_numbers(self, posterior, plans):
        """Section 3.1: T=50 % → 30.2 / 31.5 and T=80 % → 33.5 / 31.9."""
        assert cost_percentile(plans[0], posterior, 0.5) == pytest.approx(
            30.2, abs=0.15
        )
        assert cost_percentile(plans[1], posterior, 0.5) == pytest.approx(
            31.5, abs=0.15
        )
        assert cost_percentile(plans[0], posterior, 0.8) == pytest.approx(
            33.5, abs=0.15
        )
        assert cost_percentile(plans[1], posterior, 0.8) == pytest.approx(
            31.9, abs=0.15
        )

    def test_shortcut_equals_cdf_inversion(self, posterior, plans):
        """Section 3.1.1: inverting the selectivity cdf and applying the
        cost function equals inverting the cost cdf."""
        for plan in plans:
            for threshold in (0.2, 0.5, 0.8):
                shortcut = cost_percentile(plan, posterior, threshold)
                assert cost_cdf(plan, posterior, np.array([shortcut]))[
                    0
                ] == pytest.approx(threshold, abs=1e-9)

    def test_monotone_in_threshold(self, posterior, plans):
        values = [cost_percentile(plans[0], posterior, t) for t in (0.1, 0.5, 0.9)]
        assert values[0] < values[1] < values[2]


class TestPreferenceFlip:
    def test_flip_near_65_percent(self, posterior, plans):
        """Figure 3: Plan 1 preferred below ≈65 %, Plan 2 above."""
        flip = preference_flip_threshold(plans[0], plans[1], posterior)
        assert flip == pytest.approx(0.65, abs=0.02)

    def test_sides_of_flip(self, posterior, plans):
        flip = preference_flip_threshold(plans[0], plans[1], posterior)
        below = cost_percentile(plans[0], posterior, flip - 0.05)
        below_stable = cost_percentile(plans[1], posterior, flip - 0.05)
        assert below < below_stable
        above = cost_percentile(plans[0], posterior, flip + 0.05)
        above_stable = cost_percentile(plans[1], posterior, flip + 0.05)
        assert above > above_stable

    def test_no_flip_raises(self, posterior, plans):
        # comparing a plan with itself never flips
        with pytest.raises(ReproError):
            preference_flip_threshold(plans[0], plans[0], posterior)
