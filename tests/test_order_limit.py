"""Tests for ORDER BY / LIMIT: operators, optimizer, and SQL syntax."""

import numpy as np
import pytest

from repro.core import ExactCardinalityEstimator
from repro.cost import CostModel
from repro.engine import ExecutionContext, Limit, SeqScan, Sort
from repro.errors import ExecutionError, OptimizationError
from repro.expressions import col
from repro.optimizer import Optimizer, SPJQuery
from repro.sql import parse_query

from tests.conftest import make_two_table_db


@pytest.fixture
def db():
    return make_two_table_db(n_part=40, n_lineitem=600)


class TestLimitOperator:
    def test_truncates(self, db):
        frame = Limit(SeqScan("lineitem"), 10).execute(ExecutionContext(db))
        assert frame.num_rows == 10

    def test_passes_short_input(self, db):
        frame = Limit(SeqScan("part"), 10_000).execute(ExecutionContext(db))
        assert frame.num_rows == db.table("part").num_rows

    def test_zero(self, db):
        frame = Limit(SeqScan("part"), 0).execute(ExecutionContext(db))
        assert frame.num_rows == 0

    def test_negative_raises(self, db):
        with pytest.raises(ExecutionError):
            Limit(SeqScan("part"), -1)


class TestMultiKeySort:
    def test_lexicographic(self, db):
        plan = Sort(SeqScan("lineitem"), ["lineitem.l_partkey", "lineitem.l_id"])
        frame = plan.execute(ExecutionContext(db))
        keys = frame.column("lineitem.l_partkey")
        ids = frame.column("lineitem.l_id")
        assert (np.diff(keys) >= 0).all()
        same_key = np.diff(keys) == 0
        assert (np.diff(ids)[same_key] > 0).all()

    def test_empty_keys_raise(self, db):
        with pytest.raises(ExecutionError):
            Sort(SeqScan("lineitem"), [])


class TestOptimizerOrderLimit:
    def test_order_by_applied(self, db):
        query = SPJQuery(
            ["lineitem"],
            col("lineitem.l_quantity") > 25,
            order_by=["lineitem.l_shipdate"],
        )
        planned = Optimizer(db, ExactCardinalityEstimator(db)).optimize(query)
        frame = planned.plan.execute(ExecutionContext(db))
        assert (np.diff(frame.column("lineitem.l_shipdate")) >= 0).all()

    def test_limit_applied(self, db):
        query = SPJQuery(["lineitem"], None, limit=7)
        planned = Optimizer(db, ExactCardinalityEstimator(db)).optimize(query)
        frame = planned.plan.execute(ExecutionContext(db))
        assert frame.num_rows == 7
        assert planned.estimated_rows == 7.0

    def test_order_limit_cost_matches_execution(self, db):
        model = CostModel()
        query = SPJQuery(
            ["lineitem"],
            col("lineitem.l_quantity") > 25,
            order_by=["lineitem.l_shipdate"],
            limit=5,
        )
        planned = Optimizer(db, ExactCardinalityEstimator(db), model).optimize(query)
        ctx = ExecutionContext(db)
        planned.plan.execute(ctx)
        assert planned.estimated_cost == pytest.approx(
            model.time_from_counters(ctx.counters), rel=1e-9
        )

    def test_sort_elided_when_order_available(self, db):
        """ORDER BY the clustering column costs no sort — the
        interesting-orders machinery pays off."""
        query = SPJQuery(["lineitem"], None, order_by=["lineitem.l_id"])
        planned = Optimizer(db, ExactCardinalityEstimator(db)).optimize(query)
        assert "Sort" not in planned.plan.explain()
        frame = planned.plan.execute(ExecutionContext(db))
        assert (np.diff(frame.column("lineitem.l_id")) >= 0).all()

    def test_sort_present_for_other_columns(self, db):
        query = SPJQuery(["lineitem"], None, order_by=["lineitem.l_quantity"])
        planned = Optimizer(db, ExactCardinalityEstimator(db)).optimize(query)
        assert "Sort" in planned.plan.explain()

    def test_negative_limit_rejected(self):
        with pytest.raises(OptimizationError):
            SPJQuery(["lineitem"], None, limit=-1)


class TestSqlOrderLimit:
    def test_parse_order_by(self, tpch_db):
        query = parse_query(
            "SELECT * FROM lineitem ORDER BY lineitem.l_shipdate", tpch_db
        )
        assert query.order_by == ("lineitem.l_shipdate",)

    def test_parse_multi_order(self, tpch_db):
        query = parse_query(
            "SELECT * FROM lineitem "
            "ORDER BY lineitem.l_partkey, lineitem.l_shipdate",
            tpch_db,
        )
        assert len(query.order_by) == 2

    def test_parse_limit(self, tpch_db):
        query = parse_query("SELECT * FROM lineitem LIMIT 10", tpch_db)
        assert query.limit == 10

    def test_full_clause_order(self, tpch_db):
        query = parse_query(
            "SELECT lineitem.l_partkey, COUNT(*) AS n FROM lineitem "
            "WHERE lineitem.l_quantity > 10 "
            "GROUP BY lineitem.l_partkey "
            "ORDER BY lineitem.l_partkey "
            "LIMIT 5 OPTION (CONFIDENCE 80)",
            tpch_db,
        )
        assert query.limit == 5
        assert query.hint == 0.8

    def test_fractional_limit_rejected(self):
        from repro.sql.lexer import SqlSyntaxError

        with pytest.raises(SqlSyntaxError, match="integer"):
            parse_query("SELECT * FROM t LIMIT 2.5")

    def test_sql_executes_end_to_end(self, tpch_db):
        query = parse_query(
            "SELECT * FROM lineitem WHERE lineitem.l_quantity > 48 "
            "ORDER BY lineitem.l_extendedprice LIMIT 3",
            tpch_db,
        )
        planned = Optimizer(tpch_db, ExactCardinalityEstimator(tpch_db)).optimize(
            query
        )
        frame = planned.plan.execute(ExecutionContext(tpch_db))
        assert frame.num_rows == 3
        prices = frame.column("lineitem.l_extendedprice")
        assert (np.diff(prices) >= 0).all()
