"""Q-error accounting on a hand-built two-table query.

The execution span joins the optimizer's estimate against the observed
row count. Using an estimator whose estimates are an exact ground
truth scaled by a known factor makes every number in the span exactly
predictable: actual rows from the data, estimated rows = actual ×
factor, Q-error = max(factor, 1/factor), and the under/over flags
follow the factor's side of 1.
"""

import pytest

from repro.core import ExactCardinalityEstimator
from repro.core.estimate import CardinalityEstimate
from repro.cost import CostModel
from repro.engine import ExecutionContext
from repro.obs import execution_span, operator_spans
from repro.optimizer import Optimizer, SPJQuery


class ScaledEstimator(ExactCardinalityEstimator):
    """Ground truth multiplied by a fixed factor — known error."""

    def __init__(self, database, factor):
        super().__init__(database)
        self.factor = factor

    def estimate(self, tables, predicate, hint=None):
        exact = super().estimate(tables, predicate, hint)
        return CardinalityEstimate(
            tables=exact.tables,
            selectivity=min(1.0, exact.selectivity * self.factor),
            cardinality=exact.cardinality * self.factor,
            root_table=exact.root_table,
            source="scaled-exact",
        )


def plan_and_span(database, factor):
    # join every lineitem row to its part: 2000 rows, no predicate,
    # so the only estimation question is the join cardinality itself
    query = SPJQuery(["part", "lineitem"], None)
    cost_model = CostModel()
    planned = Optimizer(
        database, ScaledEstimator(database, factor), cost_model
    ).optimize(query)
    ctx = ExecutionContext(database)
    frame = planned.plan.execute(ctx)
    return execution_span(
        planned.plan,
        database,
        cost_model,
        simulated_seconds=cost_model.time_from_counters(ctx.counters),
        actual_rows=frame.num_rows,
        estimated_rows=planned.estimated_rows,
        estimated_cost=planned.estimated_cost,
    ), frame.num_rows


class TestPlanLevelQError:
    def test_exact_estimate_has_qerror_one(self, two_table_db):
        span, actual = plan_and_span(two_table_db, factor=1.0)
        assert actual == 2000
        assert span["estimated_rows"] == pytest.approx(2000.0)
        assert span["q_error"] == pytest.approx(1.0)
        assert span["underestimate"] is False
        assert span["overestimate"] is False

    def test_underestimate_by_4x(self, two_table_db):
        span, actual = plan_and_span(two_table_db, factor=0.25)
        assert span["estimated_rows"] == pytest.approx(actual / 4)
        assert span["q_error"] == pytest.approx(4.0)
        assert span["underestimate"] is True
        assert span["overestimate"] is False

    def test_overestimate_by_2x(self, two_table_db):
        span, actual = plan_and_span(two_table_db, factor=2.0)
        assert span["estimated_rows"] == pytest.approx(actual * 2)
        assert span["q_error"] == pytest.approx(2.0)
        assert span["underestimate"] is False
        assert span["overestimate"] is True


class TestOperatorAttribution:
    def test_operator_counters_sum_to_plan_total(self, two_table_db):
        span, _ = plan_and_span(two_table_db, factor=1.0)
        totals = {name: 0.0 for name in span["counters"]}
        for op in span["operators"]:
            for name, value in op["counters"].items():
                totals[name] += value
        assert totals == pytest.approx(span["counters"])

    def test_total_work_matches_counter_sum(self, two_table_db):
        span, _ = plan_and_span(two_table_db, factor=1.0)
        assert span["total_work"] == pytest.approx(
            sum(span["counters"].values())
        )

    def test_time_breakdown_sums_to_simulated(self, two_table_db):
        span, _ = plan_and_span(two_table_db, factor=1.0)
        assert sum(span["time_breakdown"].values()) == pytest.approx(
            span["simulated_seconds"]
        )

    def test_root_actual_rows_from_reexecution(self, two_table_db):
        query = SPJQuery(["part", "lineitem"], None)
        planned = Optimizer(
            two_table_db, ExactCardinalityEstimator(two_table_db), CostModel()
        ).optimize(query)
        spans, counters, rows = operator_spans(planned.plan, two_table_db)
        assert rows == 2000
        assert spans[0]["depth"] == 0
        assert spans[0]["actual_rows"] == 2000
        assert counters.total_work() > 0
