"""Unit tests for the cost model, including counter/estimate consistency."""

import pytest

from repro.cost import CostModel
from repro.engine import ExecutionContext, SeqScan, IndexIntersect, WorkCounters
from repro.engine.scans import IndexCondition
from repro.expressions import col

from tests.conftest import make_two_table_db


@pytest.fixture
def model():
    return CostModel()


class TestCounters:
    def test_add(self):
        a = WorkCounters(seq_pages=1, random_ios=2)
        b = WorkCounters(seq_pages=10, cpu_rows=5)
        a.add(b)
        assert a.seq_pages == 11
        assert a.random_ios == 2
        assert a.cpu_rows == 5

    def test_copy_is_independent(self):
        a = WorkCounters(seq_pages=1)
        b = a.copy()
        b.seq_pages = 99
        assert a.seq_pages == 1

    def test_as_dict_roundtrip(self):
        a = WorkCounters(seq_pages=3, merge_rows=7)
        assert WorkCounters(**a.as_dict()).as_dict() == a.as_dict()


class TestTimeFromCounters:
    def test_zero_counters_zero_time(self, model):
        assert model.time_from_counters(WorkCounters()) == 0.0

    def test_linear_in_each_counter(self, model):
        single = model.time_from_counters(WorkCounters(random_ios=1))
        many = model.time_from_counters(WorkCounters(random_ios=1000))
        assert many == pytest.approx(1000 * single)

    def test_random_io_much_more_expensive_than_cpu(self, model):
        io = model.time_from_counters(WorkCounters(random_ios=1))
        cpu = model.time_from_counters(WorkCounters(cpu_rows=1))
        assert io > 100 * cpu


class TestFormulaMonotonicity:
    """Section 3.1.1 requires cost monotone in input cardinalities."""

    def test_seq_scan(self, model):
        assert model.seq_scan(2000, 20, 100) > model.seq_scan(1000, 10, 100)
        assert model.seq_scan(1000, 10, 200) > model.seq_scan(1000, 10, 100)

    def test_index_seek(self, model):
        low = model.index_seek(10, 10, False, 100, False)
        high = model.index_seek(100, 100, False, 100, False)
        assert high > low

    def test_clustered_seek_cheaper(self, model):
        clustered = model.index_seek(1000, 1000, True, 100, False)
        nonclustered = model.index_seek(1000, 1000, False, 100, False)
        assert clustered < nonclustered

    def test_index_intersect(self, model):
        low = model.index_intersect([100, 100], 10, 10, False)
        high = model.index_intersect([100, 100], 100, 100, False)
        assert high > low

    def test_hash_join(self, model):
        assert model.hash_join(10, 1000, 50) < model.hash_join(10, 2000, 50)
        assert model.hash_join(10, 1000, 50) < model.hash_join(20, 1000, 50)

    def test_merge_join(self, model):
        assert model.merge_join(100, 100, 10) < model.merge_join(200, 100, 10)

    def test_indexed_nl(self, model):
        low = model.indexed_nl_join(10, 100, 100, False, 100, False)
        high = model.indexed_nl_join(10, 1000, 1000, False, 100, False)
        assert high > low

    def test_aggregate(self, model):
        assert model.aggregate(100, 1, False) < model.aggregate(1000, 1, False)
        assert model.aggregate(100, 10, True) > model.aggregate(100, 10, False)


class TestCrossover:
    def test_crossover_location(self, model):
        """The scan-vs-RID crossover sits in the paper's sub-percent regime."""
        crossover = model.scan_vs_rid_crossover(rows_per_page=128)
        assert 0.001 < crossover < 0.006

    def test_crossover_semantics(self, model):
        """Below the crossover RID fetches win; above, scanning wins."""
        n, rpp = 100_000, 128
        pages = n // rpp
        crossover = model.scan_vs_rid_crossover(rpp)
        for factor, rid_wins in [(0.5, True), (2.0, False)]:
            k = n * crossover * factor
            scan = model.seq_scan(n, pages, k)
            rid = model.index_intersect([k], k, k, False)
            assert (rid < scan) == rid_wins


class TestEstimateMatchesExecution:
    """Estimated cost with exact cardinalities == simulated time."""

    def test_seq_scan(self, model):
        db = make_two_table_db()
        op = SeqScan("lineitem", col("lineitem.l_quantity") > 25)
        ctx = ExecutionContext(db)
        frame = op.execute(ctx)
        table = db.table("lineitem")
        estimated = model.seq_scan(table.num_rows, table.num_pages, frame.num_rows)
        assert model.time_from_counters(ctx.counters) == pytest.approx(estimated)

    def test_index_intersect(self, model):
        db = make_two_table_db()
        conditions = [
            IndexCondition("l_shipdate", 729100, 729200),
            IndexCondition("l_receiptdate", 729100, 729200),
        ]
        op = IndexIntersect("lineitem", conditions)
        ctx = ExecutionContext(db)
        frame = op.execute(ctx)
        entries = [
            db.sorted_index("lineitem", c.column).count_range(c.low, c.high)
            for c in conditions
        ]
        estimated = model.index_intersect(
            entries, frame.num_rows, frame.num_rows, False
        )
        assert model.time_from_counters(ctx.counters) == pytest.approx(estimated)
