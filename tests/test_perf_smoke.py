"""Fast tier-1 smoke of the perf benchmark harness.

Runs :func:`benchmarks.test_perf_runner.run_perf_comparison` at toy
scale so the tier-1 flow exercises the same three-arm comparison (and
the ``BENCH_runner.json`` schema) that the full ``perf``-marked
benchmark records at benchmark scale.
"""

import json

import pytest

from benchmarks.test_perf_runner import run_perf_comparison
from repro.workloads import ShippingDatesTemplate

pytestmark = pytest.mark.perf


def test_perf_comparison_smoke(tpch_db, tmp_path):
    template = ShippingDatesTemplate()
    params = template.params_for_targets(tpch_db, [0.0, 0.003, 0.006], step=4)
    payload = run_perf_comparison(
        tpch_db, template, params, seeds=(0, 1), sample_size=300, rounds=1
    )

    # The payload is JSON-serializable and carries the schema later
    # PRs diff against.
    text = json.dumps(payload)
    restored = json.loads(text)
    assert restored["identical_records"] is True
    assert restored["grid"]["records"] == 6 * len(params) * 2
    for arm in ("serial_uncached", "serial_cached", "parallel_cached"):
        stats = restored[arm]
        assert set(stats) >= {
            "workers",
            "execution_cache",
            "exec_cache_hits",
            "exec_cache_misses",
            "exec_cache_hit_rate",
            "estimate_cache_hits",
            "estimate_cache_misses",
            "stats_build_seconds",
            "optimize_seconds",
            "execute_seconds",
            "wall_seconds",
            "best_wall_seconds",
        }
    assert restored["serial_uncached"]["exec_cache_hit_rate"] == 0.0
    assert restored["serial_cached"]["exec_cache_hit_rate"] > 0.0
    (tmp_path / "BENCH_runner.json").write_text(text)
