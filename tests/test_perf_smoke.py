"""Fast tier-1 smoke of the perf benchmark harness.

Runs :func:`benchmarks.test_perf_runner.run_perf_comparison` and
:func:`benchmarks.test_threshold_vectorized.run_vectorization_comparison`
at toy scale so the tier-1 flow exercises the same arm comparisons
(and the ``BENCH_*.json`` schemas) that the full ``perf``-marked
benchmarks record at benchmark scale.
"""

import json

import pytest

from benchmarks.test_perf_runner import run_perf_comparison
from benchmarks.test_threshold_vectorized import run_vectorization_comparison
from repro.workloads import ShippingDatesTemplate

pytestmark = pytest.mark.perf


def test_perf_comparison_smoke(tpch_db, tmp_path):
    template = ShippingDatesTemplate()
    params = template.params_for_targets(tpch_db, [0.0, 0.003, 0.006], step=4)
    payload = run_perf_comparison(
        tpch_db, template, params, seeds=(0, 1), sample_size=300, rounds=1
    )

    # The payload is JSON-serializable and carries the schema later
    # PRs diff against.
    text = json.dumps(payload)
    restored = json.loads(text)
    assert restored["identical_records"] is True
    assert restored["grid"]["records"] == 6 * len(params) * 2
    for arm in (
        "serial_uncached",
        "serial_cached",
        "serial_vectorized",
        "parallel_cached",
    ):
        stats = restored[arm]
        assert set(stats) >= {
            "workers",
            "execution_cache",
            "exec_cache_hits",
            "exec_cache_misses",
            "exec_cache_hit_rate",
            "estimate_cache_hits",
            "estimate_cache_misses",
            "stats_build_seconds",
            "optimize_seconds",
            "execute_seconds",
            "wall_seconds",
            "best_wall_seconds",
        }
    assert restored["serial_uncached"]["exec_cache_hit_rate"] == 0.0
    assert restored["serial_cached"]["exec_cache_hit_rate"] > 0.0
    assert restored["serial_vectorized"]["vector_passes"] > 0
    assert restored["vectorized_planning_speedup"] > 0.0
    (tmp_path / "BENCH_runner.json").write_text(text)


def test_vectorization_comparison_smoke(tpch_db, tmp_path):
    template = ShippingDatesTemplate()
    params = template.params_for_targets(tpch_db, [0.0, 0.003, 0.006], step=4)
    payload = run_vectorization_comparison(
        tpch_db, template, params, seeds=(0, 1), sample_size=300, rounds=1
    )

    restored = json.loads(json.dumps(payload))
    assert restored["identical_records"] is True
    assert restored["grid"]["records"] == 5 * len(params) * 2
    assert restored["scalar"]["vector_passes"] == 0
    assert restored["vectorized"]["vector_passes"] == len(params) * 2
    assert restored["vectorized"]["lut_hits"] > 0
    assert restored["planning_speedup"] > 0.0
    (tmp_path / "BENCH_threshold_vectorized.json").write_text(
        json.dumps(payload)
    )
