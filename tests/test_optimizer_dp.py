"""Integration tests for the full optimizer (DP, joins, finalization)."""

import numpy as np
import pytest

from repro.core import ExactCardinalityEstimator, RobustCardinalityEstimator
from repro.cost import CostModel
from repro.engine import (
    AggregateSpec,
    ExecutionContext,
    HashJoin,
    IndexedNLJoin,
    MergeJoin,
)
from repro.errors import OptimizationError
from repro.expressions import col
from repro.optimizer import Optimizer, SPJQuery


@pytest.fixture
def optimizer(tpch_db):
    return Optimizer(tpch_db, ExactCardinalityEstimator(tpch_db))


def execute(db, planned):
    ctx = ExecutionContext(db)
    frame = planned.plan.execute(ctx)
    return frame, CostModel().time_from_counters(ctx.counters)


class TestSingleTable:
    def test_scan_chosen_at_high_selectivity(self, optimizer):
        query = SPJQuery(["lineitem"], col("lineitem.l_quantity") > 10)
        planned = optimizer.optimize(query)
        assert "SeqScan" in planned.plan.label()

    def test_index_chosen_at_low_selectivity(self, optimizer, tpch_db):
        # a 2-day window is far below the crossover
        query = SPJQuery(
            ["lineitem"],
            col("lineitem.l_shipdate").between("1997-07-01", "1997-07-02"),
        )
        planned = optimizer.optimize(query)
        assert "IndexSeek" in planned.plan.label()

    def test_correct_result_any_plan(self, optimizer, tpch_db):
        predicate = col("lineitem.l_shipdate").between("1997-07-01", "1997-07-31")
        query = SPJQuery(["lineitem"], predicate)
        planned = optimizer.optimize(query)
        frame, _ = execute(tpch_db, planned)
        truth = ExactCardinalityEstimator(tpch_db).estimate(
            {"lineitem"}, predicate
        )
        assert frame.num_rows == truth.cardinality


class TestJoins:
    def test_two_way_join_result_correct(self, optimizer, tpch_db):
        predicate = col("part.p_size") <= 10
        query = SPJQuery(["lineitem", "part"], predicate)
        planned = optimizer.optimize(query)
        frame, _ = execute(tpch_db, planned)
        truth = ExactCardinalityEstimator(tpch_db).estimate(
            {"lineitem", "part"}, predicate
        )
        assert frame.num_rows == truth.cardinality

    def test_three_way_join_result_correct(self, optimizer, tpch_db):
        predicate = (col("part.p_size") <= 10) & (
            col("orders.o_totalprice") > 100_000
        )
        query = SPJQuery(["lineitem", "orders", "part"], predicate)
        planned = optimizer.optimize(query)
        frame, _ = execute(tpch_db, planned)
        truth = ExactCardinalityEstimator(tpch_db).estimate(
            set(query.tables), predicate
        )
        assert frame.num_rows == truth.cardinality

    def test_four_way_chain_join(self, optimizer, tpch_db):
        query = SPJQuery(
            ["lineitem", "orders", "customer", "part"],
            col("customer.c_acctbal") > 0,
        )
        planned = optimizer.optimize(query)
        frame, _ = execute(tpch_db, planned)
        truth = ExactCardinalityEstimator(tpch_db).estimate(
            set(query.tables), query.predicate
        )
        assert frame.num_rows == truth.cardinality

    def test_indexed_nl_at_tiny_selectivity(self, optimizer):
        query = SPJQuery(["lineitem", "part"], col("part.p_partkey") == 3)
        planned = optimizer.optimize(query)
        kinds = {type(op) for op in planned.plan.walk()}
        assert IndexedNLJoin in kinds

    def test_merge_join_when_everything_joins(self, optimizer):
        query = SPJQuery(["lineitem", "orders"], None)
        planned = optimizer.optimize(query)
        kinds = {type(op) for op in planned.plan.walk()}
        # both clustered on the join keys: merge join should win
        assert MergeJoin in kinds

    def test_hash_join_builds_on_smaller_side(self, optimizer):
        query = SPJQuery(["lineitem", "part"], col("part.p_size") <= 25)
        planned = optimizer.optimize(query)
        hash_joins = [
            op for op in planned.plan.walk() if isinstance(op, HashJoin)
        ]
        for join in hash_joins:
            assert join.build.est_rows <= join.probe.est_rows


class TestCostConsistency:
    """With exact cardinalities, estimated cost == simulated time."""

    @pytest.mark.parametrize(
        "tables, predicate",
        [
            (["lineitem"], col("lineitem.l_quantity") > 30),
            (
                ["lineitem"],
                col("lineitem.l_shipdate").between("1997-07-01", "1997-07-05"),
            ),
            (["lineitem", "part"], col("part.p_size") <= 10),
            (
                ["lineitem", "orders", "part"],
                (col("part.p_size") <= 10)
                & (col("orders.o_totalprice") > 250_000),
            ),
        ],
    )
    def test_estimate_matches_execution(self, optimizer, tpch_db, tables, predicate):
        planned = optimizer.optimize(SPJQuery(tables, predicate))
        _, simulated = execute(tpch_db, planned)
        assert planned.estimated_cost == pytest.approx(simulated, rel=1e-6)

    def test_chosen_plan_is_cheapest_alternative(self, optimizer):
        query = SPJQuery(["lineitem", "part"], col("part.p_size") <= 10)
        planned = optimizer.optimize(query)
        costs = [candidate.cost for candidate in planned.alternatives]
        assert planned.estimated_cost <= min(costs) + 1e-12


class TestFinalization:
    def test_scalar_aggregate(self, optimizer, tpch_db):
        query = SPJQuery(
            ["lineitem"],
            col("lineitem.l_quantity") > 45,
            aggregates=[AggregateSpec("sum", "lineitem.l_extendedprice", "rev")],
        )
        planned = optimizer.optimize(query)
        frame, _ = execute(tpch_db, planned)
        assert frame.num_rows == 1
        table = tpch_db.table("lineitem")
        mask = table.column("l_quantity") > 45
        assert frame.column("rev")[0] == pytest.approx(
            table.column("l_extendedprice")[mask].sum()
        )

    def test_group_by(self, optimizer, tpch_db):
        query = SPJQuery(
            ["lineitem"],
            None,
            aggregates=[AggregateSpec("count", "*", "n")],
            group_by=["lineitem.l_partkey"],
        )
        planned = optimizer.optimize(query)
        frame, _ = execute(tpch_db, planned)
        truth = len(np.unique(tpch_db.table("lineitem").column("l_partkey")))
        assert frame.num_rows == truth

    def test_projection(self, optimizer, tpch_db):
        query = SPJQuery(
            ["lineitem"],
            col("lineitem.l_quantity") > 45,
            projection=["lineitem.l_linenumber"],
        )
        planned = optimizer.optimize(query)
        frame, _ = execute(tpch_db, planned)
        assert frame.column_names == ["lineitem.l_linenumber"]

    def test_estimation_call_count_reported(self, optimizer):
        query = SPJQuery(["lineitem", "part"], col("part.p_size") <= 10)
        planned = optimizer.optimize(query)
        assert planned.estimation_calls > 0

    def test_explain_output(self, optimizer):
        query = SPJQuery(["lineitem", "part"], col("part.p_size") <= 10)
        planned = optimizer.optimize(query)
        text = planned.explain()
        assert "rows=" in text and "cost=" in text


class TestRobustIntegration:
    def test_robust_estimator_plugs_in(self, tpch_db, tpch_stats):
        """The whole point: only the estimator changes."""
        estimator = RobustCardinalityEstimator(tpch_stats, policy=0.8)
        optimizer = Optimizer(tpch_db, estimator)
        query = SPJQuery(
            ["lineitem"],
            col("lineitem.l_shipdate").between("1997-07-01", "1997-09-30")
            & col("lineitem.l_receiptdate").between("1997-07-01", "1997-09-30"),
        )
        planned = optimizer.optimize(query)
        frame, _ = execute(tpch_db, planned)
        truth = ExactCardinalityEstimator(tpch_db).estimate(
            {"lineitem"}, query.predicate
        )
        assert frame.num_rows == truth.cardinality  # plans never change results

    def test_query_hint_respected(self, tpch_db, tpch_stats):
        estimator = RobustCardinalityEstimator(tpch_stats, policy=0.5)
        optimizer = Optimizer(tpch_db, estimator)
        predicate = col("lineitem.l_shipdate").between("1997-07-01", "1997-09-30")
        rows_by_hint = {}
        for hint in (0.05, 0.95):
            planned = optimizer.optimize(
                SPJQuery(["lineitem"], predicate, hint=hint)
            )
            rows_by_hint[hint] = planned.estimated_rows
        assert rows_by_hint[0.05] < rows_by_hint[0.95]


class TestPlanningDiagnostics:
    def test_estimates_exposed(self, optimizer):
        query = SPJQuery(["lineitem", "part"], col("part.p_size") <= 10)
        planned = optimizer.optimize(query)
        assert planned.estimates
        tables_seen = {key[0] for key in planned.estimates}
        assert frozenset({"lineitem", "part"}) in tables_seen

    def test_robust_estimates_carry_posteriors(self, tpch_db, tpch_stats):
        estimator = RobustCardinalityEstimator(tpch_stats, policy=0.8)
        planned = Optimizer(tpch_db, estimator).optimize(
            SPJQuery(["lineitem"], col("lineitem.l_quantity") > 40)
        )
        posteriors = [
            estimate.posterior
            for estimate in planned.estimates.values()
            if estimate.posterior is not None
        ]
        assert posteriors
        for posterior in posteriors:
            low, high = posterior.credible_interval(0.9)
            assert 0 <= low <= high <= 1
