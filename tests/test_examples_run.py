"""Smoke tests: every shipped example runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))

EXPECTED_MARKERS = {
    "quickstart.py": "selectivity is a distribution",
    "tpch_correlated_dates.py": "histogram estimate never moves",
    "star_join_robustness.py": "SemiJoin",
    "threshold_tuning.py": "recommend",
    "plan_sensitivity.py": "Sensitivity sweep",
    "session_service.py": "plan cache",
    "sql_tour.py": "simulated",
}


def test_all_examples_covered():
    """Every example file has an expectation registered here."""
    assert set(EXAMPLES) == set(EXPECTED_MARKERS)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert EXPECTED_MARKERS[name] in completed.stdout
