"""Unit tests for the Beta posterior, including the paper's worked numbers."""

import numpy as np
import pytest
from scipy import integrate

from repro.core import (
    JEFFREYS,
    UNIFORM,
    BetaQuantileTable,
    Prior,
    SelectivityPosterior,
    quantile_table,
)
from repro.errors import EstimationError


class TestShapes:
    def test_jeffreys_shapes_match_equation_2(self):
        """Paper Eq. (2): posterior is Beta(k + 1/2, n − k + 1/2)."""
        posterior = SelectivityPosterior(10, 100)
        assert posterior.alpha == 10.5
        assert posterior.beta == 90.5

    def test_uniform_prior_shapes(self):
        posterior = SelectivityPosterior(10, 100, UNIFORM)
        assert posterior.alpha == 11.0
        assert posterior.beta == 91.0

    def test_section_3_4_worked_example(self):
        """Paper Section 3.4: 10 of 100 sampled tuples satisfy; the
        density is ∝ z^9.5 (1−z)^89.5 and thresholds 20/50/80 % give
        estimates 7.8 %, 10.1 %, 12.8 %."""
        posterior = SelectivityPosterior(10, 100)
        assert posterior.ppf(0.20) == pytest.approx(0.078, abs=0.002)
        assert posterior.ppf(0.50) == pytest.approx(0.101, abs=0.002)
        assert posterior.ppf(0.80) == pytest.approx(0.128, abs=0.002)


class TestDistributionBasics:
    def test_pdf_integrates_to_one(self):
        posterior = SelectivityPosterior(5, 50)
        total, _ = integrate.quad(posterior.pdf, 0, 1)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_cdf_monotone(self):
        posterior = SelectivityPosterior(5, 50)
        grid = np.linspace(0, 1, 101)
        cdf = posterior.cdf(grid)
        assert (np.diff(cdf) >= 0).all()
        assert cdf[0] == pytest.approx(0.0)
        assert cdf[-1] == pytest.approx(1.0)

    def test_ppf_inverts_cdf(self):
        posterior = SelectivityPosterior(25, 200)
        for t in (0.05, 0.5, 0.95):
            assert posterior.cdf(posterior.ppf(t)) == pytest.approx(t, abs=1e-9)

    def test_ppf_vectorized(self):
        posterior = SelectivityPosterior(25, 200)
        out = posterior.ppf(np.array([0.2, 0.8]))
        assert out.shape == (2,)
        assert out[0] < out[1]

    def test_ppf_monotone_in_threshold(self):
        posterior = SelectivityPosterior(3, 100)
        thresholds = np.linspace(0.01, 0.99, 25)
        estimates = posterior.ppf(thresholds)
        assert (np.diff(estimates) > 0).all()

    def test_ppf_bounds_raise(self):
        posterior = SelectivityPosterior(3, 100)
        with pytest.raises(EstimationError):
            posterior.ppf(0.0)
        with pytest.raises(EstimationError):
            posterior.ppf(1.0)


class TestSummaries:
    def test_mean_formula(self):
        posterior = SelectivityPosterior(10, 100)
        assert posterior.mean == pytest.approx(10.5 / 101.0)

    def test_mle(self):
        assert SelectivityPosterior(10, 100).mle == 0.1

    def test_variance_positive_and_shrinks_with_n(self):
        small = SelectivityPosterior(10, 100)
        large = SelectivityPosterior(100, 1000)
        assert small.variance > large.variance > 0
        assert small.std == pytest.approx(np.sqrt(small.variance))

    def test_credible_interval(self):
        posterior = SelectivityPosterior(50, 500)
        low, high = posterior.credible_interval(0.95)
        assert low < posterior.mean < high
        assert posterior.cdf(high) - posterior.cdf(low) == pytest.approx(0.95)

    def test_credible_interval_bad_level_raises(self):
        with pytest.raises(EstimationError):
            SelectivityPosterior(1, 10).credible_interval(1.5)


class TestPaperFigure4Claims:
    def test_prior_choice_barely_matters(self):
        """Figure 4: Jeffreys vs uniform posteriors nearly identical."""
        jeffreys = SelectivityPosterior(10, 100, JEFFREYS)
        uniform = SelectivityPosterior(10, 100, UNIFORM)
        grid = np.linspace(0.01, 0.3, 50)
        assert np.max(np.abs(jeffreys.cdf(grid) - uniform.cdf(grid))) < 0.06
        # in estimate terms the two differ by well under a selectivity point
        for t in (0.2, 0.5, 0.8):
            assert abs(jeffreys.ppf(t) - uniform.ppf(t)) < 0.005

    def test_sample_size_matters(self):
        """Figure 4: n=500 posterior is much tighter than n=100."""
        small = SelectivityPosterior(10, 100)
        large = SelectivityPosterior(50, 500)
        assert large.std < small.std / 1.8

    def test_zero_satisfying_tuples_leaves_uncertainty(self):
        """Even k=0 leaves a nonzero upper tail — the source of the
        self-adjusting behaviour of Section 6.2.4."""
        posterior = SelectivityPosterior(0, 1000)
        assert posterior.ppf(0.95) > 0.0015

    def test_extreme_counts(self):
        lo = SelectivityPosterior(0, 100)
        hi = SelectivityPosterior(100, 100)
        assert lo.ppf(0.5) < 0.01
        assert hi.ppf(0.5) > 0.99


class TestQuantileTable:
    """The precomputed beta-quantile table must agree with ``ppf``.

    ``betaincinv`` is a ufunc, so the bulk table evaluation and the
    scalar ``ppf`` path are the same elementwise computation — the
    agreement below is exact equality, not approximate.
    """

    GRID = (0.01, 0.05, 0.20, 0.50, 0.80, 0.95, 0.99)

    @pytest.mark.parametrize("prior", [JEFFREYS, UNIFORM], ids=["jeffreys", "uniform"])
    @pytest.mark.parametrize("n", [1, 10, 100])
    def test_rows_match_ppf_at_every_count(self, n, prior):
        table = quantile_table(n, prior, self.GRID)
        for k in range(n + 1):
            posterior = SelectivityPosterior(k, n, prior)
            row = table.row(k)
            for j, t in enumerate(self.GRID):
                assert row[j] == posterior.ppf(t)

    @pytest.mark.parametrize("prior", [JEFFREYS, UNIFORM], ids=["jeffreys", "uniform"])
    @pytest.mark.parametrize("k", [0, 100])
    def test_edge_counts_at_extreme_thresholds(self, k, prior):
        """k=0 and k=n at thresholds 0.01/0.99 — the corners where a
        naive table could underflow or clip."""
        n = 100
        posterior = SelectivityPosterior(k, n, prior)
        row = quantile_table(n, prior, (0.01, 0.99)).row(k)
        assert row[0] == posterior.ppf(0.01)
        assert row[1] == posterior.ppf(0.99)
        assert 0.0 <= row[0] < row[1] <= 1.0

    def test_ppf_vector_matches_scalar_ppf(self):
        posterior = SelectivityPosterior(7, 200)
        out = posterior.ppf_vector(self.GRID)
        assert out.shape == (len(self.GRID),)
        for j, t in enumerate(self.GRID):
            assert out[j] == posterior.ppf(t)

    def test_rows_monotone_in_k_and_threshold(self):
        table = quantile_table(50, JEFFREYS, self.GRID)
        assert (np.diff(table.table, axis=0) > 0).all()  # more hits, more rows
        assert (np.diff(table.table, axis=1) > 0).all()  # higher T, more rows

    def test_cache_returns_same_object(self):
        a = quantile_table(64, JEFFREYS, (0.2, 0.8))
        b = quantile_table(64, JEFFREYS, (0.2, 0.8))
        assert a is b
        assert a is not quantile_table(64, UNIFORM, (0.2, 0.8))

    def test_validation(self):
        with pytest.raises(EstimationError):
            BetaQuantileTable(0, JEFFREYS, (0.5,))
        with pytest.raises(EstimationError):
            BetaQuantileTable(10, JEFFREYS, ())
        with pytest.raises(EstimationError):
            BetaQuantileTable(10, JEFFREYS, (0.0, 0.5))
        with pytest.raises(EstimationError):
            BetaQuantileTable(10, JEFFREYS, (0.5, 1.0))
        table = BetaQuantileTable(10, JEFFREYS, (0.5,))
        with pytest.raises(EstimationError):
            table.row(11)
        with pytest.raises(EstimationError):
            table.row(-1)


class TestValidation:
    def test_bad_counts_raise(self):
        with pytest.raises(EstimationError):
            SelectivityPosterior(-1, 10)
        with pytest.raises(EstimationError):
            SelectivityPosterior(11, 10)
        with pytest.raises(EstimationError):
            SelectivityPosterior(0, 0)

    def test_custom_prior(self):
        prior = Prior.informative(0.2, 8.0)
        posterior = SelectivityPosterior(0, 10, prior)
        assert posterior.alpha == pytest.approx(1.6)

    def test_repr(self):
        assert "Beta(10.5, 90.5)" in repr(SelectivityPosterior(10, 100))
