"""Zero-copy execution: selection-vector frames, projection pruning,
and the shared scan cache.

Three contracts under test:

1. Lazy (selection-vector) frames are bit-identical to the historical
   eager frames — same values, same dtypes — across every operator,
   including the >1M-row and all-duplicate-key edge cases.
2. Laziness actually prunes work: columns nothing reads are never
   materialized.
3. The scan cache reuses base scans across plan executions while
   charging the exact same :class:`WorkCounters` — the simulation's
   unit of account — so experiment records don't depend on the cache.
"""

import numpy as np
import pytest

from repro.engine import (
    ExecOptions,
    ExecutionContext,
    HashAggregate,
    HashJoin,
    IndexIntersect,
    IndexSeek,
    IndexUnionSeek,
    IndexedNLJoin,
    Limit,
    MergeJoin,
    ScanCache,
    SeqScan,
    Sort,
    StarSemiJoin,
)
from repro.engine.aggregate import AggregateSpec
from repro.engine.scans import IndexCondition
from repro.engine.star import DimensionSpec
from repro.errors import ExpressionError
from repro.expressions import Frame, col

from tests.conftest import make_two_table_db


@pytest.fixture(scope="module")
def db():
    return make_two_table_db(n_part=60, n_lineitem=3000)


def assert_frames_identical(a: Frame, b: Frame):
    assert a.column_names == b.column_names
    assert a.num_rows == b.num_rows
    for name in a.column_names:
        x, y = a.column(name), b.column(name)
        assert x.dtype == y.dtype, name
        np.testing.assert_array_equal(x, y, err_msg=name)


def run_both(op, db):
    """Execute one plan eagerly and lazily; return both (frame, counters)."""
    lazy_ctx = ExecutionContext(db, ExecOptions(lazy_frames=True))
    eager_ctx = ExecutionContext(db, ExecOptions.eager())
    return (
        op.execute(lazy_ctx),
        lazy_ctx.counters,
        op.execute(eager_ctx),
        eager_ctx.counters,
    )


class TestLazyFrameBasics:
    def test_mask_composes_without_materializing(self):
        frame = Frame.from_table_rows(
            _table(), np.arange(50), lazy=True
        )
        out = frame.mask(np.arange(50) % 2 == 0)
        assert out.is_lazy
        assert out.num_rows == 25
        assert out.materialized_columns == []

    def test_column_read_memoizes_and_matches_eager(self):
        frame = _lazy_pair()[0]
        eager = _lazy_pair()[1]
        out = frame.take(np.array([5, 3, 3, 0]))
        expected = eager.take(np.array([5, 3, 3, 0]))
        assert out.materialized_columns == []
        np.testing.assert_array_equal(out.column("t.a"), expected.column("t.a"))
        assert out.materialized_columns == ["t.a"]
        # Second read returns the memoized array object.
        assert out.column("t.a") is out.column("t.a")

    def test_take_rejects_boolean_row_ids(self):
        frame = _lazy_pair()[0]
        with pytest.raises(ExpressionError, match="positions"):
            frame.take(np.array([True] * frame.num_rows))

    def test_empty_selection(self):
        lazy, eager = _lazy_pair()
        keep = np.zeros(lazy.num_rows, dtype=bool)
        assert_frames_identical(lazy.mask(keep).eager(), eager.mask(keep))

    def test_all_duplicate_positions(self):
        lazy, eager = _lazy_pair()
        rows = np.zeros(1000, dtype=np.int64)
        assert_frames_identical(lazy.take(rows).eager(), eager.take(rows))

    def test_chained_compositions_match(self):
        lazy, eager = _lazy_pair()
        rng = np.random.default_rng(0)
        keep = rng.random(lazy.num_rows) < 0.5
        l1, e1 = lazy.mask(keep), eager.mask(keep)
        rows = rng.integers(0, l1.num_rows, 37)
        assert_frames_identical(l1.take(rows).eager(), e1.take(rows))

    def test_select_prunes_sources(self):
        lazy = _lazy_pair()[0]
        out = lazy.select(["t.b"])
        assert out.column_names == ["t.b"]
        assert out.is_lazy

    def test_merge_of_lazy_and_eager_is_lazy(self):
        lazy = _lazy_pair()[0]
        other = Frame({"v.x": np.arange(lazy.num_rows)})
        merged = lazy.merged_with(other)
        assert merged.is_lazy
        # The eager side's columns are already materialized, the lazy
        # side's are not.
        assert "v.x" in merged.materialized_columns

    def test_million_row_mask_bit_identical(self):
        n = 1_200_000
        rng = np.random.default_rng(1)
        base = {
            "t.x": rng.integers(0, 1000, n),
            "t.y": rng.uniform(0, 1, n),
        }
        lazy = Frame(base, lazy=True)
        eager = Frame(base)
        keep = base["t.x"] % 3 == 0
        assert_frames_identical(lazy.mask(keep).eager(), eager.mask(keep))


def _table():
    return make_two_table_db(n_part=50, n_lineitem=200).table("part")


def _lazy_pair():
    rng = np.random.default_rng(42)
    columns = {
        "t.a": rng.integers(0, 100, 400),
        "t.b": rng.uniform(0, 1, 400),
        "u.c": rng.choice(["x", "y", "z"], 400),
    }
    return Frame(columns, lazy=True), Frame(columns)


def scan_part(pred=True):
    return SeqScan("part", col("part.p_size") <= 25 if pred else None)


def scan_lineitem(pred=True):
    return SeqScan("lineitem", col("lineitem.l_quantity") > 20 if pred else None)


OPERATORS = {
    "seqscan": lambda: scan_lineitem(),
    "indexseek": lambda: IndexSeek(
        "lineitem",
        IndexCondition("l_shipdate", 729050, 729250),
        residual=col("lineitem.l_quantity") > 10,
    ),
    "indexunion": lambda: IndexUnionSeek(
        "lineitem", "l_partkey", [3, 9, 27], residual=col("lineitem.l_quantity") > 5
    ),
    "indexintersect": lambda: IndexIntersect(
        "lineitem",
        [
            IndexCondition("l_shipdate", 729050, 729250),
            IndexCondition("l_receiptdate", 729100, 729300),
        ],
    ),
    "hashjoin": lambda: HashJoin(
        scan_part(), scan_lineitem(), "part.p_partkey", "lineitem.l_partkey"
    ),
    "mergejoin": lambda: MergeJoin(
        scan_part(), scan_lineitem(), "part.p_partkey", "lineitem.l_partkey"
    ),
    "indexednljoin": lambda: IndexedNLJoin(
        scan_part(),
        "lineitem",
        "part.p_partkey",
        "l_partkey",
        residual=col("lineitem.l_quantity") > 15,
    ),
    "sort-limit": lambda: Limit(
        Sort(scan_lineitem(), ["lineitem.l_quantity", "lineitem.l_id"]), 40
    ),
    "aggregate": lambda: HashAggregate(
        scan_lineitem(),
        [
            AggregateSpec("sum", "lineitem.l_quantity", "qty"),
            AggregateSpec("count", "*", "n"),
            AggregateSpec("min", "lineitem.l_shipdate", "first_ship"),
            AggregateSpec("max", "lineitem.l_shipdate", "last_ship"),
            AggregateSpec("avg", "lineitem.l_quantity", "avg_qty"),
        ],
        group_by=["lineitem.l_partkey"],
    ),
}


class TestOperatorBitIdentity:
    @pytest.mark.parametrize("name", sorted(OPERATORS))
    def test_lazy_matches_eager(self, db, name):
        lazy_frame, lazy_counters, eager_frame, eager_counters = run_both(
            OPERATORS[name](), db
        )
        assert_frames_identical(lazy_frame.eager(), eager_frame)
        assert lazy_counters.as_dict() == eager_counters.as_dict()

    def test_star_semijoin_lazy_matches_eager(self, star_db):
        window = 100
        op = StarSemiJoin(
            "fact",
            semi_dims=[
                DimensionSpec(
                    "dim1", "f_dim1key", col("dim1.d_attr") <= window - 1
                ),
                DimensionSpec(
                    "dim2",
                    "f_dim2key",
                    (col("dim2.d_attr") >= 10) & (col("dim2.d_attr") <= window + 9),
                ),
            ],
            hash_dims=[
                DimensionSpec(
                    "dim3", "f_dim3key", col("dim3.d_attr") <= window - 1
                )
            ],
        )
        lazy_frame, lazy_counters, eager_frame, eager_counters = run_both(
            op, star_db
        )
        assert_frames_identical(lazy_frame.eager(), eager_frame)
        assert lazy_counters.as_dict() == eager_counters.as_dict()


class TestProjectionPruning:
    def test_filtered_scan_materializes_nothing_downstream(self, db):
        ctx = ExecutionContext(db)
        frame = scan_lineitem().execute(ctx)
        # The predicate read l_quantity on the *input* frame; the
        # output is a fresh composition with no gathered columns.
        assert frame.is_lazy
        assert frame.materialized_columns == []

    def test_join_gathers_only_touched_columns(self, db):
        op = HashJoin(
            scan_part(), scan_lineitem(), "part.p_partkey", "lineitem.l_partkey"
        )
        ctx = ExecutionContext(db)
        result = op.execute(ctx)
        # The join only gathered its key columns on the *inputs*; the
        # merged output starts unmaterialized.
        assert result.materialized_columns == []
        result.column("lineitem.l_quantity")
        assert result.materialized_columns == ["lineitem.l_quantity"]

    def test_eager_mode_still_materializes_everything(self, db):
        ctx = ExecutionContext(db, ExecOptions.eager())
        frame = scan_lineitem().execute(ctx)
        assert not frame.is_lazy
        assert set(frame.materialized_columns) == set(frame.column_names)


class TestScanCache:
    def test_repeat_scans_hit(self, db):
        cache = ScanCache()
        options = ExecOptions(scan_cache=cache)
        op = scan_lineitem()
        first = op.execute(ExecutionContext(db, options))
        second = op.execute(ExecutionContext(db, options))
        assert cache.hits == 1 and cache.misses == 1
        assert second is first  # the memoized frame itself

    def test_counters_identical_hot_and_cold(self, db):
        cache = ScanCache()
        options = ExecOptions(scan_cache=cache)
        for make in OPERATORS.values():
            op = make()
            cold = ExecutionContext(db, options)
            op.execute(cold)
            warm = ExecutionContext(db, options)
            op.execute(warm)
            assert cold.counters.as_dict() == warm.counters.as_dict(), op.label()
        assert cache.hits > 0

    def test_different_predicates_do_not_collide(self, db):
        cache = ScanCache()
        options = ExecOptions(scan_cache=cache)
        a = SeqScan("lineitem", col("lineitem.l_quantity") > 20)
        b = SeqScan("lineitem", col("lineitem.l_quantity") > 30)
        fa = a.execute(ExecutionContext(db, options))
        fb = b.execute(ExecutionContext(db, options))
        assert cache.hits == 0 and cache.misses == 2
        assert fa.num_rows != fb.num_rows

    def test_lazy_and_eager_entries_are_distinct(self, db):
        cache = ScanCache()
        op = scan_lineitem()
        lazy = op.execute(
            ExecutionContext(db, ExecOptions(lazy_frames=True, scan_cache=cache))
        )
        eager = op.execute(
            ExecutionContext(db, ExecOptions(lazy_frames=False, scan_cache=cache))
        )
        assert cache.misses == 2 and cache.hits == 0
        assert lazy.is_lazy and not eager.is_lazy

    def test_cache_pinned_to_first_database(self, db):
        cache = ScanCache()
        op = scan_lineitem()
        op.execute(ExecutionContext(db, ExecOptions(scan_cache=cache)))
        other = make_two_table_db(n_part=60, n_lineitem=3000)
        # Same content, different Database object: the cache must not
        # serve (it cannot prove the data is the same), and must not
        # poison itself either.
        frame = op.execute(ExecutionContext(other, ExecOptions(scan_cache=cache)))
        assert cache.hits == 0
        assert frame.num_rows > 0

    def test_index_error_not_cached(self, db):
        from repro.errors import ExecutionError

        cache = ScanCache()
        options = ExecOptions(scan_cache=cache)
        bad = IndexSeek("lineitem", IndexCondition("l_quantity", 0, 10))
        for _ in range(2):
            with pytest.raises(ExecutionError, match="no index"):
                bad.execute(ExecutionContext(db, options))
        assert len(cache) == 0


class TestExperimentRecordsUnchanged:
    """The scan cache must be invisible in experiment records."""

    def test_runner_records_bit_identical(self, tpch_db):
        from repro.experiments import ExperimentRunner
        from repro.workloads import ShippingDatesTemplate

        template = ShippingDatesTemplate()
        params = template.params_for_targets(tpch_db, [0.002, 0.008], step=4)

        def run(scan_cache):
            # Disable the plan-execution cache so repeated executions
            # actually reach the scans — otherwise the exec cache
            # absorbs every repeat and the scan cache sees no traffic.
            runner = ExperimentRunner(
                tpch_db,
                template,
                sample_size=200,
                seeds=[0],
                workers=1,
                execution_cache=False,
                scan_cache=scan_cache,
            )
            return runner.run(params)

        cached, uncached = run(True), run(False)
        assert cached.records == uncached.records
        assert cached.perf.scan_cache_hits > 0
        assert uncached.perf.scan_cache_hits == 0
        d = cached.perf.as_dict()
        assert d["scan_cache"] is True
        assert d["scan_cache_hit_rate"] > 0

    def test_session_prepared_reexecution_reuses_scans(self, tpch_db):
        from repro.service import Session

        session = Session(tpch_db, sample_size=200)
        query = (
            "SELECT COUNT(*) FROM lineitem "
            "WHERE lineitem.l_quantity > 30"
        )
        prepared = session.prepare(query)
        first = prepared.execute()
        second = prepared.execute()
        assert first.simulated_seconds == second.simulated_seconds
        assert_frames_identical(first.frame.eager(), second.frame.eager())
        assert session._scan_cache.hits > 0
