"""API-surface snapshot: the public contract, pinned.

CI runs this file as its own job. If a change here is intentional,
update the snapshot constants in the same commit — that turns silent
API drift into an explicit, reviewable diff.
"""

import importlib
import inspect

import pytest

import repro


#: The exported surface of ``import repro``. Additions and removals
#: must update this list deliberately.
PUBLIC_API = sorted(
    [
        # facade
        "Session",
        "SessionConfig",
        "PreparedQuery",
        "QueryResult",
        "PlanCache",
        "query_fingerprint",
        # multi-tenant serving
        "AdmissionConfig",
        "LoadConfig",
        "QueryServer",
        "ServedQuery",
        "TenantSpec",
        "run_load",
        # catalog
        "Column",
        "ColumnType",
        "Database",
        "ForeignKey",
        "Schema",
        "Table",
        "date_ordinal",
        "ordinal_date",
        # estimation
        "CardinalityEstimate",
        "CardinalityEstimator",
        "ExactCardinalityEstimator",
        "HistogramCardinalityEstimator",
        "Prior",
        "RobustCardinalityEstimator",
        "resolve_threshold",
        # plan selection policies
        "SelectionPolicy",
        "ThresholdPolicy",
        "PenaltyPolicy",
        "HistogramPolicy",
        "resolve_policy",
        # optimization & costing
        "CostModel",
        "LeastExpectedCostOptimizer",
        "Optimizer",
        "PlannedQuery",
        "SPJQuery",
        # SQL front-end
        "parse_predicate",
        "parse_query",
        "query_to_sql",
        # statistics lifecycle
        "StatisticsManager",
        "load_statistics",
        "save_statistics",
        # estimation feedback loop
        "FeedbackConfig",
        "FeedbackStore",
        "SessionFeedback",
        # experiments & observability
        "EstimatorConfig",
        "ExperimentRunner",
        "MetricsRegistry",
        "Tracer",
        # expression building
        "col",
        "lit",
        "__version__",
    ]
)

#: Former top-level names now behind a deprecation shim.
DEPRECATED = sorted(
    [
        "AGGRESSIVE",
        "CONSERVATIVE",
        "MODERATE",
        "JEFFREYS",
        "UNIFORM",
        "ConfidencePolicy",
        "SelectivityPosterior",
    ]
)


def _params(func) -> list:
    """(name, kind, has_default) per parameter, self excluded."""
    return [
        (p.name, p.kind.name, p.default is not inspect.Parameter.empty)
        for p in inspect.signature(func).parameters.values()
        if p.name != "self"
    ]


class TestAllSnapshot:
    def test_all_matches_snapshot(self):
        assert sorted(repro.__all__) == PUBLIC_API

    def test_every_export_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_dir_covers_exports_and_deprecated(self):
        listing = dir(repro)
        for name in PUBLIC_API + DEPRECATED:
            assert name in listing

    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2


class TestDeprecatedShims:
    @pytest.mark.parametrize("name", DEPRECATED)
    def test_warns_and_resolves(self, name):
        with pytest.warns(DeprecationWarning, match=name):
            value = getattr(repro, name)
        assert value is not None
        # The shim serves the same object the new home exports.
        core = importlib.import_module("repro.core")
        assert value is getattr(core, name)

    def test_deprecated_names_stay_out_of_all(self):
        assert not set(DEPRECATED) & set(repro.__all__)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist


class TestSessionSignatures:
    """The facade's call shapes, pinned parameter by parameter."""

    def test_session_init(self):
        assert _params(repro.Session.__init__) == [
            ("database", "POSITIONAL_OR_KEYWORD", False),
            ("statistics", "KEYWORD_ONLY", True),
            ("config", "KEYWORD_ONLY", True),
            ("cost_model", "KEYWORD_ONLY", True),
            ("metrics", "KEYWORD_ONLY", True),
            ("overrides", "VAR_KEYWORD", False),
        ]

    def test_prepare(self):
        assert _params(repro.Session.prepare) == [
            ("query", "POSITIONAL_OR_KEYWORD", False),
            ("threshold", "POSITIONAL_OR_KEYWORD", True),
            ("policy", "KEYWORD_ONLY", True),
        ]

    def test_prepare_many(self):
        assert _params(repro.Session.prepare_many) == [
            ("query", "POSITIONAL_OR_KEYWORD", False),
            ("thresholds", "POSITIONAL_OR_KEYWORD", False),
        ]

    def test_execute(self):
        assert _params(repro.Session.execute) == [
            ("query", "POSITIONAL_OR_KEYWORD", False),
            ("threshold", "POSITIONAL_OR_KEYWORD", True),
            ("policy", "KEYWORD_ONLY", True),
        ]

    def test_explain(self):
        assert _params(repro.Session.explain) == [
            ("query", "POSITIONAL_OR_KEYWORD", False),
            ("threshold", "POSITIONAL_OR_KEYWORD", True),
            ("analyze", "POSITIONAL_OR_KEYWORD", True),
            ("policy", "KEYWORD_ONLY", True),
        ]

    def test_trace_query(self):
        assert _params(repro.Session.trace_query) == [
            ("query", "POSITIONAL_OR_KEYWORD", False),
            ("threshold", "POSITIONAL_OR_KEYWORD", True),
            ("execute", "POSITIONAL_OR_KEYWORD", True),
            ("label", "POSITIONAL_OR_KEYWORD", True),
            ("policy", "KEYWORD_ONLY", True),
        ]

    def test_session_config_fields(self):
        import dataclasses

        fields = [f.name for f in dataclasses.fields(repro.SessionConfig)]
        assert fields == [
            "estimator",
            "threshold",
            "prior",
            "sample_size",
            "histogram_buckets",
            "statistics_seed",
            "plan_cache_size",
            "cache_stripes",
            "enable_star_plans",
            "policy",
        ]


class TestServingSignatures:
    """The serving layer's call shapes, pinned like the facade's."""

    def test_query_server_init(self):
        assert _params(repro.QueryServer.__init__) == [
            ("tenants", "POSITIONAL_OR_KEYWORD", False),
            ("worker_threads", "KEYWORD_ONLY", True),
            ("admission", "KEYWORD_ONLY", True),
            ("metrics", "KEYWORD_ONLY", True),
            ("service_time_floor", "KEYWORD_ONLY", True),
            ("service_time_scale", "KEYWORD_ONLY", True),
            ("service_time_cap", "KEYWORD_ONLY", True),
        ]

    def test_submit(self):
        assert _params(repro.QueryServer.submit) == [
            ("tenant", "POSITIONAL_OR_KEYWORD", False),
            ("query", "POSITIONAL_OR_KEYWORD", False),
            ("threshold", "KEYWORD_ONLY", True),
            ("policy", "KEYWORD_ONLY", True),
            ("execute", "KEYWORD_ONLY", True),
        ]

    def test_serve(self):
        assert _params(repro.QueryServer.serve) == [
            ("tenant", "POSITIONAL_OR_KEYWORD", False),
            ("query", "POSITIONAL_OR_KEYWORD", False),
            ("threshold", "KEYWORD_ONLY", True),
            ("policy", "KEYWORD_ONLY", True),
            ("execute", "KEYWORD_ONLY", True),
            ("max_retries", "KEYWORD_ONLY", True),
            ("backoff_seconds", "KEYWORD_ONLY", True),
            ("backoff_cap", "KEYWORD_ONLY", True),
            ("timeout", "KEYWORD_ONLY", True),
        ]

    def test_swap_statistics(self):
        assert _params(repro.QueryServer.swap_statistics) == [
            ("tenant", "POSITIONAL_OR_KEYWORD", False),
            ("source", "POSITIONAL_OR_KEYWORD", False),
        ]

    def test_tenant_spec_fields(self):
        import dataclasses

        fields = [f.name for f in dataclasses.fields(repro.TenantSpec)]
        assert fields == [
            "name",
            "database",
            "config",
            "statistics",
            "feedback",
            "policy",
        ]

    def test_admission_config_fields(self):
        import dataclasses

        fields = [f.name for f in dataclasses.fields(repro.AdmissionConfig)]
        assert fields == ["global_limit", "tenant_queue_depth"]

    def test_served_query_fields(self):
        import dataclasses

        fields = [f.name for f in dataclasses.fields(repro.ServedQuery)]
        assert fields == [
            "tenant",
            "latency_seconds",
            "plan_cached",
            "statistics_version",
            "degraded_reason",
            "rows",
            "simulated_seconds",
            "stale",
        ]


class TestPreparedQuerySurface:
    REQUIRED = {
        "sql",
        "plan",
        "estimated_cost",
        "estimated_rows",
        "threshold",
        "policy",
        "selection",
        "statistics_version",
        "from_cache",
        "fingerprint",
        "is_stale",
        "execute",
        "explain",
    }

    def test_prepared_query_members(self):
        members = set(dir(repro.PreparedQuery))
        missing = self.REQUIRED - members - {
            # instance attributes assigned in __init__
            "threshold",
            "policy",
            "statistics_version",
            "from_cache",
            "fingerprint",
        }
        assert not missing, missing

    def test_query_result_members(self):
        members = set(dir(repro.QueryResult))
        assert {"num_rows", "column", "column_names"} <= members
