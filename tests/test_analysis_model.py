"""Unit tests for the Section 5 analytical cost model."""

import numpy as np
import pytest

from repro.analysis import (
    LinearCostPlan,
    PlanCostModel,
    figure2_plans,
    high_crossover_model,
    paper_default_model,
)
from repro.errors import ReproError


class TestLinearCostPlan:
    def test_cost(self):
        plan = LinearCostPlan("p", fixed=5.0, per_row=2.0)
        assert plan.cost(0.1, 100) == pytest.approx(25.0)

    def test_cost_vectorized(self):
        plan = LinearCostPlan("p", fixed=5.0, per_row=2.0)
        out = plan.cost(np.array([0.0, 0.5]), 10)
        assert list(out) == [5.0, 15.0]

    def test_inverse(self):
        plan = LinearCostPlan("p", fixed=5.0, per_row=2.0)
        assert plan.inverse(25.0, 100) == pytest.approx(0.1)

    def test_inverse_constant_plan_raises(self):
        plan = LinearCostPlan("flat", fixed=5.0, per_row=0.0)
        with pytest.raises(ReproError):
            plan.inverse(5.0, 100)


class TestPaperDefaultModel:
    def test_constants(self):
        model = paper_default_model()
        assert model.n_rows == 6_000_000
        assert model.plans[0].fixed == 35.0
        assert model.plans[1].per_row == 3.5e-3

    def test_crossover_at_0_14_percent(self):
        """Paper Section 5.1: p_c ≈ 0.14 %."""
        [crossover] = paper_default_model().crossover_points()
        assert crossover == pytest.approx(0.00143, abs=0.00002)

    def test_best_plan_flips_at_crossover(self):
        model = paper_default_model()
        [crossover] = model.crossover_points()
        assert model.best_plan(crossover * 0.5) == 1  # index intersection
        assert model.best_plan(crossover * 2.0) == 0  # sequential scan

    def test_optimal_cost_is_min(self):
        model = paper_default_model()
        grid = np.linspace(0, 0.01, 21)
        assert np.allclose(model.optimal_cost(grid), model.costs(grid).min(axis=0))


class TestHighCrossoverModel:
    def test_crossover_at_5_2_percent(self):
        """Paper Section 5.2.3: p'_c ≈ 5.2 %."""
        [crossover] = high_crossover_model().crossover_points()
        assert crossover == pytest.approx(0.052, abs=1e-6)

    def test_custom_crossover(self):
        [crossover] = high_crossover_model(0.10).crossover_points()
        assert crossover == pytest.approx(0.10, abs=1e-9)

    def test_invalid_crossover_raises(self):
        with pytest.raises(ReproError):
            high_crossover_model(0.0)

    def test_less_slope_difference_than_default(self):
        """Figure 8 explanation: at a higher crossover the plans' slopes
        differ less, so wrong choices cost less."""
        default = paper_default_model()
        high = high_crossover_model()
        gap_default = default.plans[1].per_row - default.plans[0].per_row
        gap_high = high.plans[1].per_row - high.plans[0].per_row
        assert gap_high < gap_default / 10


class TestFigure2Plans:
    def test_crossover_matches_figure_1(self):
        """Figure 1 annotates the crossover at 26 %."""
        [crossover] = figure2_plans().crossover_points()
        assert crossover == pytest.approx(0.262, abs=0.005)

    def test_plan1_riskier(self):
        model = figure2_plans()
        assert model.plans[0].per_row > model.plans[1].per_row


class TestValidation:
    def test_needs_two_plans(self):
        with pytest.raises(ReproError):
            PlanCostModel(100, (LinearCostPlan("only", 1.0, 1.0),))

    def test_identical_slopes_no_crossover(self):
        model = PlanCostModel(
            100,
            (
                LinearCostPlan("a", 1.0, 2.0),
                LinearCostPlan("b", 5.0, 2.0),
            ),
        )
        assert model.crossover_points() == []
