"""Tests for the analytical LEC-vs-threshold comparison."""

import numpy as np
import pytest

from repro.analysis import (
    lec_equivalent_threshold,
    lec_plan_choice,
    mean_variance_plan_choice,
    paper_default_model,
    threshold_plan_choice,
)
from repro.core import SelectivityPosterior

MODEL = paper_default_model()


class TestLecEquivalence:
    def test_lec_equals_choice_at_posterior_mean(self):
        """Linear costs: LEC == least cost at E[p]."""
        for k, n in [(0, 500), (1, 500), (3, 500), (50, 500)]:
            posterior = SelectivityPosterior(k, n)
            lec = lec_plan_choice(MODEL, posterior)
            at_mean = int(MODEL.best_plan(posterior.mean))
            assert lec == at_mean

    def test_equivalent_threshold_reproduces_lec(self):
        for k, n in [(0, 500), (1, 500), (2, 500), (10, 500)]:
            posterior = SelectivityPosterior(k, n)
            t_eq = lec_equivalent_threshold(posterior)
            assert lec_plan_choice(MODEL, posterior) == threshold_plan_choice(
                MODEL, posterior, t_eq
            )

    def test_equivalent_threshold_near_but_above_half_for_small_k(self):
        """Right-skewed posteriors put the mean above the median."""
        posterior = SelectivityPosterior(1, 500)
        t_eq = lec_equivalent_threshold(posterior)
        assert 0.5 < t_eq < 0.75

    def test_equivalent_threshold_approaches_half_for_large_k(self):
        posterior = SelectivityPosterior(250, 500)
        assert lec_equivalent_threshold(posterior) == pytest.approx(0.5, abs=0.02)

    def test_lec_cannot_mimic_conservative_threshold(self):
        """The paper's argument: at k=0 a 95 % threshold plays safe but
        LEC still gambles, because the posterior mean is far below the
        crossover."""
        posterior = SelectivityPosterior(0, 500)
        assert lec_plan_choice(MODEL, posterior) == 1  # risky plan
        assert threshold_plan_choice(MODEL, posterior, 0.95) == 0  # stable


class TestMeanVarianceUtility:
    def test_zero_risk_weight_is_lec(self):
        posterior = SelectivityPosterior(1, 500)
        assert mean_variance_plan_choice(
            MODEL, posterior, risk_weight=0.0
        ) == lec_plan_choice(MODEL, posterior)

    def test_high_risk_weight_plays_safe(self):
        """Enough variance penalty recovers conservative behaviour —
        Chu et al.'s utility interpolates toward the paper's T=95 %."""
        posterior = SelectivityPosterior(0, 500)
        risky = mean_variance_plan_choice(MODEL, posterior, risk_weight=0.0)
        safe = mean_variance_plan_choice(MODEL, posterior, risk_weight=10.0)
        assert risky == 1
        assert safe == 0

    def test_monotone_in_risk_weight(self):
        """Once the variance penalty flips the choice to the stable
        plan, more penalty never flips it back."""
        posterior = SelectivityPosterior(0, 500)
        choices = [
            mean_variance_plan_choice(MODEL, posterior, risk_weight=w)
            for w in (0.0, 0.1, 1.0, 10.0, 100.0)
        ]
        flipped = False
        for choice in choices:
            if choice == 0:
                flipped = True
            if flipped:
                assert choice == 0
