"""Unit tests for repro.catalog.table."""

import numpy as np
import pytest

from repro.catalog import Column, ColumnType, Schema, Table
from repro.errors import CatalogError


def simple_schema(primary_key=None) -> Schema:
    return Schema(
        [Column("k", ColumnType.INT64), Column("v", ColumnType.FLOAT64)],
        primary_key=primary_key,
    )


def make_table(n=10, primary_key="k") -> Table:
    return Table(
        "t",
        simple_schema(primary_key),
        {"k": np.arange(n), "v": np.linspace(0, 1, n)},
    )


class TestConstruction:
    def test_basic(self):
        table = make_table()
        assert table.num_rows == 10
        assert table.name == "t"

    def test_missing_column_raises(self):
        with pytest.raises(CatalogError, match="missing columns"):
            Table("t", simple_schema(), {"k": [1]})

    def test_extra_column_raises(self):
        with pytest.raises(CatalogError, match="undeclared"):
            Table("t", simple_schema(), {"k": [1], "v": [1.0], "w": [2]})

    def test_ragged_columns_raise(self):
        with pytest.raises(CatalogError, match="ragged"):
            Table("t", simple_schema(), {"k": [1, 2], "v": [1.0]})

    def test_duplicate_primary_key_raises(self):
        with pytest.raises(CatalogError, match="duplicates"):
            Table("t", simple_schema("k"), {"k": [1, 1], "v": [1.0, 2.0]})

    def test_dotted_table_name_raises(self):
        with pytest.raises(CatalogError):
            Table("a.b", simple_schema(), {"k": [1], "v": [1.0]})

    def test_columns_read_only(self):
        table = make_table()
        with pytest.raises(ValueError):
            table.column("k")[0] = 99


class TestAccess:
    def test_column(self):
        assert make_table().column("k")[3] == 3

    def test_missing_column_raises(self):
        with pytest.raises(CatalogError):
            make_table().column("zzz")

    def test_contains(self):
        table = make_table()
        assert "k" in table
        assert "zzz" not in table

    def test_take(self):
        rows = make_table().take(np.array([1, 3]))
        assert list(rows["k"]) == [1, 3]

    def test_iter_rows(self):
        rows = list(make_table(3).iter_rows())
        assert len(rows) == 3
        assert rows[2]["k"] == 2

    def test_qualified(self):
        assert make_table().qualified("k") == "t.k"


class TestPaging:
    def test_rows_per_page_positive(self):
        assert make_table().rows_per_page >= 1

    def test_num_pages_covers_rows(self):
        table = make_table(100_0)
        assert table.num_pages * table.rows_per_page >= table.num_rows

    def test_num_pages_at_least_one(self):
        assert make_table(1).num_pages == 1

    def test_wider_rows_need_more_pages(self):
        wide_schema = Schema(
            [Column(f"c{i}", ColumnType.STRING) for i in range(30)]
        )
        wide = Table(
            "w", wide_schema, {f"c{i}": np.array(["x"] * 500) for i in range(30)}
        )
        narrow = make_table(500)
        assert wide.num_pages > narrow.num_pages
