"""Property tests: expression → SQL text → parser round trip."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ExpressionError
from repro.expressions import Frame, col, to_sql
from repro.sql import parse_predicate

COLUMNS = ["t.a", "t.b", "t.s"]


@st.composite
def predicates(draw, depth=0):
    """Random predicate trees over the test frame's columns."""
    if depth >= 2:
        kind = draw(st.sampled_from(["cmp", "between", "in", "like"]))
    else:
        kind = draw(
            st.sampled_from(
                ["cmp", "between", "in", "like", "and", "or", "not"]
            )
        )
    if kind == "cmp":
        column = draw(st.sampled_from(["t.a", "t.b"]))
        op = draw(st.sampled_from(["==", "!=", "<", "<=", ">", ">="]))
        value = draw(st.integers(-20, 20))
        reference = col(column)
        return {
            "==": reference == value,
            "!=": reference != value,
            "<": reference < value,
            "<=": reference <= value,
            ">": reference > value,
            ">=": reference >= value,
        }[op]
    if kind == "between":
        low = draw(st.integers(-20, 20))
        width = draw(st.integers(0, 15))
        return col(draw(st.sampled_from(["t.a", "t.b"]))).between(low, low + width)
    if kind == "in":
        values = draw(st.lists(st.integers(-20, 20), min_size=1, max_size=4))
        return col(draw(st.sampled_from(["t.a", "t.b"]))).isin(values)
    if kind == "like":
        needle = draw(st.sampled_from(["al", "be", "ga", "x"]))
        if draw(st.booleans()):
            return col("t.s").contains(needle)
        return col("t.s").startswith(needle)
    if kind == "not":
        return ~draw(predicates(depth=depth + 1))
    left = draw(predicates(depth=depth + 1))
    right = draw(predicates(depth=depth + 1))
    return (left & right) if kind == "and" else (left | right)


@pytest.fixture(scope="module")
def frame():
    rng = np.random.default_rng(0)
    return Frame(
        {
            "t.a": rng.integers(-25, 25, 300),
            "t.b": rng.integers(-25, 25, 300),
            "t.s": rng.choice(["alpha", "beta", "gamma", "delta"], 300),
        }
    )


@settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(predicate=predicates())
def test_roundtrip_preserves_semantics(frame, predicate):
    """parse(to_sql(p)) evaluates identically to p."""
    sql = to_sql(predicate)
    reparsed = parse_predicate(sql)
    assert np.array_equal(
        predicate.evaluate(frame), reparsed.evaluate(frame)
    ), sql


class TestRenderEdgeCases:
    def test_date_between(self):
        sql = to_sql(col("t.d").between("1997-07-01", "1997-09-30"))
        assert "'1997-07-01'" in sql
        parse_predicate(sql)  # parses cleanly

    def test_string_equality(self):
        sql = to_sql(col("t.s") == "beta")
        assert sql == "(t.s = 'beta')"

    def test_not_equal_rendered_sql_style(self):
        assert "<>" in to_sql(col("t.a") != 5)

    def test_arithmetic(self):
        frame = Frame({"t.a": np.array([2, 3])})
        sql = to_sql((col("t.a") + 1) * 2 == 8)
        reparsed = parse_predicate(sql)
        assert list(reparsed.evaluate(frame)) == [False, True]

    def test_quoted_string_rejected(self):
        with pytest.raises(ExpressionError):
            to_sql(col("t.s") == "don't")


INEQUALITY_OPS = ["<", "<=", ">", ">=", "="]


@settings(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    op=st.sampled_from(INEQUALITY_OPS),
    columns=st.sampled_from([("t.a", "t.b"), ("t.b", "t.a")]),
)
def test_column_comparison_roundtrip(frame, op, columns):
    """``t.a <op> t.b`` (the non-equi join condition form) survives
    render → parse with identical semantics."""
    left, right = columns
    original = parse_predicate(f"{left} {op} {right}")
    reparsed = parse_predicate(to_sql(original))
    assert np.array_equal(original.evaluate(frame), reparsed.evaluate(frame))


@settings(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    op=st.sampled_from(["<", "<=", ">", ">="]),
    value=st.integers(-20, 20),
)
def test_reversed_operand_comparison_roundtrip(frame, op, value):
    """``literal <op> column`` round-trips and means the mirrored
    ``column`` comparison."""
    reversed_form = parse_predicate(f"{value} {op} t.a")
    reparsed = parse_predicate(to_sql(reversed_form))
    assert np.array_equal(
        reversed_form.evaluate(frame), reparsed.evaluate(frame)
    )
    mirrored = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
    canonical = parse_predicate(f"t.a {mirrored} {value}")
    assert np.array_equal(
        reversed_form.evaluate(frame), canonical.evaluate(frame)
    )


class TestReversedOperandAnalysis:
    """The analysis layer must see through literal-first spellings."""

    def test_range_condition_mirrors_operator(self):
        from repro.expressions.analysis import as_range_condition

        condition = as_range_condition(parse_predicate("5 < t.a"))
        assert condition is not None
        assert condition.low == 5 and not condition.low_inclusive
        assert condition.high is None

    def test_between_roundtrip_with_inequality_conjunct(self, frame):
        sql = "(t.a BETWEEN -5 AND 10) AND (t.b < t.a)"
        original = parse_predicate(sql)
        reparsed = parse_predicate(to_sql(original))
        assert np.array_equal(
            original.evaluate(frame), reparsed.evaluate(frame)
        )

    def test_join_condition_survives_roundtrip(self):
        from repro.expressions.analysis import as_join_condition

        original = parse_predicate("sales.s_price < item.i_price")
        reparsed = parse_predicate(to_sql(original))
        condition = as_join_condition(reparsed)
        assert condition is not None
        assert condition.oriented({"sales"}) == (
            "sales.s_price",
            "<",
            "item.i_price",
        )


class TestQueryRoundTrip:
    """query_to_sql(parse_query(sql)) parses back to an equivalent query."""

    def _roundtrip(self, sql, database=None):
        from repro.sql import parse_query, query_to_sql

        original = parse_query(sql, database)
        rendered = query_to_sql(original)
        reparsed = parse_query(rendered, database)
        return original, reparsed

    def test_battery_roundtrips(self, tpch_db):
        from repro.workloads import QUERY_BATTERY

        for name, sql in QUERY_BATTERY.items():
            original, reparsed = self._roundtrip(sql, tpch_db)
            assert reparsed.tables == original.tables, name
            assert reparsed.group_by == original.group_by, name
            assert reparsed.order_by == original.order_by, name
            assert reparsed.limit == original.limit, name
            assert reparsed.hint == original.hint, name
            assert [a.alias for a in reparsed.aggregates] == [
                a.alias for a in original.aggregates
            ], name

    def test_roundtrip_preserves_results(self, tpch_db):
        from repro.core import ExactCardinalityEstimator
        from repro.engine import ExecutionContext
        from repro.optimizer import Optimizer
        from repro.workloads import QUERY_BATTERY

        optimizer = Optimizer(tpch_db, ExactCardinalityEstimator(tpch_db))
        for name in ("forecast_revenue", "promo_parts", "top_customers"):
            original, reparsed = self._roundtrip(QUERY_BATTERY[name], tpch_db)
            a = optimizer.optimize(original).plan.execute(ExecutionContext(tpch_db))
            b = optimizer.optimize(reparsed).plan.execute(ExecutionContext(tpch_db))
            assert a.num_rows == b.num_rows, name
            for column in a.column_names:
                assert list(a.column(column)) == list(b.column(column)), name

    def test_distinct_roundtrip(self, tpch_db):
        original, reparsed = self._roundtrip(
            "SELECT DISTINCT part.p_container FROM part", tpch_db
        )
        assert reparsed.group_by == original.group_by
        assert reparsed.aggregates == ()

    def test_select_star_roundtrip(self, tpch_db):
        original, reparsed = self._roundtrip("SELECT * FROM part", tpch_db)
        assert reparsed.projection is None

    def test_fractional_hint_rejected(self):
        from repro.errors import ReproError
        from repro.optimizer import SPJQuery
        from repro.sql import query_to_sql

        with pytest.raises(ReproError):
            query_to_sql(SPJQuery(["t"], hint=0.825))


@st.composite
def spj_queries(draw):
    """Random SPJQuery objects over the TPC-H schema."""
    from repro.engine import AggregateSpec
    from repro.optimizer import SPJQuery

    tables = draw(
        st.sampled_from(
            [("lineitem",), ("part",), ("lineitem", "part"), ("lineitem", "orders")]
        )
    )
    root = tables[0]
    numeric_column = {
        "lineitem": "lineitem.l_quantity",
        "part": "part.p_size",
        "orders": "orders.o_totalprice",
    }[root]
    predicate = None
    if draw(st.booleans()):
        predicate = col(numeric_column) > draw(st.integers(0, 40))
    aggregates = ()
    group_by = ()
    if draw(st.booleans()):
        aggregates = (AggregateSpec("count", "*", "n"),)
        if draw(st.booleans()):
            group_by = (numeric_column,)
    order_by = ()
    if not aggregates and draw(st.booleans()):
        order_by = (numeric_column,)
    limit = draw(st.one_of(st.none(), st.integers(0, 100)))
    hint = draw(st.sampled_from([None, 0.5, 0.95, "conservative"]))
    return SPJQuery(
        tables,
        predicate,
        aggregates=aggregates,
        group_by=group_by,
        order_by=order_by,
        limit=limit,
        hint=hint,
    )


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(query=spj_queries())
def test_generated_query_roundtrip(tpch_db, query):
    from repro.sql import parse_query, query_to_sql

    rendered = query_to_sql(query)
    reparsed = parse_query(rendered, tpch_db)
    assert reparsed.tables == query.tables
    assert reparsed.group_by == query.group_by
    assert reparsed.order_by == query.order_by
    assert reparsed.limit == query.limit
    assert reparsed.hint == query.hint
    # predicate text may normalize through the round trip; equivalence
    # is checked semantically via exact cardinalities below
    if query.predicate is not None:
        from repro.core import ExactCardinalityEstimator

        exact = ExactCardinalityEstimator(tpch_db)
        a = exact.estimate(set(query.tables), query.predicate).cardinality
        b = exact.estimate(set(reparsed.tables), reparsed.predicate).cardinality
        assert a == b
