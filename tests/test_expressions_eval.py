"""Unit tests for expression evaluation (repro.expressions.expr)."""

import numpy as np
import pytest

from repro.catalog import date_ordinal
from repro.errors import ExpressionError
from repro.expressions import Frame, col, lit, conjunction
from repro.expressions.expr import And, InList, Not, Or


@pytest.fixture
def frame():
    return Frame(
        {
            "t.n": np.array([1, 2, 3, 4, 5]),
            "t.x": np.array([1.0, 4.0, 9.0, 16.0, 25.0]),
            "t.s": np.array(["alpha", "beta", "gamma", "delta", "beta"]),
            "t.d": np.array(
                [date_ordinal(f"1997-07-{day:02d}") for day in (1, 5, 10, 15, 20)]
            ),
        }
    )


class TestComparisons:
    def test_eq(self, frame):
        assert list((col("t.n") == 3).evaluate(frame)) == [0, 0, 1, 0, 0]

    def test_ne(self, frame):
        assert (col("t.n") != 3).evaluate(frame).sum() == 4

    def test_lt_le_gt_ge(self, frame):
        assert (col("t.n") < 3).evaluate(frame).sum() == 2
        assert (col("t.n") <= 3).evaluate(frame).sum() == 3
        assert (col("t.n") > 3).evaluate(frame).sum() == 2
        assert (col("t.n") >= 3).evaluate(frame).sum() == 3

    def test_reversed_literal(self, frame):
        predicate = lit(3) <= col("t.n")
        assert predicate.evaluate(frame).sum() == 3

    def test_column_vs_column(self, frame):
        predicate = col("t.x") > col("t.n")
        assert predicate.evaluate(frame).sum() == 4  # all but n=1

    def test_string_eq(self, frame):
        assert (col("t.s") == "beta").evaluate(frame).sum() == 2

    def test_date_string_coercion(self, frame):
        predicate = col("t.d") >= "1997-07-10"
        assert predicate.evaluate(frame).sum() == 3


class TestArithmetic:
    def test_add_sub_mul_div(self, frame):
        assert list((col("t.n") + 1).evaluate(frame)) == [2, 3, 4, 5, 6]
        assert list((col("t.n") - 1).evaluate(frame)) == [0, 1, 2, 3, 4]
        assert list((col("t.n") * 2).evaluate(frame)) == [2, 4, 6, 8, 10]
        assert list((col("t.x") / col("t.n")).evaluate(frame)) == [1, 2, 3, 4, 5]

    def test_radd_rsub_rmul(self, frame):
        assert list((1 + col("t.n")).evaluate(frame)) == [2, 3, 4, 5, 6]
        assert list((10 - col("t.n")).evaluate(frame)) == [9, 8, 7, 6, 5]
        assert list((2 * col("t.n")).evaluate(frame)) == [2, 4, 6, 8, 10]

    def test_arithmetic_in_predicate(self, frame):
        # x - n^2 == 0 everywhere
        predicate = (col("t.x") - col("t.n") * col("t.n")) == 0
        assert predicate.evaluate(frame).all()


class TestRangeAndMembership:
    def test_between(self, frame):
        assert col("t.n").between(2, 4).evaluate(frame).sum() == 3

    def test_between_dates(self, frame):
        predicate = col("t.d").between("1997-07-05", "1997-07-15")
        assert predicate.evaluate(frame).sum() == 3

    def test_isin(self, frame):
        assert col("t.n").isin([1, 5, 99]).evaluate(frame).sum() == 2

    def test_isin_strings(self, frame):
        assert col("t.s").isin(["beta"]).evaluate(frame).sum() == 2

    def test_empty_isin_raises(self, frame):
        with pytest.raises(ExpressionError):
            InList(col("t.n"), [])


class TestStringPredicates:
    def test_contains(self, frame):
        assert col("t.s").contains("et").evaluate(frame).sum() == 2

    def test_startswith(self, frame):
        assert col("t.s").startswith("b").evaluate(frame).sum() == 2

    def test_contains_no_match(self, frame):
        assert col("t.s").contains("zzz").evaluate(frame).sum() == 0


class TestBooleanConnectives:
    def test_and(self, frame):
        predicate = (col("t.n") > 1) & (col("t.n") < 5)
        assert predicate.evaluate(frame).sum() == 3

    def test_or(self, frame):
        predicate = (col("t.n") == 1) | (col("t.n") == 5)
        assert predicate.evaluate(frame).sum() == 2

    def test_not(self, frame):
        assert (~(col("t.n") == 1)).evaluate(frame).sum() == 4

    def test_and_flattens(self, frame):
        nested = And([And([col("t.n") > 0, col("t.n") > 1]), col("t.n") > 2])
        assert len(nested.operands) == 3

    def test_or_flattens(self, frame):
        nested = Or([Or([col("t.n") == 1, col("t.n") == 2]), col("t.n") == 3])
        assert len(nested.operands) == 3

    def test_empty_and_raises(self):
        with pytest.raises(ExpressionError):
            And([])

    def test_de_morgan(self, frame):
        a = col("t.n") > 2
        b = col("t.s") == "beta"
        left = (~(a & b)).evaluate(frame)
        right = (Not(a) | Not(b)).evaluate(frame)
        assert np.array_equal(left, right)


class TestIntrospection:
    def test_columns(self):
        predicate = (col("t.a") > 1) & (col("u.b") == 2)
        assert predicate.columns() == {("t", "a"), ("u", "b")}

    def test_tables(self):
        predicate = (col("t.a") > 1) & (col("u.b") == col("t.c"))
        assert predicate.tables() == {"t", "u"}

    def test_unqualified_column(self):
        assert col("x").columns() == {(None, "x")}
        assert col("x").tables() == set()

    def test_literal_has_no_columns(self):
        assert lit(5).columns() == set()

    def test_bool_coercion_raises(self):
        with pytest.raises(ExpressionError):
            bool(col("t.a") == col("t.b"))

    def test_same_as(self):
        assert col("t.a").same_as(col("t.a"))
        assert not col("t.a").same_as(col("t.b"))
        assert not col("t.a").same_as(col("u.a"))


class TestConjunctionHelper:
    def test_empty(self):
        assert conjunction([]) is None
        assert conjunction([None, None]) is None

    def test_single(self):
        predicate = col("t.a") > 1
        assert conjunction([None, predicate]) is predicate

    def test_multiple(self, frame):
        combined = conjunction([col("t.n") > 1, None, col("t.n") < 5])
        assert isinstance(combined, And)
        assert combined.evaluate(frame).sum() == 3


class TestLiteral:
    def test_broadcast(self, frame):
        assert list(lit(7).evaluate(frame)) == [7] * 5

    def test_repr_forms(self, frame):
        text = repr((col("t.n") >= 2) & col("t.s").contains("a"))
        assert "t.n" in text and "contains" in text
