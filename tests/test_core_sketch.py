"""CDF-sketch selectivity for inequality join conditions."""

import numpy as np
import pytest

from repro.core import InequalitySketch, pair_fraction
from repro.errors import EstimationError
from repro.expressions import col
from repro.expressions.analysis import as_join_condition
from repro.stats import StatisticsManager

from tests.conftest import make_two_table_db


class TestPairFraction:
    @pytest.fixture(scope="class")
    def values(self):
        rng = np.random.default_rng(17)
        return rng.integers(0, 30, 200), rng.integers(0, 30, 120)

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "="])
    def test_exact_against_pairwise_walk(self, values, op):
        left, right = values
        a, b = left[:, None], right[None, :]
        truth = {
            "<": a < b,
            "<=": a <= b,
            ">": a > b,
            ">=": a >= b,
            "=": a == b,
        }[op].mean()
        assert pair_fraction(left, op, right) == pytest.approx(float(truth))

    def test_float_values(self):
        rng = np.random.default_rng(3)
        left, right = rng.uniform(0, 1, 150), rng.uniform(0, 1, 150)
        fraction = pair_fraction(left, "<", right)
        assert fraction == pytest.approx(float((left[:, None] < right).mean()))

    def test_disjoint_ranges(self):
        assert pair_fraction([1, 2, 3], "<", [10, 20]) == 1.0
        assert pair_fraction([1, 2, 3], ">", [10, 20]) == 0.0

    def test_empty_inputs_rejected(self):
        with pytest.raises(EstimationError):
            pair_fraction([], "<", [1, 2])
        with pytest.raises(EstimationError):
            pair_fraction([1, 2], "<", [])

    def test_unsupported_operator_rejected(self):
        with pytest.raises(EstimationError):
            pair_fraction([1], "!=", [2])


MARKUP = as_join_condition(col("sales.s_price") < col("item.i_price"))


class TestInequalitySketch:
    def test_matches_pair_fraction_over_samples(self, snowflake_stats):
        sketch = InequalitySketch(snowflake_stats)
        selectivity = sketch.condition_selectivity(MARKUP)
        left = snowflake_stats.sample_for("sales").frame.column("sales.s_price")
        right = snowflake_stats.sample_for("item").frame.column("item.i_price")
        assert selectivity == pair_fraction(left, "<", right)
        assert 0.0 < selectivity < 1.0

    def test_cached_within_a_version(self, snowflake_stats):
        sketch = InequalitySketch(snowflake_stats)
        first = sketch.condition_selectivity(MARKUP)
        assert len(sketch._cache) == 1
        assert sketch.condition_selectivity(MARKUP) == first
        assert len(sketch._cache) == 1

    def test_missing_column_returns_none(self, snowflake_stats):
        sketch = InequalitySketch(snowflake_stats)
        condition = as_join_condition(col("sales.s_nope") < col("item.i_price"))
        assert sketch.condition_selectivity(condition) is None

    def test_version_bump_invalidates(self):
        manager = StatisticsManager(make_two_table_db())
        manager.update_statistics(sample_size=200, seed=1)
        sketch = InequalitySketch(manager)
        condition = as_join_condition(
            col("lineitem.l_shipdate") < col("part.p_size")
        )
        sketch.condition_selectivity(condition)
        assert sketch._version == manager.version
        manager.update_statistics(sample_size=300, seed=2)
        refreshed = sketch.condition_selectivity(condition)
        assert sketch._version == manager.version
        left = manager.sample_for("lineitem").frame.column("lineitem.l_shipdate")
        right = manager.sample_for("part").frame.column("part.p_size")
        assert refreshed == pair_fraction(left, "<", right)
