"""Determinism and caching regression tests for the parallel harness.

The contract: ``workers=N`` fans seeds out over processes but the
merged :class:`ExperimentResult` is identical to the serial path, and
the plan-execution cache never changes a recorded time — it only skips
re-executing plans the grid already ran.
"""

import pickle

import pytest

from repro.core import (
    HistogramCardinalityEstimator,
    RobustCardinalityEstimator,
)
from repro.engine import SeqScan
from repro.experiments import (
    ExperimentRunner,
    PlanExecutionCache,
    default_configs,
)
from repro.stats import StatisticsManager
from repro.workloads import ShippingDatesTemplate


@pytest.fixture(scope="module")
def grid(tpch_db):
    template = ShippingDatesTemplate()
    params = template.params_for_targets(tpch_db, [0.0, 0.003, 0.006], step=4)
    configs = default_configs(thresholds=(0.05, 0.5, 0.95))
    return template, params, configs


def _run(tpch_db, grid, **kwargs):
    template, params, configs = grid
    runner = ExperimentRunner(
        tpch_db, template, sample_size=300, seeds=(0, 1, 2), **kwargs
    )
    return runner.run(params, configs)


class TestDeterminism:
    def test_workers_do_not_change_records(self, tpch_db, grid):
        serial = _run(tpch_db, grid, workers=1)
        parallel = _run(tpch_db, grid, workers=4)
        assert serial.records == parallel.records
        assert serial == parallel  # perf timers excluded from equality
        assert parallel.perf.workers > 1

    def test_execution_cache_does_not_change_records(self, tpch_db, grid):
        cached = _run(tpch_db, grid, workers=1, execution_cache=True)
        uncached = _run(tpch_db, grid, workers=1, execution_cache=False)
        assert cached.records == uncached.records
        assert cached.perf.exec_cache_hits > 0
        assert uncached.perf.exec_cache_hits == 0
        assert uncached.perf.exec_cache_misses == len(uncached.records)
        assert cached.perf.exec_cache_misses < len(cached.records)

    def test_star_plans_cache_safe(self, star_db, star_config):
        """Join/star operator trees must also key the cache correctly."""
        from repro.workloads import StarJoinTemplate

        template = StarJoinTemplate(star_config.num_dim)
        params = [
            (s, template.true_selectivity(star_db, s)) for s in (100, 50, 0)
        ]
        configs = default_configs(thresholds=(0.05, 0.95))
        cached = ExperimentRunner(
            star_db, template, sample_size=300, seeds=(0, 1), workers=1
        ).run(params, configs)
        uncached = ExperimentRunner(
            star_db,
            template,
            sample_size=300,
            seeds=(0, 1),
            workers=1,
            execution_cache=False,
        ).run(params, configs)
        assert cached.records == uncached.records
        assert cached.perf.exec_cache_hits > 0

    def test_default_configs_pickle(self):
        """Builders must survive the trip into worker processes."""
        configs = default_configs()
        rebuilt = pickle.loads(pickle.dumps(configs))
        assert [c.name for c in rebuilt] == [c.name for c in configs]

    def test_lambda_configs_fall_back_to_serial(self, tpch_db, grid):
        from repro.experiments import EstimatorConfig

        template, params, _ = grid
        configs = [
            EstimatorConfig(
                "T=50%",
                lambda stats: RobustCardinalityEstimator(stats, policy=0.5),
            )
        ]
        runner = ExperimentRunner(
            tpch_db, template, sample_size=300, seeds=(0, 1), workers=4
        )
        with pytest.warns(RuntimeWarning, match="not picklable"):
            result = runner.run(params, configs)
        assert result.perf.workers == 1
        assert len(result.records) == len(params) * 2


class TestPerfInstrumentation:
    def test_phase_timers_populated(self, tpch_db, grid):
        result = _run(tpch_db, grid, workers=1)
        assert result.perf.stats_build_seconds > 0
        assert result.perf.optimize_seconds > 0
        assert result.perf.execute_seconds > 0
        assert result.perf.wall_seconds > 0

    def test_estimate_cache_counters_surface(self, tpch_db, grid):
        result = _run(tpch_db, grid, workers=1)
        assert result.perf.estimate_cache_misses > 0
        assert result.perf.estimate_cache_hits > 0

    def test_as_dict_roundtrips_to_json(self, tpch_db, grid):
        import json

        result = _run(tpch_db, grid, workers=1)
        payload = json.loads(json.dumps(result.perf.as_dict()))
        assert payload["workers"] == 1
        assert 0.0 <= payload["exec_cache_hit_rate"] <= 1.0


class TestResultIndex:
    def test_index_refreshes_on_append(self, tpch_db, grid):
        from repro.experiments import ExperimentResult, RunRecord

        result = ExperimentResult(template="t")
        result.append(
            RunRecord("a", 1, 0.1, 0, 1.0, "SeqScan", 10)
        )
        assert result.config_names == ["a"]
        assert result.mean_time_for_param("a", 1) == 1.0
        result.append(
            RunRecord("a", 1, 0.1, 1, 3.0, "SeqScan", 10)
        )
        assert result.mean_time_for_param("a", 1) == 2.0

    def test_params_grouped_by_integer_param(self, tpch_db, grid):
        """Two params sharing a selectivity stay distinct curve points."""
        from repro.experiments import ExperimentResult, RunRecord

        result = ExperimentResult(template="t")
        result.append(RunRecord("a", 1, 0.5, 0, 1.0, "SeqScan", 10))
        result.append(RunRecord("a", 2, 0.5, 0, 3.0, "SeqScan", 10))
        assert result.params == [1, 2]
        assert len(result.curve("a")) == 2
        # float-keyed mean_time pools both params at that selectivity
        assert result.mean_time("a", 0.5) == 2.0


class TestEstimateMemoization:
    def test_robust_hit_counts(self, tpch_stats):
        estimator = RobustCardinalityEstimator(tpch_stats, policy=0.5)
        first = estimator.estimate({"lineitem"}, None)
        again = estimator.estimate({"lineitem"}, None)
        assert estimator.estimate_cache_misses == 1
        assert estimator.estimate_cache_hits == 1
        assert again is first
        # A different threshold is a different cache entry.
        estimator.estimate({"lineitem"}, None, hint=0.95)
        assert estimator.estimate_cache_misses == 2

    def test_histogram_hit_counts(self, tpch_stats):
        estimator = HistogramCardinalityEstimator(tpch_stats)
        first = estimator.estimate({"lineitem"}, None)
        again = estimator.estimate({"lineitem"}, None)
        assert estimator.estimate_cache_misses == 1
        assert estimator.estimate_cache_hits == 1
        assert again is first

    def test_memoization_can_be_disabled(self, tpch_stats):
        estimator = RobustCardinalityEstimator(
            tpch_stats, policy=0.5, memoize_estimates=False
        )
        estimator.estimate({"lineitem"}, None)
        estimator.estimate({"lineitem"}, None)
        assert estimator.estimate_cache_hits == 0
        assert estimator.estimate_cache_misses == 0

    def test_rebuild_invalidates_cache(self, tpch_db):
        statistics = StatisticsManager(tpch_db)
        statistics.update_statistics(sample_size=200, seed=0)
        estimator = RobustCardinalityEstimator(statistics, policy=0.5)
        template = ShippingDatesTemplate()
        query = template.instantiate(100)
        before = estimator.estimate(set(query.tables), query.predicate)
        statistics.update_statistics(sample_size=200, seed=99)
        after = estimator.estimate(set(query.tables), query.predicate)
        # The rebuild forces a recompute (a miss, not a stale hit) ...
        assert estimator.estimate_cache_hits == 0
        assert estimator.estimate_cache_misses == 2
        # ... against the new sample, so the estimate can move.
        assert before.tables == after.tables

    def test_drop_invalidates_cache(self, tpch_db):
        statistics = StatisticsManager(tpch_db)
        statistics.update_statistics(sample_size=200, seed=0)
        estimator = RobustCardinalityEstimator(statistics, policy=0.5)
        template = ShippingDatesTemplate()
        query = template.instantiate(100)
        synopsis_based = estimator.estimate(set(query.tables), query.predicate)
        assert synopsis_based.source == "synopsis"
        for name in tpch_db.table_names:
            statistics.drop_synopsis(name)
        fallback = estimator.estimate(set(query.tables), query.predicate)
        assert fallback.source != "synopsis"


class TestPlanExecutionCache:
    def test_signature_ignores_cost_annotations(self):
        a = SeqScan("lineitem")
        b = SeqScan("lineitem")
        b.est_rows, b.est_cost = 123.0, 4.5
        assert a.signature() == b.signature()
        assert a.explain() != b.explain()

    def test_cache_reuses_identical_plans(self, tpch_db):
        from repro.cost import CostModel

        cache = PlanExecutionCache()
        model = CostModel()
        first = cache.execute(tpch_db, model, 1, SeqScan("part"))
        again = cache.execute(tpch_db, model, 1, SeqScan("part"))
        other_key = cache.execute(tpch_db, model, 2, SeqScan("part"))
        assert first == again == other_key
        assert (cache.hits, cache.misses) == (1, 2)

    def test_disabled_cache_always_executes(self, tpch_db):
        from repro.cost import CostModel

        cache = PlanExecutionCache(enabled=False)
        model = CostModel()
        cache.execute(tpch_db, model, 1, SeqScan("part"))
        cache.execute(tpch_db, model, 1, SeqScan("part"))
        assert (cache.hits, cache.misses) == (0, 2)
