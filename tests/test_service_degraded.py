"""Tests for the session degraded-mode state machine.

Covers statistics attachment (healthy and failing), degraded planning
after estimator faults, fallback attribution, and the staleness
regression the statistics epoch exists to prevent: two archives loaded
into one session must never produce equal plan-cache keys.
"""

import shutil

import pytest

from repro.errors import EstimationError
from repro.obs import DEGRADATION_REASONS, DegradationEvent
from repro.service import DEGRADED, HEALTHY, Session, SessionError
from repro.stats import StatisticsManager, save_statistics

from tests.conftest import make_two_table_db

QUERY = "SELECT COUNT(*) FROM lineitem WHERE lineitem.l_quantity > 45"


@pytest.fixture(scope="module")
def db():
    return make_two_table_db()


@pytest.fixture(scope="module")
def archive(db, tmp_path_factory):
    path = tmp_path_factory.mktemp("degraded") / "stats"
    manager = StatisticsManager(db)
    manager.update_statistics(sample_size=64, seed=5)
    save_statistics(manager, path)
    return path


@pytest.fixture()
def session(db):
    with Session(db, sample_size=64, statistics_seed=5) as s:
        yield s


class TestDegradationEvent:
    def test_reason_validated(self):
        with pytest.raises(ValueError, match="unknown degradation reason"):
            DegradationEvent(
                reason="just-vibes",
                detail="",
                component="statistics",
                statistics_version=1,
            )

    def test_as_dict(self):
        event = DegradationEvent(
            reason=DEGRADATION_REASONS[0],
            detail="d",
            component="c",
            statistics_version=3,
        )
        assert event.as_dict() == {
            "reason": DEGRADATION_REASONS[0],
            "detail": "d",
            "component": "c",
            "statistics_version": 3,
        }


class TestAttachStatistics:
    def test_healthy_attach(self, session, archive):
        version = session.attach_statistics(str(archive))
        assert session.health == HEALTHY
        assert session.degradations() == []
        assert session.statistics_version() == version
        assert session.execute(QUERY).num_rows == 1

    def test_missing_archive_degrades(self, session, tmp_path):
        before = session.statistics_version()
        session.attach_statistics(str(tmp_path / "nowhere"))
        assert session.health == DEGRADED
        events = session.degradations()
        assert [e.reason for e in events] == ["statistics-load-failed"]
        # The session keeps its previous statistics and still plans.
        assert session.statistics_version() == before
        assert session.execute(QUERY).num_rows == 1
        assert "DEGRADED" in session.describe()

    def test_strict_attach_raises(self, session, tmp_path):
        from repro.errors import StatisticsError

        with pytest.raises(StatisticsError, match="manifest"):
            session.attach_statistics(
                str(tmp_path / "nowhere"), strict=True
            )
        # A strict failure is the caller's problem, not degraded mode.
        assert session.health == HEALTHY
        assert session.degradations() == []

    def test_unhealthy_statistics_attributed(self, db, session, tmp_path):
        partial = StatisticsManager(db)
        partial.update_statistics(sample_size=64, seed=5, tables=["part"])
        save_statistics(partial, tmp_path / "partial")
        session.attach_statistics(str(tmp_path / "partial"))
        assert session.health == DEGRADED
        (event,) = session.degradations()
        assert event.reason == "statistics-health"
        assert "lineitem" in event.detail
        assert session.execute(QUERY).num_rows == 1

    def test_metrics_counter_tracks_attaches(self, session, archive):
        session.attach_statistics(str(archive))
        counter = session.metrics.counter(
            "repro_session_statistics_attaches_total",
            "Statistics managers attached to the session.",
        )
        assert counter.value(result="healthy") == 1

    def test_refresh_recovers_health(self, session, tmp_path):
        session.attach_statistics(str(tmp_path / "nowhere"))
        assert session.health == DEGRADED
        session.refresh_statistics()
        assert session.health == HEALTHY
        # The event log is history, not state: it survives recovery.
        assert len(session.degradations()) == 1


class TestCrossArchiveCaching:
    def test_no_cache_hit_across_archives(self, db, archive, tmp_path):
        """Regression: loading two archives must never alias cache keys.

        Before statistics versions were allocated from a process-wide
        epoch, every loaded manager restarted at the saved counter, so
        two attaches produced identical plan-cache keys and the second
        archive was served the first archive's plans.
        """
        other = tmp_path / "other"
        shutil.copytree(archive, other)
        with Session(db, sample_size=64, statistics_seed=5) as session:
            v1 = session.attach_statistics(str(archive))
            first = session.prepare(QUERY)
            assert not first.from_cache
            # Warm hit under the same archive: the cache itself works.
            assert session.prepare(QUERY).from_cache

            v2 = session.attach_statistics(str(other))
            assert v1 != v2
            second = session.prepare(QUERY)
            assert not second.from_cache
            assert second.statistics_version != first.statistics_version

    def test_reattaching_same_archive_also_misses(self, db, archive):
        with Session(db, sample_size=64, statistics_seed=5) as session:
            session.attach_statistics(str(archive))
            session.prepare(QUERY)
            session.attach_statistics(str(archive))
            assert not session.prepare(QUERY).from_cache


class _ExplodingEstimator:
    def __init__(self, inner):
        self.inner = inner

    def estimate(self, tables, predicate, hint=None):
        raise EstimationError("injected")

    def estimate_many(self, tables, predicate, thresholds):
        raise EstimationError("injected")

    def describe(self):
        return "exploding"


class TestDegradedPlanning:
    def test_estimator_failure_routes_to_fallback(self, session):
        session.estimator_decorator = _ExplodingEstimator
        prepared = session.prepare(QUERY)
        assert prepared.degraded_reason == "estimator-failure"
        assert prepared.execute().num_rows == 1
        assert session.health == DEGRADED
        (event,) = session.degradations()
        assert event.reason == "estimator-failure"
        assert event.component == "planner"

    def test_degraded_plans_never_cached(self, session):
        session.estimator_decorator = _ExplodingEstimator
        first = session.prepare(QUERY)
        second = session.prepare(QUERY)
        assert not first.from_cache
        assert not second.from_cache
        # Two plans, two attributed degradations: nothing was silent.
        assert len(session.degradations()) == 2

    def test_recovery_after_decorator_removed(self, session):
        session.estimator_decorator = _ExplodingEstimator
        assert session.prepare(QUERY).degraded_reason == "estimator-failure"
        session.estimator_decorator = None
        session.refresh_statistics()
        prepared = session.prepare(QUERY)
        assert prepared.degraded_reason is None
        assert session.health == HEALTHY

    def test_degradation_metrics_match_events(self, session):
        session.estimator_decorator = _ExplodingEstimator
        session.prepare(QUERY)
        session.prepare(QUERY)
        counter = session.metrics.counter(
            "repro_session_degradations_total",
            "Graceful degradations, by attributed reason.",
        )
        assert counter.value(reason="estimator-failure") == 2
        gauge = session.metrics.gauge(
            "repro_session_degraded",
            "1 while the session is in degraded mode, else 0.",
        )
        assert gauge.value() == 1.0

    def test_prepare_many_degrades_per_threshold(self, session):
        session.estimator_decorator = _ExplodingEstimator
        prepared = session.prepare_many(QUERY, [0.5, 0.8])
        assert len(prepared) == 2
        assert all(p.degraded_reason == "estimator-failure" for p in prepared)
        assert all(p.execute().num_rows == 1 for p in prepared)


class TestFallbackAttribution:
    def test_fallback_estimates_counted(self, session):
        statistics = session._ensure_state().manager
        statistics.drop_synopsis("lineitem")
        statistics.drop_sample("lineitem")
        statistics.drop_histograms("lineitem")
        session.prepare(QUERY)
        counter = session.metrics.counter(
            "repro_session_fallback_estimates_total",
            "Estimation passes routed through the §3.5 fallbacks, "
            "by fallback source.",
        )
        total = sum(
            counter.value(source=source)
            for source in ("magic", "sample", "histogram")
        )
        assert total >= 1
        assert counter.value(source="magic") >= 1
