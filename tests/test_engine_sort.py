"""Tests for the Sort operator and sort-merge join plans."""

import numpy as np
import pytest

from repro.core import ExactCardinalityEstimator
from repro.cost import CostModel
from repro.engine import ExecutionContext, MergeJoin, SeqScan, Sort
from repro.engine.sort import sort_work
from repro.expressions import col
from repro.optimizer import Optimizer, SPJQuery

from tests.conftest import make_two_table_db


@pytest.fixture
def db():
    return make_two_table_db(n_part=50, n_lineitem=800)


class TestSortOperator:
    def test_sorts_ascending(self, db):
        plan = Sort(SeqScan("lineitem"), "lineitem.l_shipdate")
        frame = plan.execute(ExecutionContext(db))
        values = frame.column("lineitem.l_shipdate")
        assert (np.diff(values) >= 0).all()

    def test_preserves_rows(self, db):
        plan = Sort(SeqScan("lineitem"), "lineitem.l_shipdate")
        frame = plan.execute(ExecutionContext(db))
        assert frame.num_rows == db.table("lineitem").num_rows
        assert sorted(frame.column("lineitem.l_id")) == list(
            range(db.table("lineitem").num_rows)
        )

    def test_rows_stay_aligned(self, db):
        plan = Sort(SeqScan("lineitem"), "lineitem.l_shipdate")
        frame = plan.execute(ExecutionContext(db))
        table = db.table("lineitem")
        ids = frame.column("lineitem.l_id")
        assert np.array_equal(
            frame.column("lineitem.l_shipdate"), table.column("l_shipdate")[ids]
        )

    def test_charges_nlogn(self, db):
        ctx = ExecutionContext(db)
        Sort(SeqScan("lineitem"), "lineitem.l_shipdate").execute(ctx)
        n = db.table("lineitem").num_rows
        assert ctx.counters.sort_comparisons == pytest.approx(sort_work(n))

    def test_sort_work_edge_cases(self):
        assert sort_work(0) == 0.0
        assert sort_work(1) == 0.0
        assert sort_work(8) == pytest.approx(24.0)

    def test_label(self, db):
        assert "Sort" in Sort(SeqScan("lineitem"), "x").label()


class TestSortMergeJoin:
    def test_sort_merge_matches_hash_result(self, db):
        left = Sort(SeqScan("part"), "part.p_partkey")
        right = Sort(SeqScan("lineitem"), "lineitem.l_partkey")
        merged = MergeJoin(left, right, "part.p_partkey", "lineitem.l_partkey")
        frame = merged.execute(ExecutionContext(db))
        assert frame.num_rows == db.table("lineitem").num_rows

    def test_optimizer_generates_sort_merge_alternative(self, db):
        query = SPJQuery(["lineitem", "part"], col("part.p_size") <= 25)
        planned = Optimizer(db, ExactCardinalityEstimator(db)).optimize(query)
        shapes = [c.operator.explain() for c in planned.alternatives]
        assert any("Sort" in shape and "MergeJoin" in shape for shape in shapes)

    def test_sort_merge_cost_matches_execution(self, db):
        query = SPJQuery(["lineitem", "part"], col("part.p_size") <= 25)
        planned = Optimizer(db, ExactCardinalityEstimator(db)).optimize(query)
        model = CostModel()
        candidate = next(
            c
            for c in planned.alternatives
            if "Sort" in c.operator.explain() and "MergeJoin" in c.operator.explain()
        )
        ctx = ExecutionContext(db)
        candidate.operator.execute(ctx)
        assert candidate.cost == pytest.approx(
            model.time_from_counters(ctx.counters), rel=1e-9
        )

    def test_hash_usually_beats_sort_merge(self, db):
        """With the default coefficients hash join should beat a full
        sort-merge on unsorted inputs."""
        query = SPJQuery(["lineitem", "part"], col("part.p_size") <= 25)
        planned = Optimizer(db, ExactCardinalityEstimator(db)).optimize(query)
        assert "Sort" not in planned.plan.explain()
