"""Direct unit tests for join-candidate generation."""

import pytest

from repro.core import ExactCardinalityEstimator
from repro.cost import CostModel
from repro.engine import HashJoin, IndexedNLJoin, MergeJoin, Sort
from repro.expressions import col
from repro.optimizer.access import access_paths
from repro.optimizer.candidates import keep_best
from repro.optimizer.joins import join_candidates
from repro.optimizer.optimizer import PlanningContext
from repro.optimizer.query import SPJQuery


@pytest.fixture
def ctx(tpch_db):
    query = SPJQuery(
        ["lineitem", "orders"], col("orders.o_totalprice") > 100_000
    )
    return PlanningContext(
        tpch_db, CostModel(), ExactCardinalityEstimator(tpch_db), query
    )


def best_paths(ctx, table):
    singleton = frozenset([table])
    return keep_best(
        access_paths(
            ctx.database, ctx.model, ctx.card, table, ctx.pred_for(singleton)
        )
    )


@pytest.fixture
def edge(ctx):
    [edge] = ctx.query.join_edges(ctx.database)
    return edge


class TestJoinCandidates:
    def test_methods_generated(self, ctx, edge):
        left = best_paths(ctx, "lineitem")[None]
        right = best_paths(ctx, "orders")[None]
        out_rows = ctx.card(
            frozenset(["lineitem", "orders"]),
            ctx.pred_for(frozenset(["lineitem", "orders"])),
        ).cardinality
        candidates = join_candidates(ctx, left, right, edge, out_rows)
        kinds = {type(c.operator) for c in candidates}
        assert HashJoin in kinds
        assert MergeJoin in kinds  # direct or via explicit sorts
        assert IndexedNLJoin in kinds

    def test_hash_builds_on_smaller(self, ctx, edge):
        left = best_paths(ctx, "lineitem")[None]
        right = best_paths(ctx, "orders")[None]
        candidates = join_candidates(ctx, left, right, edge, 1000.0)
        hash_joins = [c for c in candidates if isinstance(c.operator, HashJoin)]
        for candidate in hash_joins:
            build_rows = candidate.operator.build.est_rows
            probe_rows = candidate.operator.probe.est_rows
            assert build_rows <= probe_rows

    def test_merge_without_sort_when_both_ordered(self, ctx, edge):
        # clustered scans carry the join-key order on both sides
        left = best_paths(ctx, "lineitem")["lineitem.l_orderkey"]
        right = best_paths(ctx, "orders")["orders.o_orderkey"]
        candidates = join_candidates(ctx, left, right, edge, 1000.0)
        merges = [c for c in candidates if isinstance(c.operator, MergeJoin)]
        assert merges
        for candidate in merges:
            shapes = {type(op) for op in candidate.operator.walk()}
            assert Sort not in shapes

    def test_merge_order_propagates(self, ctx, edge):
        left = best_paths(ctx, "lineitem")["lineitem.l_orderkey"]
        right = best_paths(ctx, "orders")["orders.o_orderkey"]
        candidates = join_candidates(ctx, left, right, edge, 1000.0)
        merge = next(c for c in candidates if isinstance(c.operator, MergeJoin))
        assert merge.order == "lineitem.l_orderkey"

    def test_inl_directions(self, ctx, edge):
        left = best_paths(ctx, "lineitem")[None]
        right = best_paths(ctx, "orders")[None]
        candidates = join_candidates(ctx, left, right, edge, 1000.0)
        inl = [c for c in candidates if isinstance(c.operator, IndexedNLJoin)]
        inner_tables = {c.operator.inner_table for c in inl}
        # orders has a PK index; lineitem has an FK index on l_orderkey:
        # both directions should be available
        assert inner_tables == {"orders", "lineitem"}

    def test_inl_preserves_outer_order(self, ctx, edge):
        left = best_paths(ctx, "lineitem")["lineitem.l_orderkey"]
        right = best_paths(ctx, "orders")[None]
        candidates = join_candidates(ctx, left, right, edge, 1000.0)
        inl = [
            c
            for c in candidates
            if isinstance(c.operator, IndexedNLJoin)
            and c.operator.inner_table == "orders"
        ]
        assert inl
        assert inl[0].order == "lineitem.l_orderkey"

    def test_all_candidates_cover_both_tables(self, ctx, edge):
        left = best_paths(ctx, "lineitem")[None]
        right = best_paths(ctx, "orders")[None]
        for candidate in join_candidates(ctx, left, right, edge, 1000.0):
            assert candidate.tables == frozenset(["lineitem", "orders"])

    def test_costs_include_children(self, ctx, edge):
        left = best_paths(ctx, "lineitem")[None]
        right = best_paths(ctx, "orders")[None]
        for candidate in join_candidates(ctx, left, right, edge, 1000.0):
            assert candidate.cost >= max(left.cost, right.cost)
