"""Unit tests for magic numbers and magic distributions."""

import pytest

from repro.core import MagicDistribution, MagicNumbers
from repro.expressions import col


class TestMagicNumbers:
    def setup_method(self):
        self.magic = MagicNumbers()

    def test_equality(self):
        assert self.magic.for_predicate(col("t.a") == 5) == 0.1

    def test_inequality_comparisons(self):
        assert self.magic.for_predicate(col("t.a") < 5) == pytest.approx(1 / 3)
        assert self.magic.for_predicate(col("t.a") >= 5) == pytest.approx(1 / 3)

    def test_not_equal(self):
        assert self.magic.for_predicate(col("t.a") != 5) == pytest.approx(0.9)

    def test_between(self):
        assert self.magic.for_predicate(col("t.a").between(1, 2)) == 0.25

    def test_in_list(self):
        assert self.magic.for_predicate(col("t.a").isin([1, 2])) == 0.15

    def test_string_match(self):
        assert self.magic.for_predicate(col("t.s").contains("x")) == 0.1
        assert self.magic.for_predicate(col("t.s").startswith("x")) == 0.1

    def test_negation(self):
        inner = col("t.a") == 5
        assert self.magic.for_predicate(~inner) == pytest.approx(0.9)

    def test_disjunction(self):
        predicate = (col("t.a") == 5) | (col("t.b") == 6)
        # 1 - 0.9 * 0.9
        assert self.magic.for_predicate(predicate) == pytest.approx(0.19)

    def test_fallback_default(self):
        predicate = col("t.a") == col("t.b")  # column-vs-column comparison
        assert self.magic.for_predicate(predicate) == 0.1  # it is still "="

    def test_arithmetic_default(self):
        # arbitrary expression falls back to the default constant
        assert self.magic.for_predicate(col("t.a") + 1) == pytest.approx(1 / 9)


class TestMagicDistribution:
    def test_median_near_mean(self):
        distribution = MagicDistribution(0.1, concentration=50.0)
        assert distribution.selectivity(0.5) == pytest.approx(0.1, abs=0.02)

    def test_threshold_monotone(self):
        distribution = MagicDistribution(0.1)
        low = distribution.selectivity(0.05)
        mid = distribution.selectivity(0.50)
        high = distribution.selectivity(0.95)
        assert low < mid < high

    def test_accepts_named_threshold(self):
        distribution = MagicDistribution(0.25)
        assert 0 < distribution.selectivity("conservative") < 1

    def test_higher_concentration_tightens(self):
        loose = MagicDistribution(0.2, concentration=2.0)
        tight = MagicDistribution(0.2, concentration=200.0)
        spread_loose = loose.selectivity(0.95) - loose.selectivity(0.05)
        spread_tight = tight.selectivity(0.95) - tight.selectivity(0.05)
        assert spread_tight < spread_loose / 3

    def test_repr(self):
        assert "0.2" in repr(MagicDistribution(0.2))
