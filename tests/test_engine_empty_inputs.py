"""Engine robustness on empty inputs and degenerate cases."""

import numpy as np
import pytest

from repro.engine import (
    AggregateSpec,
    ExecutionContext,
    Filter,
    HashAggregate,
    HashJoin,
    IndexSeek,
    IndexedNLJoin,
    MergeJoin,
    Project,
    SeqScan,
    Sort,
    StarSemiJoin,
)
from repro.engine.scans import IndexCondition
from repro.engine.star import DimensionSpec
from repro.expressions import col

from tests.conftest import make_two_table_db

NOTHING = col("lineitem.l_quantity") > 1e9  # matches no row
NO_PARTS = col("part.p_size") > 1e9


@pytest.fixture
def db():
    return make_two_table_db(n_part=20, n_lineitem=200)


class TestEmptyInputs:
    def test_empty_scan(self, db):
        frame = SeqScan("lineitem", NOTHING).execute(ExecutionContext(db))
        assert frame.num_rows == 0
        assert "lineitem.l_id" in frame.column_names

    def test_empty_index_seek(self, db):
        condition = IndexCondition("l_shipdate", 1, 2)
        frame = IndexSeek("lineitem", condition).execute(ExecutionContext(db))
        assert frame.num_rows == 0

    def test_hash_join_empty_build(self, db):
        join = HashJoin(
            SeqScan("part", NO_PARTS),
            SeqScan("lineitem"),
            "part.p_partkey",
            "lineitem.l_partkey",
        )
        assert join.execute(ExecutionContext(db)).num_rows == 0

    def test_hash_join_empty_probe(self, db):
        join = HashJoin(
            SeqScan("part"),
            SeqScan("lineitem", NOTHING),
            "part.p_partkey",
            "lineitem.l_partkey",
        )
        assert join.execute(ExecutionContext(db)).num_rows == 0

    def test_merge_join_empty_side(self, db):
        join = MergeJoin(
            SeqScan("part", NO_PARTS),
            SeqScan("lineitem"),
            "part.p_partkey",
            "lineitem.l_partkey",
        )
        assert join.execute(ExecutionContext(db)).num_rows == 0

    def test_inl_join_empty_outer(self, db):
        join = IndexedNLJoin(
            SeqScan("part", NO_PARTS), "lineitem", "part.p_partkey", "l_partkey"
        )
        ctx = ExecutionContext(db)
        assert join.execute(ctx).num_rows == 0
        assert ctx.counters.random_ios == 0

    def test_filter_of_empty(self, db):
        plan = Filter(SeqScan("lineitem", NOTHING), col("lineitem.l_quantity") > 0)
        assert plan.execute(ExecutionContext(db)).num_rows == 0

    def test_sort_of_empty(self, db):
        plan = Sort(SeqScan("lineitem", NOTHING), "lineitem.l_shipdate")
        ctx = ExecutionContext(db)
        assert plan.execute(ctx).num_rows == 0
        assert ctx.counters.sort_comparisons == 0

    def test_project_of_empty(self, db):
        plan = Project(SeqScan("lineitem", NOTHING), ["lineitem.l_id"])
        assert plan.execute(ExecutionContext(db)).num_rows == 0

    def test_star_with_empty_dimension_filter(self, star_db):
        specs = [
            DimensionSpec("dim1", "f_dim1key", col("dim1.d_attr") > 1e9),
            DimensionSpec("dim2", "f_dim2key", col("dim2.d_attr").between(0, 99)),
        ]
        ctx = ExecutionContext(star_db)
        frame = StarSemiJoin("fact", specs).execute(ctx)
        assert frame.num_rows == 0
        assert ctx.counters.random_ios == 0  # nothing survives intersection

    def test_chained_empty_pipeline(self, db):
        plan = HashAggregate(
            HashJoin(
                SeqScan("part", NO_PARTS),
                SeqScan("lineitem"),
                "part.p_partkey",
                "lineitem.l_partkey",
            ),
            [AggregateSpec("count", "*", "n"), AggregateSpec("sum", "lineitem.l_quantity", "q")],
        )
        frame = plan.execute(ExecutionContext(db))
        assert frame.num_rows == 1
        assert frame.column("n")[0] == 0
        assert frame.column("q")[0] == 0.0


class TestDegenerateValues:
    def test_single_row_table_join(self):
        db = make_two_table_db(n_part=1, n_lineitem=5)
        join = HashJoin(
            SeqScan("part"),
            SeqScan("lineitem"),
            "part.p_partkey",
            "lineitem.l_partkey",
        )
        assert join.execute(ExecutionContext(db)).num_rows == 5

    def test_seek_entire_domain(self, db):
        condition = IndexCondition("l_shipdate", None, None)
        frame = IndexSeek("lineitem", condition).execute(ExecutionContext(db))
        assert frame.num_rows == db.table("lineitem").num_rows

    def test_duplicate_sort_keys_stable_row_count(self, db):
        plan = Sort(SeqScan("lineitem"), "lineitem.l_partkey")
        frame = plan.execute(ExecutionContext(db))
        assert frame.num_rows == db.table("lineitem").num_rows
