"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.analysis import EstimationModel, selectivity_estimates
from repro.core import JEFFREYS, UNIFORM, Prior, SelectivityPosterior
from repro.engine.joinutil import match_keys
from repro.expressions import Frame, col
from repro.indexes import HashIndex, SortedIndex, intersect_rid_sets
from repro.stats import EquiDepthHistogram

int_arrays = npst.arrays(
    np.int64,
    st.integers(min_value=1, max_value=200),
    elements=st.integers(min_value=-50, max_value=50),
)


class TestPosteriorProperties:
    @given(
        n=st.integers(min_value=1, max_value=5000),
        k_fraction=st.floats(min_value=0, max_value=1),
        t=st.floats(min_value=0.01, max_value=0.99),
    )
    def test_ppf_in_unit_interval(self, n, k_fraction, t):
        k = int(round(k_fraction * n))
        posterior = SelectivityPosterior(k, n)
        estimate = posterior.ppf(t)
        assert 0.0 <= estimate <= 1.0

    @given(
        n=st.integers(min_value=1, max_value=2000),
        k_fraction=st.floats(min_value=0, max_value=1),
    )
    def test_threshold_monotonicity(self, n, k_fraction):
        k = int(round(k_fraction * n))
        posterior = SelectivityPosterior(k, n)
        assert posterior.ppf(0.1) <= posterior.ppf(0.5) <= posterior.ppf(0.9)

    @given(
        n=st.integers(min_value=2, max_value=1000),
        k=st.integers(min_value=0, max_value=1000),
        t=st.floats(min_value=0.05, max_value=0.95),
    )
    def test_k_monotonicity(self, n, k, t):
        """More satisfying tuples → higher estimate, at any threshold."""
        k = min(k, n - 1)
        lower = SelectivityPosterior(k, n).ppf(t)
        higher = SelectivityPosterior(k + 1, n).ppf(t)
        assert higher >= lower

    @given(
        n=st.integers(min_value=1, max_value=1000),
        k_fraction=st.floats(min_value=0, max_value=1),
    )
    def test_mean_between_prior_and_mle(self, n, k_fraction):
        k = int(round(k_fraction * n))
        posterior = SelectivityPosterior(k, n)
        low, high = sorted((posterior.mle, JEFFREYS.mean))
        assert low - 1e-12 <= posterior.mean <= high + 1e-12

    @given(
        n=st.integers(min_value=10, max_value=500),
        k_fraction=st.floats(min_value=0, max_value=1),
    )
    def test_more_data_tightens_posterior(self, n, k_fraction):
        k = int(round(k_fraction * n))
        small = SelectivityPosterior(k, n)
        large = SelectivityPosterior(k * 4, n * 4)
        assert large.variance <= small.variance + 1e-12


class TestSelectivityEstimateProperties:
    @given(
        n=st.integers(min_value=1, max_value=400),
        t=st.floats(min_value=0.05, max_value=0.95),
    )
    def test_estimates_monotone_in_k(self, n, t):
        estimates = selectivity_estimates(EstimationModel(n, t))
        assert (np.diff(estimates) >= -1e-12).all()

    @given(n=st.integers(min_value=1, max_value=300))
    def test_prior_choice_bounded_effect(self, n):
        """Jeffreys vs uniform never move the median estimate by more
        than ~1/n (Figure 4's 'prior doesn't matter')."""
        k = n // 3
        jeffreys = SelectivityPosterior(k, n, JEFFREYS).ppf(0.5)
        uniform = SelectivityPosterior(k, n, UNIFORM).ppf(0.5)
        assert abs(jeffreys - uniform) <= 1.0 / n


class TestSortedIndexProperties:
    @given(values=int_arrays, low=st.integers(-60, 60), width=st.integers(0, 40))
    def test_range_lookup_matches_bruteforce(self, values, low, width):
        index = SortedIndex(values)
        high = low + width
        rids = index.lookup_range(low, high)
        expected = np.flatnonzero((values >= low) & (values <= high))
        assert sorted(rids) == sorted(expected)

    @given(values=int_arrays, key=st.integers(-60, 60))
    def test_eq_lookup_matches_bruteforce(self, values, key):
        index = SortedIndex(values)
        assert sorted(index.lookup_eq(key)) == sorted(
            np.flatnonzero(values == key)
        )

    @given(values=int_arrays, key=st.integers(-60, 60))
    def test_hash_and_sorted_agree(self, values, key):
        assert sorted(SortedIndex(values).lookup_eq(key)) == sorted(
            HashIndex(values).lookup(key)
        )

    @given(values=int_arrays)
    def test_lookup_many_eq_concatenates(self, values):
        index = SortedIndex(values)
        probes = np.unique(values)[:5]
        combined = index.lookup_many_eq(probes)
        manual = np.concatenate(
            [index.lookup_eq(p) for p in probes]
        ) if len(probes) else np.array([], dtype=np.int64)
        assert sorted(combined) == sorted(manual)


class TestRidSetProperties:
    @given(sets=st.lists(int_arrays, min_size=1, max_size=4))
    def test_intersection_matches_python_sets(self, sets):
        expected = set(sets[0].tolist())
        for array in sets[1:]:
            expected &= set(array.tolist())
        result = intersect_rid_sets(sets)
        assert set(result.tolist()) == expected
        assert (np.diff(result) > 0).all()  # sorted unique


class TestMatchKeysProperties:
    @given(left=int_arrays, right=int_arrays)
    def test_matches_bruteforce_pairs(self, left, right):
        li, ri = match_keys(left, right)
        produced = sorted(zip(li.tolist(), ri.tolist()))
        expected = sorted(
            (i, j)
            for i in range(len(left))
            for j in range(len(right))
            if left[i] == right[j]
        )
        assert produced == expected


class TestHistogramProperties:
    @settings(deadline=None)
    @given(
        values=npst.arrays(
            np.int64,
            st.integers(min_value=1, max_value=500),
            elements=st.integers(min_value=0, max_value=1000),
        ),
        buckets=st.integers(min_value=1, max_value=50),
    )
    def test_counts_conserved(self, values, buckets):
        histogram = EquiDepthHistogram(values, buckets)
        assert histogram.counts.sum() == len(values)
        assert histogram.selectivity_range(None, None) == pytest.approx(1.0)

    @settings(deadline=None)
    @given(
        values=npst.arrays(
            np.int64,
            st.integers(min_value=1, max_value=500),
            elements=st.integers(min_value=0, max_value=1000),
        ),
        low=st.integers(0, 1000),
        width=st.integers(0, 500),
    )
    def test_range_selectivity_in_unit_interval(self, values, low, width):
        histogram = EquiDepthHistogram(values, 20)
        selectivity = histogram.selectivity_range(low, low + width)
        assert 0.0 <= selectivity <= 1.0

    @settings(deadline=None)
    @given(
        values=npst.arrays(
            np.int64,
            st.integers(min_value=1, max_value=300),
            elements=st.integers(min_value=0, max_value=100),
        ),
        split=st.integers(0, 100),
    )
    def test_range_additivity(self, values, split):
        """sel([min,split]) + sel((split,max]) ≈ 1."""
        histogram = EquiDepthHistogram(values, 20)
        left = histogram.selectivity_range(None, split)
        right = histogram.selectivity_range(split + 1, None)
        if values.min() <= split < values.max():
            assert left + right == pytest.approx(1.0, abs=0.25)

    @settings(deadline=None)
    @given(
        values=npst.arrays(
            np.int64,
            st.integers(min_value=1, max_value=300),
            elements=st.integers(min_value=0, max_value=50),
        )
    )
    def test_boundary_equality_exact(self, values):
        """Boundary values report their exact frequency."""
        histogram = EquiDepthHistogram(values, 10)
        for upper in histogram.uppers:
            expected = (values == upper).mean()
            assert histogram.selectivity_eq(upper) == pytest.approx(expected)


class TestFrameProperties:
    @given(data=int_arrays)
    def test_mask_then_count(self, data):
        frame = Frame({"t.x": data})
        mask = np.asarray(data > 0)
        assert frame.mask(mask).num_rows == int(mask.sum())

    @given(data=int_arrays, threshold=st.integers(-50, 50))
    def test_predicate_counts_match_numpy(self, data, threshold):
        frame = Frame({"t.x": data})
        predicate = col("t.x") <= threshold
        assert predicate.evaluate(frame).sum() == (data <= threshold).sum()


class TestPriorProperties:
    @given(
        mean=st.floats(min_value=0.01, max_value=0.99),
        concentration=st.floats(min_value=0.1, max_value=100),
    )
    def test_informative_prior_mean(self, mean, concentration):
        prior = Prior.informative(mean, concentration)
        assert prior.mean == pytest.approx(mean)
