"""Tests for supporting infrastructure: rng helpers, candidate pruning."""

import numpy as np
import pytest

from repro.engine import SeqScan
from repro.optimizer.candidates import PlanCandidate, keep_best
from repro.random_state import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_int_seed_deterministic(self):
        assert ensure_rng(5).integers(0, 100) == ensure_rng(5).integers(0, 100)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_streams_independent_and_reproducible(self):
        a = spawn_rngs(7, 3)
        b = spawn_rngs(7, 3)
        for left, right in zip(a, b):
            assert left.integers(0, 1 << 30) == right.integers(0, 1 << 30)
        fresh = spawn_rngs(7, 3)
        values = [g.integers(0, 1 << 30) for g in fresh]
        assert len(set(values)) == 3

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(3), 2)
        assert len(children) == 2


def candidate(cost, order=None):
    return PlanCandidate(
        operator=SeqScan("t"),
        tables=frozenset(["t"]),
        rows=1.0,
        cost=cost,
        order=order,
    )


class TestKeepBest:
    def test_cheapest_kept_per_order(self):
        best = keep_best(
            [candidate(5.0, "t.a"), candidate(3.0, "t.a"), candidate(9.0, "t.b")]
        )
        assert best["t.a"].cost == 3.0
        assert best["t.b"].cost == 9.0

    def test_global_best_in_none_slot(self):
        best = keep_best([candidate(5.0, "t.a"), candidate(2.0, "t.b")])
        assert best[None].cost == 2.0

    def test_unordered_candidates(self):
        best = keep_best([candidate(5.0), candidate(1.0)])
        assert best[None].cost == 1.0
        assert set(best) == {None}

    def test_empty(self):
        assert keep_best([]) == {}

    def test_annotated_sets_estimates(self):
        c = candidate(4.0).annotated()
        assert c.operator.est_cost == 4.0
        assert c.operator.est_rows == 1.0
