"""Unit tests for priors."""

import pytest

from repro.core import JEFFREYS, UNIFORM, Prior
from repro.errors import EstimationError


class TestNamedPriors:
    def test_jeffreys_shapes(self):
        assert JEFFREYS.alpha == 0.5
        assert JEFFREYS.beta == 0.5

    def test_uniform_shapes(self):
        assert UNIFORM.alpha == 1.0
        assert UNIFORM.beta == 1.0

    def test_from_name(self):
        assert Prior.from_name("jeffreys") is JEFFREYS
        assert Prior.from_name("Uniform") is UNIFORM

    def test_unknown_name_raises(self):
        with pytest.raises(EstimationError):
            Prior.from_name("laplace")

    def test_means(self):
        assert JEFFREYS.mean == 0.5
        assert UNIFORM.mean == 0.5


class TestValidation:
    def test_nonpositive_shapes_raise(self):
        with pytest.raises(EstimationError):
            Prior(0.0, 1.0)
        with pytest.raises(EstimationError):
            Prior(1.0, -1.0)


class TestInformative:
    def test_mean_preserved(self):
        prior = Prior.informative(0.1, 10.0)
        assert prior.mean == pytest.approx(0.1)
        assert prior.alpha + prior.beta == pytest.approx(10.0)

    def test_invalid_mean_raises(self):
        with pytest.raises(EstimationError):
            Prior.informative(0.0, 4.0)
        with pytest.raises(EstimationError):
            Prior.informative(1.0, 4.0)

    def test_invalid_concentration_raises(self):
        with pytest.raises(EstimationError):
            Prior.informative(0.5, 0.0)

    def test_str(self):
        assert "jeffreys" in str(JEFFREYS)
