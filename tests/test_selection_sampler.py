"""Deterministic posterior sampling, independent of worker topology.

``sample_quantiles`` seeds from *content* — ``(query_key,
statistics_token, policy)`` — never from process-global state, so the
same query under the same statistics build draws byte-identical
posterior samples in any process, thread, or worker count.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.experiments import ExperimentRunner, penalty_configs
from repro.selection import PenaltyPolicy, sample_quantiles
from repro.stats import StatisticsManager
from repro.workloads import ShippingDatesTemplate


class TestSampleQuantiles:
    def test_deterministic_for_same_inputs(self):
        policy = PenaltyPolicy(samples=16)
        first = sample_quantiles(policy, query_key="q1", statistics_token=7)
        second = sample_quantiles(policy, query_key="q1", statistics_token=7)
        assert first == second  # byte-identical floats, not just close

    def test_sorted_open_unit_interval(self):
        policy = PenaltyPolicy(samples=64)
        samples = sample_quantiles(policy, query_key="q", statistics_token=1)
        assert len(samples) == 64
        assert list(samples) == sorted(samples)
        assert all(0.0 < u < 1.0 for u in samples)

    @pytest.mark.parametrize(
        "other",
        [
            {"query_key": "q2", "statistics_token": 7},
            {"query_key": "q1", "statistics_token": 8},
        ],
    )
    def test_key_and_token_both_matter(self, other):
        policy = PenaltyPolicy(samples=16)
        base = sample_quantiles(policy, query_key="q1", statistics_token=7)
        assert sample_quantiles(policy, **other) != base

    def test_policy_shape_matters(self):
        base = sample_quantiles(
            PenaltyPolicy(samples=16), query_key="q", statistics_token=7
        )
        cvar = sample_quantiles(
            PenaltyPolicy(samples=16, risk="cvar", alpha=0.9),
            query_key="q",
            statistics_token=7,
        )
        assert base != cvar


class TestStatisticsToken:
    def test_content_derived_not_epoch_derived(self, tpch_db):
        # Two managers built independently (as two worker processes
        # would) must agree on the token when seed and sample size
        # agree — the process-global statistics epoch must not leak in.
        first = StatisticsManager(tpch_db)
        first.update_statistics(sample_size=300, seed=5)
        second = StatisticsManager(tpch_db)
        second.update_statistics(sample_size=300, seed=5)
        assert first.sampling_token() == second.sampling_token()

    def test_token_tracks_build_inputs(self, tpch_db):
        base = StatisticsManager(tpch_db)
        base.update_statistics(sample_size=300, seed=5)
        reseeded = StatisticsManager(tpch_db)
        reseeded.update_statistics(sample_size=300, seed=6)
        resized = StatisticsManager(tpch_db)
        resized.update_statistics(sample_size=200, seed=5)
        assert reseeded.sampling_token() != base.sampling_token()
        assert resized.sampling_token() != base.sampling_token()


class TestWorkerIdentity:
    """The satellite regression: workers=1 and workers=2 plan
    byte-identically under penalty selection."""

    def _run(self, tpch_db, workers):
        template = ShippingDatesTemplate()
        params = template.params_for_targets(
            tpch_db, [0.0, 0.003, 0.006], step=4
        )
        runner = ExperimentRunner(
            tpch_db, template, sample_size=300, seeds=(0, 1), workers=workers
        )
        return runner.run(params, penalty_configs(samples=8))

    def test_workers_1_vs_2_byte_identical(self, tpch_db):
        serial = self._run(tpch_db, workers=1)
        parallel = self._run(tpch_db, workers=2)
        assert serial.records == parallel.records
        # Byte identity, not approximate equality: the canonical
        # record streams (plans and float reprs included) hash the
        # same. (Not pickle — its identity-based memo makes equal
        # values serialize differently across process topologies.)
        digest = lambda result: hashlib.sha256(  # noqa: E731
            "\n".join(repr(record) for record in result.records).encode()
        ).hexdigest()
        assert digest(serial) == digest(parallel)
        assert {record.config for record in serial.records} == {
            "E[penalty](m=8)",
            "CVaR(α=0.9, m=8)",
        }
