"""NonEquiJoin: sort/interval inequality join against numpy ground truth."""

import numpy as np
import pytest

from repro.catalog import Column, ColumnType, Database, Schema, Table
from repro.engine import ExecutionContext, NonEquiJoin, SeqScan
from repro.errors import ExecutionError
from repro.expressions import col

N_LEFT, N_RIGHT = 180, 45


def _band_db(seed: int = 5) -> Database:
    """Two FK-unrelated tables with overlapping integer value ranges
    (small domain, so ties exercise the ``=`` and ``<=`` paths)."""
    rng = np.random.default_rng(seed)
    left = Table(
        "a",
        Schema(
            [Column("a_id", ColumnType.INT64), Column("a_val", ColumnType.INT64)],
            primary_key="a_id",
        ),
        {
            "a_id": np.arange(N_LEFT),
            "a_val": rng.integers(0, 25, N_LEFT),
        },
    )
    right = Table(
        "b",
        Schema(
            [Column("b_id", ColumnType.INT64), Column("b_val", ColumnType.INT64)],
            primary_key="b_id",
        ),
        {
            "b_id": np.arange(N_RIGHT),
            "b_val": rng.integers(0, 25, N_RIGHT),
        },
    )
    database = Database([left, right])
    database.validate()
    return database


@pytest.fixture(scope="module")
def database():
    return _band_db()


def _truth_pairs(database, op):
    a = database.table("a").column("a_val")[:, None]
    b = database.table("b").column("b_val")[None, :]
    compare = {
        "<": a < b,
        "<=": a <= b,
        ">": a > b,
        ">=": a >= b,
        "=": a == b,
    }[op]
    return int(compare.sum())


class TestOperators:
    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "="])
    def test_matches_numpy_pair_count(self, database, op):
        join = NonEquiJoin(SeqScan("a"), SeqScan("b"), "a.a_val", op, "b.b_val")
        frame = join.execute(ExecutionContext(database))
        assert frame.num_rows == _truth_pairs(database, op)

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "="])
    def test_every_output_pair_satisfies_the_condition(self, database, op):
        join = NonEquiJoin(SeqScan("a"), SeqScan("b"), "a.a_val", op, "b.b_val")
        frame = join.execute(ExecutionContext(database))
        left = frame.column("a.a_val")
        right = frame.column("b.b_val")
        compare = {
            "<": left < right,
            "<=": left <= right,
            ">": left > right,
            ">=": left >= right,
            "=": left == right,
        }[op]
        assert bool(compare.all())

    def test_unsupported_operator_rejected(self, database):
        with pytest.raises(ExecutionError):
            NonEquiJoin(SeqScan("a"), SeqScan("b"), "a.a_val", "!=", "b.b_val")

    def test_label_mentions_condition(self):
        join = NonEquiJoin(SeqScan("a"), SeqScan("b"), "a.a_val", "<", "b.b_val")
        assert join.label() == "NonEquiJoin(a.a_val < b.b_val)"


class TestResidual:
    def test_residual_filters_pairs(self, database):
        residual = col("b.b_val") <= 12
        join = NonEquiJoin(
            SeqScan("a"), SeqScan("b"), "a.a_val", "<", "b.b_val", residual
        )
        frame = join.execute(ExecutionContext(database))
        a = database.table("a").column("a_val")[:, None]
        b = database.table("b").column("b_val")[None, :]
        expected = int(((a < b) & (b <= 12)).sum())
        assert frame.num_rows == expected
        assert "residual" in join.label()

    def test_band_residual_on_both_sides(self, database):
        """A band: a_val <= b_val AND b_val < a_val + 4."""
        residual = col("b.b_val") < col("a.a_val") + 4
        join = NonEquiJoin(
            SeqScan("a"), SeqScan("b"), "a.a_val", "<=", "b.b_val", residual
        )
        frame = join.execute(ExecutionContext(database))
        a = database.table("a").column("a_val")[:, None]
        b = database.table("b").column("b_val")[None, :]
        expected = int(((a <= b) & (b < a + 4)).sum())
        assert frame.num_rows == expected


class TestCountersAndOrder:
    def test_interval_pairs_counter(self, database):
        ctx = ExecutionContext(database)
        join = NonEquiJoin(SeqScan("a"), SeqScan("b"), "a.a_val", "<", "b.b_val")
        join.execute(ctx)
        assert ctx.counters.interval_pairs == _truth_pairs(database, "<")

    def test_residual_charges_cpu_per_pair(self, database):
        ctx = ExecutionContext(database)
        residual = col("b.b_val") <= 12
        join = NonEquiJoin(
            SeqScan("a"), SeqScan("b"), "a.a_val", "<", "b.b_val", residual
        )
        join.execute(ctx)
        pairs = _truth_pairs(database, "<")
        # per-left probe CPU + per-pair residual CPU + both scans
        scanned = N_LEFT + N_RIGHT
        assert ctx.counters.cpu_rows == scanned + N_LEFT + pairs

    def test_output_order_deterministic(self, database):
        """Left rows in input order, matches ascending by right value."""
        join = NonEquiJoin(SeqScan("a"), SeqScan("b"), "a.a_val", "<", "b.b_val")
        frame = join.execute(ExecutionContext(database))
        left_ids = frame.column("a.a_id")
        assert bool((np.diff(left_ids) >= 0).all())
        right_vals = frame.column("b.b_val")
        boundaries = np.flatnonzero(np.diff(left_ids) == 0)
        assert bool((np.diff(right_vals)[boundaries] >= 0).all())

    def test_two_runs_identical(self, database):
        join = NonEquiJoin(SeqScan("a"), SeqScan("b"), "a.a_val", "<", "b.b_val")
        one = join.execute(ExecutionContext(database))
        two = join.execute(ExecutionContext(database))
        assert np.array_equal(one.column("a.a_id"), two.column("a.a_id"))
        assert np.array_equal(one.column("b.b_id"), two.column("b.b_id"))


class TestEmptyInputs:
    def test_empty_left(self, database):
        empty = SeqScan("a", col("a.a_id") < -1)
        join = NonEquiJoin(empty, SeqScan("b"), "a.a_val", "<", "b.b_val")
        assert join.execute(ExecutionContext(database)).num_rows == 0

    def test_empty_right(self, database):
        empty = SeqScan("b", col("b.b_id") < -1)
        join = NonEquiJoin(SeqScan("a"), empty, "a.a_val", ">=", "b.b_val")
        assert join.execute(ExecutionContext(database)).num_rows == 0
