"""Accuracy ledger: severity bands, drift, degradation, routing."""

from __future__ import annotations

import pytest

from repro.core import AGGRESSIVE, CONSERVATIVE, MODERATE
from repro.feedback import DEFAULT_BAND_THRESHOLDS, ThresholdRouter
from repro.obs import MetricsRegistry
from repro.obs.ledger import (
    AccuracyLedger,
    SEVERITY_BANDS,
    SEVERITY_ORDER,
    classify_q_error,
)
from repro.selection import PenaltyPolicy, ThresholdPolicy


class TestClassification:
    @pytest.mark.parametrize(
        "value, band",
        [
            (1.0, "accurate"),
            (1.99, "accurate"),
            (2.0, "moderate"),
            (9.99, "moderate"),
            (10.0, "major"),
            (999.0, "major"),
            (1000.0, "catastrophic"),
            (1e9, "catastrophic"),
        ],
    )
    def test_band_boundaries(self, value, band):
        assert classify_q_error(value) == band

    def test_subunit_qerror_clamps_to_accurate(self):
        assert classify_q_error(0.1) == "accurate"

    def test_order_matches_band_tuple(self):
        names = [name for name, _ in SEVERITY_BANDS]
        assert sorted(SEVERITY_ORDER, key=SEVERITY_ORDER.get) == names


class TestIngestAndSeverity:
    def test_severity_none_before_data(self):
        ledger = AccuracyLedger()
        assert ledger.severity("q") is None

    def test_severity_follows_window_p90(self):
        ledger = AccuracyLedger(window=10)
        for _ in range(8):
            ledger.ingest("q", 1.2)
        assert ledger.severity("q") == "accurate"
        for _ in range(2):
            ledger.ingest("q", 50.0)
        # Two outliers in ten put the nearest-rank p90 on an outlier.
        assert ledger.severity("q") == "major"

    def test_window_forgets_old_errors(self):
        ledger = AccuracyLedger(window=4, baseline=2)
        for _ in range(4):
            ledger.ingest("q", 2000.0)
        assert ledger.severity("q") == "catastrophic"
        for _ in range(4):
            ledger.ingest("q", 1.1)
        assert ledger.severity("q") == "accurate"

    def test_quantiles_and_classes(self):
        ledger = AccuracyLedger()
        for q in (1.0, 2.0, 4.0, 8.0):
            ledger.ingest("a", q)
        ledger.ingest("b", 3.0)
        assert ledger.classes() == ["a", "b"]
        assert ledger.quantile("a", 0.5) == 2.0
        assert ledger.quantile("a", 1.0) == 8.0
        assert ledger.quantile("missing", 0.5) is None

    def test_per_expr_series_aggregates(self):
        ledger = AccuracyLedger()
        ledger.ingest("q", 4.0, expr_key="e1")
        ledger.ingest("q", 9.0, expr_key="e1")
        ledger.ingest("q", 2.0, expr_key="e2")
        report = ledger.report()["q"]
        assert report["expressions"]["e1"]["count"] == 2
        assert report["expressions"]["e1"]["geomean_q"] == pytest.approx(6.0)
        assert report["expressions"]["e2"]["max_q"] == 2.0

    def test_rejects_degenerate_sizes(self):
        with pytest.raises(ValueError):
            AccuracyLedger(window=0)
        with pytest.raises(ValueError):
            AccuracyLedger(baseline=0)


class TestDriftAndDegradation:
    def test_worsening_transition_raises_event(self):
        events = []
        ledger = AccuracyLedger(window=4, on_degradation=events.append)
        ledger.ingest("q", 1.1)
        assert not events
        event = ledger.ingest("q", 5000.0, statistics_version=3)
        assert event is not None
        assert event.reason == "estimation-drift"
        assert event.component == "estimator"
        assert event.statistics_version == 3
        assert "'q'" in event.detail
        assert events == [event] == ledger.events

    def test_improving_transition_is_silent(self):
        ledger = AccuracyLedger(window=2)
        ledger.ingest("q", 5000.0)
        ledger.ingest("q", 5000.0)
        assert ledger.ingest("q", 1.0) is None
        assert ledger.ingest("q", 1.0) is None
        assert ledger.severity("q") == "accurate"
        assert ledger.events == []

    def test_first_observation_never_degrades(self):
        ledger = AccuracyLedger()
        assert ledger.ingest("q", 1e6) is None

    def test_drift_score_is_log10_shift_vs_baseline(self):
        ledger = AccuracyLedger(window=4, baseline=4)
        for _ in range(4):
            ledger.ingest("q", 1.0)
        assert ledger.drift_score("q") == pytest.approx(0.0)
        for _ in range(4):
            ledger.ingest("q", 100.0)
        # Window now all 100x against an all-1x baseline: shift = 2.
        assert ledger.drift_score("q") == pytest.approx(2.0)
        assert ledger.drift_score("unknown") == 0.0

    def test_gauges_published_per_class(self):
        registry = MetricsRegistry()
        ledger = AccuracyLedger(registry=registry)
        for q in (1.0, 2.0, 16.0):
            ledger.ingest("q", q)
        gauge = registry.gauge("repro_feedback_qerror")
        assert gauge.value(**{"class": "q", "quantile": "p50"}) == 2.0
        assert gauge.value(**{"class": "q", "quantile": "max"}) == 16.0
        drift = registry.gauge("repro_feedback_drift_score")
        assert drift.value(**{"class": "q"}) == pytest.approx(0.0)

    def test_reset_forgets_one_class_or_all(self):
        ledger = AccuracyLedger()
        ledger.ingest("a", 5.0)
        ledger.ingest("b", 5.0)
        ledger.reset("a")
        assert ledger.classes() == ["b"]
        ledger.reset()
        assert ledger.classes() == []


class TestThresholdRouter:
    def make(self, window=4):
        ledger = AccuracyLedger(window=window)
        return ledger, ThresholdRouter(ledger)

    def test_cold_class_routes_none(self):
        _, router = self.make()
        assert router.route("q") is None
        assert router.routed_counts == {}

    def test_accurate_routes_aggressive(self):
        ledger, router = self.make()
        ledger.ingest("q", 1.2)
        assert router.route("q") == ThresholdPolicy(AGGRESSIVE)
        assert router.routed_counts == {"accurate": 1}

    def test_catastrophic_routes_conservative(self):
        ledger, router = self.make()
        for _ in range(4):
            ledger.ingest("q", 5000.0)
        assert router.route("q") == ThresholdPolicy(CONSERVATIVE)
        assert router.routed_counts == {"catastrophic": 1}

    def test_penalty_band_routes_policy(self):
        ledger = AccuracyLedger(window=4)
        bands = dict(DEFAULT_BAND_THRESHOLDS, catastrophic="cvar:0.9:16")
        router = ThresholdRouter(ledger, bands)
        for _ in range(4):
            ledger.ingest("q", 5000.0)
        routed = router.route("q")
        assert routed == PenaltyPolicy(samples=16, risk="cvar", alpha=0.9)
        table = router.routing_table()
        assert table["q"]["policy"] == "cvar:0.9:16"
        assert table["q"]["threshold"] is None

    def test_default_map_covers_every_band(self):
        assert set(DEFAULT_BAND_THRESHOLDS) == set(SEVERITY_ORDER)
        assert DEFAULT_BAND_THRESHOLDS["moderate"] == MODERATE

    def test_missing_band_rejected(self):
        ledger = AccuracyLedger()
        with pytest.raises(ValueError, match="catastrophic"):
            ThresholdRouter(ledger, {"accurate": 0.5})

    def test_routing_table_reflects_ledger(self):
        ledger, router = self.make()
        ledger.ingest("a", 1.0)
        ledger.ingest("b", 30.0)
        table = router.routing_table()
        assert table["a"] == {
            "severity": "accurate",
            "policy": f"threshold:{AGGRESSIVE:g}",
            "threshold": AGGRESSIVE,
        }
        assert table["b"]["severity"] == "major"
