"""Shared fixtures: small hand-built databases and generated workloads.

Session-scoped fixtures are treated as immutable by every test; tests
that need to mutate a database (e.g. add indexes) build their own.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog import Column, ColumnType, Database, ForeignKey, Schema, Table
from repro.stats import StatisticsManager
from repro.workloads import (
    SnowflakeConfig,
    StarConfig,
    TpchConfig,
    build_snowflake_database,
    build_star_database,
    build_tpch_database,
)


def make_two_table_db(
    n_part: int = 100, n_lineitem: int = 2000, seed: int = 7
) -> Database:
    """A fresh part/lineitem pair with indexes, safe to mutate."""
    rng = np.random.default_rng(seed)
    part = Table(
        "part",
        Schema(
            [
                Column("p_partkey", ColumnType.INT64),
                Column("p_size", ColumnType.INT64),
                Column("p_brand", ColumnType.STRING),
            ],
            primary_key="p_partkey",
        ),
        {
            "p_partkey": np.arange(n_part),
            "p_size": rng.integers(1, 51, n_part),
            "p_brand": rng.choice([f"Brand#{i}" for i in range(5)], n_part),
        },
    )
    lineitem = Table(
        "lineitem",
        Schema(
            [
                Column("l_id", ColumnType.INT64),
                Column("l_partkey", ColumnType.INT64),
                Column("l_quantity", ColumnType.FLOAT64),
                Column("l_shipdate", ColumnType.DATE),
                Column("l_receiptdate", ColumnType.DATE),
            ],
            primary_key="l_id",
            foreign_keys=[ForeignKey("l_partkey", "part", "p_partkey")],
        ),
        {
            "l_id": np.arange(n_lineitem),
            "l_partkey": rng.integers(0, n_part, n_lineitem),
            "l_quantity": rng.uniform(1, 50, n_lineitem).round(),
            "l_shipdate": rng.integers(729000, 729365, n_lineitem),
            "l_receiptdate": rng.integers(729000, 729365, n_lineitem),
        },
    )
    database = Database([part, lineitem])
    database.validate()
    database.create_index("part", "p_partkey", clustered=True)
    database.create_index("lineitem", "l_id", clustered=True)
    database.create_index("lineitem", "l_shipdate")
    database.create_index("lineitem", "l_receiptdate")
    database.create_index("lineitem", "l_partkey")
    return database


@pytest.fixture(scope="session")
def two_table_db() -> Database:
    """A small part/lineitem database (treat as immutable)."""
    return make_two_table_db()


@pytest.fixture(scope="session")
def tpch_db() -> Database:
    """A small TPC-H-shaped database (treat as immutable)."""
    return build_tpch_database(TpchConfig(num_lineitem=12_000, seed=1))


@pytest.fixture(scope="session")
def star_config() -> StarConfig:
    return StarConfig(num_fact=30_000, num_dim=1000, aligned_fraction=0.12, seed=3)


@pytest.fixture(scope="session")
def star_db(star_config) -> Database:
    """A small star-schema database (treat as immutable)."""
    return build_star_database(star_config)


@pytest.fixture(scope="session")
def snowflake_db() -> Database:
    """A small snowflake-schema database (treat as immutable)."""
    return build_snowflake_database(SnowflakeConfig(num_sales=6_000, seed=9))


@pytest.fixture(scope="session")
def snowflake_stats(snowflake_db) -> StatisticsManager:
    manager = StatisticsManager(snowflake_db)
    manager.update_statistics(sample_size=300, seed=11)
    return manager


@pytest.fixture(scope="session")
def two_table_stats(two_table_db) -> StatisticsManager:
    manager = StatisticsManager(two_table_db)
    manager.update_statistics(sample_size=400, seed=11)
    return manager


@pytest.fixture(scope="session")
def tpch_stats(tpch_db) -> StatisticsManager:
    manager = StatisticsManager(tpch_db)
    manager.update_statistics(sample_size=500, seed=5)
    return manager


@pytest.fixture(scope="session")
def star_stats(star_db) -> StatisticsManager:
    manager = StatisticsManager(star_db)
    manager.update_statistics(sample_size=500, seed=5)
    return manager
