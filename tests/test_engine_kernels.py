"""Unit tests for repro.engine.kernels (backend dispatch + bit-identity).

Every kernel has a pure-numpy reference; the dispatch layer must return
bit-identical results no matter which backend is active. The numba
variants only run where numba is installed (it is an optional
dependency), so those assertions are conditional — the numpy fallback
path is the one exercised everywhere.
"""

import numpy as np
import pytest

from repro.engine import kernels
from repro.engine.joinutil import match_keys, semijoin_mask
from repro.errors import ReproError


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    kernels.set_backend(None)


def reference_match_keys(left, right):
    """O(n·m) brute-force matching, grouped by left row."""
    pairs = [
        (i, j)
        for i in range(len(left))
        for j in range(len(right))
        if left[i] == right[j]
    ]
    if not pairs:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    li, ri = zip(*pairs)
    return np.array(li, dtype=np.int64), np.array(ri, dtype=np.int64)


class TestBackendSelection:
    def test_numpy_always_available(self):
        assert "numpy" in kernels.available_backends()

    def test_default_resolves(self):
        assert kernels.active_backend() in ("numpy", "numba")

    def test_force_numpy(self):
        kernels.set_backend("numpy")
        assert kernels.active_backend() == "numpy"

    def test_auto_restores(self):
        kernels.set_backend("numpy")
        kernels.set_backend("auto")
        assert kernels.active_backend() in ("numpy", "numba")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError, match="unknown kernel backend"):
            kernels.set_backend("cuda")

    def test_numba_request_fails_loudly_when_missing(self):
        if "numba" in kernels.available_backends():
            pytest.skip("numba installed: strict request succeeds")
        with pytest.raises(ReproError, match="not installed"):
            kernels.set_backend("numba")

    def test_describe_is_json_ready(self):
        import json

        snapshot = json.loads(json.dumps(kernels.describe()))
        assert snapshot["active_backend"] in ("numpy", "numba")


class TestMatchKeys:
    @pytest.mark.parametrize(
        "left, right",
        [
            ([], []),
            ([], [1, 2]),
            ([1, 2], []),
            ([1, 2, 3], [4, 5, 6]),  # no matches
            ([10, 20, 20, 30], [20, 10, 40]),
            ([1, 1], [1, 1, 1]),  # all-duplicate keys
            ([5] * 7, [5] * 7),
        ],
    )
    def test_matches_brute_force(self, left, right):
        left = np.array(left, dtype=np.int64)
        right = np.array(right, dtype=np.int64)
        li, ri = match_keys(left, right)
        el, er = reference_match_keys(left, right)
        assert sorted(zip(li, ri)) == sorted(zip(el, er))

    def test_output_grouped_by_left_row(self):
        left = np.array([7, 3, 7])
        right = np.array([7, 9, 7, 3])
        li, ri = match_keys(left, right)
        # Left indices non-decreasing (grouped), right ascending within
        # each left row — the contract downstream take() order relies on.
        assert list(li) == sorted(li)
        for row in np.unique(li):
            rows = ri[li == row]
            assert list(rows) == sorted(rows)

    def test_random_large_agrees_with_numpy_reference(self):
        rng = np.random.default_rng(0)
        left = rng.integers(0, 500, 20_000)
        right = rng.integers(0, 500, 10_000)
        li, ri = match_keys(left, right)
        el, er = kernels.match_keys_numpy(left, right)
        np.testing.assert_array_equal(li, el)
        np.testing.assert_array_equal(ri, er)

    def test_table_path_bit_identical_to_reference(self):
        # Unique compact left keys over a large input trigger the
        # PK-FK lookup-table path; output must equal the sorted path.
        rng = np.random.default_rng(2)
        left = rng.permutation(6000)[:3000]  # unique, span 2x count
        right = rng.integers(-100, 6100, 20_000)  # some out of range
        li, ri = match_keys(left, right)
        el, er = kernels.match_keys_numpy(left, right)
        np.testing.assert_array_equal(li, el)
        np.testing.assert_array_equal(ri, er)

    def test_duplicate_left_keys_fall_back_identically(self):
        rng = np.random.default_rng(3)
        left = rng.integers(0, 3000, 5000)  # duplicates: cross products
        right = rng.integers(0, 3000, 5000)
        li, ri = match_keys(left, right)
        el, er = kernels.match_keys_numpy(left, right)
        np.testing.assert_array_equal(li, el)
        np.testing.assert_array_equal(ri, er)

    def test_million_row_input(self):
        rng = np.random.default_rng(1)
        left = rng.integers(0, 2_000_000, 1_200_000)
        right = rng.integers(0, 2_000_000, 1000)
        li, ri = match_keys(left, right)
        np.testing.assert_array_equal(left[li], right[ri])
        # Cross-check the match count with a membership count on the
        # (unique-keyed) right side.
        uniq, counts = np.unique(right, return_counts=True)
        expected = counts[np.searchsorted(uniq, left[np.isin(left, uniq)])].sum()
        assert len(li) == expected


class TestStableOrder:
    """The stable permutation is unique — radix must equal mergesort."""

    @pytest.mark.parametrize(
        "keys",
        [
            np.array([], dtype=np.int64),
            np.array([5], dtype=np.int64),
            np.array([3, 1, 3, 1, 3], dtype=np.int64),  # ties: stability
            np.array([-(2**62), 2**62, 0], dtype=np.int64),  # span fallback
        ],
    )
    def test_edge_cases(self, keys):
        np.testing.assert_array_equal(
            kernels.stable_order(keys), np.argsort(keys, kind="stable")
        )

    @pytest.mark.parametrize(
        "lo, hi",
        [
            (0, 1000),  # single uint16 digit
            (-500, 200),  # negative lows still shift cleanly
            (0, 2**20),  # two-digit radix
            (10**9, 10**9 + 2**31),  # big offset, span just under 2**32
            (0, 2**40),  # beyond radix span: mergesort fallback
        ],
    )
    def test_random_integers_match_mergesort(self, lo, hi):
        rng = np.random.default_rng(hi % 1009)
        keys = rng.integers(lo, hi, 50_000)
        np.testing.assert_array_equal(
            kernels.stable_order(keys), np.argsort(keys, kind="stable")
        )

    def test_unsigned_and_float_and_string(self):
        rng = np.random.default_rng(9)
        for keys in (
            rng.integers(0, 100, 5000).astype(np.uint64),
            rng.uniform(-1, 1, 5000),
            np.array(["pear", "fig", "fig", "apple"] * 100),
        ):
            np.testing.assert_array_equal(
                kernels.stable_order(keys), np.argsort(keys, kind="stable")
            )

    def test_lexsort_matches_numpy(self):
        rng = np.random.default_rng(10)
        primary = rng.integers(0, 20, 4000)
        secondary = rng.integers(0, 9, 4000)
        tertiary = rng.choice(np.array(["a", "b", "c"]), 4000)
        for keys in (
            [primary],
            [secondary, primary],
            [tertiary, secondary, primary],
        ):
            np.testing.assert_array_equal(
                kernels.lexsort_stable(keys), np.lexsort(keys)
            )

    def test_lexsort_requires_keys(self):
        with pytest.raises(ReproError, match="at least one key"):
            kernels.lexsort_stable([])


class TestMembership:
    def test_small_inputs_use_isin_verbatim(self, monkeypatch):
        calls = {"isin": 0, "table": 0}
        real_isin, real_table = kernels.membership_isin, kernels.membership_table

        def spy_isin(a, b):
            calls["isin"] += 1
            return real_isin(a, b)

        def spy_table(a, b):
            calls["table"] += 1
            return real_table(a, b)

        monkeypatch.setattr(kernels, "membership_isin", spy_isin)
        monkeypatch.setattr(kernels, "membership_table", spy_table)
        small = np.arange(100)
        kernels.membership(small, small)
        assert calls == {"isin": 1, "table": 0}
        big = np.arange(kernels.SEMIJOIN_SMALL_N + 1)
        kernels.membership(big, big[:10])
        assert calls == {"isin": 1, "table": 1}  # large + compact: hash path

    def test_wide_range_integers_stay_on_isin(self, monkeypatch):
        monkeypatch.setattr(
            kernels, "membership_table", lambda a, b: pytest.fail("table used")
        )
        rng = np.random.default_rng(11)
        left = rng.integers(0, 2**60, 10_000)
        right = rng.integers(0, 2**60, 1000)
        np.testing.assert_array_equal(
            kernels.membership(left, right), np.isin(left, right)
        )

    def test_one_empty_side_large_other(self):
        left = np.arange(kernels.SEMIJOIN_SMALL_N + 5)
        out = kernels.membership(left, np.empty(0, dtype=np.int64))
        assert out.shape == left.shape and not out.any()
        assert kernels.membership(np.empty(0, dtype=np.int64), left).shape == (0,)

    def test_table_matches_sorted_reference(self):
        rng = np.random.default_rng(12)
        left = rng.integers(0, 30_000, 20_000)
        right = rng.integers(0, 30_000, 5_000)
        np.testing.assert_array_equal(
            kernels.membership_table(left, right),
            kernels.membership_sorted(left, right),
        )

    @pytest.mark.parametrize("n_left, n_right", [(10, 5), (5000, 3000), (9000, 40)])
    def test_bit_identical_to_isin(self, n_left, n_right):
        rng = np.random.default_rng(n_left)
        left = rng.integers(0, 4000, n_left)
        right = rng.integers(0, 4000, n_right)
        np.testing.assert_array_equal(
            kernels.membership(left, right), np.isin(left, right)
        )

    def test_floats_and_nan_match_isin(self):
        rng = np.random.default_rng(3)
        left = rng.uniform(0, 100, 6000)
        left[::7] = np.nan
        right = np.concatenate([rng.uniform(0, 100, 3000), [np.nan]])
        np.testing.assert_array_equal(
            kernels.membership(left, right), np.isin(left, right)
        )

    def test_semijoin_mask_empty_paths(self):
        assert semijoin_mask(np.array([]), np.array([1])).shape == (0,)
        out = semijoin_mask(np.array([1, 2]), np.array([]))
        assert not out.any() and out.dtype == bool

    def test_semijoin_mask_large_agrees(self):
        rng = np.random.default_rng(4)
        left = rng.integers(0, 10_000, 50_000)
        right = rng.integers(0, 10_000, 8_000)
        np.testing.assert_array_equal(
            semijoin_mask(left, right), np.isin(left, right)
        )

    @pytest.mark.perf
    def test_dispatched_path_not_slower_than_isin_at_scale(self):
        import time

        rng = np.random.default_rng(5)

        def best_of(func, a, b, k=5):
            times = []
            for _ in range(k):
                start = time.perf_counter()
                func(a, b)
                times.append(time.perf_counter() - start)
            return min(times)

        # Join-key regime: large arrays over a compact key universe.
        left = rng.integers(0, 5_000_000, 2_000_000)
        right = rng.integers(0, 5_000_000, 500_000)
        dispatched = best_of(kernels.membership, left, right, k=3)
        isin = best_of(kernels.membership_isin, left, right, k=3)
        # The hash-table path should win; 1.25x margin absorbs noise
        # while still failing on a real regression to a slower path.
        assert dispatched <= isin * 1.25


class TestEvalBetween:
    @pytest.mark.parametrize(
        "values, low, high",
        [
            (np.arange(1000), 100, 500),
            (np.linspace(-5, 5, 777), -1.25, 3.5),
            (np.array([1.0, np.nan, 2.0]), 0.5, 1.5),
            (np.array([], dtype=np.int64), 0, 1),
        ],
    )
    def test_matches_naive(self, values, low, high):
        np.testing.assert_array_equal(
            kernels.eval_between(values, low, high),
            (values >= low) & (values <= high),
        )

    def test_string_arrays_supported(self):
        values = np.array(["apple", "cherry", "fig", "plum"])
        np.testing.assert_array_equal(
            kernels.eval_between(values, "b", "g"),
            (values >= "b") & (values <= "g"),
        )

    def test_does_not_mutate_input(self):
        values = np.arange(10)
        before = values.copy()
        kernels.eval_between(values, 2, 5)
        np.testing.assert_array_equal(values, before)


class TestGroupedAggregate:
    def _groups(self, values, group_sizes):
        ends = np.cumsum(group_sizes)
        starts = ends - np.asarray(group_sizes)
        return np.asarray(starts), np.asarray(ends)

    @pytest.mark.parametrize("func", ["count", "min", "max"])
    @pytest.mark.parametrize("dtype", [np.int64, np.float64])
    def test_exact_fast_paths(self, func, dtype):
        rng = np.random.default_rng(6)
        values = rng.integers(-50, 50, 30).astype(dtype)
        starts, ends = self._groups(values, [3, 1, 10, 7, 9])
        out = kernels.grouped_aggregate(func, values, starts, ends)
        reference = {
            "count": lambda a: float(len(a)),
            "min": lambda a: float(a.min()),
            "max": lambda a: float(a.max()),
        }[func]
        expected = np.array([reference(values[s:e]) for s, e in zip(starts, ends)])
        np.testing.assert_array_equal(out, expected)
        assert out.dtype == expected.dtype

    def test_integer_sum_exact(self):
        rng = np.random.default_rng(7)
        values = rng.integers(-(2**40), 2**40, 64)
        starts, ends = self._groups(values, [16, 16, 16, 16])
        out = kernels.grouped_aggregate("sum", values, starts, ends)
        expected = np.array(
            [float(values[s:e].sum()) for s, e in zip(starts, ends)]
        )
        np.testing.assert_array_equal(out, expected)

    def test_float_sum_declined(self):
        values = np.random.default_rng(8).uniform(0, 1, 20)
        starts, ends = self._groups(values, [10, 10])
        assert kernels.grouped_aggregate("sum", values, starts, ends) is None
        assert kernels.grouped_aggregate("avg", values, starts, ends) is None

    def test_empty_input(self):
        empty = np.empty(0, dtype=np.int64)
        out = kernels.grouped_aggregate("count", empty, empty, empty)
        assert out is not None and len(out) == 0


class TestGroupedCountCompact:
    def _reference(self, keys):
        """Sorted-unique keys and run lengths, as the sort path yields."""
        uniq, counts = np.unique(keys, return_counts=True)
        return uniq, counts

    @pytest.mark.parametrize(
        "keys",
        [
            np.array([7, 3, 3, 7, 7, 1], dtype=np.int64),
            np.array([5], dtype=np.int64),
            np.array([-4, -4, -4], dtype=np.int64),  # negative lows
            np.arange(1000, dtype=np.int32)[::-1].copy(),
        ],
    )
    def test_matches_sorted_grouping(self, keys):
        result = kernels.grouped_count_compact(keys)
        assert result is not None
        group_keys, counts = result
        expected_keys, expected_counts = self._reference(keys)
        np.testing.assert_array_equal(group_keys, expected_keys)
        np.testing.assert_array_equal(counts, expected_counts)
        assert group_keys.dtype == keys.dtype

    def test_declines_non_compact_and_non_integer(self):
        assert kernels.grouped_count_compact(np.empty(0, dtype=np.int64)) is None
        assert kernels.grouped_count_compact(np.array([0.5, 1.5])) is None
        sparse = np.array([0, 2**40], dtype=np.int64)
        assert kernels.grouped_count_compact(sparse) is None

    def test_large_random(self):
        rng = np.random.default_rng(13)
        keys = rng.integers(100, 3000, 200_000)
        group_keys, counts = kernels.grouped_count_compact(keys)
        expected_keys, expected_counts = self._reference(keys)
        np.testing.assert_array_equal(group_keys, expected_keys)
        np.testing.assert_array_equal(counts, expected_counts)
        assert counts.sum() == len(keys)
