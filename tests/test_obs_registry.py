"""Tests for the metrics registry (counters, gauges, histograms)."""

import sys
import threading
from contextlib import contextmanager

import pytest

from repro.experiments.perf import PerfStats
from repro.obs import MetricsRegistry
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("requests_total")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labeled_series_are_independent(self):
        c = Counter("lookups_total")
        c.inc(config="T=5%")
        c.inc(3, config="T=95%")
        assert c.value(config="T=5%") == 1
        assert c.value(config="T=95%") == 3
        assert c.value(config="other") == 0

    def test_cannot_decrease(self):
        c = Counter("x")
        with pytest.raises(MetricsError):
            c.inc(-1)

    def test_prometheus_lines_sorted_and_labeled(self):
        c = Counter("hits_total")
        c.inc(2, kind="b")
        c.inc(1, kind="a")
        assert c.prometheus_lines() == [
            'hits_total{kind="a"} 1',
            'hits_total{kind="b"} 2',
        ]


class TestGauge:
    def test_set_moves_both_ways(self):
        g = Gauge("pool_size")
        g.set(5)
        g.set(2)
        assert g.value() == 2

    def test_inc_allows_negative(self):
        g = Gauge("delta")
        g.inc(-1.5)
        assert g.value() == -1.5


class TestHistogram:
    def test_cumulative_buckets(self):
        h = Histogram("latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        snap = h.snapshot()[""]
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(5.55)
        assert snap["buckets"] == {"0.1": 1, "1": 2, "10": 3}

    def test_needs_buckets(self):
        with pytest.raises(MetricsError):
            Histogram("empty", buckets=())

    def test_prometheus_includes_inf_sum_count(self):
        h = Histogram("t", buckets=(1.0,))
        h.observe(0.5)
        h.observe(2.0)
        lines = h.prometheus_lines()
        assert 't_bucket{le="1"} 1' in lines
        assert 't_bucket{le="+Inf"} 2' in lines
        assert "t_sum 2.5" in lines
        assert "t_count 2" in lines


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        reg = MetricsRegistry()
        a = reg.counter("c", "help text")
        b = reg.counter("c")
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(MetricsError):
            reg.gauge("m")

    def test_to_json_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("c", "things").inc(4, lane="1")
        snap = reg.to_json()
        assert snap["c"]["kind"] == "counter"
        assert snap["c"]["help"] == "things"
        assert snap["c"]["series"] == {'{lane="1"}': 4}

    def test_to_prometheus_has_help_and_type(self):
        reg = MetricsRegistry()
        reg.gauge("g", "a gauge").set(1.5)
        text = reg.to_prometheus()
        assert "# HELP g a gauge\n" in text
        assert "# TYPE g gauge\n" in text
        assert "g 1.5" in text
        assert text.endswith("\n")

    def test_empty_registry_exports_empty(self):
        reg = MetricsRegistry()
        assert reg.to_prometheus() == ""
        assert reg.to_json() == {}


@contextmanager
def _aggressive_preemption():
    """Force thread switches between adjacent bytecodes.

    The pre-fix registry mutated series dicts with unguarded
    read-modify-write sequences; shrinking the switch interval makes
    the interleaving that loses updates near-certain within a few
    thousand iterations instead of one-in-a-million.
    """
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


def _hammer(n_threads: int, fn) -> None:
    barrier = threading.Barrier(n_threads)

    def run(idx: int) -> None:
        barrier.wait()
        fn(idx)

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestConcurrency:
    """Regression tests: these fail on the pre-fix unguarded registry."""

    ITERS = 4000
    THREADS = 4

    def test_counter_increments_are_not_lost(self):
        c = Counter("contended_total")
        with _aggressive_preemption():
            _hammer(
                self.THREADS,
                lambda idx: [c.inc() for _ in range(self.ITERS)],
            )
        assert c.value() == self.THREADS * self.ITERS

    def test_labeled_child_creation_is_not_lost(self):
        # Every thread touches a mix of shared and private label sets;
        # pre-fix, racing first-touch creations dropped whole series.
        c = Counter("labeled_total")
        with _aggressive_preemption():
            _hammer(
                self.THREADS,
                lambda idx: [
                    c.inc(shard=str(i % 8)) for i in range(self.ITERS)
                ],
            )
        total = sum(c.value(shard=str(s)) for s in range(8))
        assert total == self.THREADS * self.ITERS

    def test_histogram_observations_are_not_lost(self):
        h = Histogram("contended_latency", buckets=(0.5, 1.0))
        with _aggressive_preemption():
            _hammer(
                self.THREADS,
                lambda idx: [h.observe(0.25) for _ in range(self.ITERS)],
            )
        snap = h.snapshot()[""]
        assert snap["count"] == self.THREADS * self.ITERS
        assert snap["buckets"]["0.5"] == self.THREADS * self.ITERS

    def test_gauge_inc_is_not_lost(self):
        g = Gauge("contended_gauge")
        with _aggressive_preemption():
            _hammer(
                self.THREADS,
                lambda idx: [g.inc(1.0) for _ in range(self.ITERS)],
            )
        assert g.value() == self.THREADS * self.ITERS

    def test_registry_registration_race_yields_one_metric(self):
        reg = MetricsRegistry()
        seen = []
        with _aggressive_preemption():
            _hammer(
                8,
                lambda idx: seen.append(reg.counter("raced_total")),
            )
        assert all(m is seen[0] for m in seen)
        seen[0].inc()
        assert reg.to_json()["raced_total"]["series"] == {"": 1}

    def test_export_is_consistent_under_concurrent_writes(self):
        # A snapshot taken mid-traffic parses cleanly and never shows
        # a torn histogram slot (count behind the +Inf bucket line).
        reg = MetricsRegistry()
        h = reg.histogram("live_latency", buckets=(1.0,))
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                h.observe(0.5, tenant="a")
                reg.counter("live_total").inc(tenant="a")

        t = threading.Thread(target=writer)
        t.start()
        try:
            for _ in range(200):
                text = reg.to_prometheus()
                assert text.endswith("\n")
                snap = reg.to_json()
                for series in snap["live_latency"]["series"].values():
                    assert series["buckets"]["1"] == series["count"]
        finally:
            stop.set()
            t.join()


class TestPerfStatsReporting:
    def test_format_summary_shows_rates_and_lut(self):
        p = PerfStats(
            exec_cache_hits=3,
            exec_cache_misses=1,
            estimate_cache_hits=1,
            estimate_cache_misses=3,
            lut_hits=42,
        )
        text = p.format_summary()
        assert "75.0% hit rate" in text
        assert "25.0% hit rate" in text
        assert "quantile-table hits: 42" in text

    def test_format_summary_guards_zero_division(self):
        text = PerfStats().format_summary()
        assert "0.0% hit rate" in text

    def test_publish_into_registry(self):
        p = PerfStats(
            workers=2,
            exec_cache_hits=6,
            exec_cache_misses=2,
            lut_hits=9,
            wall_seconds=1.5,
        )
        reg = MetricsRegistry()
        p.publish(reg)
        events = reg.counter("repro_perf_events_total")
        assert events.value(event="exec_cache_hit") == 6
        assert events.value(event="lut_hit") == 9
        rates = reg.gauge("repro_cache_hit_rate")
        assert rates.value(cache="execution") == pytest.approx(0.75)
        assert reg.gauge("repro_phase_seconds").value(phase="wall") == 1.5
        assert reg.gauge("repro_workers").value() == 2


class TestLabelEscaping:
    """Adversarial label values must stay one valid exposition line."""

    def test_backslash_quote_and_newline_escaped(self):
        c = Counter("adversarial_total")
        c.inc(path='C:\\tmp\\"x"\nend')
        (line,) = c.prometheus_lines()
        assert "\n" not in line
        assert 'path="C:\\\\tmp\\\\\\"x\\"\\nend"' in line

    def test_newline_value_cannot_forge_extra_series(self):
        # A hostile value that would inject a whole fake series if the
        # newline survived; the exposition must stay line-per-series.
        registry = MetricsRegistry()
        registry.counter("forgery_total", "help").inc(
            q='a"} 999\nforged_total{q="b'
        )
        lines = registry.to_prometheus().strip().split("\n")
        series = [line for line in lines if not line.startswith("#")]
        assert len(series) == 1
        assert "\\n" in series[0]
        assert not any(line.startswith("forged_total") for line in lines)

    def test_plain_values_unchanged(self):
        c = Counter("plain_total")
        c.inc(config="T=95%")
        (line,) = c.prometheus_lines()
        assert 'config="T=95%"' in line

    def test_escaped_labels_roundtrip_value_lookup(self):
        g = Gauge("adversarial_gauge")
        hostile = 'multi\nline"quoted"\\backslash'
        g.set(4.2, name=hostile)
        assert g.value(name=hostile) == 4.2
