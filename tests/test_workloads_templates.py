"""Tests for the experiment query templates."""

import pytest

from repro.core import HistogramCardinalityEstimator
from repro.workloads import (
    PartCorrelationTemplate,
    ShippingDatesTemplate,
    StarJoinTemplate,
)


class TestShippingDates:
    def test_instantiate(self, tpch_db):
        query = ShippingDatesTemplate().instantiate(100)
        query.validate(tpch_db)
        assert query.tables == ("lineitem",)
        assert query.aggregates[0].func == "sum"

    def test_selectivity_sweeps_to_zero(self, tpch_db):
        template = ShippingDatesTemplate()
        low, high = template.param_range()
        assert template.true_selectivity(tpch_db, high) == 0.0
        assert template.true_selectivity(tpch_db, low) > 0.001

    def test_avi_estimate_stuck_in_risky_regime(self, tpch_stats):
        """The histogram/AVI estimate stays within a narrow band below
        the plan crossover for every shift (the true selectivity sweeps
        0–1 % meanwhile), so the histogram optimizer's choice never
        adapts — the defining template property."""
        template = ShippingDatesTemplate()
        estimator = HistogramCardinalityEstimator(tpch_stats)
        estimates = []
        for shift in (80, 140, 200, 260):
            query = template.instantiate(shift)
            estimates.append(
                estimator.estimate(set(query.tables), query.predicate).selectivity
            )
        # seasonal tails shrink the receipt marginal at extreme shifts,
        # but the estimate never rises above the ~0.3 % plan crossover,
        # so the histogram optimizer's plan choice never adapts
        assert all(0 < e < 0.003 for e in estimates)

    def test_params_for_targets(self, tpch_db):
        template = ShippingDatesTemplate()
        targets = [0.0, 0.002, 0.004]
        chosen = template.params_for_targets(tpch_db, targets, step=4)
        assert len(chosen) == 3
        for (param, achieved), target in zip(chosen, targets):
            assert achieved == pytest.approx(target, abs=0.0015)

    def test_hint_propagates(self, tpch_db):
        query = ShippingDatesTemplate(hint=0.95).instantiate(100)
        assert query.hint == 0.95


class TestPartCorrelation:
    def test_instantiate(self, tpch_db):
        query = PartCorrelationTemplate().instantiate(200)
        query.validate(tpch_db)
        assert set(query.tables) == {"lineitem", "orders", "part"}

    def test_selectivity_range(self, tpch_db):
        template = PartCorrelationTemplate()
        low, high = template.param_range()
        assert template.true_selectivity(tpch_db, high) == 0.0
        peak = max(
            template.true_selectivity(tpch_db, p) for p in range(0, 800, 100)
        )
        assert peak > 0.01  # reaches past 1 %

    def test_avi_estimate_nearly_constant(self, tpch_stats):
        template = PartCorrelationTemplate()
        estimator = HistogramCardinalityEstimator(tpch_stats)
        estimates = [
            estimator.estimate(
                set(template.instantiate(shift).tables),
                template.instantiate(shift).predicate,
            ).selectivity
            for shift in (0, 400, 800, 1200)
        ]
        assert max(estimates) < 2.0 * min(estimates)
        assert all(0 < e < 0.004 for e in estimates)

    def test_avi_estimate_stuck_below_crossover(self, tpch_stats):
        """The AVI product (≈0.16 %) sits below the INL crossover, so
        the histogram optimizer always picks the risky plan."""
        template = PartCorrelationTemplate()
        estimator = HistogramCardinalityEstimator(tpch_stats)
        query = template.instantiate(400)
        estimate = estimator.estimate(set(query.tables), query.predicate)
        assert estimate.selectivity < 0.004

    def test_invalid_width_raises(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            PartCorrelationTemplate(window_width=0)


class TestStarJoin:
    def test_instantiate(self, star_db):
        query = StarJoinTemplate().instantiate(30)
        query.validate(star_db)
        assert set(query.tables) == {"fact", "dim1", "dim2", "dim3"}
        assert len(query.aggregates) == 2

    def test_true_selectivity_matches_config(self, star_db, star_config):
        template = StarJoinTemplate(star_config.num_dim)
        for shift in (0, 50, 100):
            measured = template.true_selectivity(star_db, shift)
            assert measured == pytest.approx(
                star_config.true_join_fraction(shift), abs=0.004
            )

    def test_each_filter_selects_ten_percent(self, star_db):
        template = StarJoinTemplate()
        query = template.instantiate(40)
        from repro.core import ExactCardinalityEstimator

        for i in (1, 2, 3):
            per_dim = [
                conjunct
                for conjunct in query.predicates_per_table().items()
                if conjunct[0] == f"dim{i}"
            ]
            [(_, predicate)] = per_dim
            estimate = ExactCardinalityEstimator(star_db).estimate(
                {f"dim{i}"}, predicate
            )
            assert estimate.selectivity == pytest.approx(0.10)

    def test_invalid_num_dim_raises(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            StarJoinTemplate(num_dim=123)


class TestCalibration:
    def test_calibrate_produces_pairs(self, star_db):
        template = StarJoinTemplate()
        scan = template.calibrate(star_db, step=25)
        assert len(scan) == 5
        params, selectivities = zip(*scan)
        assert list(params) == [0, 25, 50, 75, 100]
        assert selectivities[0] > selectivities[-1]
