"""The Chow–Liu Bayesian-network estimator arm."""

import numpy as np
import pytest

from repro.catalog import date_ordinal
from repro.core import (
    BayesNetCardinalityEstimator,
    HistogramCardinalityEstimator,
)
from repro.errors import EstimationError
from repro.expressions import col
from repro.stats import StatisticsManager

from tests.conftest import make_two_table_db

WINDOW = col("lineitem.l_shipdate").between("1997-07-01", "1997-09-30") & col(
    "lineitem.l_receiptdate"
).between("1997-07-01", "1997-09-30")


@pytest.fixture(scope="module")
def bayes(tpch_stats):
    return BayesNetCardinalityEstimator(tpch_stats)


def _truth(tpch_db, predicate_columns):
    lineitem = tpch_db.table("lineitem")
    lo, hi = date_ordinal("1997-07-01"), date_ordinal("1997-09-30")
    ship = lineitem.column("l_shipdate")
    receipt = lineitem.column("l_receiptdate")
    mask = (ship >= lo) & (ship <= hi) & (receipt >= lo) & (receipt <= hi)
    return float(mask.mean())


class TestSingleTableAccuracy:
    def test_marginal_range_close_to_truth(self, tpch_db, bayes):
        estimate = bayes.estimate({"lineitem"}, col("lineitem.l_quantity") > 25)
        values = tpch_db.table("lineitem").column("l_quantity")
        truth = float((values > 25).mean())
        assert estimate.selectivity == pytest.approx(truth, abs=0.1)

    def test_correlated_window_beats_avi_histogram(
        self, tpch_db, tpch_stats, bayes
    ):
        """The scenario the arm exists for: ship/receipt dates are
        correlated, the AVI product collapses, the tree edge holds."""
        truth = _truth(tpch_db, None)
        bn = bayes.estimate({"lineitem"}, WINDOW).selectivity
        avi = (
            HistogramCardinalityEstimator(tpch_stats)
            .estimate({"lineitem"}, WINDOW)
            .selectivity
        )
        assert truth > 0
        assert abs(bn - truth) < abs(avi - truth)
        assert bn > avi  # AVI multiplies the marginals and underestimates

    def test_anchored_to_root_rows(self, tpch_db, bayes):
        estimate = bayes.estimate({"lineitem"}, col("lineitem.l_quantity") > 25)
        root_rows = tpch_db.table("lineitem").num_rows
        assert estimate.cardinality == pytest.approx(
            estimate.selectivity * root_rows
        )
        assert estimate.source == "bayes"


class TestFallbacks:
    def test_string_conjunct_uses_sample_fraction(self, tpch_stats, bayes):
        predicate = col("part.p_container") == "SM BOX"
        sample = tpch_stats.sample_for("part")
        expected = sample.count_satisfying(predicate) / sample.size
        estimate = bayes.estimate({"part"}, predicate)
        assert estimate.selectivity == pytest.approx(expected)

    def test_multi_column_conjunct_uses_sample_fraction(self, tpch_stats, bayes):
        predicate = col("lineitem.l_shipdate") < col("lineitem.l_receiptdate")
        sample = tpch_stats.sample_for("lineitem")
        expected = sample.count_satisfying(predicate) / sample.size
        estimate = bayes.estimate({"lineitem"}, predicate)
        assert estimate.selectivity == pytest.approx(expected)

    def test_join_condition_priced_by_sketch(self, snowflake_stats):
        bayes = BayesNetCardinalityEstimator(snowflake_stats)
        predicate = col("sales.s_price") < col("item.i_price")
        estimate = bayes.estimate({"sales", "item"}, predicate)
        assert 0.0 < estimate.selectivity < 1.0
        assert estimate.source == "bayes"

    def test_empty_table_set_rejected(self, bayes):
        with pytest.raises(EstimationError):
            bayes.estimate(set(), None)


class TestDeterminismAndCaching:
    def test_two_instances_agree(self, tpch_stats):
        a = BayesNetCardinalityEstimator(tpch_stats)
        b = BayesNetCardinalityEstimator(tpch_stats)
        assert (
            a.estimate({"lineitem"}, WINDOW).selectivity
            == b.estimate({"lineitem"}, WINDOW).selectivity
        )

    def test_repeated_estimates_identical(self, bayes):
        first = bayes.estimate({"lineitem"}, WINDOW)
        second = bayes.estimate({"lineitem"}, WINDOW)
        assert first.selectivity == second.selectivity

    def test_statistics_bump_refits_trees(self):
        manager = StatisticsManager(make_two_table_db())
        manager.update_statistics(sample_size=200, seed=1)
        bayes = BayesNetCardinalityEstimator(manager)
        predicate = col("lineitem.l_quantity") > 25
        bayes.estimate({"lineitem"}, predicate)
        assert "lineitem" in bayes._trees
        manager.update_statistics(sample_size=300, seed=2)
        refreshed = bayes.estimate({"lineitem"}, predicate)
        assert bayes._trees_version == manager.version
        assert 0.0 <= refreshed.selectivity <= 1.0

    def test_memoization_can_be_disabled(self, tpch_stats):
        bayes = BayesNetCardinalityEstimator(tpch_stats, memoize_estimates=False)
        first = bayes.estimate({"lineitem"}, WINDOW)
        second = bayes.estimate({"lineitem"}, WINDOW)
        assert first.selectivity == second.selectivity


class TestEstimateMany:
    def test_threshold_blind_repetition(self, bayes):
        grid = (0.05, 0.5, 0.95)
        many = bayes.estimate_many({"lineitem"}, WINDOW, grid)
        assert len(many) == len(grid)
        single = bayes.estimate({"lineitem"}, WINDOW)
        assert all(e.selectivity == single.selectivity for e in many)


class TestModelShape:
    def test_tree_spans_numeric_columns(self, tpch_stats, bayes):
        bayes.estimate({"lineitem"}, WINDOW)  # force a fit
        tree = bayes._trees["lineitem"]
        assert "l_shipdate" in tree.nodes
        assert "l_receiptdate" in tree.nodes
        # a spanning tree: every non-root node is someone's child once
        children = [child for _, child in tree.edges]
        assert sorted(children) == sorted(
            set(range(len(tree.cardinalities))) - {0}
        )

    def test_marginals_normalized(self, tpch_stats, bayes):
        bayes.estimate({"lineitem"}, WINDOW)
        tree = bayes._trees["lineitem"]
        for marginal in tree.marginals:
            assert float(np.sum(marginal)) == pytest.approx(1.0)
        for joint in tree.joints:
            assert float(np.sum(joint)) == pytest.approx(1.0)

    def test_describe(self, bayes):
        assert bayes.describe() == "bayes-net"
