"""Tests for the ASCII chart renderer."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.experiments import render_ascii_chart


@pytest.fixture
def simple_chart():
    x = np.linspace(0, 1, 11)
    return render_ascii_chart(
        {"up": x, "down": 1 - x}, x, title="demo", width=40, height=8
    )


class TestRenderAsciiChart:
    def test_contains_title_and_legend(self, simple_chart):
        assert "demo" in simple_chart
        assert "o=up" in simple_chart and "x=down" in simple_chart

    def test_dimensions(self, simple_chart):
        lines = simple_chart.splitlines()
        # title + height rows + axis + labels + legend
        assert len(lines) == 1 + 8 + 3

    def test_extreme_labels(self, simple_chart):
        assert "1.0" in simple_chart and "0.0" in simple_chart
        assert "0.00%" in simple_chart and "100.00%" in simple_chart

    def test_monotone_series_orientation(self):
        x = np.linspace(0, 1, 9)
        chart = render_ascii_chart({"up": x}, x, width=30, height=6)
        rows = [line for line in chart.splitlines() if "|" in line]
        first_glyph_col = rows[0].index("o")
        last_glyph_col = rows[-1].index("o")
        # rising series: the top row holds the rightmost point
        assert first_glyph_col > last_glyph_col

    def test_constant_series(self):
        x = np.linspace(0, 1, 5)
        chart = render_ascii_chart({"flat": np.ones(5)}, x)
        assert "o" in chart

    def test_cli_chart_flag(self, capsys):
        from repro.cli import main

        assert main(["analyze", "--figure", "5", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "o=T=5%" in out

    def test_validation(self):
        x = np.linspace(0, 1, 5)
        with pytest.raises(ReproError):
            render_ascii_chart({}, x)
        with pytest.raises(ReproError):
            render_ascii_chart({"a": np.ones(3)}, x)
        with pytest.raises(ReproError):
            render_ascii_chart({"a": [1.0]}, [0.5])
        too_many = {f"s{i}": np.ones(5) for i in range(9)}
        with pytest.raises(ReproError):
            render_ascii_chart(too_many, x)
