"""Unit tests for the RobustCardinalityEstimator (the paper's procedure)."""

import numpy as np
import pytest

from repro.core import (
    ExactCardinalityEstimator,
    JEFFREYS,
    RobustCardinalityEstimator,
    UNIFORM,
)
from repro.errors import EstimationError
from repro.expressions import col
from repro.stats import StatisticsManager


@pytest.fixture
def estimator(tpch_stats):
    return RobustCardinalityEstimator(tpch_stats, policy=0.5)


CORRELATED = col("lineitem.l_shipdate").between("1997-07-01", "1997-09-30") & col(
    "lineitem.l_receiptdate"
).between("1997-07-01", "1997-09-30")

JOIN_PREDICATE = (col("part.p_size") <= 10) & (col("lineitem.l_quantity") > 25)


class TestSynopsisPath:
    def test_single_table(self, estimator, tpch_db):
        estimate = estimator.estimate({"lineitem"}, CORRELATED)
        assert estimate.source == "synopsis"
        assert estimate.root_table == "lineitem"
        assert estimate.posterior is not None
        assert estimate.cardinality == pytest.approx(
            estimate.selectivity * tpch_db.table("lineitem").num_rows
        )

    def test_join_expression(self, estimator):
        estimate = estimator.estimate({"lineitem", "part"}, JOIN_PREDICATE)
        assert estimate.source == "synopsis"
        assert estimate.root_table == "lineitem"

    def test_no_predicate(self, estimator, tpch_db):
        estimate = estimator.estimate({"lineitem", "orders"}, None)
        # all synopsis tuples satisfy; estimate ≈ |lineitem|
        assert estimate.selectivity > 0.95
        assert estimate.cardinality == pytest.approx(
            tpch_db.table("lineitem").num_rows, rel=0.06
        )

    def test_threshold_monotone(self, tpch_stats):
        estimates = [
            RobustCardinalityEstimator(tpch_stats, policy=t)
            .estimate({"lineitem"}, CORRELATED)
            .selectivity
            for t in (0.05, 0.5, 0.95)
        ]
        assert estimates[0] < estimates[1] < estimates[2]

    def test_hint_overrides_policy(self, estimator):
        low = estimator.estimate({"lineitem"}, CORRELATED, hint=0.05)
        high = estimator.estimate({"lineitem"}, CORRELATED, hint=0.95)
        assert low.selectivity < high.selectivity
        assert low.threshold == 0.05 and high.threshold == 0.95

    def test_captures_correlation_histograms_miss(self, tpch_db, tpch_stats):
        """The robust estimate tracks the true joint selectivity of the
        correlated date predicates; the AVI product does not."""
        truth = ExactCardinalityEstimator(tpch_db).estimate(
            {"lineitem"}, CORRELATED
        )
        medians = []
        for seed in range(8):
            stats = StatisticsManager(tpch_db)
            stats.update_statistics(sample_size=500, seed=seed)
            estimator = RobustCardinalityEstimator(stats, policy=0.5)
            medians.append(estimator.estimate({"lineitem"}, CORRELATED).selectivity)
        assert np.mean(medians) == pytest.approx(truth.selectivity, abs=0.01)

    def test_posterior_counts_match_synopsis(self, estimator, tpch_stats):
        estimate = estimator.estimate({"lineitem"}, CORRELATED)
        synopsis = tpch_stats.synopsis_for("lineitem")
        assert estimate.posterior.n == synopsis.size
        assert estimate.posterior.k == synopsis.count_satisfying(CORRELATED)


class TestFallbacks:
    def _stats_without_synopses(self, tpch_db, seed=0):
        stats = StatisticsManager(tpch_db)
        stats.update_statistics(sample_size=400, seed=seed)
        for name in tpch_db.table_names:
            stats.drop_synopsis(name)
        return stats

    def test_single_table_sample_avi(self, tpch_db):
        stats = self._stats_without_synopses(tpch_db)
        estimator = RobustCardinalityEstimator(stats, policy=0.5)
        estimate = estimator.estimate({"lineitem", "part"}, JOIN_PREDICATE)
        assert estimate.source == "sample-avi"
        assert 0 < estimate.selectivity < 1

    def test_avi_product_shape(self, tpch_db):
        """Fallback selectivity ≈ product of per-table estimates."""
        stats = self._stats_without_synopses(tpch_db)
        estimator = RobustCardinalityEstimator(stats, policy=0.5)
        joint = estimator.estimate({"lineitem", "part"}, JOIN_PREDICATE)
        li = estimator.estimate({"lineitem"}, col("lineitem.l_quantity") > 25)
        part = estimator.estimate({"part"}, col("part.p_size") <= 10)
        assert joint.selectivity == pytest.approx(
            li.selectivity * part.selectivity, rel=0.02
        )

    def test_magic_when_no_sample(self, tpch_db):
        stats = self._stats_without_synopses(tpch_db)
        for name in tpch_db.table_names:
            stats.drop_sample(name)
        estimator = RobustCardinalityEstimator(stats, policy=0.5)
        estimate = estimator.estimate({"part"}, col("part.p_size") == 10)
        assert estimate.source == "magic"
        assert 0 < estimate.selectivity < 1

    def test_mixed_source_error_confinement(self, tpch_db):
        """Tables with samples keep sample-based estimates even when a
        sibling table's statistics are missing (Section 3.5)."""
        stats = self._stats_without_synopses(tpch_db)
        stats.drop_sample("part")
        estimator = RobustCardinalityEstimator(stats, policy=0.5)
        estimate = estimator.estimate({"lineitem", "part"}, JOIN_PREDICATE)
        assert estimate.source == "mixed"

    def test_magic_distribution_respects_threshold(self, tpch_db):
        stats = self._stats_without_synopses(tpch_db)
        for name in tpch_db.table_names:
            stats.drop_sample(name)
        predicate = col("part.p_size") == 10
        low = RobustCardinalityEstimator(stats, policy=0.05).estimate(
            {"part"}, predicate
        )
        high = RobustCardinalityEstimator(stats, policy=0.95).estimate(
            {"part"}, predicate
        )
        assert low.selectivity < high.selectivity


class TestConfiguration:
    def test_prior_choice(self, tpch_stats):
        jeffreys = RobustCardinalityEstimator(tpch_stats, prior=JEFFREYS, policy=0.5)
        uniform = RobustCardinalityEstimator(tpch_stats, prior=UNIFORM, policy=0.5)
        a = jeffreys.estimate({"lineitem"}, CORRELATED).selectivity
        b = uniform.estimate({"lineitem"}, CORRELATED).selectivity
        # close but not identical (Figure 4)
        assert a != b
        assert a == pytest.approx(b, abs=0.01)

    def test_empty_tables_raises(self, estimator):
        with pytest.raises(EstimationError):
            estimator.estimate(set(), None)

    def test_describe(self, estimator):
        assert "robust" in estimator.describe()
        assert "50%" in estimator.describe()

    def test_estimate_str(self, estimator):
        text = str(estimator.estimate({"lineitem"}, CORRELATED))
        assert "synopsis" in text


class TestDeepChainEstimation:
    """Synopses recurse through lineitem → orders → customer, so
    predicates anywhere along the chain are estimated from one sample."""

    def test_chain_predicate_accuracy(self, tpch_db):
        import numpy as np

        predicate = (col("customer.c_acctbal") > 5000) & (
            col("lineitem.l_quantity") > 25
        )
        tables = {"lineitem", "orders", "customer"}
        truth = ExactCardinalityEstimator(tpch_db).estimate(tables, predicate)
        estimates = []
        for seed in range(8):
            stats = StatisticsManager(tpch_db)
            stats.update_statistics(sample_size=500, seed=seed)
            estimator = RobustCardinalityEstimator(stats, policy=0.5)
            estimate = estimator.estimate(tables, predicate)
            assert estimate.source == "synopsis"
            estimates.append(estimate.selectivity)
        assert np.mean(estimates) == pytest.approx(truth.selectivity, abs=0.03)

    def test_full_four_table_expression(self, tpch_stats):
        predicate = (
            (col("customer.c_acctbal") > 0)
            & (col("part.p_size") <= 25)
            & (col("orders.o_totalprice") > 100_000)
        )
        tables = {"lineitem", "orders", "customer", "part"}
        estimate = RobustCardinalityEstimator(tpch_stats, policy=0.8).estimate(
            tables, predicate
        )
        assert estimate.source == "synopsis"
        assert estimate.root_table == "lineitem"
        assert 0 < estimate.selectivity < 1

    def test_mid_chain_root_resolution(self, tpch_stats):
        predicate = col("customer.c_acctbal") > 5000
        estimate = RobustCardinalityEstimator(tpch_stats, policy=0.5).estimate(
            {"orders", "customer"}, predicate
        )
        assert estimate.root_table == "orders"
        assert estimate.source == "synopsis"


class TestConjunctMaskCache:
    """The §6.1 memoization must never change results."""

    def test_cached_equals_uncached(self, tpch_stats):
        cached = RobustCardinalityEstimator(tpch_stats, policy=0.8)
        uncached = RobustCardinalityEstimator(
            tpch_stats, policy=0.8, cache_conjunct_masks=False
        )
        predicates = [
            CORRELATED,
            JOIN_PREDICATE,
            col("lineitem.l_quantity") > 40,
            (col("part.p_size") <= 10)
            & col("lineitem.l_shipdate").between("1997-07-01", "1997-09-30"),
        ]
        for predicate in predicates:
            tables = {"lineitem"} | predicate.tables()
            a = cached.estimate(tables, predicate)
            b = uncached.estimate(tables, predicate)
            assert a.selectivity == b.selectivity
            assert a.posterior.k == b.posterior.k

    def test_cache_reused_across_overlapping_predicates(self, tpch_stats):
        estimator = RobustCardinalityEstimator(tpch_stats, policy=0.5)
        estimator.estimate({"lineitem"}, CORRELATED)
        synopsis = tpch_stats.synopsis_for("lineitem")
        cached_conjuncts = estimator._mask_cache[synopsis]
        assert len(cached_conjuncts) == 2  # both date conjuncts

    def test_rebuilt_statistics_never_stale(self, tpch_db):
        """A fresh UPDATE STATISTICS yields fresh synopsis objects, so
        the weak-keyed cache cannot serve old masks."""
        manager = StatisticsManager(tpch_db)
        manager.update_statistics(sample_size=300, seed=1)
        estimator = RobustCardinalityEstimator(manager, policy=0.5)
        first = estimator.estimate({"lineitem"}, CORRELATED).posterior.k

        manager.update_statistics(sample_size=300, seed=2)
        second = estimator.estimate({"lineitem"}, CORRELATED).posterior.k
        fresh = RobustCardinalityEstimator(manager, policy=0.5)
        assert second == fresh.estimate({"lineitem"}, CORRELATED).posterior.k
        # different sample, (almost surely) different count than seed 1
        assert isinstance(first, int)
