"""Tests for the trace schema, serialization, and sinks."""

import json

import pytest

from repro.obs import (
    TRACE_SCHEMA_VERSION,
    EstimationSpan,
    InMemoryTraceSink,
    JsonlTraceSink,
    NullTraceSink,
    QueryTrace,
    TraceError,
    Tracer,
    canonical_json,
    q_error,
    read_traces,
    strip_timing,
    write_traces,
)


class TestQError:
    def test_symmetric(self):
        assert q_error(10, 100) == pytest.approx(10.0)
        assert q_error(100, 10) == pytest.approx(10.0)

    def test_exact_is_one(self):
        assert q_error(7, 7) == 1.0

    def test_zero_actual_floored(self):
        # both sides floor at 0.5 rows (audit.py convention)
        assert q_error(5, 0) == pytest.approx(10.0)
        assert q_error(0, 0) == 1.0

    def test_none_estimate_passes_through(self):
        assert q_error(None, 5) is None


class TestStripTiming:
    def test_removes_timing_at_any_depth(self):
        record = {
            "timing": {"wall": 1.0},
            "execution": {
                "timing": {"wall": 2.0},
                "operators": [{"x": 1, "timing": {"t": 3.0}}],
            },
            "keep": 1,
        }
        stripped = strip_timing(record)
        assert stripped == {
            "execution": {"operators": [{"x": 1}]},
            "keep": 1,
        }

    def test_is_a_deep_copy(self):
        record = {"a": {"b": [1]}}
        stripped = strip_timing(record)
        stripped["a"]["b"].append(2)
        assert record["a"]["b"] == [1]


class TestCanonicalJson:
    def test_sorted_keys_minimal_separators(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_pure_function_of_contents(self):
        a = {"x": 1, "y": {"p": 2, "q": 3}}
        b = {"y": {"q": 3, "p": 2}, "x": 1}
        assert canonical_json(a) == canonical_json(b)


class TestEstimationSpan:
    def test_scalar_as_dict(self):
        span = EstimationSpan(
            tables=("lineitem",),
            source="synopsis",
            k=29,
            n=500,
            prior="jeffreys",
            threshold=0.8,
            quantile=0.0675,
            point_estimate=270.1,
        )
        d = span.as_dict()
        assert d["tables"] == ["lineitem"]
        assert d["k"] == 29 and d["n"] == 500
        assert d["threshold"] == 0.8
        assert d["lut_hit"] is False

    def test_grid_fields_become_lists(self):
        span = EstimationSpan(
            tables=("part", "lineitem"),
            source="synopsis",
            threshold=(0.05, 0.95),
            quantile=(0.01, 0.02),
            point_estimate=(10.0, 20.0),
            lut_hit=True,
        )
        d = span.as_dict()
        assert d["tables"] == ["lineitem", "part"]
        assert d["threshold"] == [0.05, 0.95]
        assert d["quantile"] == [0.01, 0.02]
        assert d["lut_hit"] is True
        # grid spans must serialize (tuples alone would also work, but
        # canonical_json must accept the record as-is)
        canonical_json(d)


class TestQueryTrace:
    def make(self):
        return QueryTrace(
            template="exp1",
            config="T=80%",
            seed=3,
            param=150,
            selectivity=0.01,
            timing={"optimize_seconds": 0.5},
        )

    def test_trace_id(self):
        assert self.make().trace_id == "exp1/seed=3/config=T=80%/param=150"

    def test_as_dict_is_versioned_and_serializable(self):
        d = self.make().as_dict()
        assert d["schema"] == TRACE_SCHEMA_VERSION
        assert d["kind"] == "query"
        assert d["trace_id"] == "exp1/seed=3/config=T=80%/param=150"
        line = canonical_json(d)
        assert json.loads(line)["config"] == "T=80%"

    def test_timing_confined_to_timing_key(self):
        d = strip_timing(self.make().as_dict())
        assert "timing" not in d


class TestTracer:
    def test_buffers_and_drains(self):
        tracer = Tracer()
        span = EstimationSpan(tables=("t",), source="magic")
        tracer.record_estimation(span)
        drained = tracer.drain_estimations()
        assert drained == [span.as_dict()]
        assert tracer.drain_estimations() == []

    def test_counts_spans_in_registry(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        tracer = Tracer(registry=reg)
        tracer.record_estimation(EstimationSpan(tables=("t",), source="magic"))
        counter = reg.counter("repro_estimation_spans_total")
        assert counter.value(source="magic") == 1


class TestSinks:
    def test_in_memory(self):
        with InMemoryTraceSink() as sink:
            sink.emit({"schema": TRACE_SCHEMA_VERSION, "a": 1})
            sink.emit_many([{"schema": TRACE_SCHEMA_VERSION, "b": 2}])
        assert len(sink.records) == 2

    def test_null_sink_is_noop(self):
        with NullTraceSink() as sink:
            sink.emit({"anything": True})

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        records = [
            QueryTrace(template="t", config="c", seed=s).as_dict()
            for s in range(3)
        ]
        with JsonlTraceSink(path) as sink:
            sink.emit_many(records)
        assert sink.emitted == 3
        assert read_traces(path) == records

    def test_jsonl_lines_are_canonical(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        record = QueryTrace(template="t", config="c", seed=0).as_dict()
        write_traces(path, [record])
        assert path.read_text().strip() == canonical_json(record)


class TestWriteReadTraces:
    def test_write_returns_count(self, tmp_path):
        path = tmp_path / "out.jsonl"
        records = [QueryTrace(template="t", config="c", seed=0).as_dict()]
        assert write_traces(path, records) == 1

    def test_read_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(TraceError, match="line 1"):
            read_traces(path)

    def test_read_rejects_non_dict_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1,2,3]\n")
        with pytest.raises(TraceError):
            read_traces(path)

    def test_read_rejects_wrong_schema_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"schema": 999}) + "\n")
        with pytest.raises(TraceError, match="schema"):
            read_traces(path)

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        record = QueryTrace(template="t", config="c", seed=0).as_dict()
        path.write_text(canonical_json(record) + "\n\n")
        assert read_traces(path) == [record]


class TestIterTracesAndGzip:
    def records(self, n=3):
        return [
            QueryTrace(template="t", config="c", seed=i).as_dict()
            for i in range(n)
        ]

    def test_iter_traces_is_lazy_and_complete(self, tmp_path):
        from repro.obs import iter_traces

        path = tmp_path / "traces.jsonl"
        records = self.records()
        write_traces(path, records)
        iterator = iter_traces(path)
        assert next(iterator) == records[0]
        assert list(iterator) == records[1:]

    def test_iter_traces_validates_like_read(self, tmp_path):
        from repro.obs import iter_traces

        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(TraceError, match="line 1"):
            list(iter_traces(path))

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "traces.jsonl.gz"
        records = self.records()
        assert write_traces(path, records) == len(records)
        assert read_traces(path) == records

    def test_gzip_file_is_actually_compressed(self, tmp_path):
        import gzip

        path = tmp_path / "traces.jsonl.gz"
        write_traces(path, self.records())
        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            assert len(handle.read().strip().split("\n")) == 3

    def test_gzip_sink_append_and_read(self, tmp_path):
        path = tmp_path / "traces.jsonl.gz"
        records = self.records(2)
        with JsonlTraceSink(path) as sink:
            sink.emit(records[0])
            sink.emit(records[1])
        assert read_traces(path) == records

    def test_plain_and_gzip_contents_match(self, tmp_path):
        records = self.records()
        plain = tmp_path / "a.jsonl"
        packed = tmp_path / "a.jsonl.gz"
        write_traces(plain, records)
        write_traces(packed, records)
        assert read_traces(plain) == read_traces(packed)
