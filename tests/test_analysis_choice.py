"""Unit tests for plan-choice distributions (Section 5 machinery)."""

import numpy as np
import pytest

from repro.analysis import (
    EstimationModel,
    expected_time_and_variance,
    paper_default_model,
    plan_choice_probabilities,
    selectivity_estimates,
)
from repro.analysis.choice import plan_for_each_k
from repro.errors import ReproError


MODEL = paper_default_model()


class TestSelectivityEstimates:
    def test_shape(self):
        estimates = selectivity_estimates(EstimationModel(100, 0.5))
        assert estimates.shape == (101,)

    def test_monotone_in_k(self):
        estimates = selectivity_estimates(EstimationModel(200, 0.5))
        assert (np.diff(estimates) > 0).all()

    def test_monotone_in_threshold(self):
        low = selectivity_estimates(EstimationModel(100, 0.2))
        high = selectivity_estimates(EstimationModel(100, 0.8))
        assert (high > low).all()

    def test_validation(self):
        with pytest.raises(ReproError):
            EstimationModel(0, 0.5)
        with pytest.raises(ReproError):
            EstimationModel(100, 1.0)


class TestPlanForEachK:
    def test_small_k_picks_risky_plan(self):
        chosen = plan_for_each_k(MODEL, EstimationModel(1000, 0.5))
        assert chosen[0] == 1  # k=0 → index intersection
        assert chosen[-1] == 0  # k=n → sequential scan

    def test_threshold_95_never_risky(self):
        """Section 5.2.1: at T=95 % with n=1000 the optimizer can never
        be 95 % sure the risky plan is safe."""
        chosen = plan_for_each_k(MODEL, EstimationModel(1000, 0.95))
        assert (chosen == 0).all()

    def test_monotone_cutoff(self):
        """Estimates grow with k, so the choice switches exactly once."""
        chosen = plan_for_each_k(MODEL, EstimationModel(1000, 0.5))
        switches = np.abs(np.diff(chosen.astype(int))).sum()
        assert switches == 1


class TestChoiceProbabilities:
    def test_sums_to_one(self):
        probabilities = plan_choice_probabilities(
            MODEL, EstimationModel(500, 0.5), 0.002
        )
        assert probabilities.sum() == pytest.approx(1.0)

    def test_low_selectivity_prefers_risky(self):
        probabilities = plan_choice_probabilities(
            MODEL, EstimationModel(1000, 0.5), 0.0001
        )
        assert probabilities[1] > 0.9

    def test_high_selectivity_prefers_stable(self):
        probabilities = plan_choice_probabilities(
            MODEL, EstimationModel(1000, 0.5), 0.01
        )
        assert probabilities[0] > 0.99


class TestExpectedTime:
    def test_zero_selectivity_at_moderate_threshold(self):
        """At p=0 every sample gives k=0 → risky plan → its fixed cost."""
        expected, variance = expected_time_and_variance(
            MODEL, EstimationModel(1000, 0.5), np.array([0.0])
        )
        assert expected[0] == pytest.approx(5.0)
        assert variance[0] == pytest.approx(0.0)

    def test_t95_flat_at_scan_cost(self):
        grid = np.linspace(0, 0.01, 11)
        expected, _ = expected_time_and_variance(
            MODEL, EstimationModel(1000, 0.95), grid
        )
        assert np.allclose(expected, MODEL.cost(0, grid))

    def test_worse_than_oracle_everywhere(self):
        grid = np.linspace(0.0005, 0.01, 15)
        expected, _ = expected_time_and_variance(
            MODEL, EstimationModel(500, 0.5), grid
        )
        assert (expected >= MODEL.optimal_cost(grid) - 1e-9).all()

    def test_variance_nonnegative(self):
        grid = np.linspace(0, 0.01, 21)
        _, variance = expected_time_and_variance(
            MODEL, EstimationModel(500, 0.5), grid
        )
        assert (variance >= 0).all()

    def test_variance_vanishes_at_crossover(self):
        """At the crossover both plans cost the same, so whichever is
        chosen the execution time is identical — zero variance. Away
        from it, mixed choices with different costs create variance."""
        [crossover] = MODEL.crossover_points()
        grid = np.array([crossover / 10, crossover, crossover * 5])
        _, variance = expected_time_and_variance(
            MODEL, EstimationModel(500, 0.5), grid
        )
        assert variance[1] == pytest.approx(0.0, abs=1e-6)
        assert variance[0] > 1.0
        assert variance[2] > 1.0

    def test_scalar_input_accepted(self):
        expected, variance = expected_time_and_variance(
            MODEL, EstimationModel(100, 0.5), 0.001
        )
        assert expected.shape == (1,)
