"""Penalty math and the penalty-selection optimizer path.

The edge-case contract the PARQO arm pins down:

* one sample degenerates to the paper's threshold rule at that
  quantile (plain cost minimization);
* CVaR with ``alpha=1.0`` is exactly the expected penalty;
* score ties break to the lexicographically smallest plan signature,
  so selection is reproducible no matter how finalists are ordered.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core import RobustCardinalityEstimator
from repro.errors import OptimizationError
from repro.optimizer import Optimizer
from repro.selection import (
    PenaltyPolicy,
    cvar_tail_count,
    penalty_matrix,
    penalty_summary,
    risk_scores,
    sample_quantiles,
    select_index,
)
from repro.workloads import ShippingDatesTemplate


class TestPenaltyMatrix:
    def test_regret_against_per_sample_optimum(self):
        costs = np.array([[1.0, 4.0], [2.0, 3.0]])
        penalties = penalty_matrix(costs)
        assert penalties.tolist() == [[0.0, 1.0], [1.0, 0.0]]

    def test_nonnegative_with_zero_per_column(self):
        rng = np.random.default_rng(3)
        penalties = penalty_matrix(rng.uniform(1, 10, size=(5, 7)))
        assert (penalties >= 0).all()
        assert np.allclose(penalties.min(axis=0), 0.0)

    @pytest.mark.parametrize("shape", [(0, 3), (3, 0), (4,)])
    def test_degenerate_shapes_rejected(self, shape):
        with pytest.raises(ValueError):
            penalty_matrix(np.zeros(shape))


class TestRiskScores:
    def test_expected_is_row_mean(self):
        penalties = np.array([[0.0, 2.0], [1.0, 1.0]])
        assert risk_scores(penalties).tolist() == [1.0, 1.0]

    def test_cvar_tail_counts(self):
        assert cvar_tail_count(10, 1.0) == 10
        assert cvar_tail_count(10, 0.25) == 3  # ceil(2.5)
        assert cvar_tail_count(1, 0.1) == 1  # never empty
        with pytest.raises(ValueError):
            cvar_tail_count(10, 0.0)

    def test_cvar_averages_the_worst_tail(self):
        penalties = np.array([[0.0, 1.0, 2.0, 3.0]])
        # ceil(0.5 * 4) = 2 worst samples: (2 + 3) / 2.
        assert risk_scores(penalties, "cvar", 0.5).tolist() == [2.5]

    def test_cvar_alpha_one_equals_expected(self):
        rng = np.random.default_rng(9)
        penalties = rng.uniform(0, 5, size=(6, 11))
        assert np.allclose(
            risk_scores(penalties, "cvar", 1.0), risk_scores(penalties)
        )

    def test_unknown_risk_rejected(self):
        with pytest.raises(ValueError):
            risk_scores(np.zeros((1, 1)), "variance")


class TestSelectIndex:
    def test_lowest_score_wins(self):
        assert select_index(np.array([3.0, 1.0, 2.0]), ["c", "b", "a"]) == 1

    def test_all_tie_takes_lowest_signature(self):
        scores = np.zeros(3)
        assert select_index(scores, ["zeta", "alpha", "mid"]) == 1

    def test_signature_tie_takes_lowest_index(self):
        scores = np.zeros(2)
        assert select_index(scores, ["same", "same"]) == 0

    def test_callable_signatures_only_render_tied_plans(self):
        rendered = []

        def signature(i):
            rendered.append(i)
            return f"plan-{i}"

        winner = select_index(np.array([0.0, 0.0, 5.0]), signature)
        assert winner == 0
        assert sorted(rendered) == [0, 1]  # index 2 never rendered

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            select_index(np.array([]), [])


class TestPenaltySummary:
    def test_shapes_and_fields(self):
        out = penalty_summary(np.array([[0.0, 4.0], [1.0, 1.0]]))
        assert [row["mean"] for row in out] == [2.0, 1.0]
        assert out[0]["max"] == 4.0
        assert set(out[1]) == {"mean", "p50", "p90", "max"}


class TestOptimizePenalty:
    @pytest.fixture(scope="class")
    def optimizer(self, tpch_db, tpch_stats):
        estimator = RobustCardinalityEstimator(tpch_stats, policy=0.5)
        return Optimizer(tpch_db, estimator)

    @pytest.fixture(scope="class")
    def queries(self, tpch_db):
        template = ShippingDatesTemplate()
        params = template.params_for_targets(
            tpch_db, [0.0, 0.003, 0.02], step=8
        )
        return [template.instantiate(param) for param, _ in params]

    def test_single_sample_is_threshold_mode(self, optimizer, queries):
        # With one posterior sample there is no distribution to hedge
        # against: the winner is the cheapest plan at that quantile,
        # i.e. the paper's threshold rule.
        for query in queries:
            for quantile in (0.2, 0.8, 0.95):
                penalty = optimizer.optimize_penalty(query, (quantile,))
                threshold = optimizer.optimize(replace(query, hint=quantile))
                assert (
                    penalty.plan.signature() == threshold.plan.signature()
                ), quantile

    def test_cvar_alpha_one_matches_expected(self, optimizer, queries):
        quantiles = tuple(np.linspace(0.05, 0.95, 9))
        for query in queries:
            expected = optimizer.optimize_penalty(query, quantiles)
            cvar = optimizer.optimize_penalty(
                query, quantiles, risk="cvar", alpha=1.0
            )
            assert expected.plan.signature() == cvar.plan.signature()
            assert (
                expected.selection["winner_score"]
                == cvar.selection["winner_score"]
            )

    def test_selection_provenance(self, optimizer, queries):
        quantiles = (0.1, 0.5, 0.9)
        planned = optimizer.optimize_penalty(
            queries[1], quantiles, risk="cvar", alpha=0.9
        )
        selection = planned.selection
        assert selection["strategy"] == "penalty"
        assert selection["risk"] == "cvar"
        assert selection["samples"] == 3
        assert selection["quantiles"] == list(quantiles)
        # Plans are ranked best-first and carry penalty distributions.
        scores = [plan["score"] for plan in selection["plans"]]
        assert scores == sorted(scores)
        assert selection["winner_score"] == scores[0]
        assert all(plan["penalty"]["mean"] >= 0 for plan in selection["plans"])

    def test_reference_lane_supplies_estimates(self, optimizer, queries):
        planned = optimizer.optimize_penalty(queries[0], (0.05, 0.95))
        reference = optimizer.optimize(replace(queries[0], hint=0.5))
        if planned.plan.signature() == reference.plan.signature():
            assert planned.estimated_cost == pytest.approx(
                reference.estimated_cost, rel=1e-9
            )

    def test_empty_quantiles_rejected(self, optimizer, queries):
        with pytest.raises(OptimizationError):
            optimizer.optimize_penalty(queries[0], ())

    def test_deterministic_across_calls(self, optimizer, queries):
        policy = PenaltyPolicy(samples=12, risk="cvar", alpha=0.9)
        quantiles = sample_quantiles(
            policy, query_key="q-det", statistics_token=17
        )
        first = optimizer.optimize_penalty(
            queries[2], quantiles, risk="cvar", alpha=0.9
        )
        second = optimizer.optimize_penalty(
            queries[2], quantiles, risk="cvar", alpha=0.9
        )
        assert first.plan.signature() == second.plan.signature()
        assert first.selection == second.selection
