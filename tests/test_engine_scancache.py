"""Concurrency tests for the shared scan cache.

Regression suite for the serving-layer hardening: the pre-fix
``ScanCache`` used unguarded dict writes and counters, so two executor
threads scanning the same leaf both materialized it (violating
compute-once), hit/miss counts drifted under contention, and two
databases could race the first-seen pin. These tests fail on that
code.
"""

import sys
import threading
import time

import pytest

from repro.engine import ScanCache

from tests.conftest import make_two_table_db


class TestComputeOnce:
    def test_concurrent_same_key_materializes_once(self):
        """Two threads scanning the same leaf must share one compute."""
        cache = ScanCache()
        calls = []
        barrier = threading.Barrier(6)
        results = []

        def slow_scan():
            calls.append(1)
            time.sleep(0.05)  # wide race window: pre-fix, all 6 compute
            return object()

        def worker():
            barrier.wait()
            results.append(
                cache.get_or_compute(("seqscan", "lineitem", "q>45"), slow_scan)
            )

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(calls) == 1, "followers must wait, not re-materialize"
        assert all(r is results[0] for r in results)
        assert cache.stats() == {"hits": 5, "misses": 1, "entries": 1}

    def test_distinct_keys_do_not_serialize(self):
        cache = ScanCache()
        started = threading.Barrier(2)
        release = threading.Event()

        def blocking_scan():
            started.wait(timeout=5)
            release.wait(timeout=5)
            return "slow"

        slow = threading.Thread(
            target=lambda: cache.get_or_compute(("a",), blocking_scan)
        )
        slow.start()
        started.wait(timeout=5)
        # While ("a",) is mid-materialization, another key must not block.
        assert cache.get_or_compute(("b",), lambda: "fast") == "fast"
        release.set()
        slow.join(timeout=5)
        assert not slow.is_alive()
        assert len(cache) == 2

    def test_leader_failure_propagates_and_followers_retry(self):
        cache = ScanCache()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("scan failed")
            return "ok"

        with pytest.raises(RuntimeError):
            cache.get_or_compute(("k",), flaky)
        assert cache.get_or_compute(("k",), flaky) == "ok"
        assert len(attempts) == 2


class TestCounterAccuracy:
    def test_hit_miss_counters_exact_under_contention(self):
        cache = ScanCache()
        n_threads, iters = 4, 2000
        barrier = threading.Barrier(n_threads)

        def worker(idx):
            barrier.wait()
            for i in range(iters):
                cache.get_or_compute(("leaf", i % 16), lambda: i)

        previous = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            sys.setswitchinterval(previous)

        stats = cache.stats()
        assert stats["entries"] == 16
        assert stats["misses"] == 16
        assert stats["hits"] == n_threads * iters - 16


class TestDatabasePinning:
    def test_first_database_pins_and_others_bypass(self):
        db_a = make_two_table_db()
        db_b = make_two_table_db()
        cache = ScanCache()
        assert cache.valid_for(db_a)
        assert not cache.valid_for(db_b)
        assert cache.valid_for(db_a)

    def test_pin_race_admits_exactly_one_database(self):
        """Two databases racing the first-touch pin: one wins, ever."""
        db_a = make_two_table_db()
        db_b = make_two_table_db()
        for _ in range(50):
            cache = ScanCache()
            barrier = threading.Barrier(2)
            outcomes = {}

            def pin(tag, db):
                barrier.wait()
                outcomes[tag] = cache.valid_for(db)

            threads = [
                threading.Thread(target=pin, args=("a", db_a)),
                threading.Thread(target=pin, args=("b", db_b)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert sorted(outcomes.values()) == [False, True], (
                "exactly one database may win the pin"
            )
            # The winner's claim must be stable afterwards.
            winner = db_a if outcomes["a"] else db_b
            loser = db_b if outcomes["a"] else db_a
            assert cache.valid_for(winner)
            assert not cache.valid_for(loser)

    def test_clear_unpins(self):
        db_a = make_two_table_db()
        db_b = make_two_table_db()
        cache = ScanCache()
        assert cache.valid_for(db_a)
        cache.clear()
        assert cache.valid_for(db_b)
