"""Property-based optimizer correctness: any plan, same answer.

Whatever predicate is thrown at it — and whichever access path or join
method wins — the optimizer's chosen plan must return exactly the rows
a brute-force evaluation returns, and its estimated cost must equal
the simulated execution time when the estimator is exact.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ExactCardinalityEstimator
from repro.cost import CostModel
from repro.engine import ExecutionContext
from repro.expressions import Frame, col
from repro.optimizer import Optimizer, SPJQuery

DATE_LO, DATE_HI = 729000, 729365

lineitem_conjunct = st.one_of(
    st.tuples(
        st.just("lineitem.l_shipdate"),
        st.sampled_from(["<=", ">=", "between"]),
        st.integers(DATE_LO, DATE_HI),
        st.integers(0, 200),
    ),
    st.tuples(
        st.just("lineitem.l_receiptdate"),
        st.sampled_from(["<=", ">=", "between"]),
        st.integers(DATE_LO, DATE_HI),
        st.integers(0, 200),
    ),
    st.tuples(
        st.just("lineitem.l_quantity"),
        st.sampled_from(["<=", ">=", "=", "between"]),
        st.integers(1, 50),
        st.integers(0, 20),
    ),
)


def build_predicate(conjuncts):
    parts = []
    for column, op, value, width in conjuncts:
        reference = col(column)
        if op == "<=":
            parts.append(reference <= value)
        elif op == ">=":
            parts.append(reference >= value)
        elif op == "=":
            parts.append(reference == value)
        else:
            parts.append(reference.between(value, value + width))
    predicate = parts[0]
    for part in parts[1:]:
        predicate = predicate & part
    return predicate


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(conjuncts=st.lists(lineitem_conjunct, min_size=1, max_size=3))
def test_single_table_plans_always_correct(two_table_db, conjuncts):
    database = two_table_db
    predicate = build_predicate(conjuncts)
    model = CostModel()
    planned = Optimizer(
        database, ExactCardinalityEstimator(database), model
    ).optimize(SPJQuery(["lineitem"], predicate))

    ctx = ExecutionContext(database)
    frame = planned.plan.execute(ctx)

    truth_mask = predicate.evaluate(Frame.from_table(database.table("lineitem")))
    assert frame.num_rows == int(truth_mask.sum())
    assert sorted(frame.column("lineitem.l_id")) == sorted(
        np.flatnonzero(truth_mask)
    )
    assert planned.estimated_cost == pytest.approx(
        model.time_from_counters(ctx.counters), rel=1e-6
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    size_hi=st.integers(1, 50),
    conjuncts=st.lists(lineitem_conjunct, min_size=0, max_size=2),
)
def test_join_plans_always_correct(two_table_db, size_hi, conjuncts):
    database = two_table_db
    parts = [col("part.p_size") <= size_hi]
    if conjuncts:
        parts.append(build_predicate(conjuncts))
    predicate = parts[0]
    for part in parts[1:]:
        predicate = predicate & part

    model = CostModel()
    planned = Optimizer(
        database, ExactCardinalityEstimator(database), model
    ).optimize(SPJQuery(["lineitem", "part"], predicate))
    ctx = ExecutionContext(database)
    frame = planned.plan.execute(ctx)

    # brute force: evaluate over the materialized FK join
    from repro.stats.join_synopsis import fk_join_frame

    joined, _ = fk_join_frame(database, "lineitem", restrict_to={"lineitem", "part"})
    truth = int(predicate.evaluate(joined).sum())
    assert frame.num_rows == truth
    assert planned.estimated_cost == pytest.approx(
        model.time_from_counters(ctx.counters), rel=1e-6
    )


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    threshold=st.floats(0.02, 0.98),
    conjuncts=st.lists(lineitem_conjunct, min_size=1, max_size=2),
)
def test_threshold_never_changes_results(two_table_db, two_table_stats, threshold, conjuncts):
    """Robust estimation at any threshold returns the same rows — only
    the plan (and its time) may differ."""
    from repro.core import RobustCardinalityEstimator

    database = two_table_db
    predicate = build_predicate(conjuncts)
    estimator = RobustCardinalityEstimator(two_table_stats, policy=threshold)
    planned = Optimizer(database, estimator).optimize(
        SPJQuery(["lineitem"], predicate)
    )
    frame = planned.plan.execute(ExecutionContext(database))
    truth = predicate.evaluate(Frame.from_table(database.table("lineitem"))).sum()
    assert frame.num_rows == int(truth)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(conjuncts=st.lists(lineitem_conjunct, min_size=1, max_size=3))
def test_every_alternative_recosts_to_its_dp_cost(two_table_db, conjuncts):
    """PlanCoster agrees with the DP's incremental costing for every
    candidate of every randomly generated query."""
    from repro.optimizer import PlanCoster

    database = two_table_db
    predicate = build_predicate(conjuncts)
    exact = ExactCardinalityEstimator(database)
    planned = Optimizer(database, exact).optimize(
        SPJQuery(["lineitem"], predicate)
    )
    coster = PlanCoster(
        database, CostModel(), lambda t, p: exact.estimate(t, p).cardinality
    )
    for candidate in planned.alternatives:
        cost, rows = coster.cost(candidate.operator)
        assert cost == pytest.approx(candidate.cost, rel=1e-9)
        assert rows == pytest.approx(candidate.rows, rel=1e-9)
