"""The closed feedback loop through the Session and serving layers.

Covers the tentpole's integration contracts:

* executions harvest observed cardinalities into the statistics
  epoch's namespace and the next prepare folds them into the
  posterior (``source="feedback"`` in traced evidence);
* the plan cache keys on the feedback generation, so new evidence
  re-plans instead of serving the pre-feedback plan;
* threshold routing slots below hints and per-call overrides;
* the epoch fence: across a statistics hot-swap, zero stale-feedback
  folds — with a pre-fix demonstration of the corruption an
  unfenced provider causes (``enforce_namespace=False``);
* per-tenant isolation of the loop in the serving layer.
"""

from __future__ import annotations

import pytest

from repro.core import AGGRESSIVE, CONSERVATIVE, RobustCardinalityEstimator
from repro.expressions import col, expr_key
from repro.feedback import (
    FeedbackConfig,
    FeedbackProvider,
    FeedbackStore,
    SessionFeedback,
    harvest_traces,
    plan_observations,
)
from repro.feedback.harvest import predicate_for_tables
from repro.optimizer import SPJQuery
from repro.service import Session, SessionError
from repro.serving import QueryServer, TenantSpec
from repro.stats import StatisticsManager

SELECTION = (
    "SELECT COUNT(*) FROM lineitem WHERE "
    "lineitem.l_shipdate >= '1997-01-01' "
    "AND lineitem.l_shipdate <= '1997-03-31' "
    "AND lineitem.l_receiptdate >= '1997-01-01' "
    "AND lineitem.l_receiptdate <= '1997-04-15'"
)
JOIN = (
    "SELECT COUNT(*) FROM lineitem, part "
    "WHERE part.p_size <= 10 AND lineitem.l_quantity > 30"
)


@pytest.fixture()
def session(two_table_db):
    with Session(
        two_table_db, sample_size=300, statistics_seed=3
    ) as session:
        yield session


class TestEnableFeedback:
    def test_disabled_by_default(self, session):
        assert session.feedback is None

    def test_enable_is_idempotent(self, session):
        controller = session.enable_feedback()
        assert session.enable_feedback() is controller
        assert session.feedback is controller
        assert ", feedback" in session.describe()

    def test_reenable_with_arguments_rejected(self, session):
        session.enable_feedback()
        with pytest.raises(SessionError, match="already enabled"):
            session.enable_feedback(store=FeedbackStore())

    def test_non_robust_session_rejected(self, two_table_db):
        with Session(two_table_db, estimator="exact") as session:
            with pytest.raises(SessionError, match="robust"):
                session.enable_feedback()


class TestClosedLoop:
    def test_execution_harvests_into_epoch_namespace(self, session):
        feedback = session.enable_feedback()
        result = session.execute(SELECTION)
        version = result.prepared.statistics_version
        assert feedback.observations == 1
        assert feedback.store.namespaces() == [f"epoch={version}"]
        assert feedback.store.size() > 0

    def test_next_prepare_folds_feedback(self, session):
        feedback = session.enable_feedback()
        session.execute(SELECTION)
        session.execute(SELECTION)
        counters = feedback.provider_counters()
        assert sum(c["folds"] for c in counters.values()) > 0
        assert feedback.stale_hits() == 0

    def test_traced_evidence_attributes_feedback(self, session):
        session.enable_feedback()
        session.execute(SELECTION)
        record = session.trace_query(SELECTION)
        spans = record["estimation"]
        fed = [s for s in spans if s["source"] == "feedback"]
        assert fed, [s["source"] for s in spans]
        attribution = fed[0]["feedback"]
        assert attribution["namespace"].startswith("epoch=")
        assert attribution["observations"] >= 1
        assert "prior_quantile" in attribution
        assert 0.0 <= attribution["observed_selectivity"] <= 1.0

    def test_feedback_generation_invalidates_plan_cache(self, session):
        session.enable_feedback()
        first = session.execute(SELECTION)
        assert first.plan_cached is False
        # The harvest bumped the generation: the same statement must
        # re-plan (fold the new evidence), not hit the stale entry.
        second = session.execute(SELECTION)
        assert second.plan_cached is False
        # Prepare-only passes don't harvest, so the generation holds
        # still and the second prepare is the cache hit.
        third = session.prepare(SELECTION)
        assert third.from_cache is False
        fourth = session.prepare(SELECTION)
        assert fourth.from_cache is True

    def test_ledger_tracks_query_class(self, session):
        feedback = session.enable_feedback()
        session.execute(SELECTION)
        report = feedback.ledger.report()
        assert "lineitem" in report
        assert report["lineitem"]["count"] == 1

    def test_degraded_plans_are_not_harvested(self, session):
        from repro.errors import EstimationError

        class Exploding:
            def __init__(self, inner):
                self.inner = inner

            def estimate(self, tables, predicate, hint=None):
                raise EstimationError("injected")

            def estimate_many(self, tables, predicate, thresholds):
                raise EstimationError("injected")

            def describe(self):
                return "exploding"

        feedback = session.enable_feedback()
        session.estimator_decorator = Exploding
        result = session.execute(SELECTION)
        assert result.prepared.degraded_reason == "estimator-failure"
        assert feedback.observations == 0
        assert feedback.store.size() == 0


class TestThresholdRouting:
    def seed_class(self, feedback, query_class, q_error, count=4):
        for _ in range(count):
            feedback.ledger.ingest(query_class, q_error)

    def test_accurate_class_routes_aggressive(self, session):
        feedback = session.enable_feedback()
        self.seed_class(feedback, "lineitem", 1.1)
        prepared = session.prepare(SELECTION)
        assert prepared.threshold == AGGRESSIVE

    def test_catastrophic_class_routes_conservative(self, session):
        feedback = session.enable_feedback()
        self.seed_class(feedback, "lineitem", 5000.0)
        prepared = session.prepare(SELECTION)
        assert prepared.threshold == CONSERVATIVE

    def test_per_call_threshold_beats_routing(self, session):
        feedback = session.enable_feedback()
        self.seed_class(feedback, "lineitem", 5000.0)
        prepared = session.prepare(SELECTION, threshold="50")
        assert prepared.threshold == 0.5

    def test_hint_beats_routing(self, session):
        feedback = session.enable_feedback()
        self.seed_class(feedback, "lineitem", 5000.0)
        prepared = session.prepare(
            SELECTION + " OPTION (CONFIDENCE 50)"
        )
        assert prepared.threshold == 0.5

    def test_cold_class_uses_session_default(self, session):
        session.enable_feedback()
        prepared = session.prepare(SELECTION)
        assert prepared.threshold == session.config.resolved_threshold


class TestEpochFence:
    """The hot-swap regression: stale feedback must never fold."""

    def make_query(self):
        predicate = (
            col("lineitem.l_shipdate").between("1997-01-01", "1997-03-31")
            & col("lineitem.l_receiptdate").between(
                "1997-01-01", "1997-04-15"
            )
        )
        return SPJQuery(tables=("lineitem",), predicate=predicate)

    def poisoned_store(self, query, namespace="epoch=1"):
        """A store whose only observation is wildly wrong."""
        store = FeedbackStore()
        key = expr_key(
            predicate_for_tables(query, frozenset(query.tables))
        )
        for _ in range(8):
            store.record(
                namespace,
                tables=query.tables,
                predicate_key=key,
                observed_rows=1_900.0,
                estimated_rows=1.0,
            )
        return store

    def estimate(self, two_table_db, provider):
        manager = StatisticsManager(two_table_db)
        manager.update_statistics(sample_size=300, seed=9)
        estimator = RobustCardinalityEstimator(manager, policy=0.8)
        estimator.feedback = provider
        query = self.make_query()
        predicate = predicate_for_tables(query, frozenset(query.tables))
        return estimator.estimate(("lineitem",), predicate).cardinality

    def test_prefix_unfenced_provider_corrupts_posterior(
        self, two_table_db
    ):
        """The bug the namespace fence exists to prevent.

        Feedback harvested under a *different* statistics epoch (here:
        a poisoned ``epoch=1`` record claiming ~all rows match) folds
        into a provider bound to ``epoch=2`` when the fence is off,
        dragging the estimate far from the unfed posterior.
        """
        query = self.make_query()
        store = self.poisoned_store(query)
        clean = FeedbackProvider(store, "epoch=2")  # fenced: refuses
        unfenced = FeedbackProvider(
            store, "epoch=2", enforce_namespace=False, weight=400.0
        )
        base = self.estimate(two_table_db, None)
        fenced = self.estimate(two_table_db, clean)
        corrupted = self.estimate(two_table_db, unfenced)
        assert fenced == base
        assert clean.counters()["stale_refused"] == 1
        assert unfenced.counters()["stale_hits"] == 1
        # The stale fold drags the estimate toward the poisoned
        # observation (~1900 rows) — at least 5x off the clean answer.
        assert corrupted > 5 * base

    def test_session_hot_swap_has_zero_stale_hits(self, two_table_db):
        with Session(
            two_table_db, sample_size=300, statistics_seed=3
        ) as session:
            feedback = session.enable_feedback()
            session.execute(SELECTION)
            session.execute(SELECTION)
            v1 = session.statistics_version()
            v2 = session.refresh_statistics(seed=11)
            assert v2 != v1
            session.execute(SELECTION)
            session.execute(SELECTION)
            namespaces = feedback.store.namespaces()
            assert f"epoch={v1}" in namespaces
            assert f"epoch={v2}" in namespaces
            assert feedback.stale_hits() == 0
            counters = feedback.provider_counters()
            # The new epoch's provider saw the old key and refused it
            # before its own harvest landed.
            assert counters[f"epoch={v2}"]["stale_refused"] >= 1
            assert counters[f"epoch={v2}"]["folds"] >= 1

    def test_attach_statistics_renames_namespace(self, two_table_db):
        with Session(
            two_table_db, sample_size=300, statistics_seed=3
        ) as session:
            feedback = session.enable_feedback()
            session.execute(SELECTION)
            manager = StatisticsManager(two_table_db)
            manager.update_statistics(sample_size=300, seed=23)
            version = session.attach_statistics(manager)
            session.execute(SELECTION)
            assert f"epoch={version}" in feedback.store.namespaces()
            assert feedback.stale_hits() == 0


class TestHarvestDeterminism:
    def observations(self, two_table_db):
        with Session(
            two_table_db, sample_size=300, statistics_seed=3
        ) as session:
            prepared = session.prepare(JOIN)
            prepared.execute()
            return plan_observations(
                prepared.query, prepared.plan, two_table_db
            )

    def test_plan_observations_cover_table_sets(self, two_table_db):
        observations = self.observations(two_table_db)
        tablesets = {obs["tables"] for obs in observations}
        assert ("lineitem", "part") in tablesets
        assert any(len(t) == 1 for t in tablesets)
        for obs in observations:
            assert obs["observed_rows"] >= 0.0

    def test_store_bytes_independent_of_harvest_order(self, two_table_db):
        observations = self.observations(two_table_db)

        def build(order):
            store = FeedbackStore()
            for obs in order:
                store.record(
                    "epoch=1",
                    tables=obs["tables"],
                    predicate_key=obs["predicate_key"],
                    observed_rows=obs["observed_rows"],
                    estimated_rows=obs["estimated_rows"],
                )
            return store.to_bytes()

        forward = build(observations)
        assert build(list(reversed(observations))) == forward

    def test_harvest_traces_from_session_trace(self, session):
        record = session.trace_query(JOIN, execute=True)
        record["template"] = "join"
        record["seed"] = 0
        store = FeedbackStore()
        query = session._coerce_query(JOIN)
        count = harvest_traces(
            store, [record], query_for=lambda r: query
        )
        assert count > 0
        assert store.namespaces() == ["join/seed=0"]

    def test_session_feedback_report_shape(self, session):
        session.enable_feedback()
        session.execute(SELECTION)
        report = session.feedback.report()
        assert set(report) == {
            "observations",
            "store",
            "ledger",
            "routing",
            "routed_counts",
            "providers",
        }
        assert report["observations"] == 1


class TestServingIsolation:
    def make_server(self, two_table_db):
        return QueryServer(
            [
                TenantSpec(
                    "alpha",
                    two_table_db,
                    feedback=True,
                ),
                TenantSpec(
                    "beta",
                    two_table_db,
                    feedback=FeedbackConfig(weight=32.0),
                ),
                TenantSpec("gamma", two_table_db),
            ],
            worker_threads=2,
        )

    def test_per_tenant_feedback_stores_are_private(self, two_table_db):
        with self.make_server(two_table_db) as server:
            alpha = server.session("alpha").feedback
            beta = server.session("beta").feedback
            assert alpha is not None and beta is not None
            assert alpha.store is not beta.store
            assert beta.config.weight == 32.0
            assert server.session("gamma").feedback is None

    def test_served_executions_feed_only_their_tenant(self, two_table_db):
        with self.make_server(two_table_db) as server:
            server.serve("alpha", SELECTION)
            server.serve("alpha", SELECTION)
            server.serve("gamma", SELECTION)
            alpha = server.feedback_report("alpha")
            assert alpha["observations"] == 2
            assert server.feedback_report("beta")["observations"] == 0
            assert server.feedback_report("gamma") is None
            isolation = server.feedback_isolation_report()
            assert isolation["isolated"] is True
            assert isolation["stale_hits"] == {"alpha": 0, "beta": 0}
            assert isolation["shared_stores"] == []

    def test_swap_statistics_keeps_feedback_fenced(self, two_table_db):
        with self.make_server(two_table_db) as server:
            server.serve("alpha", SELECTION)
            manager = StatisticsManager(two_table_db)
            manager.update_statistics(sample_size=200, seed=31)
            server.swap_statistics("alpha", manager)
            server.serve("alpha", SELECTION)
            report = server.stats()
            assert report["feedback_isolation"]["isolated"] is True
            assert report["tenants"]["alpha"]["feedback"]["stale_hits"] == 0
            assert report["tenants"]["gamma"]["feedback"] is None
