"""Unit tests for the StarSemiJoin operator against hash-cascade truth."""

import numpy as np
import pytest

from repro.engine import ExecutionContext, HashJoin, SeqScan, StarSemiJoin
from repro.engine.star import DimensionSpec
from repro.errors import ExecutionError
from repro.expressions import col


def dim_predicate(i, low, high):
    return col(f"dim{i}.d_attr").between(low, high)


def specs(windows):
    return [
        DimensionSpec(f"dim{i}", f"f_dim{i}key", dim_predicate(i, lo, hi))
        for i, (lo, hi) in windows.items()
    ]


def hash_cascade(db, windows):
    """Reference plan: fact scanned, every dimension hash-joined."""
    plan = SeqScan("fact")
    for i, (lo, hi) in windows.items():
        plan = HashJoin(
            SeqScan(f"dim{i}", dim_predicate(i, lo, hi)),
            plan,
            f"dim{i}.d_key",
            f"fact.f_dim{i}key",
        )
    return plan.execute(ExecutionContext(db))


WINDOWS = {1: (0, 99), 2: (20, 119), 3: (0, 99)}


class TestStarSemiJoin:
    def test_full_semijoin_matches_cascade(self, star_db):
        expected = hash_cascade(star_db, WINDOWS)
        ctx = ExecutionContext(star_db)
        frame = StarSemiJoin("fact", specs(WINDOWS)).execute(ctx)
        assert frame.num_rows == expected.num_rows
        assert sorted(frame.column("fact.f_id")) == sorted(
            expected.column("fact.f_id")
        )

    def test_hybrid_matches_cascade(self, star_db):
        expected = hash_cascade(star_db, WINDOWS)
        all_specs = specs(WINDOWS)
        ctx = ExecutionContext(star_db)
        frame = StarSemiJoin(
            "fact", semi_dims=all_specs[:2], hash_dims=all_specs[2:]
        ).execute(ctx)
        assert frame.num_rows == expected.num_rows

    def test_output_contains_dimension_columns(self, star_db):
        frame = StarSemiJoin("fact", specs(WINDOWS)).execute(
            ExecutionContext(star_db)
        )
        for i in (1, 2, 3):
            assert f"dim{i}.d_attr" in frame.column_names

    def test_random_ios_equal_intersection_size(self, star_db):
        ctx = ExecutionContext(star_db)
        frame = StarSemiJoin("fact", specs(WINDOWS)).execute(ctx)
        assert ctx.counters.random_ios == frame.num_rows

    def test_single_semi_dim(self, star_db):
        one = specs({1: (0, 99)})
        ctx = ExecutionContext(star_db)
        frame = StarSemiJoin("fact", one).execute(ctx)
        fk = star_db.table("fact").column("f_dim1key")
        assert frame.num_rows == int(((fk >= 0) & (fk <= 99)).sum())

    def test_fact_predicate(self, star_db):
        predicate = col("fact.f_measure1") > 500.0
        ctx = ExecutionContext(star_db)
        frame = StarSemiJoin(
            "fact", specs(WINDOWS), fact_predicate=predicate
        ).execute(ctx)
        assert (frame.column("fact.f_measure1") > 500.0).all()

    def test_requires_semi_dim(self, star_db):
        with pytest.raises(ExecutionError):
            StarSemiJoin("fact", [])

    def test_unfiltered_dimension(self, star_db):
        unfiltered = [DimensionSpec("dim1", "f_dim1key", None)]
        frame = StarSemiJoin("fact", unfiltered).execute(ExecutionContext(star_db))
        assert frame.num_rows == star_db.table("fact").num_rows
