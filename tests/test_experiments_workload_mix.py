"""Tests for the workload-mix latency-percentile harness."""

import pytest

from repro.errors import ReproError
from repro.experiments import (
    LatencyProfile,
    MixComponent,
    default_configs,
    format_latency_profiles,
    run_workload_mix,
)
from repro.workloads import PartCorrelationTemplate, ShippingDatesTemplate


@pytest.fixture(scope="module")
def profiles(tpch_db):
    components = [
        MixComponent(ShippingDatesTemplate(), weight=2.0),
        MixComponent(PartCorrelationTemplate(), weight=1.0),
    ]
    configs = default_configs(thresholds=(0.05, 0.95))
    return run_workload_mix(
        tpch_db,
        components,
        num_queries=40,
        configs=configs,
        sample_size=300,
    )


class TestLatencyProfile:
    def test_from_times(self):
        profile = LatencyProfile.from_times("x", [1.0, 2.0, 3.0, 4.0])
        assert profile.mean == pytest.approx(2.5)
        assert profile.p50 == pytest.approx(2.5)
        assert profile.worst == 4.0
        assert profile.p50 <= profile.p95 <= profile.p99 <= profile.worst

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            LatencyProfile.from_times("x", [])


class TestWorkloadMix:
    def test_one_profile_per_config(self, profiles):
        assert set(profiles) == {"T=5%", "T=95%", "Histograms"}

    def test_percentiles_ordered(self, profiles):
        for profile in profiles.values():
            assert profile.p50 <= profile.p95 <= profile.p99 <= profile.worst

    def test_conservative_tail_no_worse(self, profiles):
        """The paper's predictability story in percentile form: the
        conservative threshold controls the tail."""
        assert profiles["T=95%"].p99 <= profiles["T=5%"].p99 * 1.05
        assert profiles["T=95%"].worst <= profiles["T=5%"].worst * 1.05

    def test_histograms_worst_tail(self, profiles):
        assert profiles["Histograms"].worst >= profiles["T=95%"].worst * 0.95

    def test_format(self, profiles):
        text = format_latency_profiles(profiles)
        assert "p99" in text and "T=95%" in text

    def test_validation(self, tpch_db):
        with pytest.raises(ReproError):
            run_workload_mix(tpch_db, [], num_queries=1)
        with pytest.raises(ReproError):
            run_workload_mix(
                tpch_db,
                [MixComponent(ShippingDatesTemplate(), weight=0.0)],
                num_queries=1,
            )

    def test_deterministic(self, tpch_db):
        components = [MixComponent(ShippingDatesTemplate())]
        configs = default_configs(thresholds=(0.5,), include_histogram=False)
        a = run_workload_mix(
            tpch_db, components, num_queries=10, configs=configs, sample_size=200
        )
        b = run_workload_mix(
            tpch_db, components, num_queries=10, configs=configs, sample_size=200
        )
        assert a["T=50%"].mean == b["T=50%"].mean
