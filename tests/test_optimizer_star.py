"""Tests for star detection and star-plan generation."""

import pytest

from repro.core import ExactCardinalityEstimator, HistogramCardinalityEstimator
from repro.engine import ExecutionContext, HashJoin, SeqScan, StarSemiJoin
from repro.cost import CostModel
from repro.expressions import col
from repro.optimizer import Optimizer, SPJQuery
from repro.optimizer.optimizer import PlanningContext
from repro.optimizer.star import detect_star, star_candidates


def star_query(shift=0):
    m = 100
    predicate = (
        col("dim1.d_attr").between(0, m - 1)
        & col("dim2.d_attr").between(shift, shift + m - 1)
        & col("dim3.d_attr").between(0, m - 1)
    )
    return SPJQuery(["fact", "dim1", "dim2", "dim3"], predicate)


@pytest.fixture
def ctx(star_db):
    query = star_query()
    return PlanningContext(
        star_db, CostModel(), ExactCardinalityEstimator(star_db), query
    )


class TestDetection:
    def test_detects_star(self, ctx):
        specs = detect_star(ctx, star_query())
        assert specs is not None
        assert [s.dim_table for s in specs] == ["dim1", "dim2", "dim3"]
        assert {s.fact_fk_column for s in specs} == {
            "f_dim1key",
            "f_dim2key",
            "f_dim3key",
        }

    def test_two_tables_not_a_star(self, star_db):
        query = SPJQuery(["fact", "dim1"])
        ctx = PlanningContext(
            star_db, CostModel(), ExactCardinalityEstimator(star_db), query
        )
        assert detect_star(ctx, query) is None

    def test_chain_schema_not_a_star(self, tpch_db):
        query = SPJQuery(["lineitem", "orders", "customer"])
        ctx = PlanningContext(
            tpch_db, CostModel(), ExactCardinalityEstimator(tpch_db), query
        )
        # customer is a parent of orders, not of lineitem → snowflake
        assert detect_star(ctx, query) is None

    def test_tpch_two_parents_is_a_star(self, tpch_db):
        query = SPJQuery(["lineitem", "orders", "part"])
        ctx = PlanningContext(
            tpch_db, CostModel(), ExactCardinalityEstimator(tpch_db), query
        )
        # lineitem has direct FKs to both orders and part, but the
        # fact FK column l_orderkey... is indexed; l_partkey indexed too
        specs = detect_star(ctx, query)
        assert specs is not None


class TestStarCandidates:
    def test_all_splits_generated(self, ctx, star_db):
        query = star_query()
        specs = detect_star(ctx, query)
        out_rows = ctx.card(
            frozenset(query.tables), ctx.pred_for(frozenset(query.tables))
        ).cardinality
        candidates = star_candidates(ctx, query, specs, out_rows)
        # 3 dims → 2^3 − 1 = 7 nonempty semi subsets
        assert len(candidates) == 7
        assert all(isinstance(c.operator, StarSemiJoin) for c in candidates)

    def test_candidate_execution_matches_cascade(self, ctx, star_db):
        query = star_query(shift=20)
        specs = detect_star(ctx, query)
        out_rows = ctx.card(
            frozenset(query.tables), ctx.pred_for(frozenset(query.tables))
        ).cardinality
        candidates = star_candidates(ctx, query, specs, out_rows)
        sizes = set()
        for candidate in candidates:
            frame = candidate.operator.execute(ExecutionContext(star_db))
            sizes.add(frame.num_rows)
        assert len(sizes) == 1

    def test_cost_matches_execution(self, star_db):
        """Star-plan cost formulas mirror the engine counters exactly."""
        query = star_query(shift=50)
        ctx = PlanningContext(
            star_db, CostModel(), ExactCardinalityEstimator(star_db), query
        )
        specs = detect_star(ctx, query)
        out_rows = ctx.card(
            frozenset(query.tables), ctx.pred_for(frozenset(query.tables))
        ).cardinality
        model = CostModel()
        for candidate in star_candidates(ctx, query, specs, out_rows):
            run_ctx = ExecutionContext(star_db)
            candidate.operator.execute(run_ctx)
            simulated = model.time_from_counters(run_ctx.counters)
            assert candidate.cost == pytest.approx(simulated, rel=1e-6)


class TestOptimizerChoice:
    def test_semijoin_wins_at_zero_selectivity(self, star_db):
        optimizer = Optimizer(star_db, ExactCardinalityEstimator(star_db))
        planned = optimizer.optimize(star_query(shift=100))  # nothing joins
        assert isinstance(planned.plan, StarSemiJoin) or any(
            isinstance(op, StarSemiJoin) for op in planned.plan.walk()
        )

    def test_hash_cascade_wins_at_high_selectivity(self, star_db):
        optimizer = Optimizer(star_db, ExactCardinalityEstimator(star_db))
        planned = optimizer.optimize(star_query(shift=0))  # max joins
        kinds = {type(op) for op in planned.plan.walk()}
        assert StarSemiJoin not in kinds
        assert HashJoin in kinds

    def test_histogram_estimator_pinned(self, star_db, star_stats):
        """AVI: always ≈0.1 % of fact rows, whatever the shift."""
        estimator = HistogramCardinalityEstimator(star_stats)
        estimates = [
            estimator.estimate(
                set(star_query(shift).tables), star_query(shift).predicate
            ).selectivity
            for shift in (0, 50, 100)
        ]
        for estimate in estimates:
            assert estimate == pytest.approx(0.001, rel=0.25)

    def test_star_plans_can_be_disabled(self, star_db):
        optimizer = Optimizer(
            star_db, ExactCardinalityEstimator(star_db), enable_star_plans=False
        )
        planned = optimizer.optimize(star_query(shift=100))
        kinds = {type(op) for op in planned.plan.walk()}
        assert StarSemiJoin not in kinds
