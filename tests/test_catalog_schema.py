"""Unit tests for repro.catalog.schema."""

import pytest

from repro.catalog import Column, ColumnType, ForeignKey, Schema
from repro.errors import CatalogError


def make_schema(**kwargs) -> Schema:
    return Schema(
        [
            Column("id", ColumnType.INT64),
            Column("size", ColumnType.INT64),
            Column("label", ColumnType.STRING),
        ],
        **kwargs,
    )


class TestColumn:
    def test_valid(self):
        column = Column("x", ColumnType.INT64)
        assert column.name == "x"

    def test_empty_name_raises(self):
        with pytest.raises(CatalogError):
            Column("", ColumnType.INT64)

    def test_dotted_name_raises(self):
        with pytest.raises(CatalogError):
            Column("a.b", ColumnType.INT64)


class TestSchema:
    def test_column_order_preserved(self):
        schema = make_schema()
        assert schema.column_names == ["id", "size", "label"]

    def test_len_and_iter(self):
        schema = make_schema()
        assert len(schema) == 3
        assert [c.name for c in schema] == ["id", "size", "label"]

    def test_contains(self):
        schema = make_schema()
        assert "id" in schema
        assert "nope" not in schema

    def test_column_lookup(self):
        schema = make_schema()
        assert schema.column("size").column_type is ColumnType.INT64
        assert schema.column_type("label") is ColumnType.STRING

    def test_missing_column_raises(self):
        with pytest.raises(CatalogError):
            make_schema().column("nope")

    def test_duplicate_columns_raise(self):
        with pytest.raises(CatalogError):
            Schema([Column("a", ColumnType.INT64), Column("a", ColumnType.INT64)])

    def test_empty_schema_raises(self):
        with pytest.raises(CatalogError):
            Schema([])

    def test_primary_key_must_exist(self):
        with pytest.raises(CatalogError):
            make_schema(primary_key="nope")

    def test_primary_key_recorded(self):
        assert make_schema(primary_key="id").primary_key == "id"

    def test_row_byte_width(self):
        # two 8-byte numerics + one 16-byte string
        assert make_schema().row_byte_width == 32


class TestForeignKey:
    def test_fk_column_must_exist(self):
        with pytest.raises(CatalogError):
            make_schema(foreign_keys=[ForeignKey("nope", "parent", "id")])

    def test_foreign_key_for(self):
        fk = ForeignKey("size", "parent", "id")
        schema = make_schema(foreign_keys=[fk])
        assert schema.foreign_key_for("size") is fk
        assert schema.foreign_key_for("id") is None

    def test_str(self):
        assert "parent.id" in str(ForeignKey("size", "parent", "id"))
