"""Unit tests for aggregation operators."""

import numpy as np
import pytest

from repro.engine import (
    AggregateSpec,
    ExecutionContext,
    Filter,
    HashAggregate,
    Project,
    SeqScan,
)
from repro.errors import ExecutionError
from repro.expressions import col

from tests.conftest import make_two_table_db


@pytest.fixture
def db():
    return make_two_table_db(n_part=30, n_lineitem=400)


class TestScalarAggregates:
    def test_sum(self, db):
        plan = HashAggregate(
            SeqScan("lineitem"),
            [AggregateSpec("sum", "lineitem.l_quantity", "total")],
        )
        frame = plan.execute(ExecutionContext(db))
        assert frame.num_rows == 1
        expected = db.table("lineitem").column("l_quantity").sum()
        assert frame.column("total")[0] == pytest.approx(expected)

    def test_count_star(self, db):
        plan = HashAggregate(
            SeqScan("lineitem"), [AggregateSpec("count", "*", "n")]
        )
        frame = plan.execute(ExecutionContext(db))
        assert frame.column("n")[0] == db.table("lineitem").num_rows

    def test_min_max_avg(self, db):
        plan = HashAggregate(
            SeqScan("lineitem"),
            [
                AggregateSpec("min", "lineitem.l_quantity", "lo"),
                AggregateSpec("max", "lineitem.l_quantity", "hi"),
                AggregateSpec("avg", "lineitem.l_quantity", "mean"),
            ],
        )
        frame = plan.execute(ExecutionContext(db))
        quantity = db.table("lineitem").column("l_quantity")
        assert frame.column("lo")[0] == quantity.min()
        assert frame.column("hi")[0] == quantity.max()
        assert frame.column("mean")[0] == pytest.approx(quantity.mean())

    def test_sum_of_empty_input_is_zero(self, db):
        plan = HashAggregate(
            SeqScan("lineitem", col("lineitem.l_quantity") > 1e9),
            [AggregateSpec("sum", "lineitem.l_quantity", "total")],
        )
        frame = plan.execute(ExecutionContext(db))
        assert frame.column("total")[0] == 0.0

    def test_min_of_empty_input_is_nan(self, db):
        plan = HashAggregate(
            SeqScan("lineitem", col("lineitem.l_quantity") > 1e9),
            [AggregateSpec("min", "lineitem.l_quantity", "lo")],
        )
        frame = plan.execute(ExecutionContext(db))
        assert np.isnan(frame.column("lo")[0])


class TestGroupedAggregates:
    def test_group_by_fk(self, db):
        plan = HashAggregate(
            SeqScan("lineitem"),
            [AggregateSpec("count", "*", "n")],
            group_by=["lineitem.l_partkey"],
        )
        frame = plan.execute(ExecutionContext(db))
        fk = db.table("lineitem").column("l_partkey")
        keys, counts = np.unique(fk, return_counts=True)
        assert frame.num_rows == len(keys)
        order = np.argsort(frame.column("lineitem.l_partkey"))
        assert np.array_equal(
            frame.column("n")[order].astype(int), counts
        )

    def test_group_sums_match_total(self, db):
        plan = HashAggregate(
            SeqScan("lineitem"),
            [AggregateSpec("sum", "lineitem.l_quantity", "q")],
            group_by=["lineitem.l_partkey"],
        )
        frame = plan.execute(ExecutionContext(db))
        total = db.table("lineitem").column("l_quantity").sum()
        assert frame.column("q").sum() == pytest.approx(total)

    def test_multi_column_group(self, db):
        plan = HashAggregate(
            SeqScan("lineitem"),
            [AggregateSpec("count", "*", "n")],
            group_by=["lineitem.l_partkey", "lineitem.l_quantity"],
        )
        frame = plan.execute(ExecutionContext(db))
        table = db.table("lineitem")
        combos = {
            (int(a), float(b))
            for a, b in zip(table.column("l_partkey"), table.column("l_quantity"))
        }
        assert frame.num_rows == len(combos)

    def test_empty_input_grouped(self, db):
        plan = HashAggregate(
            SeqScan("lineitem", col("lineitem.l_quantity") > 1e9),
            [AggregateSpec("count", "*", "n")],
            group_by=["lineitem.l_partkey"],
        )
        frame = plan.execute(ExecutionContext(db))
        assert frame.num_rows == 0


class TestValidation:
    def test_unknown_function_raises(self):
        with pytest.raises(ExecutionError):
            AggregateSpec("median", "x", "m")

    def test_empty_aggregate_raises(self, db):
        with pytest.raises(ExecutionError):
            HashAggregate(SeqScan("lineitem"), [])


class TestFilterAndProject:
    def test_filter(self, db):
        plan = Filter(SeqScan("lineitem"), col("lineitem.l_quantity") > 25)
        ctx = ExecutionContext(db)
        frame = plan.execute(ctx)
        assert (frame.column("lineitem.l_quantity") > 25).all()
        assert ctx.counters.cpu_rows >= db.table("lineitem").num_rows

    def test_project(self, db):
        plan = Project(SeqScan("lineitem"), ["lineitem.l_id"])
        frame = plan.execute(ExecutionContext(db))
        assert frame.column_names == ["lineitem.l_id"]

    def test_explain_renders_tree(self, db):
        plan = Filter(SeqScan("lineitem"), col("lineitem.l_quantity") > 25)
        text = plan.explain()
        assert "Filter" in text and "SeqScan" in text

    def test_walk_visits_all(self, db):
        plan = Filter(SeqScan("lineitem"), col("lineitem.l_quantity") > 25)
        assert len(list(plan.walk())) == 2
