"""Unit tests for join operators, checked against brute-force joins."""

import numpy as np
import pytest

from repro.engine import (
    ExecutionContext,
    HashJoin,
    IndexedNLJoin,
    MergeJoin,
    SeqScan,
)
from repro.engine.joinutil import match_keys, semijoin_mask
from repro.errors import ExecutionError
from repro.expressions import col

from tests.conftest import make_two_table_db


@pytest.fixture
def db():
    return make_two_table_db(n_part=40, n_lineitem=500)


def brute_force_join_size(db, part_mask=None, lineitem_mask=None):
    part_keys = db.table("part").column("p_partkey")
    li_fk = db.table("lineitem").column("l_partkey")
    keep_parts = part_keys if part_mask is None else part_keys[part_mask]
    keep_li = li_fk if lineitem_mask is None else li_fk[lineitem_mask]
    return int(np.isin(keep_li, keep_parts).sum())


class TestMatchKeys:
    def test_fk_join(self):
        left = np.array([10, 20, 20, 30])
        right = np.array([20, 10, 40])
        li, ri = match_keys(left, right)
        pairs = sorted(zip(left[li], right[ri]))
        assert pairs == [(10, 10), (20, 20), (20, 20)]

    def test_duplicates_both_sides(self):
        left = np.array([1, 1])
        right = np.array([1, 1, 1])
        li, ri = match_keys(left, right)
        assert len(li) == 6  # full cross product per key

    def test_empty(self):
        li, ri = match_keys(np.array([]), np.array([1]))
        assert len(li) == 0
        li, ri = match_keys(np.array([1]), np.array([]))
        assert len(ri) == 0

    def test_no_matches(self):
        li, ri = match_keys(np.array([1, 2]), np.array([3, 4]))
        assert len(li) == 0

    def test_semijoin_mask(self):
        mask = semijoin_mask(np.array([1, 2, 3]), np.array([2, 9]))
        assert list(mask) == [False, True, False]

    def test_semijoin_mask_empty(self):
        assert list(semijoin_mask(np.array([]), np.array([1]))) == []
        assert list(semijoin_mask(np.array([1]), np.array([]))) == [False]


class TestHashJoin:
    def test_fk_join_preserves_child_cardinality(self, db):
        join = HashJoin(
            SeqScan("part"),
            SeqScan("lineitem"),
            "part.p_partkey",
            "lineitem.l_partkey",
        )
        ctx = ExecutionContext(db)
        frame = join.execute(ctx)
        assert frame.num_rows == db.table("lineitem").num_rows
        assert ctx.counters.hash_build_rows == db.table("part").num_rows
        assert ctx.counters.hash_probe_rows == db.table("lineitem").num_rows

    def test_filtered_build_side(self, db):
        predicate = col("part.p_size") <= 10
        join = HashJoin(
            SeqScan("part", predicate),
            SeqScan("lineitem"),
            "part.p_partkey",
            "lineitem.l_partkey",
        )
        ctx = ExecutionContext(db)
        frame = join.execute(ctx)
        expected = brute_force_join_size(
            db, part_mask=db.table("part").column("p_size") <= 10
        )
        assert frame.num_rows == expected

    def test_join_values_align(self, db):
        join = HashJoin(
            SeqScan("part"),
            SeqScan("lineitem"),
            "part.p_partkey",
            "lineitem.l_partkey",
        )
        frame = join.execute(ExecutionContext(db))
        assert np.array_equal(
            frame.column("part.p_partkey"), frame.column("lineitem.l_partkey")
        )

    def test_output_has_both_tables_columns(self, db):
        join = HashJoin(
            SeqScan("part"),
            SeqScan("lineitem"),
            "part.p_partkey",
            "lineitem.l_partkey",
        )
        frame = join.execute(ExecutionContext(db))
        assert "part.p_brand" in frame.column_names
        assert "lineitem.l_quantity" in frame.column_names


class TestMergeJoin:
    def test_same_result_as_hash(self, db):
        hash_frame = HashJoin(
            SeqScan("part"),
            SeqScan("lineitem"),
            "part.p_partkey",
            "lineitem.l_partkey",
        ).execute(ExecutionContext(db))
        ctx = ExecutionContext(db)
        merge_frame = MergeJoin(
            SeqScan("part"),
            SeqScan("lineitem"),
            "part.p_partkey",
            "lineitem.l_partkey",
        ).execute(ctx)
        assert merge_frame.num_rows == hash_frame.num_rows
        assert ctx.counters.merge_rows == (
            db.table("part").num_rows + db.table("lineitem").num_rows
        )
        assert ctx.counters.hash_build_rows == 0


class TestIndexedNLJoin:
    def test_matches_hash_join(self, db):
        predicate = col("part.p_size") <= 5
        inl = IndexedNLJoin(
            SeqScan("part", predicate),
            "lineitem",
            "part.p_partkey",
            "l_partkey",
        )
        ctx = ExecutionContext(db)
        frame = inl.execute(ctx)
        expected = brute_force_join_size(
            db, part_mask=db.table("part").column("p_size") <= 5
        )
        assert frame.num_rows == expected
        # one index probe per outer row, one random I/O per match
        selected_parts = int((db.table("part").column("p_size") <= 5).sum())
        assert ctx.counters.index_lookups == selected_parts
        assert ctx.counters.random_ios == expected

    def test_residual_filters_inner(self, db):
        residual = col("lineitem.l_quantity") > 25
        inl = IndexedNLJoin(
            SeqScan("part"), "lineitem", "part.p_partkey", "l_partkey", residual
        )
        frame = inl.execute(ExecutionContext(db))
        assert (frame.column("lineitem.l_quantity") > 25).all()

    def test_clustered_inner_counts_pages(self, db):
        # join lineitem ids 0..9 against the clustered l_id index
        outer = SeqScan("part", col("part.p_partkey") < 10)
        inl = IndexedNLJoin(outer, "lineitem", "part.p_partkey", "l_id")
        ctx = ExecutionContext(db)
        frame = inl.execute(ctx)
        assert frame.num_rows == 10
        assert ctx.counters.random_ios == 0
        assert ctx.counters.seq_pages >= 1

    def test_missing_index_raises(self, db):
        inl = IndexedNLJoin(
            SeqScan("part"), "lineitem", "part.p_partkey", "l_quantity"
        )
        with pytest.raises(ExecutionError, match="no index"):
            inl.execute(ExecutionContext(db))
