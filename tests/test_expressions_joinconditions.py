"""Join-condition classification and range-merge robustness.

Two regression suites ride here:

- ``predicates_by_table`` historically lumped every multi-table
  conjunct — including ``t1.a <op> t2.b`` join conditions — under the
  ``""`` key, so estimators priced band joins as opaque leftovers.
  :func:`classify_conjuncts` must surface them as structured
  :class:`JoinCondition` objects instead.
- ``merge_range_conditions`` raised a bare ``TypeError`` mid-planning
  when two same-column ranges carried incomparable literal types (a
  date string against a number); the fix routes the offending
  condition to the caller's ``unmergeable`` list.
"""

import numpy as np
import pytest

from repro.core import ExactCardinalityEstimator
from repro.engine import ExecutionContext
from repro.expressions import col
from repro.expressions.analysis import (
    RangeCondition,
    as_join_condition,
    classify_conjuncts,
    merge_range_conditions,
    predicates_by_table,
)
from repro.optimizer import Optimizer

from tests.conftest import make_two_table_db

MARKUP = col("sales.s_price") < col("item.i_price")


class TestAsJoinCondition:
    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "="])
    def test_recognizes_cross_table_comparisons(self, op):
        expr = {
            "<": col("a.x") < col("b.y"),
            "<=": col("a.x") <= col("b.y"),
            ">": col("a.x") > col("b.y"),
            ">=": col("a.x") >= col("b.y"),
            "=": col("a.x") == col("b.y"),
        }[op]
        condition = as_join_condition(expr)
        assert condition is not None
        assert condition.op == op
        assert condition.left == "a.x"
        assert condition.right == "b.y"
        assert condition.tables == frozenset({"a", "b"})
        assert condition.is_equality == (op == "=")

    def test_same_table_comparison_is_not_a_join(self):
        assert as_join_condition(col("a.x") < col("a.y")) is None

    def test_literal_comparison_is_not_a_join(self):
        assert as_join_condition(col("a.x") < 5) is None

    def test_not_equal_is_not_a_join(self):
        assert as_join_condition(col("a.x") != col("b.y")) is None

    def test_unqualified_column_is_not_a_join(self):
        assert as_join_condition(col("x") < col("b.y")) is None


class TestOrientedAndCrosses:
    def test_oriented_keeps_order_when_left_matches(self):
        condition = as_join_condition(MARKUP)
        assert condition.oriented({"sales"}) == (
            "sales.s_price",
            "<",
            "item.i_price",
        )

    @pytest.mark.parametrize(
        "op,mirrored", [("<", ">"), ("<=", ">="), (">", "<"), (">=", "<="), ("=", "=")]
    )
    def test_oriented_mirrors_operator_when_swapped(self, op, mirrored):
        expr = {
            "<": col("a.x") < col("b.y"),
            "<=": col("a.x") <= col("b.y"),
            ">": col("a.x") > col("b.y"),
            ">=": col("a.x") >= col("b.y"),
            "=": col("a.x") == col("b.y"),
        }[op]
        condition = as_join_condition(expr)
        assert condition.oriented({"b"}) == ("b.y", mirrored, "a.x")

    def test_crosses_partition(self):
        condition = as_join_condition(MARKUP)
        assert condition.crosses({"sales"}, {"item", "brand"})
        assert condition.crosses({"item"}, {"sales"})
        assert not condition.crosses({"sales"}, {"brand"})
        assert not condition.crosses({"sales", "item"}, {"brand"})


class TestClassifyConjuncts:
    def test_join_condition_no_longer_lumped_as_leftover(self):
        """Regression: the ``""`` bucket must not swallow join conditions.

        ``predicates_by_table`` still files the markup comparison under
        ``""`` (documented legacy behavior); ``classify_conjuncts`` is
        the fix — it must return the conjunct as a structured join
        condition, with nothing left in the residual class.
        """
        predicate = MARKUP & (col("sales.s_discount") <= 0.05)

        legacy = predicates_by_table(predicate)
        assert "" in legacy  # the historical lumping, kept for callers
        assert "item" not in legacy

        classes = classify_conjuncts(predicate)
        assert len(classes.join_conditions) == 1
        assert classes.join_conditions[0].tables == frozenset({"sales", "item"})
        assert classes.join_conditions[0].op == "<"
        assert classes.residual == []
        assert set(classes.per_table) == {"sales"}

    def test_multi_table_non_comparison_goes_to_residual(self):
        predicate = (col("a.x") + col("b.y")) < 10
        classes = classify_conjuncts(predicate)
        assert classes.join_conditions == []
        assert len(classes.residual) == 1
        assert classes.per_table == {}

    def test_none_predicate(self):
        classes = classify_conjuncts(None)
        assert classes.per_table == {}
        assert classes.join_conditions == []
        assert classes.residual == []

    def test_conjunct_order_preserved(self):
        predicate = (
            (col("promotion.p_lo") <= col("sales.s_price"))
            & (col("sales.s_price") < col("promotion.p_hi"))
        )
        classes = classify_conjuncts(predicate)
        assert [c.op for c in classes.join_conditions] == ["<=", "<"]


class TestMergeRangeConditions:
    def test_intersects_same_column_ranges(self):
        merged = merge_range_conditions(
            [
                RangeCondition("t", "c", low=5),
                RangeCondition("t", "c", high=9, high_inclusive=False),
            ]
        )
        condition = merged[("t", "c")]
        assert (condition.low, condition.high) == (5, 9)
        assert condition.low_inclusive and not condition.high_inclusive

    def test_equal_bounds_tighten_inclusivity(self):
        merged = merge_range_conditions(
            [
                RangeCondition("t", "c", high=5),
                RangeCondition("t", "c", high=5, high_inclusive=False),
            ]
        )
        assert not merged[("t", "c")].high_inclusive

    def test_heterogeneous_literals_do_not_raise(self):
        """Regression: mixed-type literals crashed the merge with a
        bare ``TypeError``; now the offending condition is handed back
        via ``unmergeable`` and the first-seen range keeps the slot."""
        first = RangeCondition("t", "c", low=5, high=9)
        clashing = RangeCondition("t", "c", high="1995-01-01")
        unmergeable: list = []
        merged = merge_range_conditions([first, clashing], unmergeable)
        assert merged[("t", "c")] == first
        assert unmergeable == [clashing]

    def test_heterogeneous_literals_without_sink_are_dropped_quietly(self):
        first = RangeCondition("t", "c", low=5, high=9)
        clashing = RangeCondition("t", "c", high="1995-01-01")
        merged = merge_range_conditions([first, clashing])  # must not raise
        assert merged[("t", "c")] == first


class TestUnmergeablePlanIntegration:
    """access_paths must route unmergeable ranges into the residual so
    every conjunct is still honored by the executed plan."""

    def test_mixed_type_ranges_still_filter(self):
        database = make_two_table_db()
        # Two lower bounds over the same date column, one written as a
        # date string and one as a raw ordinal: incomparable literals.
        predicate = (col("lineitem.l_shipdate") >= "1996-06-01") & (
            col("lineitem.l_shipdate") >= 729_180
        )
        from repro.optimizer import SPJQuery

        optimizer = Optimizer(database, ExactCardinalityEstimator(database))
        planned = optimizer.optimize(SPJQuery(["lineitem"], predicate))
        frame = planned.plan.execute(ExecutionContext(database))

        values = database.table("lineitem").column("l_shipdate")
        from repro.catalog import date_ordinal

        expected = int(
            ((values >= date_ordinal("1996-06-01")) & (values >= 729_180)).sum()
        )
        assert frame.num_rows == expected
        assert np.all(frame.column("lineitem.l_shipdate") >= 729_180)
