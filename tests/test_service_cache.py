"""Unit tests for the lock-striped singleflight LRU plan cache."""

import random
import sys
import threading
import time

import pytest

from repro.service import PlanCache, PlanCacheError


class TestBasics:
    def test_miss_then_hit(self):
        cache = PlanCache(capacity=4)
        value, cached = cache.get_or_create("k", lambda: 41)
        assert (value, cached) == (41, False)
        value, cached = cache.get_or_create("k", lambda: 99)
        assert (value, cached) == (41, True)

    def test_get_peeks_without_computing(self):
        cache = PlanCache(capacity=4)
        assert cache.get("absent") is None
        cache.put("k", 7)
        assert cache.get("k") == 7
        # Peeks never touch the hit/miss counters.
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0

    def test_contains_and_len(self):
        cache = PlanCache(capacity=4, stripes=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache and "b" in cache and "c" not in cache
        assert len(cache) == 2

    def test_clear_keeps_counters(self):
        cache = PlanCache(capacity=4)
        cache.get_or_create("k", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["misses"] == 1

    def test_invalid_configuration_rejected(self):
        with pytest.raises(PlanCacheError):
            PlanCache(capacity=-1)
        with pytest.raises(PlanCacheError):
            PlanCache(capacity=4, stripes=0)


class TestCapacityZero:
    """capacity=0 is the uncached baseline: same code path, no reuse."""

    def test_always_computes(self):
        cache = PlanCache(capacity=0)
        calls = []
        for _ in range(3):
            value, cached = cache.get_or_create("k", lambda: calls.append(1))
            assert cached is False
        assert len(calls) == 3
        assert len(cache) == 0

    def test_put_is_a_no_op(self):
        cache = PlanCache(capacity=0)
        cache.put("k", 1)
        assert cache.get("k") is None


class TestLRU:
    def test_eviction_bound(self):
        cache = PlanCache(capacity=2, stripes=1)
        for key in ("a", "b", "c"):
            cache.get_or_create(key, lambda k=key: k.upper())
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        # "a" is the least recently used entry, so it went first.
        assert "a" not in cache
        assert "b" in cache and "c" in cache

    def test_hit_refreshes_recency(self):
        cache = PlanCache(capacity=2, stripes=1)
        cache.get_or_create("a", lambda: 1)
        cache.get_or_create("b", lambda: 2)
        cache.get_or_create("a", lambda: -1)  # hit: "a" now most recent
        cache.get_or_create("c", lambda: 3)  # evicts "b", not "a"
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_striped_capacity_still_bounded(self):
        cache = PlanCache(capacity=8, stripes=4)
        for i in range(100):
            cache.get_or_create(i, lambda i=i: i)
        # Each stripe holds at most ceil(8/4)=2 entries.
        assert len(cache) <= 8

    def test_stats_shape(self):
        cache = PlanCache(capacity=4, stripes=2)
        cache.get_or_create("k", lambda: 1)
        cache.get_or_create("k", lambda: 1)
        stats = cache.stats()
        assert stats["capacity"] == 4
        assert stats["stripes"] == 2
        assert stats["size"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5


class TestSingleflight:
    def test_concurrent_requests_compute_once(self):
        cache = PlanCache(capacity=8)
        calls = []
        barrier = threading.Barrier(8)
        results = []

        def slow_factory():
            calls.append(1)
            time.sleep(0.05)
            return object()

        def worker():
            barrier.wait()
            value, _ = cache.get_or_create("plan", slow_factory)
            results.append(value)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(calls) == 1, "losers must wait, not recompute"
        assert len(results) == 8
        assert all(r is results[0] for r in results), (
            "every caller shares the winner's object"
        )

    def test_leader_failure_propagates_and_next_caller_retries(self):
        cache = PlanCache(capacity=8)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("planning failed")
            return "ok"

        with pytest.raises(RuntimeError):
            cache.get_or_create("k", flaky)
        # The failure was not cached; a later caller recomputes.
        value, cached = cache.get_or_create("k", flaky)
        assert (value, cached) == ("ok", False)
        assert len(attempts) == 2

    def test_distinct_keys_do_not_serialize(self):
        cache = PlanCache(capacity=8, stripes=4)
        order = []

        def factory(tag):
            order.append(tag)
            return tag

        def worker(tag):
            cache.get_or_create(tag, lambda: factory(tag))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(order) == [0, 1, 2, 3]

    def test_put_supersedes_inflight_computation(self):
        """A put() for a key being computed releases the waiters.

        The session uses this when a background refresh finishes while
        a singleflight leader is still planning: followers should get
        the fresh cached value immediately instead of blocking on the
        leader's (now redundant) factory.
        """
        cache = PlanCache(capacity=8)
        leader_started = threading.Event()
        release_leader = threading.Event()
        follower_results = []

        def slow_factory():
            leader_started.set()
            release_leader.wait(timeout=5)
            return "slow"

        leader = threading.Thread(
            target=lambda: cache.get_or_create("k", slow_factory)
        )
        leader.start()
        assert leader_started.wait(timeout=5)

        def follower():
            value, cached = cache.get_or_create(
                "k", lambda: pytest.fail("follower must never compute")
            )
            follower_results.append((value, cached))

        followers = [threading.Thread(target=follower) for _ in range(3)]
        for t in followers:
            t.start()
        time.sleep(0.05)  # let the followers park on the flight event

        cache.put("k", "fast")
        for t in followers:
            t.join(timeout=5)
        assert follower_results == [("fast", True)] * 3, (
            "put() must release waiters with the superseding value"
        )

        # The leader finishes later; its stale result must not clobber
        # anything for the waiters that were already released.
        release_leader.set()
        leader.join(timeout=5)
        assert not leader.is_alive()

    def test_put_without_inflight_is_plain_insert(self):
        cache = PlanCache(capacity=8)
        cache.put("k", "v")
        assert cache.get("k") == "v"


class TestStatsLockRemoval:
    """Regression: the hit path must not serialize on a global lock.

    Pre-fix, every get/put took a process-wide ``_stats_lock`` for the
    hit/miss counters even when the stripe locks didn't contend; these
    tests fail on that code.
    """

    def test_hit_path_independent_of_any_global_stats_lock(self):
        cache = PlanCache(capacity=8)
        cache.get_or_create("k", lambda: 1)
        # If a legacy process-wide stats lock exists, holding it must
        # not stall a cache hit. Post-fix there is no such lock at all.
        blocker = getattr(cache, "_stats_lock", None)
        if blocker is not None:
            blocker.acquire()
        results = []
        t = threading.Thread(
            target=lambda: results.append(cache.get_or_create("k", lambda: 2))
        )
        t.start()
        t.join(timeout=2.0)
        alive = t.is_alive()
        if blocker is not None:
            blocker.release()
            t.join(timeout=2.0)
        assert not alive, (
            "a hit blocked on a process-wide stats lock instead of "
            "completing under its stripe lock alone"
        )
        assert results == [(1, True)]

    def test_counters_exact_with_per_stripe_aggregation(self):
        cache = PlanCache(capacity=64, stripes=8)
        n_threads, iters, keyspace = 4, 2000, 32
        barrier = threading.Barrier(n_threads)

        def worker(idx):
            barrier.wait()
            for i in range(iters):
                cache.get_or_create(("key", i % keyspace), lambda: i)

        previous = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            sys.setswitchinterval(previous)

        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == n_threads * iters
        assert stats["misses"] == keyspace
        assert stats["evictions"] == 0


class TestContention:
    """Singleflight under real contention: many threads, mixed keys."""

    def test_exactly_once_construction_and_no_lost_updates(self):
        """8 threads × same-and-different keys: every key's factory
        runs exactly once, every caller gets that key's value, and the
        counters account for every single request."""
        cache = PlanCache(capacity=256, stripes=8)
        keyspace = 24
        n_threads, iters = 8, 400
        construction_counts = {k: [] for k in range(keyspace)}
        construction_lock = threading.Lock()
        errors = []
        barrier = threading.Barrier(n_threads)

        def factory(k):
            with construction_lock:
                construction_counts[k].append(threading.get_ident())
            time.sleep(0.0005)  # widen the duplicate-construction window
            return ("plan", k)

        def worker(idx):
            rng = random.Random(idx)
            barrier.wait()
            for _ in range(iters):
                k = rng.randrange(keyspace)
                value, _ = cache.get_or_create(k, lambda k=k: factory(k))
                if value != ("plan", k):
                    errors.append((k, value))

        previous = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            sys.setswitchinterval(previous)

        assert not errors, f"wrong value served: {errors[:3]}"
        overbuilt = {
            k: len(v) for k, v in construction_counts.items() if len(v) != 1
        }
        assert not overbuilt, (
            f"factories must run exactly once per key: {overbuilt}"
        )
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == n_threads * iters
        assert stats["misses"] == keyspace
        # Every constructed plan is still servable: no lost updates.
        for k in range(keyspace):
            assert cache.get(k) == ("plan", k)

    def test_put_racing_inflight_entries_supersedes_correctly(self):
        """put() racing many concurrent get_or_create leaders: every
        caller receives either the leader's value or the superseding
        put value, and the cache ends with the put value winning."""
        cache = PlanCache(capacity=64, stripes=4)
        keyspace = 8
        outcomes = {k: set() for k in range(keyspace)}
        outcome_lock = threading.Lock()
        start = threading.Barrier(9)

        def slow_factory(k):
            time.sleep(0.01)
            return ("slow", k)

        def getter(idx):
            start.wait()
            for k in range(keyspace):
                value, _ = cache.get_or_create(
                    k, lambda k=k: slow_factory(k)
                )
                with outcome_lock:
                    outcomes[k].add(value)

        def putter():
            start.wait()
            for k in range(keyspace):
                cache.put(k, ("fast", k))

        threads = [
            threading.Thread(target=getter, args=(i,)) for i in range(8)
        ] + [threading.Thread(target=putter)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        for k in range(keyspace):
            assert outcomes[k] <= {("slow", k), ("fast", k)}, (
                "a caller observed a value from another key"
            )
            # The supersede must not be lost: after the dust settles
            # the cache either kept the put value or a leader that
            # finished after it re-inserted its own — both must be
            # for the right key.
            final = cache.get(k)
            assert final in (("slow", k), ("fast", k))
