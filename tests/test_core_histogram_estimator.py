"""Unit tests for the histogram/AVI baseline estimator."""

import pytest

from repro.core import ExactCardinalityEstimator, HistogramCardinalityEstimator
from repro.errors import EstimationError
from repro.expressions import col


@pytest.fixture
def estimator(tpch_stats):
    return HistogramCardinalityEstimator(tpch_stats)


class TestSingleTable:
    def test_range_predicate_accurate(self, estimator, tpch_db):
        predicate = col("lineitem.l_shipdate").between("1997-07-01", "1997-09-30")
        estimate = estimator.estimate({"lineitem"}, predicate)
        truth = ExactCardinalityEstimator(tpch_db).estimate({"lineitem"}, predicate)
        assert estimate.selectivity == pytest.approx(truth.selectivity, abs=0.01)
        assert estimate.source == "histogram"

    def test_equality_predicate(self, estimator, tpch_db):
        predicate = col("part.p_size") == 10
        estimate = estimator.estimate({"part"}, predicate)
        truth = ExactCardinalityEstimator(tpch_db).estimate({"part"}, predicate)
        assert estimate.selectivity == pytest.approx(truth.selectivity, abs=0.02)

    def test_in_list(self, estimator, tpch_db):
        predicate = col("part.p_size").isin([1, 2, 3])
        estimate = estimator.estimate({"part"}, predicate)
        truth = ExactCardinalityEstimator(tpch_db).estimate({"part"}, predicate)
        assert estimate.selectivity == pytest.approx(truth.selectivity, abs=0.03)

    def test_string_predicate_uses_magic(self, estimator):
        predicate = col("part.p_brand").contains("1")
        estimate = estimator.estimate({"part"}, predicate)
        assert estimate.selectivity == estimator.magic.string_match

    def test_no_predicate(self, estimator, tpch_db):
        estimate = estimator.estimate({"part"}, None)
        assert estimate.cardinality == tpch_db.table("part").num_rows


class TestAviFailure:
    """The baseline's defining weakness (paper Sections 2 and 6)."""

    def test_correlated_conjunction_underestimated(self, estimator, tpch_db):
        ship = col("lineitem.l_shipdate").between("1997-07-01", "1997-09-30")
        receipt = col("lineitem.l_receiptdate").between("1997-07-15", "1997-10-15")
        joint = ship & receipt
        avi = estimator.estimate({"lineitem"}, joint).selectivity
        marginal_ship = estimator.estimate({"lineitem"}, ship).selectivity
        marginal_receipt = estimator.estimate({"lineitem"}, receipt).selectivity
        # AVI means the joint estimate is exactly the marginal product
        assert avi == pytest.approx(marginal_ship * marginal_receipt, rel=1e-9)
        truth = (
            ExactCardinalityEstimator(tpch_db).estimate({"lineitem"}, joint).selectivity
        )
        # the correlated truth is far larger than the AVI product
        assert truth > 4 * avi

    def test_estimate_constant_across_shift(self, estimator):
        """Marginals fixed ⇒ AVI estimate fixed, whatever the overlap."""
        estimates = []
        for shift in (0, 30, 60, 90):
            import datetime

            from repro.catalog import date_ordinal

            low = datetime.date.fromordinal(
                date_ordinal("1997-07-01") + shift
            ).isoformat()
            high = datetime.date.fromordinal(
                date_ordinal("1997-09-30") + shift
            ).isoformat()
            predicate = col("lineitem.l_shipdate").between(
                "1997-07-01", "1997-09-30"
            ) & col("lineitem.l_receiptdate").between(low, high)
            estimates.append(estimator.estimate({"lineitem"}, predicate).selectivity)
        spread = max(estimates) - min(estimates)
        assert spread < 0.2 * max(estimates)


class TestJoins:
    def test_fk_join_cardinality(self, estimator, tpch_db):
        """With no predicates the FK-join estimate is the root size
        (containment assumption with referential integrity)."""
        estimate = estimator.estimate({"lineitem", "orders"}, None)
        assert estimate.cardinality == tpch_db.table("lineitem").num_rows

    def test_join_with_predicates(self, estimator):
        predicate = (col("part.p_size") <= 25) & (
            col("lineitem.l_quantity") > 25
        )
        estimate = estimator.estimate({"lineitem", "part"}, predicate)
        single = estimator.estimate(
            {"part"}, col("part.p_size") <= 25
        ).selectivity * estimator.estimate(
            {"lineitem"}, col("lineitem.l_quantity") > 25
        ).selectivity
        assert estimate.selectivity == pytest.approx(single, rel=1e-9)

    def test_empty_tables_raises(self, estimator):
        with pytest.raises(EstimationError):
            estimator.estimate(set(), None)

    def test_describe(self, estimator):
        assert estimator.describe() == "histogram-avi"
