"""Unit tests for the SQL parser."""

import numpy as np
import pytest

from repro.expressions import Frame
from repro.sql import parse_predicate, parse_query
from repro.sql.lexer import SqlSyntaxError


@pytest.fixture
def frame():
    return Frame(
        {
            "t.a": np.array([1, 2, 3, 4, 5]),
            "t.b": np.array([10.0, 20.0, 30.0, 40.0, 50.0]),
            "t.s": np.array(["alpha", "beta", "gamma", "delta", "beta"]),
        }
    )


class TestPredicates:
    def test_comparison(self, frame):
        assert parse_predicate("t.a > 3").evaluate(frame).sum() == 2

    def test_all_operators(self, frame):
        assert parse_predicate("t.a = 3").evaluate(frame).sum() == 1
        assert parse_predicate("t.a != 3").evaluate(frame).sum() == 4
        assert parse_predicate("t.a <> 3").evaluate(frame).sum() == 4
        assert parse_predicate("t.a <= 3").evaluate(frame).sum() == 3
        assert parse_predicate("t.a >= 3").evaluate(frame).sum() == 3
        assert parse_predicate("t.a < 3").evaluate(frame).sum() == 2

    def test_and_or_precedence(self, frame):
        # AND binds tighter than OR
        predicate = parse_predicate("t.a = 1 OR t.a = 2 AND t.b = 20")
        assert predicate.evaluate(frame).sum() == 2  # rows a=1 and a=2

    def test_parenthesized_boolean(self, frame):
        predicate = parse_predicate("(t.a = 1 OR t.a = 2) AND t.b = 20")
        assert predicate.evaluate(frame).sum() == 1

    def test_not(self, frame):
        assert parse_predicate("NOT t.a = 1").evaluate(frame).sum() == 4

    def test_between(self, frame):
        predicate = parse_predicate("t.a BETWEEN 2 AND 4")
        assert predicate.evaluate(frame).sum() == 3

    def test_between_then_and(self, frame):
        predicate = parse_predicate("t.a BETWEEN 2 AND 4 AND t.b > 25")
        assert predicate.evaluate(frame).sum() == 2  # a=3,4

    def test_between_is_sargable(self):
        from repro.expressions import Between
        from repro.expressions.analysis import as_range_condition

        predicate = parse_predicate("t.a BETWEEN 2 AND 4")
        assert isinstance(predicate, Between)
        assert as_range_condition(predicate) is not None

    def test_in(self, frame):
        assert parse_predicate("t.a IN (1, 3, 9)").evaluate(frame).sum() == 2

    def test_not_in(self, frame):
        assert parse_predicate("t.a NOT IN (1, 3)").evaluate(frame).sum() == 3

    def test_in_strings(self, frame):
        assert parse_predicate("t.s IN ('beta')").evaluate(frame).sum() == 2

    def test_like_contains(self, frame):
        assert parse_predicate("t.s LIKE '%et%'").evaluate(frame).sum() == 2

    def test_like_prefix(self, frame):
        assert parse_predicate("t.s LIKE 'b%'").evaluate(frame).sum() == 2

    def test_not_like(self, frame):
        assert parse_predicate("t.s NOT LIKE 'b%'").evaluate(frame).sum() == 3

    def test_like_exact(self, frame):
        assert parse_predicate("t.s LIKE 'beta'").evaluate(frame).sum() == 2

    def test_like_suffix_unsupported(self):
        with pytest.raises(SqlSyntaxError):
            parse_predicate("t.s LIKE '%x'")

    def test_arithmetic(self, frame):
        predicate = parse_predicate("t.b / t.a = 10")
        assert predicate.evaluate(frame).all()

    def test_arithmetic_precedence(self, frame):
        # 2 + 3 * 10 = 32, not 50
        predicate = parse_predicate("t.a + t.a * 10 = 33")
        assert predicate.evaluate(frame).sum() == 1  # a=3

    def test_parenthesized_arithmetic(self, frame):
        predicate = parse_predicate("(t.a + 1) * 2 = 8")
        assert predicate.evaluate(frame).sum() == 1  # a=3

    def test_negative_literal(self, frame):
        assert parse_predicate("t.a > -1").evaluate(frame).all()

    def test_string_comparison(self, frame):
        assert parse_predicate("t.s = 'beta'").evaluate(frame).sum() == 2

    def test_date_strings_pass_through(self):
        predicate = parse_predicate("t.d >= '1997-07-01'")
        frame = Frame({"t.d": np.array([729100, 729300])})
        # coercion happens at evaluation; 1997-07-01 is ordinal 729206
        assert predicate.evaluate(frame).sum() == 1

    def test_trailing_garbage_raises(self):
        with pytest.raises(SqlSyntaxError, match="trailing"):
            parse_predicate("t.a > 1 t.b")

    def test_bare_operand_raises(self):
        with pytest.raises(SqlSyntaxError, match="boolean"):
            parse_predicate("t.a")

    def test_non_boolean_and_operand_raises(self):
        with pytest.raises(SqlSyntaxError, match="boolean"):
            parse_predicate("t.a = 1 AND 5")


class TestQueries:
    def test_simple_select(self, tpch_db):
        query = parse_query(
            "SELECT lineitem.l_quantity FROM lineitem "
            "WHERE lineitem.l_quantity > 45",
            tpch_db,
        )
        assert query.tables == ("lineitem",)
        assert query.projection == ("lineitem.l_quantity",)

    def test_select_star(self, tpch_db):
        query = parse_query("SELECT * FROM lineitem", tpch_db)
        assert query.projection is None

    def test_aggregate(self, tpch_db):
        query = parse_query(
            "SELECT SUM(lineitem.l_extendedprice) AS revenue FROM lineitem",
            tpch_db,
        )
        [aggregate] = query.aggregates
        assert aggregate.func == "sum"
        assert aggregate.alias == "revenue"

    def test_count_star(self, tpch_db):
        query = parse_query("SELECT COUNT(*) FROM lineitem", tpch_db)
        assert query.aggregates[0].column == "*"
        assert query.aggregates[0].alias == "count_all"

    def test_group_by(self, tpch_db):
        query = parse_query(
            "SELECT lineitem.l_partkey, COUNT(*) FROM lineitem "
            "GROUP BY lineitem.l_partkey",
            tpch_db,
        )
        assert query.group_by == ("lineitem.l_partkey",)

    def test_plain_column_without_group_by_raises(self):
        with pytest.raises(SqlSyntaxError, match="GROUP BY"):
            parse_query("SELECT lineitem.l_partkey, COUNT(*) FROM lineitem")

    def test_select_column_not_grouped_raises(self):
        with pytest.raises(SqlSyntaxError, match="not in GROUP BY"):
            parse_query(
                "SELECT lineitem.l_partkey, COUNT(*) FROM lineitem "
                "GROUP BY lineitem.l_orderkey"
            )

    def test_implicit_join(self, tpch_db):
        query = parse_query(
            "SELECT COUNT(*) FROM lineitem, orders, part "
            "WHERE part.p_size < 10",
            tpch_db,
        )
        assert set(query.tables) == {"lineitem", "orders", "part"}

    def test_explicit_join_validated(self, tpch_db):
        query = parse_query(
            "SELECT COUNT(*) FROM lineitem "
            "JOIN orders ON lineitem.l_orderkey = orders.o_orderkey",
            tpch_db,
        )
        assert set(query.tables) == {"lineitem", "orders"}

    def test_explicit_join_wrong_columns_raises(self, tpch_db):
        with pytest.raises(SqlSyntaxError, match="foreign key"):
            parse_query(
                "SELECT COUNT(*) FROM lineitem "
                "JOIN orders ON lineitem.l_partkey = orders.o_orderkey",
                tpch_db,
            )

    def test_confidence_hint_percentage(self, tpch_db):
        query = parse_query(
            "SELECT COUNT(*) FROM lineitem OPTION (CONFIDENCE 95)", tpch_db
        )
        assert query.hint == 0.95

    def test_confidence_hint_named(self, tpch_db):
        query = parse_query(
            "SELECT COUNT(*) FROM lineitem OPTION (CONFIDENCE conservative)",
            tpch_db,
        )
        assert query.hint == "conservative"

    def test_validation_against_schema(self, tpch_db):
        with pytest.raises(Exception):
            parse_query("SELECT * FROM ghost_table", tpch_db)

    def test_no_database_skips_validation(self):
        query = parse_query("SELECT * FROM ghost_table")
        assert query.tables == ("ghost_table",)

    def test_trailing_input_raises(self):
        with pytest.raises(SqlSyntaxError, match="trailing"):
            parse_query("SELECT * FROM t WHERE t.a = 1 extra")


class TestEndToEndSql:
    def test_paper_experiment_1_query(self, tpch_db):
        """The paper's Section 6.2.1 template, as SQL."""
        from repro.core import ExactCardinalityEstimator
        from repro.engine import ExecutionContext
        from repro.optimizer import Optimizer

        query = parse_query(
            "SELECT SUM(lineitem.l_extendedprice) AS revenue "
            "FROM lineitem "
            "WHERE lineitem.l_shipdate BETWEEN '1997-07-01' AND '1997-09-30' "
            "AND lineitem.l_receiptdate BETWEEN '1997-07-15' AND '1997-10-15' "
            "OPTION (CONFIDENCE 80)",
            tpch_db,
        )
        assert query.hint == 0.80
        planned = Optimizer(tpch_db, ExactCardinalityEstimator(tpch_db)).optimize(
            query
        )
        frame = planned.plan.execute(ExecutionContext(tpch_db))
        assert frame.num_rows == 1
        assert frame.column("revenue")[0] >= 0


class TestDistinct:
    def test_distinct_maps_to_group_by(self, tpch_db):
        query = parse_query(
            "SELECT DISTINCT lineitem.l_partkey FROM lineitem", tpch_db
        )
        assert query.group_by == ("lineitem.l_partkey",)
        assert query.aggregates == ()
        assert query.projection is None

    def test_distinct_executes(self, tpch_db):
        import numpy as np

        from repro.core import ExactCardinalityEstimator
        from repro.engine import ExecutionContext
        from repro.optimizer import Optimizer

        query = parse_query(
            "SELECT DISTINCT lineitem.l_partkey FROM lineitem "
            "WHERE lineitem.l_quantity > 45",
            tpch_db,
        )
        planned = Optimizer(tpch_db, ExactCardinalityEstimator(tpch_db)).optimize(
            query
        )
        frame = planned.plan.execute(ExecutionContext(tpch_db))
        table = tpch_db.table("lineitem")
        mask = table.column("l_quantity") > 45
        truth = len(np.unique(table.column("l_partkey")[mask]))
        assert frame.num_rows == truth

    def test_distinct_star_rejected(self):
        with pytest.raises(SqlSyntaxError, match="DISTINCT"):
            parse_query("SELECT DISTINCT * FROM t")

    def test_distinct_with_aggregate_rejected(self):
        with pytest.raises(SqlSyntaxError, match="DISTINCT"):
            parse_query("SELECT DISTINCT COUNT(*) FROM t")

    def test_distinct_with_group_by_rejected(self):
        with pytest.raises(SqlSyntaxError, match="DISTINCT"):
            parse_query("SELECT DISTINCT t.a FROM t GROUP BY t.a")
