"""Unit tests for repro.catalog.types."""

import datetime

import numpy as np
import pytest

from repro.catalog.types import (
    ColumnType,
    coerce_array,
    coerce_scalar,
    date_ordinal,
    ordinal_date,
)
from repro.errors import TypeMismatchError


class TestColumnType:
    def test_numpy_dtypes(self):
        assert ColumnType.INT64.numpy_dtype == np.dtype(np.int64)
        assert ColumnType.DATE.numpy_dtype == np.dtype(np.int64)
        assert ColumnType.FLOAT64.numpy_dtype == np.dtype(np.float64)
        assert ColumnType.STRING.numpy_dtype == np.dtype(np.str_)

    def test_byte_widths(self):
        assert ColumnType.INT64.byte_width == 8
        assert ColumnType.STRING.byte_width == 16


class TestDateConversion:
    def test_iso_roundtrip(self):
        ordinal = date_ordinal("1997-07-01")
        assert ordinal_date(ordinal) == datetime.date(1997, 7, 1)

    def test_date_object(self):
        d = datetime.date(2005, 6, 14)
        assert date_ordinal(d) == d.toordinal()

    def test_ordering_matches_calendar(self):
        assert date_ordinal("1997-07-01") < date_ordinal("1997-09-30")

    def test_invalid_string_raises(self):
        with pytest.raises(TypeMismatchError):
            date_ordinal("not-a-date")

    def test_invalid_type_raises(self):
        with pytest.raises(TypeMismatchError):
            date_ordinal(3.14)


class TestCoerceArray:
    def test_int_array_passthrough(self):
        out = coerce_array([1, 2, 3], ColumnType.INT64)
        assert out.dtype == np.int64
        assert list(out) == [1, 2, 3]

    def test_integral_floats_to_int(self):
        out = coerce_array(np.array([1.0, 2.0]), ColumnType.INT64)
        assert out.dtype == np.int64

    def test_fractional_floats_to_int_raise(self):
        with pytest.raises(TypeMismatchError):
            coerce_array(np.array([1.5]), ColumnType.INT64)

    def test_strings_to_int_raise(self):
        with pytest.raises(TypeMismatchError):
            coerce_array(np.array(["a"]), ColumnType.INT64)

    def test_float_column_accepts_ints(self):
        out = coerce_array([1, 2], ColumnType.FLOAT64)
        assert out.dtype == np.float64

    def test_float_column_rejects_strings(self):
        with pytest.raises(TypeMismatchError):
            coerce_array(np.array(["x"]), ColumnType.FLOAT64)

    def test_date_from_iso_strings(self):
        out = coerce_array(["1997-07-01", "1997-07-02"], ColumnType.DATE)
        assert out.dtype == np.int64
        assert out[1] - out[0] == 1

    def test_date_from_ordinals(self):
        out = coerce_array([729000, 729001], ColumnType.DATE)
        assert out.dtype == np.int64

    def test_date_from_floats_raises(self):
        with pytest.raises(TypeMismatchError):
            coerce_array(np.array([1.5]), ColumnType.DATE)

    def test_string_column(self):
        out = coerce_array(["a", "bb"], ColumnType.STRING)
        assert out.dtype.kind == "U"

    def test_string_column_rejects_numbers(self):
        with pytest.raises(TypeMismatchError):
            coerce_array(np.array([1, 2]), ColumnType.STRING)


class TestCoerceScalar:
    def test_date_string(self):
        assert coerce_scalar("1997-07-01", ColumnType.DATE) == date_ordinal(
            "1997-07-01"
        )

    def test_date_ordinal_passthrough(self):
        assert coerce_scalar(729000, ColumnType.DATE) == 729000

    def test_int(self):
        assert coerce_scalar(5, ColumnType.INT64) == 5
        assert coerce_scalar(5.0, ColumnType.INT64) == 5

    def test_int_rejects_fraction(self):
        with pytest.raises(TypeMismatchError):
            coerce_scalar(5.5, ColumnType.INT64)

    def test_float(self):
        assert coerce_scalar(5, ColumnType.FLOAT64) == 5.0

    def test_float_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            coerce_scalar("abc", ColumnType.FLOAT64)

    def test_string(self):
        assert coerce_scalar("abc", ColumnType.STRING) == "abc"

    def test_string_rejects_number(self):
        with pytest.raises(TypeMismatchError):
            coerce_scalar(3, ColumnType.STRING)
