"""Unit tests for the SQL tokenizer."""

import pytest

from repro.sql import Token, TokenKind, tokenize
from repro.sql.lexer import SqlSyntaxError


def kinds(sql):
    return [t.kind for t in tokenize(sql)[:-1]]


def texts(sql):
    return [t.text for t in tokenize(sql)[:-1]]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select From WHERE")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.kind is TokenKind.KEYWORD for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        tokens = tokenize("lineitem l_shipdate")
        assert [t.text for t in tokens[:-1]] == ["lineitem", "l_shipdate"]
        assert all(t.kind is TokenKind.IDENTIFIER for t in tokens[:-1])

    def test_numbers(self):
        assert texts("42 3.14 .5") == ["42", "3.14", ".5"]
        assert kinds("42 3.14") == [TokenKind.NUMBER, TokenKind.NUMBER]

    def test_qualified_column_dots(self):
        assert texts("a.b") == ["a", ".", "b"]

    def test_number_then_dot_identifier(self):
        # "1.x" must not swallow the dot into the number
        assert texts("t1.x") == ["t1", ".", "x"]

    def test_strings(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == "hello world"

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlSyntaxError, match="unterminated"):
            tokenize("'oops")

    def test_operators(self):
        assert texts("<= >= <> != = < >") == ["<=", ">=", "<>", "!=", "=", "<", ">"]

    def test_arithmetic_operators(self):
        assert texts("+ - * /") == ["+", "-", "*", "/"]

    def test_punctuation(self):
        assert texts("( ) ,") == ["(", ")", ","]

    def test_end_token(self):
        assert tokenize("x")[-1].kind is TokenKind.END

    def test_unexpected_character_raises(self):
        with pytest.raises(SqlSyntaxError, match="unexpected character"):
            tokenize("a ; b")

    def test_positions_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3

    def test_is_keyword_helper(self):
        token = Token(TokenKind.KEYWORD, "SELECT", 0)
        assert token.is_keyword("SELECT")
        assert not token.is_keyword("FROM")

    def test_empty_input(self):
        tokens = tokenize("   ")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.END
