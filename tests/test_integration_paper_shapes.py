"""End-to-end shape tests: the paper's headline results at small scale.

These run miniature versions of the Section 6 experiments and assert
the *qualitative* claims — who wins, in which regime, and in which
direction the knobs move — not absolute numbers.
"""

import numpy as np
import pytest

from repro.experiments import ExperimentRunner, default_configs
from repro.workloads import (
    ShippingDatesTemplate,
    StarJoinTemplate,
    TpchConfig,
    build_tpch_database,
)


@pytest.fixture(scope="module")
def exp1_result():
    database = build_tpch_database(TpchConfig(num_lineitem=20_000, seed=2))
    template = ShippingDatesTemplate()
    targets = [0.0, 0.001, 0.002, 0.004, 0.006, 0.008]
    params = template.params_for_targets(database, targets, step=4)
    runner = ExperimentRunner(database, template, sample_size=500, seeds=range(4))
    return runner.run(params)


@pytest.fixture(scope="module")
def exp3_result(star_db, star_config):
    template = StarJoinTemplate(star_config.num_dim)
    params = [
        (shift, template.true_selectivity(star_db, shift))
        for shift in (100, 90, 70, 40, 0)
    ]
    runner = ExperimentRunner(star_db, template, sample_size=500, seeds=range(3))
    return runner.run(params)


class TestExperiment1Shapes:
    def test_histograms_always_pick_index_intersection(self, exp1_result):
        """Section 6.2.1: 'The standard estimation module always
        selected the index intersection plan.'"""
        counts = exp1_result.plan_counts("Histograms")
        assert set(counts) == {"HashAggregate>IndexIntersect"}

    def test_t95_always_picks_sequential_scan(self, exp1_result):
        counts = exp1_result.plan_counts("T=95%")
        assert set(counts) == {"HashAggregate>SeqScan"}

    def test_std_decreases_with_threshold(self, exp1_result):
        """Figure 9(b): variance decreases steadily as T increases."""
        stds = [
            exp1_result.tradeoff_point(f"T={t}%").std_time
            for t in (5, 20, 50, 80, 95)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(stds, stds[1:]))

    def test_best_mean_at_moderate_threshold(self, exp1_result):
        """Figure 9(b): lowest mean at T=80 %, closely followed by 50 %."""
        means = {
            t: exp1_result.tradeoff_point(f"T={t}%").mean_time
            for t in (5, 20, 50, 80, 95)
        }
        best = min(means, key=means.get)
        assert best in (50, 80)

    def test_histograms_dominated(self, exp1_result):
        """The histogram baseline loses on performance *and*
        predictability."""
        histogram = exp1_result.tradeoff_point("Histograms")
        moderate = exp1_result.tradeoff_point("T=80%")
        assert histogram.mean_time > moderate.mean_time
        assert histogram.std_time > moderate.std_time

    def test_low_threshold_wins_at_zero_selectivity(self, exp1_result):
        zero = min(exp1_result.selectivities)
        aggressive = exp1_result.mean_time("T=5%", zero)
        conservative = exp1_result.mean_time("T=95%", zero)
        assert aggressive < conservative / 10

    def test_low_threshold_loses_at_high_selectivity(self, exp1_result):
        high = max(exp1_result.selectivities)
        aggressive = exp1_result.mean_time("T=5%", high)
        conservative = exp1_result.mean_time("T=95%", high)
        assert aggressive > 1.5 * conservative

    def test_histogram_time_grows_linearly(self, exp1_result):
        """The stuck index-intersection plan costs ∝ selectivity."""
        curve = exp1_result.curve("Histograms")
        selectivities = np.array([s for s, _ in curve])
        times = np.array([t for _, t in curve])
        correlation = np.corrcoef(selectivities, times)[0, 1]
        assert correlation > 0.99


class TestExperiment3Shapes:
    def test_histograms_always_semijoin(self, exp3_result):
        """AVI pins the estimate at ≈0.1 %, so the histogram optimizer
        always chooses the semijoin strategy (Section 6.2.3)."""
        counts = exp3_result.plan_counts("Histograms")
        assert all("StarSemiJoin" in plan for plan in counts)

    def test_robust_adapts_plan_to_selectivity(self, exp3_result):
        """Robust estimation at T=50 % switches between the semijoin
        strategy and the hash cascade across the sweep."""
        counts = exp3_result.plan_counts("T=50%")
        assert len(counts) >= 2

    def test_histograms_worst_at_high_selectivity(self, exp3_result):
        high = max(exp3_result.selectivities)
        histogram = exp3_result.mean_time("Histograms", high)
        for threshold in (50, 80, 95):
            assert histogram > exp3_result.mean_time(f"T={threshold}%", high)

    def test_high_threshold_consistent(self, exp3_result):
        """High T: 'very consistent query performance across all
        selectivities'."""
        t95 = exp3_result.tradeoff_point("T=95%")
        t5 = exp3_result.tradeoff_point("T=5%")
        assert t95.std_time < t5.std_time


class TestExperiment4SampleSize:
    @pytest.fixture(scope="class")
    def by_sample_size(self):
        database = build_tpch_database(TpchConfig(num_lineitem=20_000, seed=2))
        template = ShippingDatesTemplate()
        targets = [0.0, 0.002, 0.004, 0.008]
        params = template.params_for_targets(database, targets, step=4)
        configs = default_configs(thresholds=(0.5,), include_histogram=False)
        results = {}
        for size in (50, 500):
            runner = ExperimentRunner(
                database, template, sample_size=size, seeds=range(4)
            )
            results[size] = runner.run(params, configs)
        return results

    def test_tiny_sample_self_adjusts_to_stable_plan(self, by_sample_size):
        """Section 6.2.4: with 50-tuple samples at T=50 % the optimizer
        always chooses the sequential scan."""
        counts = by_sample_size[50].plan_counts("T=50%")
        assert set(counts) == {"HashAggregate>SeqScan"}

    def test_tiny_sample_has_tiny_variance(self, by_sample_size):
        small = by_sample_size[50].tradeoff_point("T=50%")
        large = by_sample_size[500].tradeoff_point("T=50%")
        assert small.std_time < large.std_time

    def test_larger_sample_uses_risky_plan_sometimes(self, by_sample_size):
        counts = by_sample_size[500].plan_counts("T=50%")
        assert "HashAggregate>IndexIntersect" in counts
