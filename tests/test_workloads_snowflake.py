"""The snowflake workload: schema shape, marginals, templates."""

import numpy as np
import pytest

from repro.core import ExactCardinalityEstimator
from repro.engine import ExecutionContext
from repro.errors import WorkloadError
from repro.optimizer import Optimizer, SPJQuery
from repro.workloads import (
    PriceMarkupTemplate,
    PromotionBandTemplate,
    SnowflakeChainTemplate,
    SnowflakeConfig,
    build_snowflake_database,
)
from repro.workloads.snowflake import ATTR_DOMAIN, PROMO_WIDTHS


class TestConfigValidation:
    def test_defaults_valid(self):
        SnowflakeConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scale": 0.0},
            {"scale": -1.0},
            {"num_sales": 50},
            {"num_items": 1500},  # not a multiple of the attr domain
            {"num_categories": 7},  # does not divide the attr domain
            {"num_brands": 130},  # not a multiple of num_categories
            {"aligned_fraction": 1.5},
            {"num_promotions": 13},  # not a multiple of the kind count
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            SnowflakeConfig(**kwargs)

    def test_scale_multiplies_sales_only(self):
        config = SnowflakeConfig(num_sales=10_000, scale=2.5)
        assert config.num_sales == 25_000
        assert config.num_items == SnowflakeConfig().num_items

    def test_derived_properties(self):
        config = SnowflakeConfig()
        assert config.brands_per_category == 10
        assert config.attrs_per_category == 50


class TestSchemaShape:
    def test_table_cardinalities(self, snowflake_db):
        config = SnowflakeConfig(num_sales=6_000, seed=9)
        assert snowflake_db.table("sales").num_rows == config.num_sales
        assert snowflake_db.table("item").num_rows == config.num_items
        assert snowflake_db.table("brand").num_rows == config.num_brands
        assert snowflake_db.table("category").num_rows == config.num_categories
        assert snowflake_db.table("date_dim").num_rows == config.num_dates
        assert snowflake_db.table("promotion").num_rows == config.num_promotions

    def test_item_attr_marginal_exactly_uniform(self, snowflake_db):
        attrs = snowflake_db.table("item").column("i_attr")
        counts = np.bincount(attrs, minlength=ATTR_DOMAIN)
        assert set(counts.tolist()) == {len(attrs) // ATTR_DOMAIN}

    def test_brands_partition_categories_evenly(self, snowflake_db):
        classkeys = snowflake_db.table("brand").column("b_classkey")
        config = SnowflakeConfig()
        counts = np.bincount(classkeys, minlength=config.num_categories)
        assert set(counts.tolist()) == {config.brands_per_category}

    def test_sale_price_tracks_item_price(self, snowflake_db):
        sales = snowflake_db.table("sales")
        item_prices = snowflake_db.table("item").column("i_price")
        base = item_prices[sales.column("s_itemkey")]
        ratio = sales.column("s_price") / base
        assert float(ratio.min()) >= 0.5 - 1e-3
        assert float(ratio.max()) <= 1.5 + 1e-3

    def test_promotion_bands_match_kind_widths(self, snowflake_db):
        promos = snowflake_db.table("promotion")
        widths = promos.column("p_hi") - promos.column("p_lo")
        expected = np.asarray(PROMO_WIDTHS)[promos.column("p_kind")]
        assert np.allclose(widths, expected, atol=0.02)

    def test_deterministic_per_seed(self):
        a = build_snowflake_database(SnowflakeConfig(num_sales=1_000, seed=4))
        b = build_snowflake_database(SnowflakeConfig(num_sales=1_000, seed=4))
        assert np.array_equal(
            a.table("sales").column("s_price"), b.table("sales").column("s_price")
        )


class TestChainTemplate:
    def test_queries_validate(self, snowflake_db):
        template = SnowflakeChainTemplate()
        low, high = template.param_range()
        for param in (low, high):
            template.instantiate(param).validate(snowflake_db)

    def test_shift_sweeps_joint_selectivity_marginals_fixed(self, snowflake_db):
        """The paper's recipe: the parameter moves the overlap, never
        the per-level marginal widths."""
        template = SnowflakeChainTemplate()
        aligned = template.true_selectivity(snowflake_db, 0)
        shifted = template.true_selectivity(
            snowflake_db, template.param_range()[1]
        )
        assert aligned > shifted
        assert shifted == 0.0

    def test_invalid_category_count_rejected(self):
        with pytest.raises(WorkloadError):
            SnowflakeChainTemplate(num_categories=7)


class TestMarkupTemplate:
    def test_queries_validate(self, snowflake_db):
        template = PriceMarkupTemplate()
        for param in template.param_range():
            template.instantiate(param).validate(snowflake_db)

    def test_selectivity_grows_with_discount_cap(self, snowflake_db):
        template = PriceMarkupTemplate()
        narrow = template.true_selectivity(snowflake_db, 1)
        wide = template.true_selectivity(snowflake_db, 9)
        assert 0.0 < narrow < wide <= 1.0


class TestBandTemplate:
    def test_queries_validate(self, snowflake_db):
        template = PromotionBandTemplate()
        for param in template.param_range():
            template.instantiate(param).validate(snowflake_db)

    def test_true_rows_matches_executed_plan(self, snowflake_db):
        """The numpy ground-truth override must agree with the engine."""
        template = PromotionBandTemplate()
        for param in (0, 4):
            query = template.instantiate(param)
            optimizer = Optimizer(
                snowflake_db, ExactCardinalityEstimator(snowflake_db)
            )
            planned = optimizer.optimize(SPJQuery(query.tables, query.predicate))
            frame = planned.plan.execute(ExecutionContext(snowflake_db))
            assert frame.num_rows == template.true_rows(snowflake_db, param)

    def test_selectivity_anchored_to_sales(self, snowflake_db):
        template = PromotionBandTemplate()
        rows = template.true_rows(snowflake_db, 2)
        sel = template.true_selectivity(snowflake_db, 2)
        assert sel == rows / snowflake_db.table("sales").num_rows

    def test_wider_bands_select_more(self, snowflake_db):
        template = PromotionBandTemplate()
        assert template.true_rows(snowflake_db, 4) > template.true_rows(
            snowflake_db, 0
        )
