"""Planning inequality-join queries: validation, plans, lane parity.

Band joins between FK-unrelated tables must validate (the conditions
connect what the FK graph cannot), plan as a ``NonEquiJoin``, execute
to the exact numpy ground truth, and keep the vectorized
``optimize_many`` lanes bit-identical to scalar planning. Lane parity
is asserted on ``signature()``/cost/rows, not ``explain()`` text —
shared subtrees carry the last stamped lane's cosmetic annotations.
"""

import numpy as np
import pytest

from repro.core import (
    BayesNetCardinalityEstimator,
    HistogramCardinalityEstimator,
    RobustCardinalityEstimator,
)
from repro.cost import CostModel
from repro.engine import ExecutionContext
from repro.errors import ReproError
from repro.expressions import col
from repro.optimizer import Optimizer, SPJQuery
from repro.workloads import PromotionBandTemplate

BAND_PREDICATE = (
    (col("promotion.p_kind") == 2)
    & (col("promotion.p_lo") <= col("sales.s_price"))
    & (col("sales.s_price") < col("promotion.p_hi"))
)

MARKUP_PREDICATE = (col("sales.s_discount") <= 0.05) & (
    col("sales.s_price") < col("item.i_price")
)


class TestValidation:
    def test_band_join_between_fk_unrelated_tables_validates(self, snowflake_db):
        SPJQuery(["sales", "promotion"], BAND_PREDICATE).validate(snowflake_db)

    def test_condition_across_fk_edge_validates(self, snowflake_db):
        SPJQuery(["sales", "item"], MARKUP_PREDICATE).validate(snowflake_db)

    def test_cross_product_without_conditions_rejected(self, snowflake_db):
        query = SPJQuery(
            ["sales", "promotion"], col("promotion.p_kind") == 2
        )
        with pytest.raises(ReproError):
            query.validate(snowflake_db)

    def test_unreachable_table_reported(self, snowflake_db):
        query = SPJQuery(["sales", "promotion", "category"], BAND_PREDICATE)
        with pytest.raises(ReproError, match="join conditions"):
            query.validate(snowflake_db)


class TestBandJoinExecution:
    @pytest.fixture(scope="class")
    def truth(self, snowflake_db):
        return PromotionBandTemplate().true_rows(snowflake_db, 2)

    @pytest.mark.parametrize("kind", ["histogram", "bayes", "robust"])
    def test_every_arm_plans_and_matches_truth(
        self, snowflake_db, snowflake_stats, kind, truth
    ):
        estimator = {
            "histogram": HistogramCardinalityEstimator(snowflake_stats),
            "bayes": BayesNetCardinalityEstimator(snowflake_stats),
            "robust": RobustCardinalityEstimator(snowflake_stats, policy=0.8),
        }[kind]
        optimizer = Optimizer(snowflake_db, estimator)
        planned = optimizer.optimize(SPJQuery(["sales", "promotion"], BAND_PREDICATE))
        assert "NonEquiJoin" in planned.explain()
        frame = planned.plan.execute(ExecutionContext(snowflake_db))
        assert frame.num_rows == truth

    def test_markup_join_matches_truth(self, snowflake_db, snowflake_stats):
        optimizer = Optimizer(
            snowflake_db, HistogramCardinalityEstimator(snowflake_stats)
        )
        planned = optimizer.optimize(SPJQuery(["sales", "item"], MARKUP_PREDICATE))
        frame = planned.plan.execute(ExecutionContext(snowflake_db))

        sales = snowflake_db.table("sales")
        item_prices = snowflake_db.table("item").column("i_price")
        matched = item_prices[sales.column("s_itemkey")]
        expected = int(
            (
                (sales.column("s_discount") <= 0.05)
                & (sales.column("s_price") < matched)
            ).sum()
        )
        assert frame.num_rows == expected

    def test_estimated_rows_positive(self, snowflake_db, snowflake_stats):
        optimizer = Optimizer(
            snowflake_db, HistogramCardinalityEstimator(snowflake_stats)
        )
        planned = optimizer.optimize(SPJQuery(["sales", "promotion"], BAND_PREDICATE))
        assert planned.estimated_rows > 0
        assert planned.estimated_cost > 0


class TestLaneParity:
    GRID = (0.5, 0.8, 0.95)

    def test_optimize_many_matches_scalar_on_band_join(
        self, snowflake_db, snowflake_stats
    ):
        estimator = RobustCardinalityEstimator(snowflake_stats, policy=0.8)
        optimizer = Optimizer(snowflake_db, estimator)
        lanes = optimizer.optimize_many(
            SPJQuery(["sales", "promotion"], BAND_PREDICATE), self.GRID
        )
        for threshold, lane in zip(self.GRID, lanes):
            scalar = optimizer.optimize(
                SPJQuery(["sales", "promotion"], BAND_PREDICATE, hint=threshold)
            )
            assert lane.plan.signature() == scalar.plan.signature()
            assert lane.estimated_cost == scalar.estimated_cost
            assert lane.estimated_rows == scalar.estimated_rows

    def test_optimize_many_matches_scalar_on_markup_join(
        self, snowflake_db, snowflake_stats
    ):
        estimator = RobustCardinalityEstimator(snowflake_stats, policy=0.8)
        optimizer = Optimizer(snowflake_db, estimator)
        lanes = optimizer.optimize_many(
            SPJQuery(["sales", "item"], MARKUP_PREDICATE), self.GRID
        )
        for threshold, lane in zip(self.GRID, lanes):
            scalar = optimizer.optimize(
                SPJQuery(["sales", "item"], MARKUP_PREDICATE, hint=threshold)
            )
            assert lane.plan.signature() == scalar.plan.signature()
            assert lane.estimated_cost == scalar.estimated_cost
            assert lane.estimated_rows == scalar.estimated_rows


class TestSessionNonEqui:
    """The full service path — SQL in, NonEquiJoin plan, traced run."""

    SQL = (
        "SELECT COUNT(*) AS hits FROM sales, promotion "
        "WHERE promotion.p_kind = 2 AND promotion.p_lo <= sales.s_price "
        "AND sales.s_price < promotion.p_hi"
    )

    @pytest.fixture(scope="class")
    def session(self, snowflake_db):
        from repro.service import Session

        return Session(snowflake_db, sample_size=300, statistics_seed=11)

    def test_prepare_plans_a_nonequi_join(self, session):
        prepared = session.prepare(self.SQL)
        assert "NonEquiJoin" in prepared.explain()

    def test_execute_matches_ground_truth(self, session, snowflake_db):
        result = session.execute(self.SQL)
        truth = PromotionBandTemplate().true_rows(snowflake_db, 2)
        assert int(result.column("hits")[0]) == truth

    def test_trace_records_sketch_backed_estimation(self, session):
        trace = session.trace_query(self.SQL, execute=True)
        assert trace["execution"] is not None
        assert "NonEquiJoin" in trace["execution"]["plan_shape"]
        assert trace["estimation"], "expected estimation spans"

    def test_bayes_estimator_session(self, snowflake_db):
        from repro.service import Session

        session = Session(
            snowflake_db,
            estimator="bayes",
            sample_size=300,
            statistics_seed=11,
        )
        result = session.execute(self.SQL)
        truth = PromotionBandTemplate().true_rows(snowflake_db, 2)
        assert int(result.column("hits")[0]) == truth
        assert session.describe()


class TestCostModel:
    def test_nonequi_join_monotone_in_pairs(self):
        model = CostModel()
        cheap = model.nonequi_join(1000, 100, 500, 500, False)
        dear = model.nonequi_join(1000, 100, 50_000, 500, False)
        assert dear > cheap

    def test_residual_costs_extra(self):
        model = CostModel()
        bare = model.nonequi_join(1000, 100, 5000, 500, False)
        filtered = model.nonequi_join(1000, 100, 5000, 500, True)
        assert filtered > bare

    def test_sort_charged_on_right_input(self):
        model = CostModel()
        small = model.nonequi_join(1000, 10, 5000, 500, False)
        large = model.nonequi_join(1000, 10_000, 5000, 500, False)
        assert large > small
