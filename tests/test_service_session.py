"""Behavioral tests for the Session/PreparedQuery facade.

The contract under test (ISSUE 4): the plan cache is keyed on
(query fingerprint, estimator config, statistics version), so the same
query twice is a hit returning the identical plan, a statistics bump
invalidates automatically, concurrent prepares plan exactly once, and
cached plans are byte-identical to what a hand-wired optimizer
produces from the same statistics.
"""

import threading
import time

import pytest

from repro.core import RobustCardinalityEstimator
from repro.cost import CostModel
from repro.optimizer import Optimizer
from repro.service import (
    Session,
    SessionConfig,
    SessionError,
    canonical_sql,
    query_fingerprint,
)
from repro.sql import parse_query
from repro.stats import StatisticsManager

from tests.conftest import make_two_table_db

QUERY = "SELECT COUNT(*) FROM lineitem WHERE lineitem.l_quantity > 45"
JOIN_QUERY = (
    "SELECT COUNT(*) FROM lineitem, part "
    "WHERE part.p_size <= 10 AND lineitem.l_quantity > 30"
)


@pytest.fixture()
def db():
    return make_two_table_db()


@pytest.fixture()
def session(db):
    return Session(db, sample_size=400, statistics_seed=11)


class TestConfig:
    def test_unknown_estimator_rejected(self):
        with pytest.raises(SessionError):
            SessionConfig(estimator="oracle")

    def test_keyword_overrides(self, db):
        session = Session(db, estimator="histogram", plan_cache_size=16)
        assert session.config.estimator == "histogram"
        assert session.config.plan_cache_size == 16

    def test_resolved_threshold_none_for_threshold_blind(self):
        assert SessionConfig(estimator="histogram").resolved_threshold is None
        assert SessionConfig(estimator="robust", threshold="95").resolved_threshold == 0.95

    def test_describe(self, session):
        text = session.describe()
        assert "robust" in text and "T=80%" in text


class TestPrepareCaching:
    def test_same_query_twice_is_a_hit_with_same_plan_object(self, session):
        first = session.prepare(QUERY)
        second = session.prepare(QUERY)
        assert first.from_cache is False
        assert second.from_cache is True
        assert second.planned is first.planned
        stats = session.cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_fingerprint_ignores_confidence_hint(self, db):
        plain = parse_query(QUERY, db)
        hinted = parse_query(QUERY + " OPTION (CONFIDENCE 95)", db)
        assert query_fingerprint(plain) == query_fingerprint(hinted)
        assert "OPTION" not in canonical_sql(hinted)

    def test_distinct_thresholds_get_distinct_entries(self, session):
        moderate = session.prepare(QUERY, threshold="80")
        conservative = session.prepare(QUERY, threshold="95")
        assert conservative.from_cache is False
        assert moderate.threshold == 0.8
        assert conservative.threshold == 0.95

    def test_hint_overrides_call_and_session_threshold(self, session):
        prepared = session.prepare(
            QUERY + " OPTION (CONFIDENCE 95)", threshold="50"
        )
        assert prepared.threshold == 0.95

    def test_cached_plan_byte_identical_to_fresh_optimize(self, db):
        """A cache hit serves exactly what hand-wiring would produce."""
        session = Session(db, sample_size=400, statistics_seed=11)
        session.prepare(QUERY)
        hit = session.prepare(QUERY)
        assert hit.from_cache is True

        # Hand-wire the old way against identically built statistics.
        statistics = StatisticsManager(db)
        statistics.update_statistics(sample_size=400, seed=11)
        estimator = RobustCardinalityEstimator(statistics, policy=0.8)
        fresh = Optimizer(db, estimator, CostModel()).optimize(
            parse_query(QUERY, db)
        )
        assert hit.explain().encode() == fresh.explain().encode()
        assert hit.plan.signature() == fresh.plan.signature()
        assert hit.estimated_cost == fresh.estimated_cost
        assert hit.estimated_rows == fresh.estimated_rows

    def test_lru_eviction_respects_bound(self, db):
        session = Session(db, plan_cache_size=2, cache_stripes=1,
                          sample_size=200)
        queries = [
            QUERY,
            "SELECT COUNT(*) FROM part WHERE part.p_size <= 10",
            JOIN_QUERY,
        ]
        for q in queries:
            session.prepare(q)
        stats = session.cache_stats()
        assert stats["size"] == 2
        assert stats["evictions"] == 1
        # The oldest entry was evicted: preparing it again is a miss.
        assert session.prepare(queries[0]).from_cache is False


class TestStatisticsVersioning:
    def test_refresh_invalidates_cached_plans(self, session):
        prepared = session.prepare(QUERY)
        assert prepared.is_stale() is False
        version = session.refresh_statistics(seed=12)
        assert version == prepared.statistics_version + 1
        assert prepared.is_stale() is True
        fresh = session.prepare(QUERY)
        assert fresh.from_cache is False, "new version must miss"
        assert fresh.statistics_version == version

    def test_execute_replans_transparently(self, session):
        prepared = session.prepare(QUERY)
        session.refresh_statistics(seed=12)
        result = prepared.execute()
        assert prepared.is_stale() is False, "handle re-bound to new plan"
        assert prepared.statistics_version == session.statistics_version()
        assert result.num_rows == 1
        replans = session.metrics.counter(
            "repro_session_replans_total", ""
        ).value()
        assert replans == 1

    def test_exact_sessions_have_no_statistics(self, db):
        session = Session(db, estimator="exact")
        prepared = session.prepare(QUERY)
        assert prepared.threshold is None
        assert session.statistics_version() == 0
        with pytest.raises(SessionError):
            session.refresh_statistics()


class TestConcurrency:
    def test_concurrent_prepares_plan_exactly_once(self, db, monkeypatch):
        session = Session(db, sample_size=200)
        session.prepare(JOIN_QUERY)  # warm statistics, then forget plans
        session.plan_cache.clear()

        calls = []
        real_optimize = Optimizer.optimize

        def slow_optimize(self, query):
            calls.append(1)
            time.sleep(0.05)
            return real_optimize(self, query)

        monkeypatch.setattr(Optimizer, "optimize", slow_optimize)
        barrier = threading.Barrier(6)
        prepared = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            handle = session.prepare(JOIN_QUERY)
            with lock:
                prepared.append(handle)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(calls) == 1, "singleflight: one planning pass total"
        assert len(prepared) == 6
        assert all(p.planned is prepared[0].planned for p in prepared)


class TestPrepareMany:
    GRID = (0.05, 0.5, 0.95)

    def test_lanes_match_scalar_prepare(self, session):
        lanes = session.prepare_many(QUERY, self.GRID)
        assert [p.threshold for p in lanes] == list(self.GRID)
        # A later scalar prepare at any lane threshold is a cache hit.
        again = session.prepare(QUERY, threshold=0.5)
        assert again.from_cache is True
        assert again.planned is lanes[1].planned

    def test_lane_plans_equal_scalar_plans(self, db):
        vector_session = Session(db, sample_size=400, statistics_seed=11)
        scalar_session = Session(db, sample_size=400, statistics_seed=11)
        lanes = vector_session.prepare_many(JOIN_QUERY, self.GRID)
        for threshold, lane in zip(self.GRID, lanes):
            scalar = scalar_session.prepare(JOIN_QUERY, threshold=threshold)
            assert lane.plan.signature() == scalar.plan.signature()
            assert lane.estimated_cost == pytest.approx(
                scalar.estimated_cost
            )

    def test_requires_robust_session(self, db):
        session = Session(db, estimator="histogram")
        with pytest.raises(SessionError):
            session.prepare_many(QUERY, self.GRID)
        robust = Session(db)
        with pytest.raises(SessionError):
            robust.prepare_many(QUERY, ())


class TestExecuteAndExplain:
    def test_execute_sql_end_to_end(self, session):
        result = session.execute(QUERY)
        assert result.num_rows == 1
        assert len(result.column_names) == 1
        assert result.simulated_seconds > 0
        assert result.plan_cached is False
        assert session.execute(QUERY).plan_cached is True

    def test_explain_includes_plan_and_provenance(self, session):
        text = session.explain(QUERY)
        assert "Aggregate" in text or "Scan" in text
        assert "chosen plan:" in text
        assert "estimation evidence" in text

    def test_trace_query_record_shape(self, session):
        record = session.trace_query(QUERY, execute=True, label="test")
        assert record["template"] == "test"
        assert record["kind"] == "query"
        assert record["execution"]["actual_rows"] == 1
        assert record["estimation"], "estimation spans must be captured"
        assert record["timing"]["optimize_seconds"] >= 0

    def test_tracing_does_not_pollute_the_plan_cache(self, session):
        session.trace_query(QUERY)
        assert len(session.plan_cache) == 0
        assert session.prepare(QUERY).from_cache is False


class TestLifecycle:
    def test_closed_session_rejects_use(self, session):
        session.prepare(QUERY)
        session.close()
        with pytest.raises(SessionError):
            session.prepare(QUERY)
        with pytest.raises(SessionError):
            session.execute(QUERY)

    def test_context_manager_closes(self, db):
        with Session(db, sample_size=200) as session:
            session.prepare(QUERY)
        assert session._closed

    def test_metrics_track_prepares_by_outcome(self, session):
        session.prepare(QUERY)
        session.prepare(QUERY)
        counter = session.metrics.counter("repro_session_prepares_total", "")
        assert counter.value(result="miss") == 1
        assert counter.value(result="hit") == 1

    def test_shared_statistics_are_not_rebuilt(self, db):
        statistics = StatisticsManager(db)
        statistics.update_statistics(sample_size=400, seed=11)
        version = statistics.version
        session = Session(db, statistics=statistics)
        session.prepare(QUERY)
        assert statistics.version == version
