"""Unit tests for access-path generation."""

import pytest

from repro.core import ExactCardinalityEstimator
from repro.cost import CostModel
from repro.engine import IndexIntersect, IndexSeek, SeqScan
from repro.expressions import col
from repro.optimizer.access import access_paths, range_to_expr
from repro.expressions.analysis import as_range_condition

from tests.conftest import make_two_table_db


@pytest.fixture
def db():
    return make_two_table_db()


@pytest.fixture
def card(db):
    exact = ExactCardinalityEstimator(db)

    def oracle(tables, predicate):
        return exact.estimate(tables, predicate)

    return oracle


MODEL = CostModel()

DATE_RANGE = col("lineitem.l_shipdate").between(729100, 729150)
BOTH_DATES = DATE_RANGE & col("lineitem.l_receiptdate").between(729100, 729150)


class TestRangeToExpr:
    def test_between_roundtrip(self):
        condition = as_range_condition(col("t.a").between(1, 5))
        rebuilt = as_range_condition(range_to_expr(condition))
        assert rebuilt.low == 1 and rebuilt.high == 5

    def test_one_sided(self):
        condition = as_range_condition(col("t.a") > 3)
        rebuilt = as_range_condition(range_to_expr(condition))
        assert rebuilt.low == 3 and not rebuilt.low_inclusive

    def test_mixed_exclusivity(self):
        merged = as_range_condition(col("t.a") >= 1)
        merged = merged.__class__("t", "a", 1, 9, True, False)
        rebuilt_expr = range_to_expr(merged)
        rebuilt = None
        # a half-open two-sided range becomes a conjunction; just check
        # it references the right column
        assert rebuilt_expr.columns() == {("t", "a")}


class TestAccessPaths:
    def test_always_includes_seqscan(self, db, card):
        paths = access_paths(db, MODEL, card, "lineitem", None)
        assert any(isinstance(p.operator, SeqScan) for p in paths)
        assert len(paths) == 1  # no predicate → nothing else

    def test_index_seek_generated(self, db, card):
        paths = access_paths(db, MODEL, card, "lineitem", DATE_RANGE)
        kinds = {type(p.operator) for p in paths}
        assert SeqScan in kinds and IndexSeek in kinds

    def test_index_intersection_generated(self, db, card):
        paths = access_paths(db, MODEL, card, "lineitem", BOTH_DATES)
        kinds = {type(p.operator) for p in paths}
        assert IndexIntersect in kinds
        # two single-column seeks as well
        seeks = [p for p in paths if isinstance(p.operator, IndexSeek)]
        assert len(seeks) == 2

    def test_no_index_paths_for_unindexed_columns(self, db, card):
        predicate = col("lineitem.l_quantity") > 25
        paths = access_paths(db, MODEL, card, "lineitem", predicate)
        assert all(isinstance(p.operator, SeqScan) for p in paths)

    def test_rows_estimates_agree(self, db, card):
        paths = access_paths(db, MODEL, card, "lineitem", BOTH_DATES)
        rows = {round(p.rows, 3) for p in paths}
        assert len(rows) == 1  # same logical result for every path

    def test_costs_are_positive_and_differ(self, db, card):
        paths = access_paths(db, MODEL, card, "lineitem", BOTH_DATES)
        costs = [p.cost for p in paths]
        assert all(c > 0 for c in costs)
        assert len({round(c, 9) for c in costs}) > 1

    def test_seek_residual_preserves_semantics(self, db, card):
        """Each path must produce the same rows when executed."""
        from repro.engine import ExecutionContext

        predicate = BOTH_DATES & (col("lineitem.l_quantity") > 10)
        paths = access_paths(db, MODEL, card, "lineitem", predicate)
        results = set()
        for path in paths:
            frame = path.operator.execute(ExecutionContext(db))
            results.add(tuple(sorted(frame.column("lineitem.l_id"))))
        assert len(results) == 1

    def test_order_annotations(self, db, card):
        paths = access_paths(db, MODEL, card, "lineitem", DATE_RANGE)
        by_type = {type(p.operator): p for p in paths}
        assert by_type[SeqScan].order == "lineitem.l_id"  # clustered
        assert by_type[IndexSeek].order == "lineitem.l_shipdate"

    def test_annotations_set(self, db, card):
        paths = access_paths(db, MODEL, card, "lineitem", DATE_RANGE)
        for path in paths:
            assert path.operator.est_rows is not None
            assert path.operator.est_cost is not None

    def test_date_string_literals_coerced(self, db, card):
        import datetime

        low = datetime.date.fromordinal(729100).isoformat()
        high = datetime.date.fromordinal(729150).isoformat()
        predicate = col("lineitem.l_shipdate").between(low, high)
        paths = access_paths(db, MODEL, card, "lineitem", predicate)
        seek = next(p for p in paths if isinstance(p.operator, IndexSeek))
        assert seek.operator.condition.low == 729100
