"""Tests for the least-expected-cost baseline optimizer."""

import pytest

from repro.core import ExactCardinalityEstimator, RobustCardinalityEstimator
from repro.engine import ExecutionContext
from repro.errors import OptimizationError
from repro.expressions import col
from repro.optimizer import LeastExpectedCostOptimizer, Optimizer, SPJQuery
from repro.stats import StatisticsManager


@pytest.fixture
def lec(tpch_db, tpch_stats):
    return LeastExpectedCostOptimizer(tpch_db, tpch_stats, num_quantiles=5)


CORRELATED = col("lineitem.l_shipdate").between("1997-07-01", "1997-09-30") & col(
    "lineitem.l_receiptdate"
).between("1997-07-01", "1997-09-30")


class TestBasics:
    def test_quantiles_are_midpoints(self, lec):
        quantiles = lec.quantiles()
        assert len(quantiles) == 5
        assert quantiles[0] == pytest.approx(0.1)
        assert quantiles[-1] == pytest.approx(0.9)

    def test_invalid_quantile_count(self, tpch_db, tpch_stats):
        with pytest.raises(OptimizationError):
            LeastExpectedCostOptimizer(tpch_db, tpch_stats, num_quantiles=0)

    def test_produces_runnable_plan(self, lec, tpch_db):
        query = SPJQuery(["lineitem"], CORRELATED)
        planned = lec.optimize(query)
        frame = planned.plan.execute(ExecutionContext(tpch_db))
        truth = ExactCardinalityEstimator(tpch_db).estimate(
            {"lineitem"}, CORRELATED
        )
        assert frame.num_rows == truth.cardinality

    def test_join_query(self, lec, tpch_db):
        query = SPJQuery(["lineitem", "part"], col("part.p_size") <= 10)
        planned = lec.optimize(query)
        frame = planned.plan.execute(ExecutionContext(tpch_db))
        truth = ExactCardinalityEstimator(tpch_db).estimate(
            set(query.tables), query.predicate
        )
        assert frame.num_rows == truth.cardinality

    def test_alternatives_ranked_by_expected_cost(self, lec):
        query = SPJQuery(["lineitem"], CORRELATED)
        planned = lec.optimize(query)
        assert len(planned.alternatives) >= 2


class TestBlowup:
    def test_multi_invocation_blowup(self, tpch_db, tpch_stats):
        """The paper's criticism: estimation work scales with the
        number of subroutine invocations."""
        query = SPJQuery(["lineitem"], CORRELATED)
        single = Optimizer(
            tpch_db, RobustCardinalityEstimator(tpch_stats, policy=0.8)
        ).optimize(query)
        multi = LeastExpectedCostOptimizer(
            tpch_db, tpch_stats, num_quantiles=7
        ).optimize(query)
        assert multi.estimation_calls >= 7 * single.estimation_calls


class TestDecisionQuality:
    def test_lec_avoids_risky_plan_under_wide_posterior(self, tpch_db):
        """With a tiny sample the posterior is wide; the expected cost
        of the risky plan includes its disaster tail, so LEC plays
        safe — agreeing with high-threshold robust optimization."""
        stats = StatisticsManager(tpch_db)
        stats.update_statistics(sample_size=60, seed=1)
        lec = LeastExpectedCostOptimizer(tpch_db, stats, num_quantiles=7)
        query = SPJQuery(["lineitem"], CORRELATED)
        planned = lec.optimize(query)
        assert "SeqScan" in planned.plan.label()

    def test_lec_uses_risky_plan_when_safe(self, tpch_db, tpch_stats):
        """A clearly tiny selectivity makes the risky plan dominate at
        every quantile."""
        predicate = col("lineitem.l_shipdate").between(
            "1997-07-01", "1997-07-02"
        ) & col("lineitem.l_receiptdate").between("1997-07-01", "1997-07-09")
        lec = LeastExpectedCostOptimizer(tpch_db, tpch_stats, num_quantiles=5)
        planned = lec.optimize(SPJQuery(["lineitem"], predicate))
        assert "Index" in planned.plan.label()
