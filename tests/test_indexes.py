"""Unit tests for repro.indexes (sorted, hash, RID algebra)."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.indexes import (
    HashIndex,
    SortedIndex,
    intersect_rid_sets,
    union_rid_lists,
)


@pytest.fixture
def values():
    return np.array([5, 3, 8, 3, 1, 9, 3, 7])


class TestSortedIndex:
    def test_lookup_eq(self, values):
        index = SortedIndex(values)
        assert sorted(index.lookup_eq(3)) == [1, 3, 6]
        assert list(index.lookup_eq(42)) == []

    def test_lookup_range_inclusive(self, values):
        index = SortedIndex(values)
        rids = index.lookup_range(3, 7)
        assert sorted(values[rids]) == [3, 3, 3, 5, 7]

    def test_lookup_range_exclusive(self, values):
        index = SortedIndex(values)
        rids = index.lookup_range(3, 7, low_inclusive=False, high_inclusive=False)
        assert sorted(values[rids]) == [5]

    def test_lookup_range_open_ended(self, values):
        index = SortedIndex(values)
        assert len(index.lookup_range(None, None)) == len(values)
        assert sorted(values[index.lookup_range(8, None)]) == [8, 9]
        assert sorted(values[index.lookup_range(None, 1)]) == [1]

    def test_empty_range(self, values):
        index = SortedIndex(values)
        assert list(index.lookup_range(100, 200)) == []
        assert list(index.lookup_range(7, 3)) == []

    def test_count_range_matches_lookup(self, values):
        index = SortedIndex(values)
        for lo, hi in [(None, None), (3, 7), (0, 0), (8, None)]:
            assert index.count_range(lo, hi) == len(index.lookup_range(lo, hi))

    def test_lookup_many_eq(self, values):
        index = SortedIndex(values)
        rids = index.lookup_many_eq(np.array([3, 9]))
        assert sorted(values[rids]) == [3, 3, 3, 9]

    def test_lookup_many_eq_empty(self, values):
        index = SortedIndex(values)
        assert list(index.lookup_many_eq(np.array([], dtype=np.int64))) == []
        assert list(index.lookup_many_eq(np.array([1000]))) == []

    def test_min_max(self, values):
        index = SortedIndex(values)
        assert index.min_key() == 1
        assert index.max_key() == 9

    def test_empty_index_min_raises(self):
        index = SortedIndex(np.array([], dtype=np.int64))
        with pytest.raises(IndexError_):
            index.min_key()

    def test_2d_input_raises(self):
        with pytest.raises(IndexError_):
            SortedIndex(np.zeros((2, 2)))

    def test_string_keys(self):
        index = SortedIndex(np.array(["pear", "apple", "fig"]))
        assert list(index.lookup_eq("fig")) == [2]

    def test_num_entries(self, values):
        assert SortedIndex(values).num_entries == 8


class TestHashIndex:
    def test_lookup(self, values):
        index = HashIndex(values)
        assert sorted(index.lookup(3)) == [1, 3, 6]
        assert list(index.lookup(42)) == []

    def test_lookup_many(self, values):
        index = HashIndex(values)
        rids = index.lookup_many(np.array([3, 3, 9]))
        # duplicates in input contribute their matches twice
        assert len(rids) == 7

    def test_contains(self, values):
        index = HashIndex(values)
        assert 5 in index
        assert 55 not in index

    def test_counts(self, values):
        index = HashIndex(values)
        assert index.num_entries == 8
        assert index.num_keys == 6

    def test_numpy_scalar_lookup(self, values):
        index = HashIndex(values)
        assert sorted(index.lookup(np.int64(3))) == [1, 3, 6]

    def test_empty(self):
        index = HashIndex(np.array([], dtype=np.int64))
        assert index.num_entries == 0
        assert list(index.lookup(1)) == []

    def test_2d_input_raises(self):
        with pytest.raises(IndexError_):
            HashIndex(np.zeros((2, 2)))


class TestRidAlgebra:
    def test_intersect_basic(self):
        out = intersect_rid_sets(
            [np.array([1, 2, 3, 4]), np.array([3, 4, 5]), np.array([4, 3, 9])]
        )
        assert list(out) == [3, 4]

    def test_intersect_empty_input(self):
        assert list(intersect_rid_sets([])) == []

    def test_intersect_with_empty_set(self):
        out = intersect_rid_sets([np.array([1, 2]), np.array([], dtype=np.int64)])
        assert list(out) == []

    def test_intersect_single(self):
        assert list(intersect_rid_sets([np.array([2, 1, 2])])) == [1, 2]

    def test_union(self):
        out = union_rid_lists([np.array([3, 1]), np.array([2, 3])])
        assert list(out) == [1, 2, 3]

    def test_union_empty(self):
        assert list(union_rid_lists([])) == []
        assert list(union_rid_lists([np.array([], dtype=np.int64)])) == []
