"""The SelectionPolicy surface of the Session facade.

Pins the policy resolution order — hint > per-call > routed >
session default — plus the cache-key separation between policies and
the conflict/compatibility errors.
"""

from __future__ import annotations

import pytest

from repro.core import CONSERVATIVE
from repro.feedback import DEFAULT_BAND_THRESHOLDS, FeedbackConfig
from repro.selection import (
    HistogramPolicy,
    PenaltyPolicy,
    ThresholdPolicy,
)
from repro.service import Session, SessionConfig, SessionError

SELECTION = (
    "SELECT COUNT(*) FROM lineitem WHERE "
    "lineitem.l_shipdate >= '1997-01-01' "
    "AND lineitem.l_shipdate <= '1997-03-31' "
    "AND lineitem.l_receiptdate >= '1997-01-01' "
    "AND lineitem.l_receiptdate <= '1997-04-15'"
)


@pytest.fixture()
def session(two_table_db):
    with Session(two_table_db, sample_size=300, statistics_seed=3) as session:
        yield session


@pytest.fixture()
def penalty_session(two_table_db):
    with Session(
        two_table_db,
        policy="cvar:0.9:8",
        sample_size=300,
        statistics_seed=3,
    ) as session:
        yield session


class TestSessionConfigPolicy:
    def test_policy_forces_estimator_family(self, two_table_db):
        with Session(two_table_db, policy="histogram") as session:
            assert session.config.estimator == "histogram"
            assert session.config.resolved_policy == HistogramPolicy()

    def test_threshold_policy_backfills_threshold(self):
        config = SessionConfig(policy=0.2)
        assert config.estimator == "robust"
        assert config.threshold == 0.2
        assert config.resolved_policy == ThresholdPolicy(0.2)

    def test_legacy_knobs_resolve_to_a_policy(self):
        # Old estimator=/threshold= spellings still describe a policy.
        assert SessionConfig(threshold=0.8).resolved_policy == ThresholdPolicy(0.8)
        assert (
            SessionConfig(estimator="histogram").resolved_policy
            == HistogramPolicy()
        )
        assert SessionConfig(estimator="exact").resolved_policy is None


class TestPenaltySessions:
    def test_prepare_selects_by_penalty(self, penalty_session):
        prepared = penalty_session.prepare(SELECTION)
        assert prepared.policy == PenaltyPolicy(samples=8, risk="cvar", alpha=0.9)
        assert prepared.threshold is None  # threshold-blind selection
        selection = prepared.selection
        assert selection["strategy"] == "penalty"
        assert selection["samples"] == 8
        assert len(selection["plans"]) >= 1

    def test_execute_and_cache_roundtrip(self, penalty_session):
        first = penalty_session.execute(SELECTION)
        assert first.prepared.from_cache is False
        second = penalty_session.execute(SELECTION)
        assert second.prepared.from_cache is True
        assert first.num_rows == second.num_rows

    def test_per_call_penalty_on_threshold_session(self, session):
        prepared = session.prepare(SELECTION, policy="expected:8")
        assert prepared.policy == PenaltyPolicy(samples=8)
        assert prepared.selection["risk"] == "expected"


class TestConflictsAndCompatibility:
    def test_threshold_and_policy_together_rejected(self, session):
        with pytest.raises(SessionError, match="both"):
            session.prepare(SELECTION, 0.5, policy="cvar:0.9")

    def test_estimator_family_mismatch_rejected(self, session):
        with pytest.raises(SessionError, match="histogram"):
            session.prepare(SELECTION, policy="histogram")

    def test_execute_surfaces_the_same_conflict(self, session):
        with pytest.raises(SessionError):
            session.execute(SELECTION, 0.5, policy="expected:8")


class TestPrecedence:
    """hint > per-call > routed > session default."""

    def seed_catastrophic(self, feedback, query_class="lineitem"):
        for _ in range(4):
            feedback.ledger.ingest(query_class, 5000.0)

    def test_hint_beats_per_call_policy(self, session):
        prepared = session.prepare(
            SELECTION + " OPTION (CONFIDENCE 50)", policy="cvar:0.9:8"
        )
        assert prepared.policy == ThresholdPolicy(0.5)
        assert prepared.threshold == 0.5

    def test_per_call_policy_beats_routing(self, session):
        feedback = session.enable_feedback()
        self.seed_catastrophic(feedback)
        prepared = session.prepare(SELECTION, policy="expected:8")
        assert prepared.policy == PenaltyPolicy(samples=8)

    def test_routed_policy_beats_default(self, session):
        bands = dict(DEFAULT_BAND_THRESHOLDS, catastrophic="cvar:0.9:8")
        feedback = session.enable_feedback(
            config=FeedbackConfig(band_thresholds=bands)
        )
        self.seed_catastrophic(feedback)
        prepared = session.prepare(SELECTION)
        assert prepared.policy == PenaltyPolicy(samples=8, risk="cvar", alpha=0.9)

    def test_routed_threshold_still_routes(self, session):
        feedback = session.enable_feedback()
        self.seed_catastrophic(feedback)
        prepared = session.prepare(SELECTION)
        assert prepared.policy == ThresholdPolicy(CONSERVATIVE)

    def test_default_policy_when_nothing_overrides(self, session):
        prepared = session.prepare(SELECTION)
        assert prepared.policy == ThresholdPolicy(session.config.threshold)


class TestCacheSeparation:
    def test_policies_never_share_cache_slots(self, session):
        expected = session.prepare(SELECTION, policy="expected:8")
        cvar = session.prepare(SELECTION, policy="cvar:0.9:8")
        threshold = session.prepare(SELECTION)
        assert expected.from_cache is False
        assert cvar.from_cache is False
        assert threshold.from_cache is False

    def test_same_policy_hits_the_cache(self, session):
        session.prepare(SELECTION, policy="cvar:0.9:8")
        again = session.prepare(SELECTION, policy="cvar:0.9:8")
        assert again.from_cache is True

    def test_equal_policies_share_regardless_of_spelling(self, session):
        session.prepare(SELECTION, policy="expected:24")
        again = session.prepare(SELECTION, policy=PenaltyPolicy(samples=24))
        assert again.from_cache is True


class TestIntrospection:
    def test_repr_names_the_policy(self, penalty_session):
        prepared = penalty_session.prepare(SELECTION)
        assert "cvar:0.9:8" in repr(prepared)

    def test_describe_names_the_policy(self, penalty_session):
        assert "CVaR" in penalty_session.describe()

    def test_trace_query_records_selection(self, penalty_session):
        record = penalty_session.trace_query(SELECTION)
        span = record["optimizer"]
        assert span["strategy"] == "penalty"
        selection = span["selection"]
        assert selection["strategy"] == "penalty"
        assert selection["risk"] == "cvar"
        # Per-plan penalty distributions ride along for the trace view.
        assert all("penalty" in plan for plan in selection["plans"])
