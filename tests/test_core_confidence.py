"""Unit tests for the confidence-threshold policy."""

import pytest

from repro.core import AGGRESSIVE, CONSERVATIVE, MODERATE, ConfidencePolicy
from repro.core.confidence import resolve_threshold
from repro.errors import EstimationError


class TestResolveThreshold:
    def test_named_levels(self):
        assert resolve_threshold("conservative") == CONSERVATIVE == 0.95
        assert resolve_threshold("Moderate") == MODERATE == 0.80
        assert resolve_threshold("AGGRESSIVE") == AGGRESSIVE == 0.50

    def test_fraction(self):
        assert resolve_threshold(0.65) == 0.65

    def test_percentage(self):
        assert resolve_threshold(80) == 0.80
        assert resolve_threshold(5) == 0.05

    def test_unknown_name_raises(self):
        with pytest.raises(EstimationError):
            resolve_threshold("yolo")

    def test_out_of_range_raises(self):
        with pytest.raises(EstimationError):
            resolve_threshold(0.0)
        with pytest.raises(EstimationError):
            resolve_threshold(101)


class TestConfidencePolicy:
    def test_default(self):
        assert ConfidencePolicy().threshold() == MODERATE

    def test_named_default(self):
        assert ConfidencePolicy("conservative").threshold() == 0.95

    def test_hint_overrides(self):
        policy = ConfidencePolicy("moderate")
        assert policy.threshold(hint=0.5) == 0.5
        assert policy.threshold(hint="conservative") == 0.95
        assert policy.threshold() == 0.80  # default untouched

    def test_repr(self):
        assert "0.80" in repr(ConfidencePolicy(0.8))
