"""Trace determinism: same seed+config ⇒ byte-identical JSONL.

The trace schema confines every wall-clock measurement to keys named
``"timing"``; everything else is a pure function of (database,
template, seeds, configs). These tests pin that property: two
identical runs serialize byte-identically once the timing subtrees
are stripped, and the merged trace stream is independent of the
worker count.
"""

import pytest

from repro.experiments import ExperimentRunner, default_configs
from repro.obs import canonical_json, read_traces, strip_timing, write_traces
from repro.workloads import ShippingDatesTemplate


def run_traced(tpch_db, workers, trace=True):
    template = ShippingDatesTemplate()
    params = [(p, template.true_selectivity(tpch_db, p)) for p in (60, 150)]
    runner = ExperimentRunner(
        tpch_db,
        template,
        sample_size=200,
        seeds=(0, 1),
        workers=workers,
        trace=trace,
    )
    return runner.run(params, default_configs(thresholds=(0.05, 0.95)))


def deterministic_lines(traces):
    return [canonical_json(strip_timing(t)) for t in traces]


@pytest.fixture(scope="module")
def serial_run(tpch_db):
    return run_traced(tpch_db, workers=1)


@pytest.fixture(scope="module")
def parallel_run(tpch_db):
    return run_traced(tpch_db, workers=2)


class TestTraceDeterminism:
    def test_one_trace_per_record(self, serial_run):
        assert len(serial_run.traces) == len(serial_run.records)
        assert serial_run.traces  # non-empty grid

    def test_same_seed_and_config_byte_identical(self, tpch_db, serial_run):
        again = run_traced(tpch_db, workers=1)
        assert deterministic_lines(serial_run.traces) == deterministic_lines(
            again.traces
        )

    def test_workers_do_not_change_traces(self, serial_run, parallel_run):
        assert deterministic_lines(serial_run.traces) == deterministic_lines(
            parallel_run.traces
        )

    def test_records_unchanged_by_tracing(self, tpch_db, serial_run):
        untraced = run_traced(tpch_db, workers=1, trace=False)
        assert untraced.records == serial_run.records
        assert untraced.traces == []

    def test_jsonl_round_trip_preserves_records(self, tmp_path, serial_run):
        path = tmp_path / "traces.jsonl"
        count = write_traces(path, serial_run.traces)
        assert count == len(serial_run.traces)
        assert read_traces(path) == serial_run.traces

    def test_trace_ids_unique_and_ordered_by_seed(self, serial_run):
        ids = [t["trace_id"] for t in serial_run.traces]
        assert len(set(ids)) == len(ids)
        seeds = [t["seed"] for t in serial_run.traces]
        assert seeds == sorted(seeds)

    def test_spans_present(self, serial_run):
        trace = serial_run.traces[0]
        assert trace["estimation"], "estimation evidence missing"
        assert trace["optimizer"]["winner"]["plan_shape"]
        assert trace["execution"]["signature"]
        assert trace["execution"]["counters"]

    def test_vectorized_and_scalar_strategies_recorded(self, serial_run):
        strategies = {
            t["config"]: t["optimizer"]["strategy"] for t in serial_run.traces
        }
        assert strategies["T=5%"] == "vectorized"
        assert strategies["Histograms"] == "scalar"

    def test_timing_only_home_for_wall_clock(self, serial_run):
        # the deterministic core must serialize identically even when
        # computed twice within one process (guards against leaking
        # id()/time() style values outside "timing")
        lines = deterministic_lines(serial_run.traces)
        assert lines == deterministic_lines(serial_run.traces)
        for line in lines:
            assert '"timing"' not in line
