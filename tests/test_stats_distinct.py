"""Unit tests for distinct-value estimators."""

import numpy as np
import pytest

from repro.errors import StatisticsError
from repro.stats import chao_estimator, gee_estimator, sample_distinct_counts


class TestFrequencyOfFrequencies:
    def test_basic(self):
        freq = sample_distinct_counts(np.array([1, 1, 2, 3, 3, 3]))
        assert freq == {1: 1, 2: 1, 3: 1}

    def test_all_unique(self):
        freq = sample_distinct_counts(np.arange(5))
        assert freq == {1: 5}

    def test_empty(self):
        assert sample_distinct_counts(np.array([], dtype=np.int64)) == {}

    def test_2d_raises(self):
        with pytest.raises(StatisticsError):
            sample_distinct_counts(np.zeros((2, 2)))


class TestGee:
    def test_all_unique_sample_scales_up(self):
        sample = np.arange(100)
        estimate = gee_estimator(sample, population_size=10_000)
        assert estimate == pytest.approx(np.sqrt(100) * 100)

    def test_all_repeated_sample_stays(self):
        sample = np.repeat(np.arange(10), 10)
        estimate = gee_estimator(sample, population_size=10_000)
        assert estimate == 10.0

    def test_capped_by_population(self):
        estimate = gee_estimator(np.arange(100), population_size=150)
        assert estimate <= 150

    def test_empty_sample(self):
        assert gee_estimator(np.array([], dtype=np.int64), 100) == 0.0

    def test_invalid_population_raises(self):
        with pytest.raises(StatisticsError):
            gee_estimator(np.arange(5), 0)

    def test_reasonable_on_uniform_domain(self):
        rng = np.random.default_rng(0)
        population = rng.integers(0, 500, 100_000)
        sample = rng.choice(population, 1000)
        estimate = gee_estimator(sample, 100_000)
        # true distinct count is 500; GEE guarantees a ratio error within
        # sqrt(N/n) = 10, and in practice lands within a small factor
        assert 250 <= estimate <= 2500


class TestChao:
    def test_no_singletons_returns_observed(self):
        sample = np.repeat(np.arange(10), 3)
        assert chao_estimator(sample) == 10.0

    def test_singleton_correction(self):
        # 5 singletons, 5 doubletons: 10 + 25/10 = 12.5
        sample = np.concatenate([np.arange(5), np.repeat(np.arange(100, 105), 2)])
        assert chao_estimator(sample) == pytest.approx(12.5)

    def test_no_doubletons_fallback(self):
        sample = np.arange(4)  # f1=4, f2=0 → 4 + 4*3/2 = 10
        assert chao_estimator(sample) == pytest.approx(10.0)

    def test_capped_by_population(self):
        assert chao_estimator(np.arange(4), population_size=5) == 5.0

    def test_empty(self):
        assert chao_estimator(np.array([], dtype=np.int64)) == 0.0
