"""Tests for the experiment harness."""

import pytest

from repro.experiments import (
    EstimatorConfig,
    ExperimentRunner,
    default_configs,
    format_selectivity_table,
    format_tradeoff_table,
)
from repro.core import RobustCardinalityEstimator
from repro.errors import ReproError
from repro.workloads import ShippingDatesTemplate


@pytest.fixture(scope="module")
def small_result(tpch_db):
    template = ShippingDatesTemplate()
    params = template.params_for_targets(tpch_db, [0.0, 0.003], step=8)
    runner = ExperimentRunner(tpch_db, template, sample_size=300, seeds=(0, 1))
    configs = default_configs(thresholds=(0.05, 0.95))
    return runner.run(params, configs)


class TestDefaultConfigs:
    def test_names(self):
        configs = default_configs()
        names = [c.name for c in configs]
        assert names == ["T=5%", "T=20%", "T=50%", "T=80%", "T=95%", "Histograms"]

    def test_without_histogram(self):
        configs = default_configs(thresholds=(0.5,), include_histogram=False)
        assert [c.name for c in configs] == ["T=50%"]

    def test_builders_independent(self, tpch_stats):
        """Each config builds its own threshold (no closure aliasing)."""
        configs = default_configs(thresholds=(0.05, 0.95))
        a = configs[0].build(tpch_stats)
        b = configs[1].build(tpch_stats)
        assert a.policy.default == 0.05
        assert b.policy.default == 0.95


class TestRunner:
    def test_record_grid_complete(self, small_result):
        # 3 configs × 2 params × 2 seeds
        assert len(small_result.records) == 12

    def test_config_names_ordered(self, small_result):
        assert small_result.config_names == ["T=5%", "T=95%", "Histograms"]

    def test_selectivities(self, small_result):
        assert len(small_result.selectivities) == 2

    def test_times_positive(self, small_result):
        assert all(r.time > 0 for r in small_result.records)

    def test_curve(self, small_result):
        curve = small_result.curve("T=95%")
        assert len(curve) == 2
        assert all(time > 0 for _, time in curve)

    def test_tradeoff_points(self, small_result):
        points = small_result.tradeoff_points()
        assert [p.label for p in points] == small_result.config_names
        assert all(p.mean_time > 0 for p in points)

    def test_plan_counts(self, small_result):
        counts = small_result.plan_counts("T=95%")
        assert sum(counts.values()) == 4  # 2 params × 2 seeds

    def test_missing_config_raises(self, small_result):
        with pytest.raises(ReproError):
            small_result.mean_time("nope", small_result.selectivities[0])
        with pytest.raises(ReproError):
            small_result.tradeoff_point("nope")

    def test_deterministic_given_seeds(self, tpch_db):
        template = ShippingDatesTemplate()
        params = [(150, template.true_selectivity(tpch_db, 150))]
        configs = [
            EstimatorConfig(
                "T=50%", lambda stats: RobustCardinalityEstimator(stats, policy=0.5)
            )
        ]
        runner = ExperimentRunner(tpch_db, template, sample_size=200, seeds=(3,))
        a = runner.run(params, configs)
        b = runner.run(params, configs)
        assert a.records[0].time == b.records[0].time
        assert a.records[0].plan == b.records[0].plan


class TestReports:
    def test_selectivity_table(self, small_result):
        text = format_selectivity_table(small_result)
        assert "T=5%" in text and "Histograms" in text
        # one line per selectivity plus header material
        assert len(text.splitlines()) == 2 + 1 + 2

    def test_tradeoff_table(self, small_result):
        text = format_tradeoff_table(small_result)
        assert "mean_time" in text and "std_time" in text
        assert "T=95%" in text


class TestCsvOutput:
    def test_selectivity_csv(self, small_result):
        from repro.experiments import selectivity_csv

        text = selectivity_csv(small_result)
        lines = text.splitlines()
        assert lines[0] == "selectivity,T=5%,T=95%,Histograms"
        assert len(lines) == 1 + len(small_result.selectivities)
        # every cell parses as a float
        for line in lines[1:]:
            for cell in line.split(","):
                float(cell)

    def test_tradeoff_csv(self, small_result):
        from repro.experiments import tradeoff_csv

        text = tradeoff_csv(small_result)
        lines = text.splitlines()
        assert lines[0] == "config,mean_time,std_time"
        assert len(lines) == 1 + len(small_result.config_names)
