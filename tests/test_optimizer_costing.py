"""Tests for plan re-costing (PlanCoster)."""

import pytest

from repro.core import ExactCardinalityEstimator
from repro.cost import CostModel
from repro.engine import ExecutionContext
from repro.expressions import col
from repro.optimizer import Optimizer, PlanCoster, SPJQuery
from repro.optimizer.costing import condition_to_expr
from repro.engine.scans import IndexCondition


@pytest.fixture
def exact_card(tpch_db):
    exact = ExactCardinalityEstimator(tpch_db)

    def card(tables, predicate):
        return exact.estimate(tables, predicate).cardinality

    return card


QUERIES = [
    SPJQuery(["lineitem"], col("lineitem.l_quantity") > 30),
    SPJQuery(
        ["lineitem"],
        col("lineitem.l_shipdate").between("1997-07-01", "1997-07-05"),
    ),
    SPJQuery(
        ["lineitem"],
        col("lineitem.l_shipdate").between("1997-07-01", "1997-07-20")
        & col("lineitem.l_receiptdate").between("1997-07-01", "1997-07-20"),
    ),
    SPJQuery(["lineitem", "part"], col("part.p_size") <= 10),
    SPJQuery(["lineitem", "part"], col("part.p_partkey") == 3),
    SPJQuery(["lineitem", "orders"], None),
    SPJQuery(
        ["lineitem", "orders", "part"],
        (col("part.p_size") <= 10) & (col("orders.o_totalprice") > 250_000),
    ),
]


class TestConditionToExpr:
    def test_between(self, tpch_db):
        expr = condition_to_expr("lineitem", IndexCondition("l_shipdate", 5, 9))
        assert expr.columns() == {("lineitem", "l_shipdate")}

    def test_equality(self):
        expr = condition_to_expr("t", IndexCondition("c", 5, 5))
        assert "=" in repr(expr)

    def test_one_sided(self):
        expr = condition_to_expr("t", IndexCondition("c", low=5))
        assert ">= 5" in repr(expr).replace("'", "")


class TestRecostMatchesOriginal:
    @pytest.mark.parametrize("query", QUERIES, ids=range(len(QUERIES)))
    def test_recost_reproduces_optimizer_cost(self, tpch_db, exact_card, query):
        """Re-costing a plan under the estimates it was built with
        returns its original cost (before finalization)."""
        optimizer = Optimizer(tpch_db, ExactCardinalityEstimator(tpch_db))
        planned = optimizer.optimize(query)
        best = planned.alternatives[0]
        coster = PlanCoster(tpch_db, CostModel(), exact_card)
        cost, rows = coster.cost(best.operator)
        assert cost == pytest.approx(best.cost, rel=1e-9)
        assert rows == pytest.approx(best.rows, rel=1e-9)

    def test_recost_all_alternatives(self, tpch_db, exact_card):
        """Every candidate of a 3-way join re-costs to its DP cost."""
        query = QUERIES[-1]
        optimizer = Optimizer(tpch_db, ExactCardinalityEstimator(tpch_db))
        planned = optimizer.optimize(query)
        coster = PlanCoster(tpch_db, CostModel(), exact_card)
        for candidate in planned.alternatives:
            cost, _ = coster.cost(candidate.operator)
            assert cost == pytest.approx(candidate.cost, rel=1e-9)

    def test_recost_star_plan(self, star_db):
        exact = ExactCardinalityEstimator(star_db)

        def card(tables, predicate):
            return exact.estimate(tables, predicate).cardinality

        predicate = (
            col("dim1.d_attr").between(0, 99)
            & col("dim2.d_attr").between(50, 149)
            & col("dim3.d_attr").between(0, 99)
        )
        query = SPJQuery(["fact", "dim1", "dim2", "dim3"], predicate)
        optimizer = Optimizer(star_db, exact)
        planned = optimizer.optimize(query)
        coster = PlanCoster(star_db, CostModel(), card)
        for candidate in planned.alternatives:
            cost, _ = coster.cost(candidate.operator)
            assert cost == pytest.approx(candidate.cost, rel=1e-9)

    def test_recost_matches_simulated_time(self, tpch_db, exact_card):
        """Recost(exact) == simulated execution time."""
        model = CostModel()
        query = QUERIES[3]
        optimizer = Optimizer(tpch_db, ExactCardinalityEstimator(tpch_db))
        planned = optimizer.optimize(query)
        best = planned.alternatives[0]
        coster = PlanCoster(tpch_db, model, exact_card)
        cost, _ = coster.cost(best.operator)
        ctx = ExecutionContext(tpch_db)
        best.operator.execute(ctx)
        assert cost == pytest.approx(model.time_from_counters(ctx.counters), rel=1e-9)


class TestRecostUnderDifferentEstimates:
    def test_scaled_cardinalities_scale_risky_cost(self, tpch_db, exact_card):
        """Inflating cardinalities raises an index plan's re-cost."""
        query = QUERIES[1]
        optimizer = Optimizer(tpch_db, ExactCardinalityEstimator(tpch_db))
        planned = optimizer.optimize(query)
        seek = next(
            candidate
            for candidate in planned.alternatives
            if "IndexSeek" in candidate.operator.label()
        )

        def inflated(tables, predicate):
            return 5.0 * exact_card(tables, predicate)

        model = CostModel()
        base, _ = PlanCoster(tpch_db, model, exact_card).cost(seek.operator)
        more, _ = PlanCoster(tpch_db, model, inflated).cost(seek.operator)
        assert more > 2 * base
