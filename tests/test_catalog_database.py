"""Unit tests for repro.catalog.database."""

import numpy as np
import pytest

from repro.catalog import Column, ColumnType, Database, ForeignKey, Schema, Table
from repro.errors import CatalogError


def table(name, columns, data, primary_key=None, foreign_keys=None):
    return Table(
        name,
        Schema(columns, primary_key=primary_key, foreign_keys=foreign_keys or []),
        data,
    )


def chain_db() -> Database:
    """c <- b <- a : a has FK to b, b has FK to c."""
    c = table(
        "c",
        [Column("ck", ColumnType.INT64)],
        {"ck": np.arange(3)},
        primary_key="ck",
    )
    b = table(
        "b",
        [Column("bk", ColumnType.INT64), Column("b_ck", ColumnType.INT64)],
        {"bk": np.arange(6), "b_ck": np.arange(6) % 3},
        primary_key="bk",
        foreign_keys=[ForeignKey("b_ck", "c", "ck")],
    )
    a = table(
        "a",
        [Column("ak", ColumnType.INT64), Column("a_bk", ColumnType.INT64)],
        {"ak": np.arange(12), "a_bk": np.arange(12) % 6},
        primary_key="ak",
        foreign_keys=[ForeignKey("a_bk", "b", "bk")],
    )
    return Database([a, b, c])


class TestTables:
    def test_lookup(self):
        db = chain_db()
        assert db.table("a").name == "a"
        assert "b" in db
        assert db.table_names == ["a", "b", "c"]

    def test_missing_raises(self):
        with pytest.raises(CatalogError):
            chain_db().table("zzz")

    def test_duplicate_add_raises(self):
        db = chain_db()
        with pytest.raises(CatalogError):
            db.add_table(db.table("a"))

    def test_iteration(self):
        assert [t.name for t in chain_db()] == ["a", "b", "c"]


class TestForeignKeyGraph:
    def test_edges(self):
        db = chain_db()
        assert db.foreign_key_edge("a", "b") is not None
        assert db.foreign_key_edge("b", "a") is None
        assert db.foreign_key_edge("a", "c") is None

    def test_reachability(self):
        db = chain_db()
        assert db.reachable_from("a") == {"a", "b", "c"}
        assert db.reachable_from("b") == {"b", "c"}
        assert db.reachable_from("c") == {"c"}

    def test_root_relation_chain(self):
        db = chain_db()
        assert db.root_relation(["a", "b"]) == "a"
        assert db.root_relation(["a", "b", "c"]) == "a"
        assert db.root_relation(["b", "c"]) == "b"
        assert db.root_relation(["c"]) == "c"

    def test_root_relation_disconnected_raises(self):
        db = chain_db()
        # a and c are in the set but a cannot reach c without b
        with pytest.raises(CatalogError):
            db.root_relation(["a", "c"])

    def test_root_relation_empty_raises(self):
        with pytest.raises(CatalogError):
            chain_db().root_relation([])

    def test_validate_ok(self):
        chain_db().validate()

    def test_validate_detects_dangling_fk(self):
        c = table(
            "c",
            [Column("ck", ColumnType.INT64)],
            {"ck": np.arange(2)},
            primary_key="ck",
        )
        b = table(
            "b",
            [Column("bk", ColumnType.INT64), Column("b_ck", ColumnType.INT64)],
            {"bk": np.arange(3), "b_ck": np.array([0, 1, 99])},
            primary_key="bk",
            foreign_keys=[ForeignKey("b_ck", "c", "ck")],
        )
        with pytest.raises(CatalogError, match="missing from"):
            Database([b, c]).validate()

    def test_validate_detects_unknown_parent(self):
        b = table(
            "b",
            [Column("bk", ColumnType.INT64), Column("x", ColumnType.INT64)],
            {"bk": np.arange(2), "x": np.arange(2)},
            primary_key="bk",
            foreign_keys=[ForeignKey("x", "ghost", "gk")],
        )
        with pytest.raises(CatalogError, match="unknown table"):
            Database([b]).validate()

    def test_validate_detects_non_pk_target(self):
        c = table(
            "c",
            [Column("ck", ColumnType.INT64), Column("other", ColumnType.INT64)],
            {"ck": np.arange(2), "other": np.arange(2)},
            primary_key="ck",
        )
        b = table(
            "b",
            [Column("bk", ColumnType.INT64), Column("x", ColumnType.INT64)],
            {"bk": np.arange(2), "x": np.arange(2)},
            primary_key="bk",
            foreign_keys=[ForeignKey("x", "c", "other")],
        )
        with pytest.raises(CatalogError, match="primary key"):
            Database([b, c]).validate()

    def test_validate_detects_cycle(self):
        x = table(
            "x",
            [Column("xk", ColumnType.INT64), Column("x_yk", ColumnType.INT64)],
            {"xk": np.arange(2), "x_yk": np.arange(2)},
            primary_key="xk",
            foreign_keys=[ForeignKey("x_yk", "y", "yk")],
        )
        y = table(
            "y",
            [Column("yk", ColumnType.INT64), Column("y_xk", ColumnType.INT64)],
            {"yk": np.arange(2), "y_xk": np.arange(2)},
            primary_key="yk",
            foreign_keys=[ForeignKey("y_xk", "x", "xk")],
        )
        with pytest.raises(CatalogError, match="cycle"):
            Database([x, y]).validate()


class TestIndexes:
    def test_create_and_lookup(self):
        db = chain_db()
        db.create_index("a", "a_bk")
        assert db.has_index("a", "a_bk")
        assert db.sorted_index("a", "a_bk") is not None
        assert db.sorted_index("a", "ak") is None
        assert db.indexed_columns("a") == ["a_bk"]

    def test_hash_index(self):
        db = chain_db()
        db.create_hash_index("b", "bk")
        index = db.hash_index("b", "bk")
        assert index is not None
        assert list(index.lookup(2)) == [2]

    def test_clustering_column(self):
        db = chain_db()
        db.create_index("a", "ak", clustered=True)
        assert db.clustering_column("a") == "ak"
        assert db.clustering_column("b") is None

    def test_conflicting_clustering_raises(self):
        db = chain_db()
        db.create_index("a", "ak", clustered=True)
        with pytest.raises(CatalogError, match="already clustered"):
            db.create_index("a", "a_bk", clustered=True)

    def test_missing_column_raises(self):
        with pytest.raises(CatalogError):
            chain_db().create_index("a", "zzz")
