"""Adaptive threshold routing: q-error severity → confidence T.

The paper leaves T a workload-wide constant. The observatory routes
it per query class instead: a class whose estimates have proven
accurate can afford the aggressive (cheap-plan) end of the dial,
while a class with catastrophic observed q-error gets the
conservative end — the paper's own robustness argument, applied with
evidence instead of a guess. Bands come from the accuracy ledger
(:data:`repro.obs.ledger.SEVERITY_BANDS`); the mapping is the
querytorque decision matrix reduced to its planning consequence.
"""

from __future__ import annotations

from repro.core.confidence import AGGRESSIVE, CONSERVATIVE, MODERATE
from repro.obs.ledger import AccuracyLedger, SEVERITY_ORDER
from repro.selection import SelectionPolicy, ThresholdPolicy, resolve_policy

#: Severity band → confidence threshold. Accurate classes plan at the
#: aggressive (near-median) end; anything at major severity or worse
#: pays for headroom. Values may be bare thresholds or any
#: :func:`~repro.selection.resolve_policy` spelling (e.g. route
#: catastrophic classes to ``"cvar:0.9"``).
DEFAULT_BAND_THRESHOLDS = {
    "accurate": AGGRESSIVE,
    "moderate": MODERATE,
    "major": CONSERVATIVE,
    "catastrophic": CONSERVATIVE,
}


class ThresholdRouter:
    """Maps a query class to a selection policy via its ledger.

    ``route`` returns ``None`` until the ledger has evidence for the
    class, so the session's normal default policy applies to cold
    classes; explicit per-call policies/thresholds and query hints
    always win over the router (precedence is enforced by the
    session). Band values are normalized through
    :func:`~repro.selection.resolve_policy`, so a bare float routes as
    the equivalent :class:`~repro.selection.ThresholdPolicy`.
    """

    def __init__(
        self,
        ledger: AccuracyLedger,
        band_thresholds: dict | None = None,
    ) -> None:
        bands = dict(
            DEFAULT_BAND_THRESHOLDS
            if band_thresholds is None
            else band_thresholds
        )
        missing = set(SEVERITY_ORDER) - set(bands)
        if missing:
            raise ValueError(
                f"band_thresholds missing severity bands: {sorted(missing)}"
            )
        self.ledger = ledger
        #: Raw band values as configured (back-compat view).
        self.band_thresholds = bands
        #: Band → :class:`~repro.selection.SelectionPolicy` actually
        #: emitted by :meth:`route`.
        self.band_policies = {
            band: resolve_policy(value) for band, value in bands.items()
        }
        #: Routing decisions taken, keyed by band.
        self.routed_counts: dict[str, int] = {}

    def route(self, query_class: str) -> SelectionPolicy | None:
        """The policy for ``query_class``, or ``None`` if cold."""
        severity = self.ledger.severity(query_class)
        if severity is None:
            return None
        self.routed_counts[severity] = (
            self.routed_counts.get(severity, 0) + 1
        )
        return self.band_policies[severity]

    def routing_table(self) -> dict:
        """Current class → (severity, policy) view for reports.

        ``threshold`` is kept beside ``policy`` for threshold bands
        (``None`` for penalty/histogram bands) so report consumers
        predating the policy API keep reading.
        """
        table = {}
        for query_class in self.ledger.classes():
            severity = self.ledger.severity(query_class)
            if severity is None:
                continue
            routed = self.band_policies[severity]
            table[query_class] = {
                "severity": severity,
                "policy": routed.spec(),
                "threshold": (
                    routed.q
                    if isinstance(routed, ThresholdPolicy)
                    else None
                ),
            }
        return table
