"""Adaptive threshold routing: q-error severity → confidence T.

The paper leaves T a workload-wide constant. The observatory routes
it per query class instead: a class whose estimates have proven
accurate can afford the aggressive (cheap-plan) end of the dial,
while a class with catastrophic observed q-error gets the
conservative end — the paper's own robustness argument, applied with
evidence instead of a guess. Bands come from the accuracy ledger
(:data:`repro.obs.ledger.SEVERITY_BANDS`); the mapping is the
querytorque decision matrix reduced to its planning consequence.
"""

from __future__ import annotations

from repro.core.confidence import AGGRESSIVE, CONSERVATIVE, MODERATE
from repro.obs.ledger import AccuracyLedger, SEVERITY_ORDER

#: Severity band → confidence threshold. Accurate classes plan at the
#: aggressive (near-median) end; anything at major severity or worse
#: pays for headroom.
DEFAULT_BAND_THRESHOLDS = {
    "accurate": AGGRESSIVE,
    "moderate": MODERATE,
    "major": CONSERVATIVE,
    "catastrophic": CONSERVATIVE,
}


class ThresholdRouter:
    """Maps a query class to a confidence threshold via its ledger.

    ``route`` returns ``None`` until the ledger has evidence for the
    class, so the session's normal default threshold applies to cold
    classes; explicit per-call thresholds and query hints always win
    over the router (precedence is enforced by the session).
    """

    def __init__(
        self,
        ledger: AccuracyLedger,
        band_thresholds: dict[str, float] | None = None,
    ) -> None:
        bands = dict(
            DEFAULT_BAND_THRESHOLDS
            if band_thresholds is None
            else band_thresholds
        )
        missing = set(SEVERITY_ORDER) - set(bands)
        if missing:
            raise ValueError(
                f"band_thresholds missing severity bands: {sorted(missing)}"
            )
        self.ledger = ledger
        self.band_thresholds = bands
        #: Routing decisions taken, keyed by band.
        self.routed_counts: dict[str, int] = {}

    def route(self, query_class: str) -> float | None:
        """The threshold for ``query_class``, or ``None`` if cold."""
        severity = self.ledger.severity(query_class)
        if severity is None:
            return None
        self.routed_counts[severity] = (
            self.routed_counts.get(severity, 0) + 1
        )
        return float(self.band_thresholds[severity])

    def routing_table(self) -> dict:
        """Current class → (severity, threshold) view for reports."""
        table = {}
        for query_class in self.ledger.classes():
            severity = self.ledger.severity(query_class)
            if severity is None:
                continue
            table[query_class] = {
                "severity": severity,
                "threshold": float(self.band_thresholds[severity]),
            }
        return table
