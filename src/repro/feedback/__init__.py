"""The estimation observatory: execution feedback into the posterior.

The paper's estimator quantifies its own uncertainty but never learns
from being wrong: traces record ``(k, n, estimate, q-error)`` per span
and the evidence is discarded. This package closes that loop:

* :mod:`repro.feedback.store` — the persistent, epoch-namespaced
  :class:`FeedbackStore` of observed cardinalities keyed by
  ``(table set, expr_key)``, with the atomic save/load discipline of
  the statistics persistence layer;
* :mod:`repro.feedback.harvest` — turns executed plans (or archived
  trace records) into feedback observations whose keys exactly mirror
  the optimizer's ``card(tables, predicate)`` calls;
* :mod:`repro.feedback.provider` — lives in :mod:`.store`:
  :class:`FeedbackProvider` binds one store namespace to an estimator
  and folds observations into the Beta posterior as pseudo-counts;
* :mod:`repro.feedback.router` — maps observed q-error severity bands
  to confidence thresholds per query class (accurate → aggressive,
  catastrophic → conservative);
* :mod:`repro.feedback.controller` — :class:`SessionFeedback`, the
  object a :class:`~repro.service.session.Session` owns: store +
  accuracy ledger + router + per-statistics-version providers.
"""

from repro.feedback.store import (
    FEEDBACK_FORMAT_VERSION,
    FeedbackError,
    FeedbackObservation,
    FeedbackProvider,
    FeedbackStore,
    feedback_key,
)
from repro.feedback.harvest import (
    harvest_plan,
    harvest_traces,
    plan_observations,
)
from repro.feedback.router import DEFAULT_BAND_THRESHOLDS, ThresholdRouter
from repro.feedback.controller import FeedbackConfig, SessionFeedback

__all__ = [
    "DEFAULT_BAND_THRESHOLDS",
    "FEEDBACK_FORMAT_VERSION",
    "FeedbackConfig",
    "FeedbackError",
    "FeedbackObservation",
    "FeedbackProvider",
    "FeedbackStore",
    "SessionFeedback",
    "ThresholdRouter",
    "feedback_key",
    "harvest_plan",
    "harvest_traces",
    "plan_observations",
]
