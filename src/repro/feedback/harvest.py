"""Harvesting: executed plans and trace records → feedback records.

The whole trick of the feedback loop is that a stored observation only
helps if its key matches a key the optimizer will ask about. The
optimizer estimates ``card(tables, pred_for(tables))`` where
``pred_for`` conjoins the per-table selection conjuncts of ``tables``
in sorted-table order, and — once, at the root when cross-table
conjuncts exist — ``card(all tables, query.predicate)``. The
harvester mirrors that construction exactly (see
:func:`predicate_for_tables`), so the ``(tables, expr_key)`` pairs it
records are byte-identical to the lookups the next prepare performs.

Two entry points:

* :func:`harvest_plan` — re-executes the topmost relational operator
  per distinct table set of an executed plan (the same deterministic
  subtree re-execution the tracing layer's ``operator_spans`` uses)
  and records each observed cardinality;
* :func:`harvest_traces` — replays archived trace records (the
  experiment runner's output) through the per-operator execution
  spans, which since this release carry their covered ``tables``.
  Aggregation in the store is commutative, so harvesting the same
  records in any order — from any worker count — produces
  byte-identical store contents.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.catalog import Database
from repro.engine import (
    ExecutionContext,
    HashAggregate,
    Limit,
    PhysicalOperator,
    Sort,
)
from repro.expressions import Expr, conjunction, expr_key, predicates_by_table
from repro.feedback.store import FeedbackStore
from repro.obs.execution import operator_tables
from repro.optimizer import SPJQuery

#: Operators whose output cardinality is not the SPJ result over their
#: covered tables (aggregation collapses, limit truncates); their
#: children carry the observable cardinalities. ``Sort`` preserves
#: cardinality but is skipped too — dedup then lands on its child,
#: which covers the identical table set.
_NON_RELATIONAL = (HashAggregate, Limit, Sort)


def predicate_for_tables(
    query: SPJQuery, tables: frozenset[str]
) -> Expr | None:
    """The predicate the optimizer pairs with this table set.

    Mirrors ``PlanningContext.pred_for`` — per-table conjuncts joined
    in sorted-table order — except at the full table set when
    cross-table conjuncts exist, where the optimizer's final filter
    estimate uses the whole query predicate.
    """
    per_table = predicates_by_table(query.predicate)
    cross = per_table.pop("", None)
    if cross is not None and set(tables) == set(query.tables):
        return query.predicate
    return conjunction([per_table.get(name) for name in sorted(tables)])


def plan_observations(
    query: SPJQuery, plan: PhysicalOperator, database: Database
) -> list[dict]:
    """Observed cardinalities from one executed plan.

    Walks the plan pre-order and, for the *topmost* relational
    operator of each distinct table set, re-executes the subtree in a
    fresh context (deterministic, so "re-executing" is just reading
    the true cardinality) and emits one observation dict:
    ``{"tables", "predicate_key", "observed_rows", "estimated_rows"}``.
    """
    observations: list[dict] = []
    seen: set[frozenset[str]] = set()
    for op in plan.walk():
        if isinstance(op, _NON_RELATIONAL):
            continue
        tables = operator_tables(op)
        if not tables or tables in seen:
            continue
        seen.add(tables)
        ctx = ExecutionContext(database)
        observed = op.execute(ctx).num_rows
        estimated = op.est_rows
        if isinstance(estimated, np.ndarray):
            flat = estimated.reshape(-1)
            estimated = float(flat[0]) if flat.size == 1 else None
        elif estimated is not None:
            estimated = float(estimated)
        predicate = predicate_for_tables(query, tables)
        observations.append(
            {
                "tables": tuple(sorted(tables)),
                "predicate_key": expr_key(predicate),
                "observed_rows": float(observed),
                "estimated_rows": estimated,
            }
        )
    return observations


def harvest_plan(
    store: FeedbackStore,
    namespace: str,
    query: SPJQuery,
    plan: PhysicalOperator,
    database: Database,
) -> int:
    """Record every observation of one executed plan; returns count."""
    observations = plan_observations(query, plan, database)
    for obs in observations:
        store.record(
            namespace,
            tables=obs["tables"],
            predicate_key=obs["predicate_key"],
            observed_rows=obs["observed_rows"],
            estimated_rows=obs["estimated_rows"],
        )
    return len(observations)


#: Operator-label prefixes skipped when harvesting from trace records
#: (the trace analogue of ``_NON_RELATIONAL``).
_NON_RELATIONAL_LABELS = ("HashAggregate", "Limit", "Sort")


def harvest_traces(
    store: FeedbackStore,
    records: Iterable[dict],
    *,
    query_for: Callable[[dict], SPJQuery],
    namespace_for: Callable[[dict], str] | None = None,
) -> int:
    """Harvest archived trace records into the store.

    ``query_for(record)`` reconstructs the SPJ query a record executed
    (e.g. by re-instantiating its workload template at
    ``record["param"]``); ``namespace_for(record)`` picks the store
    namespace (default ``"<template>/seed=<seed>"`` — deterministic,
    so the store's bytes are independent of how the records were
    produced or ordered). Returns the number of observations recorded.
    """
    if namespace_for is None:
        namespace_for = (
            lambda record: f"{record['template']}/seed={record['seed']}"
        )
    recorded = 0
    for record in records:
        execution = record.get("execution")
        if not execution:
            continue
        operators = execution.get("operators")
        if not operators:
            continue
        query = query_for(record)
        namespace = namespace_for(record)
        seen: set[frozenset[str]] = set()
        for span in operators:
            label = span.get("operator", "")
            if label.startswith(_NON_RELATIONAL_LABELS):
                continue
            tables = frozenset(span.get("tables") or ())
            if not tables or tables in seen:
                continue
            seen.add(tables)
            predicate = predicate_for_tables(query, tables)
            store.record(
                namespace,
                tables=tables,
                predicate_key=expr_key(predicate),
                observed_rows=float(span["actual_rows"]),
                estimated_rows=span.get("estimated_rows"),
            )
            recorded += 1
    return recorded
