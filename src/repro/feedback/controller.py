"""The session-facing feedback controller.

:class:`SessionFeedback` bundles the four moving parts of the
observatory — store, accuracy ledger, threshold router, and the
per-statistics-version :class:`FeedbackProvider` bindings — behind
the narrow interface the :class:`~repro.service.session.Session`
drives:

* ``provider_for(version)`` when (re)building its robust estimator,
  so folds are fenced to the live statistics epoch;
* ``route(query)`` when resolving an effective threshold (only when
  neither a per-call threshold nor a query hint was given);
* ``observe(...)`` after each execution, harvesting the plan's
  observed cardinalities into the epoch's namespace and feeding the
  plan-level q-error to the ledger (which may raise an
  ``estimation-drift`` degradation event through ``on_degradation``).

Namespacing is the stale-feedback fence: observations harvested under
statistics version ``v`` land in namespace ``epoch=v`` and only the
provider bound to ``epoch=v`` can fold them. A hot-swap moves the
session to a new version, so old feedback becomes structurally
unreachable — no invalidation pass required, and the refusal is
counted (``stale_refused``) rather than silent.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.feedback.harvest import harvest_plan
from repro.feedback.router import DEFAULT_BAND_THRESHOLDS, ThresholdRouter
from repro.feedback.store import FeedbackProvider, FeedbackStore
from repro.obs.ledger import AccuracyLedger
from repro.obs.trace import q_error


def default_query_class(query) -> str:
    """The default class identity: the query's sorted table set.

    Parameterized instances of one join template share a class — the
    granularity severity routing wants — while structurally different
    queries never alias.
    """
    return "+".join(sorted(query.tables))


@dataclass
class FeedbackConfig:
    """Tuning knobs for the feedback loop."""

    #: Pseudo-count mass folded per stored observation.
    weight: float = 64.0
    #: Observation count cap when scaling the folded mass.
    max_observations: int = 8
    #: Accuracy-ledger recent-window length per query class.
    window: int = 64
    #: Observations frozen as each class's drift baseline.
    baseline: int = 16
    #: Severity band → threshold map for the router.
    band_thresholds: dict = field(
        default_factory=lambda: dict(DEFAULT_BAND_THRESHOLDS)
    )
    #: Query → class-name function (defaults to the sorted table set).
    classifier: Callable | None = None
    #: The namespace fence. Leave on; ``False`` exists only to
    #: demonstrate the stale-feedback corruption in regression tests.
    enforce_namespace: bool = True


class SessionFeedback:
    """Store + ledger + router, bound to one session."""

    def __init__(
        self,
        store: FeedbackStore | None = None,
        config: FeedbackConfig | None = None,
        *,
        registry=None,
        on_degradation=None,
    ) -> None:
        self.config = config or FeedbackConfig()
        self.store = store if store is not None else FeedbackStore()
        self.ledger = AccuracyLedger(
            registry=registry,
            window=self.config.window,
            baseline=self.config.baseline,
            on_degradation=on_degradation,
        )
        self.router = ThresholdRouter(
            self.ledger, self.config.band_thresholds
        )
        self._classifier = self.config.classifier or default_query_class
        self._lock = threading.Lock()
        self._providers: dict[str, FeedbackProvider] = {}
        #: Executions observed (harvest passes).
        self.observations = 0

    # ------------------------------------------------------------------
    @staticmethod
    def namespace_for_version(version: int) -> str:
        return f"epoch={version}"

    @property
    def generation(self) -> int:
        """Mutation counter folded into plan-cache/memo keys."""
        return self.store.generation

    def provider_for(self, version: int) -> FeedbackProvider:
        """The (cached) provider fenced to one statistics version."""
        namespace = self.namespace_for_version(version)
        with self._lock:
            provider = self._providers.get(namespace)
            if provider is None:
                provider = FeedbackProvider(
                    self.store,
                    namespace,
                    weight=self.config.weight,
                    max_observations=self.config.max_observations,
                    enforce_namespace=self.config.enforce_namespace,
                )
                self._providers[namespace] = provider
            return provider

    # ------------------------------------------------------------------
    def query_class(self, query) -> str:
        return self._classifier(query)

    def route(self, query):
        """The routed :class:`~repro.selection.SelectionPolicy` for a
        query's class (``None`` = cold)."""
        return self.router.route(self.query_class(query))

    # ------------------------------------------------------------------
    def observe(
        self,
        query,
        plan,
        database,
        *,
        estimated_rows: float | None,
        actual_rows: int,
        statistics_version: int,
    ) -> None:
        """Harvest one executed plan and ledger its plan-level q-error."""
        namespace = self.namespace_for_version(statistics_version)
        harvest_plan(self.store, namespace, query, plan, database)
        self.observations += 1
        error = q_error(estimated_rows, actual_rows)
        if error is not None:
            self.ledger.ingest(
                self.query_class(query),
                error,
                statistics_version=statistics_version,
            )

    # ------------------------------------------------------------------
    def provider_counters(self) -> dict:
        with self._lock:
            return {
                namespace: provider.counters()
                for namespace, provider in sorted(self._providers.items())
            }

    def stale_hits(self) -> int:
        """Total folds served from a foreign namespace (must stay 0)."""
        return sum(
            c["stale_hits"] for c in self.provider_counters().values()
        )

    def report(self) -> dict:
        """JSON-ready snapshot of the whole loop's state."""
        return {
            "observations": self.observations,
            "store": self.store.report(),
            "ledger": self.ledger.report(),
            "routing": self.router.routing_table(),
            "routed_counts": dict(self.router.routed_counts),
            "providers": self.provider_counters(),
        }
