"""The feedback store: observed cardinalities, namespaced by epoch.

One :class:`FeedbackStore` holds everything a workload has learned
about its own estimates: per ``(table set, expr_key)`` record, the
commutative aggregates of every observed cardinality (count, sum,
min, max) plus the matching estimate aggregates for q-error
reporting. Aggregation is order-independent, so harvesting the same
trace set in any order — or from any number of worker processes —
produces byte-identical store contents.

Records live under a **namespace**. The session layer namespaces by
statistics epoch (``epoch=<version>``), which is the invariant that
makes hot-swaps safe: a :class:`FeedbackProvider` bound to one
namespace structurally cannot see observations harvested under a
different statistics version, so a swap or archive reload can never
alias stale feedback into a fresh posterior. Offline harvesters pick
deterministic namespaces (e.g. ``exp1/seed=3``) so store bytes stay
reproducible across worker counts.

Persistence follows the statistics-archive discipline: serialize to
canonical JSON, write a staging sibling, ``os.replace`` into place;
loads validate the format version and every record field and raise
:class:`FeedbackError` on any corruption.
"""

from __future__ import annotations

import json
import math
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.core.prior import Prior
from repro.errors import ReproError
from repro.obs.trace import QERROR_FLOOR

#: Version stamped on (and required of) every persisted store.
FEEDBACK_FORMAT_VERSION = 1

_RECORD_FIELDS = (
    "tables",
    "observations",
    "rows_sum",
    "rows_min",
    "rows_max",
    "est_sum",
    "qerr_log_sum",
    "qerr_max",
)


class FeedbackError(ReproError):
    """A feedback store is malformed, or an operation was invalid."""


def feedback_key(tables: Iterable[str], predicate_key: str) -> str:
    """The store key of one estimated subexpression.

    ``predicate_key`` is :func:`repro.expressions.expr_key` of the
    exact predicate the optimizer passes to ``card(tables, ...)`` —
    matching keys is what lets stored observations find the posterior
    they correct.
    """
    return f"{'+'.join(sorted(tables))}|{predicate_key}"


@dataclass(frozen=True)
class FeedbackObservation:
    """Aggregated feedback for one key within one namespace."""

    tables: tuple[str, ...]
    observations: int
    rows_sum: float
    rows_min: float
    rows_max: float
    est_sum: float
    qerr_log_sum: float
    qerr_max: float

    @property
    def mean_rows(self) -> float:
        return self.rows_sum / self.observations

    @property
    def geomean_q_error(self) -> float:
        return 10 ** (self.qerr_log_sum / self.observations)


class FeedbackStore:
    """Thread-safe, persistable map of observed cardinalities.

    ``generation`` increments on every mutation; the session layer
    folds it into plan-cache and estimator-memo keys so a new
    observation invalidates exactly the cached work it should.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._namespaces: dict[str, dict[str, dict]] = {}
        self._generation = 0

    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        with self._lock:
            return self._generation

    def record(
        self,
        namespace: str,
        *,
        tables: Iterable[str],
        predicate_key: str,
        observed_rows: float,
        estimated_rows: float | None = None,
    ) -> str:
        """Fold one observed cardinality into the store; returns the key."""
        if not namespace:
            raise FeedbackError("feedback namespace must be non-empty")
        tables = tuple(sorted(tables))
        if not tables:
            raise FeedbackError("feedback record needs at least one table")
        key = feedback_key(tables, predicate_key)
        observed = float(observed_rows)
        estimated = float(estimated_rows) if estimated_rows is not None else 0.0
        if estimated_rows is not None:
            est = max(float(estimated_rows), QERROR_FLOOR)
            act = max(observed, QERROR_FLOOR)
            q = max(est / act, act / est)
        else:
            q = 1.0
        with self._lock:
            slot = self._namespaces.setdefault(namespace, {})
            record = slot.get(key)
            if record is None:
                record = {
                    "tables": list(tables),
                    "observations": 0,
                    "rows_sum": 0.0,
                    "rows_min": math.inf,
                    "rows_max": -math.inf,
                    "est_sum": 0.0,
                    "qerr_log_sum": 0.0,
                    "qerr_max": 1.0,
                }
                slot[key] = record
            record["observations"] += 1
            record["rows_sum"] += observed
            record["rows_min"] = min(record["rows_min"], observed)
            record["rows_max"] = max(record["rows_max"], observed)
            record["est_sum"] += estimated
            record["qerr_log_sum"] += math.log10(q)
            record["qerr_max"] = max(record["qerr_max"], q)
            self._generation += 1
        return key

    # ------------------------------------------------------------------
    def observation(
        self, namespace: str, tables: Iterable[str], predicate_key: str
    ) -> FeedbackObservation | None:
        """The aggregate for one key in one namespace, or ``None``."""
        key = feedback_key(tables, predicate_key)
        with self._lock:
            record = self._namespaces.get(namespace, {}).get(key)
            if record is None:
                return None
            return self._observation_from(record)

    def lookup_any_namespace(
        self, tables: Iterable[str], predicate_key: str
    ) -> tuple[str, FeedbackObservation] | None:
        """The key's aggregate from *any* namespace (first sorted hit).

        This deliberately ignores the namespace fence. It exists only
        so tests can demonstrate the corruption that un-namespaced
        feedback causes across a statistics hot-swap; production
        callers go through :meth:`observation`.
        """
        key = feedback_key(tables, predicate_key)
        with self._lock:
            for namespace in sorted(self._namespaces):
                record = self._namespaces[namespace].get(key)
                if record is not None:
                    return namespace, self._observation_from(record)
        return None

    @staticmethod
    def _observation_from(record: dict) -> FeedbackObservation:
        return FeedbackObservation(
            tables=tuple(record["tables"]),
            observations=int(record["observations"]),
            rows_sum=float(record["rows_sum"]),
            rows_min=float(record["rows_min"]),
            rows_max=float(record["rows_max"]),
            est_sum=float(record["est_sum"]),
            qerr_log_sum=float(record["qerr_log_sum"]),
            qerr_max=float(record["qerr_max"]),
        )

    # ------------------------------------------------------------------
    def namespaces(self) -> list[str]:
        with self._lock:
            return sorted(self._namespaces)

    def keys(self, namespace: str) -> list[str]:
        with self._lock:
            return sorted(self._namespaces.get(namespace, {}))

    def size(self, namespace: str | None = None) -> int:
        """Number of keys in one namespace (or across all of them)."""
        with self._lock:
            if namespace is not None:
                return len(self._namespaces.get(namespace, {}))
            return sum(len(slot) for slot in self._namespaces.values())

    def reset(self, namespace: str | None = None) -> int:
        """Drop one namespace (or everything); returns keys dropped."""
        with self._lock:
            if namespace is None:
                dropped = sum(
                    len(slot) for slot in self._namespaces.values()
                )
                self._namespaces.clear()
            else:
                dropped = len(self._namespaces.pop(namespace, {}))
            if dropped:
                self._generation += 1
            return dropped

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready snapshot (deterministic, sorted keys)."""
        with self._lock:
            return {
                "format_version": FEEDBACK_FORMAT_VERSION,
                "namespaces": {
                    namespace: {
                        key: {
                            field: (
                                list(record[field])
                                if field == "tables"
                                else record[field]
                            )
                            for field in _RECORD_FIELDS
                        }
                        for key, record in sorted(slot.items())
                    }
                    for namespace, slot in sorted(self._namespaces.items())
                },
            }

    def to_bytes(self) -> bytes:
        """Canonical serialized form — byte-identical for equal contents."""
        return (
            json.dumps(
                self.to_dict(), sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
            + b"\n"
        )

    def save(self, path: str | Path) -> Path:
        """Atomically persist the store to ``path``.

        Mirrors the statistics-archive discipline: serialize fully,
        write a staging sibling, then ``os.replace`` into place so a
        reader can never observe a half-written store.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        staging = path.parent / f".{path.name}.staging-{os.getpid()}"
        data = self.to_bytes()
        try:
            with staging.open("wb") as handle:
                handle.write(data)
            os.replace(staging, path)
        except BaseException:
            staging.unlink(missing_ok=True)
            raise
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FeedbackStore":
        """Load and validate a persisted store.

        Every corruption mode — unreadable bytes, wrong format
        version, structurally invalid records — raises
        :class:`FeedbackError`.
        """
        path = Path(path)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise FeedbackError(
                f"feedback store {path} unreadable: {exc}"
            ) from None
        if not isinstance(raw, dict):
            raise FeedbackError(f"feedback store {path} is not an object")
        version = raw.get("format_version")
        if version != FEEDBACK_FORMAT_VERSION:
            raise FeedbackError(
                f"feedback store {path}: format version {version!r} "
                f"unsupported (expected {FEEDBACK_FORMAT_VERSION})"
            )
        namespaces = raw.get("namespaces")
        if not isinstance(namespaces, dict):
            raise FeedbackError(
                f"feedback store {path}: missing namespaces object"
            )
        store = cls()
        for namespace, slot in namespaces.items():
            if not isinstance(slot, dict):
                raise FeedbackError(
                    f"feedback store {path}: namespace {namespace!r} "
                    "is not an object"
                )
            for key, record in slot.items():
                if not isinstance(record, dict) or not all(
                    field in record for field in _RECORD_FIELDS
                ):
                    raise FeedbackError(
                        f"feedback store {path}: record {key!r} in "
                        f"{namespace!r} is missing fields"
                    )
                try:
                    clean = {
                        "tables": [str(t) for t in record["tables"]],
                        "observations": int(record["observations"]),
                        "rows_sum": float(record["rows_sum"]),
                        "rows_min": float(record["rows_min"]),
                        "rows_max": float(record["rows_max"]),
                        "est_sum": float(record["est_sum"]),
                        "qerr_log_sum": float(record["qerr_log_sum"]),
                        "qerr_max": float(record["qerr_max"]),
                    }
                except (TypeError, ValueError) as exc:
                    raise FeedbackError(
                        f"feedback store {path}: record {key!r} in "
                        f"{namespace!r} has invalid values ({exc})"
                    ) from None
                if clean["observations"] < 1:
                    raise FeedbackError(
                        f"feedback store {path}: record {key!r} in "
                        f"{namespace!r} has no observations"
                    )
                store._namespaces.setdefault(namespace, {})[key] = clean
        return store

    # ------------------------------------------------------------------
    def report(self) -> dict:
        """Per-namespace summary for the ``repro feedback`` CLI."""
        with self._lock:
            out: dict = {}
            for namespace in sorted(self._namespaces):
                slot = self._namespaces[namespace]
                total_obs = sum(r["observations"] for r in slot.values())
                out[namespace] = {
                    "keys": len(slot),
                    "observations": total_obs,
                    "records": {
                        key: {
                            "tables": list(record["tables"]),
                            "observations": record["observations"],
                            "mean_rows": record["rows_sum"]
                            / record["observations"],
                            "geomean_q_error": 10
                            ** (
                                record["qerr_log_sum"]
                                / record["observations"]
                            ),
                            "max_q_error": record["qerr_max"],
                        }
                        for key, record in sorted(slot.items())
                    },
                }
            return out


class FeedbackProvider:
    """One store namespace bound to an estimator as pseudo-counts.

    The provider is what the :class:`RobustCardinalityEstimator` calls
    on its hot path. Given the table set, predicate key, and the total
    (cross-product) row count the estimator is about to scale its
    selectivity by, it returns extra Beta pseudo-counts
    ``(extra_alpha, extra_beta)`` representing the stored
    observations: observed selectivity ``s = mean_rows / total`` with
    mass ``min(observations, max_observations) * weight``.

    Namespace enforcement is the stale-feedback fence. With
    ``enforce_namespace=True`` (the default, and the only mode the
    session layer constructs), a lookup consults exactly the bound
    namespace and counts any key that exists *only* under foreign
    namespaces as ``stale_refused``. ``enforce_namespace=False``
    reproduces the pre-fence behaviour — serving whatever namespace
    has the key, counting ``stale_hits`` — and exists solely for the
    regression test that shows a hot-swap corrupting a fresh
    posterior.
    """

    def __init__(
        self,
        store: FeedbackStore,
        namespace: str,
        *,
        weight: float = 64.0,
        max_observations: int = 8,
        enforce_namespace: bool = True,
    ) -> None:
        if weight <= 0:
            raise FeedbackError("feedback weight must be positive")
        self.store = store
        self.namespace = namespace
        self.weight = float(weight)
        self.max_observations = int(max_observations)
        self.enforce_namespace = bool(enforce_namespace)
        self.folds = 0
        self.misses = 0
        self.stale_refused = 0
        self.stale_hits = 0

    @property
    def generation(self) -> int:
        """The underlying store's mutation counter (cache token)."""
        return self.store.generation

    def pseudo_counts(
        self, tables: Iterable[str], predicate_key: str, total_rows: float
    ) -> tuple[float, float, dict] | None:
        """Extra Beta pseudo-counts for one lookup, or ``None``.

        Returns ``(extra_alpha, extra_beta, attribution)`` where the
        attribution dict is what the estimator stamps into the
        feedback span.
        """
        if total_rows <= 0:
            return None
        obs = self.store.observation(self.namespace, tables, predicate_key)
        source_namespace = self.namespace
        if obs is None:
            if self.enforce_namespace:
                foreign = self.store.lookup_any_namespace(
                    tables, predicate_key
                )
                if foreign is not None:
                    self.stale_refused += 1
                else:
                    self.misses += 1
                return None
            foreign = self.store.lookup_any_namespace(tables, predicate_key)
            if foreign is None:
                self.misses += 1
                return None
            source_namespace, obs = foreign
            self.stale_hits += 1
        selectivity = min(max(obs.mean_rows / float(total_rows), 0.0), 1.0)
        mass = self.weight * min(obs.observations, self.max_observations)
        extra_alpha = mass * selectivity
        extra_beta = mass * (1.0 - selectivity)
        self.folds += 1
        return (
            extra_alpha,
            extra_beta,
            {
                "namespace": source_namespace,
                "observations": obs.observations,
                "observed_selectivity": selectivity,
                "pseudo_mass": mass,
            },
        )

    def adjusted_prior(self, prior: Prior, extra: tuple[float, float]) -> Prior:
        """Fold pseudo-counts into a prior (keeps the LUT path usable)."""
        return Prior(
            prior.alpha + extra[0],
            prior.beta + extra[1],
            name=f"{prior.name}+feedback",
        )

    def counters(self) -> dict:
        return {
            "folds": self.folds,
            "misses": self.misses,
            "stale_refused": self.stale_refused,
            "stale_hits": self.stale_hits,
        }
