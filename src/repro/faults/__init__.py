"""Deterministic fault injection and graceful-degradation validation.

The paper's claim is *robustness*: estimation should degrade
predictably when statistics are missing or unreliable (§3.5), and the
experiments stress seed-to-seed variance (§6.2) precisely because the
happy path proves nothing. Related work makes the same argument from
the other side — PARQO and probabilistic robust plan evaluation both
validate optimizers *under injected estimation error*. This package is
that validation layer for the whole statistics lifecycle:

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultSpec`,
  a seeded, declarative description of which faults to inject
  (corrupted statistics archives, mid-session staleness, failing or
  stalling estimators, cache pressure), plus the deterministic
  :func:`generate_fault_plans` sweep generator;
* :mod:`repro.faults.injectors` — the fault implementations: archive
  corruptors (truncated ``.npz``, manifest/array mismatch,
  out-of-range row ids, …) and the :class:`FaultyEstimator` wrapper;
* :mod:`repro.faults.invariants` — the properties that must survive
  any fault, including the §3.5 magic-number envelope;
* :mod:`repro.faults.harness` — :class:`ChaosHarness`, which sweeps
  fault plans against a :class:`~repro.service.Session` and checks
  four invariants on every plan:

  1. **executable-plan** — the planner always returns a plan that
     executes, no matter what was injected;
  2. **fallback-envelope** — statistics-free estimates stay inside
     the magic-distribution envelope;
  3. **cache-versioning** — the plan cache never serves a plan across
     a statistics change;
  4. **degradation-attributed** — every degradation leaves a
     :class:`~repro.obs.DegradationEvent` and a metrics increment
     behind; nothing degrades silently.

Run a sweep from the command line with ``python -m repro chaos``.
"""

from repro.faults.plan import (
    ARCHIVE_FAULTS,
    FAULT_KINDS,
    RUNTIME_FAULTS,
    FaultPlan,
    FaultSpec,
    generate_fault_plans,
)
from repro.faults.injectors import FaultyEstimator, apply_archive_fault
from repro.faults.invariants import (
    INVARIANTS,
    magic_envelope,
    span_violations,
)
from repro.faults.harness import ChaosHarness, ChaosReport, PlanOutcome

__all__ = [
    "ARCHIVE_FAULTS",
    "ChaosHarness",
    "ChaosReport",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FaultyEstimator",
    "INVARIANTS",
    "PlanOutcome",
    "RUNTIME_FAULTS",
    "apply_archive_fault",
    "generate_fault_plans",
    "magic_envelope",
    "span_violations",
]
