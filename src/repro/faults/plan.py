"""Declarative, seeded fault plans.

A :class:`FaultPlan` says *what goes wrong*: a tuple of
:class:`FaultSpec` atoms, each naming one fault kind plus its
parameters. Plans carry their own seed, so a sweep is reproducible —
the same ``(seed, count)`` always generates the same plans, and every
random choice an injector makes derives from the plan's seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError


class FaultPlanError(ReproError):
    """A fault plan or spec was configured inconsistently."""


#: Faults applied to a persisted statistics archive before attach.
ARCHIVE_FAULTS = (
    "archive-truncate-npz",
    "archive-manifest-mismatch",
    "archive-oob-row-ids",
    "archive-missing-npz",
    "archive-garbage-manifest",
)

#: Faults applied to a live session mid-workload.
RUNTIME_FAULTS = (
    "drop-synopsis",
    "drop-sample",
    "drop-histograms",
    "stale-statistics",
    "estimator-error",
    "estimator-delay",
    "cache-pressure",
)

FAULT_KINDS = ARCHIVE_FAULTS + RUNTIME_FAULTS


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    table:
        Target table for archive corruptions and statistic drops
        (``None`` lets the injector pick one deterministically).
    rate:
        Per-call firing probability for ``estimator-error``.
    delay_seconds:
        Stall per estimator call for ``estimator-delay``.
    """

    kind: str
    table: str | None = None
    rate: float = 1.0
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultPlanError(f"rate must be in [0, 1], got {self.rate}")
        if self.delay_seconds < 0:
            raise FaultPlanError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )

    @property
    def is_archive_fault(self) -> bool:
        return self.kind in ARCHIVE_FAULTS

    def describe(self) -> str:
        parts = [self.kind]
        if self.table is not None:
            parts.append(f"table={self.table}")
        if self.kind == "estimator-error":
            parts.append(f"rate={self.rate:g}")
        if self.kind == "estimator-delay":
            parts.append(f"delay={self.delay_seconds:g}s")
        return "(" + ", ".join(parts) + ")"


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of faults to inject together."""

    name: str
    seed: int
    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    @property
    def archive_specs(self) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.is_archive_fault)

    @property
    def runtime_specs(self) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if not s.is_archive_fault)

    def describe(self) -> str:
        body = " ".join(spec.describe() for spec in self.specs) or "(none)"
        return f"{self.name} [seed={self.seed}] {body}"


def generate_fault_plans(
    count: int,
    seed: int = 0,
    tables: tuple[str, ...] = (),
    max_faults: int = 3,
) -> list[FaultPlan]:
    """A deterministic sweep of ``count`` fault plans.

    Each plan draws one to ``max_faults`` distinct fault kinds (so one
    plan can, say, corrupt the archive *and* stall the estimator), with
    per-kind parameters derived from ``seed``. The same arguments
    always produce the same plans.
    """
    if count < 1:
        raise FaultPlanError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(seed)
    plans = []
    for index in range(count):
        n_faults = int(rng.integers(1, max_faults + 1))
        kinds = [
            FAULT_KINDS[k]
            for k in rng.choice(len(FAULT_KINDS), size=n_faults, replace=False)
        ]
        specs = []
        for kind in sorted(kinds):  # stable spec order within a plan
            table = None
            if tables and (
                kind in ARCHIVE_FAULTS or kind.startswith("drop-")
            ):
                table = tables[int(rng.integers(0, len(tables)))]
            specs.append(
                FaultSpec(
                    kind=kind,
                    table=table,
                    rate=float(rng.uniform(0.05, 0.5))
                    if kind == "estimator-error"
                    else 1.0,
                    delay_seconds=0.001 if kind == "estimator-delay" else 0.0,
                )
            )
        plans.append(
            FaultPlan(
                name=f"plan-{index:03d}",
                seed=int(rng.integers(0, 2**31 - 1)),
                specs=tuple(specs),
            )
        )
    return plans
