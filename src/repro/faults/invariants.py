"""The properties that must survive any injected fault.

The harness checks four invariants; this module holds the pieces that
are pure functions of data, so tests can exercise them directly.

The **§3.5 envelope**: a statistics-free predicate is priced at the
``T``-th percentile of a magic distribution whose mean is one of the
paper's magic numbers (0.1 for equality up to 1/3 for inequality, with
``NOT`` complements reaching 0.9). A fallback estimate for a
conjunction of ``c`` atoms therefore lies between
``ppf_T(Beta(mean=0.1))^c`` (every atom at the most selective magic
number) and ``ppf_T(Beta(mean=0.9))`` (one atom at the least
selective). Anything outside that band did not come from the
documented fallback path.
"""

from __future__ import annotations

from repro.core.magic import MagicDistribution

#: The invariant names the chaos harness reports against.
INVARIANTS = (
    "executable-plan",
    "fallback-envelope",
    "cache-versioning",
    "degradation-attributed",
)

#: Extremes of the magic-number table (§3.5): the most selective mean
#: (equality, 0.1) and its NOT-complement (0.9).
_MAGIC_MEAN_LO = 0.1
_MAGIC_MEAN_HI = 0.9


def magic_envelope(
    threshold: float, conjuncts: int = 1, concentration: float = 4.0
) -> tuple[float, float]:
    """The [lo, hi] selectivity band a magic fallback may occupy.

    ``conjuncts`` bounds how many atoms the fallback may have
    multiplied together (each one shrinks the lower edge).
    """
    lo = MagicDistribution(_MAGIC_MEAN_LO, concentration).selectivity(
        threshold
    ) ** max(int(conjuncts), 1)
    hi = MagicDistribution(_MAGIC_MEAN_HI, concentration).selectivity(threshold)
    return lo, hi


def _as_lanes(value) -> list:
    """A span field that is scalar (point path) or a list (grid path)."""
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]


def span_violations(
    record: dict, conjunct_bound: int, concentration: float = 4.0
) -> list[str]:
    """Envelope violations in one query-trace record.

    Every estimation span's quantile must be a valid selectivity;
    spans attributed to the magic fallback must additionally sit
    inside :func:`magic_envelope` for their recorded threshold.
    """
    violations: list[str] = []
    for span in record.get("estimation", ()):
        source = span.get("source")
        quantiles = _as_lanes(span.get("quantile"))
        thresholds = _as_lanes(span.get("threshold"))
        if len(thresholds) == 1 and len(quantiles) > 1:
            thresholds = thresholds * len(quantiles)
        for quantile, threshold in zip(quantiles, thresholds):
            if quantile is None:
                continue
            if not 0.0 <= quantile <= 1.0:
                violations.append(
                    f"fallback-envelope: span over {span.get('tables')} "
                    f"has quantile {quantile!r} outside [0, 1]"
                )
                continue
            if source == "magic" and threshold is not None:
                lo, hi = magic_envelope(
                    threshold, conjunct_bound, concentration
                )
                if not lo <= quantile <= hi:
                    violations.append(
                        "fallback-envelope: magic span over "
                        f"{span.get('tables')} at T={threshold:g} gave "
                        f"{quantile:.6g}, outside [{lo:.6g}, {hi:.6g}]"
                    )
    return violations
