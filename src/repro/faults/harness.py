"""The chaos harness: sweep fault plans, check the invariants.

For each :class:`~repro.faults.plan.FaultPlan` the harness builds a
fresh :class:`~repro.service.Session`, attaches a (possibly corrupted)
copy of a pristine statistics archive, injects the plan's runtime
faults, and drives the workload twice — the second round probes the
plan cache. Every query must plan and execute; cached plans must be
indistinguishable from freshly planned ones under the *current*
statistics; statistics-free estimates must stay inside the §3.5
envelope; and every degradation must be attributed through
:meth:`Session.degradations` and the metrics registry.
"""

from __future__ import annotations

import pathlib
import shutil
import tempfile
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ReproError
from repro.expressions import split_conjuncts
from repro.faults.injectors import FaultyEstimator, apply_archive_fault
from repro.faults.invariants import span_violations
from repro.faults.plan import FaultPlan
from repro.obs import DegradationEvent
from repro.service import DEGRADED, Session
from repro.sql import parse_query
from repro.stats import StatisticsManager, save_statistics


@dataclass
class PlanOutcome:
    """What one fault plan did to one session."""

    plan: FaultPlan
    injected: tuple[str, ...]
    violations: tuple[str, ...]
    degradations: tuple[DegradationEvent, ...]
    queries_run: int

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class ChaosReport:
    """Aggregated sweep results."""

    outcomes: list[PlanOutcome]

    @property
    def passed(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def num_violations(self) -> int:
        return sum(len(outcome.violations) for outcome in self.outcomes)

    def format_summary(self, verbose: bool = False) -> str:
        lines = []
        degraded = sum(1 for o in self.outcomes if o.degradations)
        lines.append(
            f"chaos sweep: {len(self.outcomes)} fault plans, "
            f"{degraded} degraded gracefully, "
            f"{self.num_violations} invariant violations"
        )
        for outcome in self.outcomes:
            status = "ok" if outcome.ok else "FAIL"
            if verbose or not outcome.ok:
                lines.append(f"  [{status}] {outcome.plan.describe()}")
                for item in outcome.injected:
                    lines.append(f"      injected: {item}")
                for event in outcome.degradations:
                    lines.append(
                        f"      degraded: {event.reason} ({event.detail[:70]})"
                    )
                for violation in outcome.violations:
                    lines.append(f"      VIOLATION: {violation}")
        lines.append("PASS" if self.passed else "FAIL")
        return "\n".join(lines)


class ChaosHarness:
    """Sweep seeded fault plans against session-level invariants.

    Parameters
    ----------
    database:
        The catalog and data under test (shared across plans; never
        mutated).
    queries:
        SQL statements the workload runs under every plan.
    sample_size / threshold / statistics_seed:
        Session and statistics-build configuration.
    workdir:
        Where archives are staged (a temporary directory by default).
    """

    def __init__(
        self,
        database,
        queries,
        *,
        sample_size: int = 150,
        threshold: float | str = 0.8,
        statistics_seed: int = 17,
        workdir=None,
    ) -> None:
        self.database = database
        self.queries = list(queries)
        if not self.queries:
            raise ReproError("chaos harness needs at least one query")
        self.sample_size = sample_size
        self.threshold = threshold
        self.statistics_seed = statistics_seed
        self._workdir = pathlib.Path(
            workdir or tempfile.mkdtemp(prefix="repro-chaos-")
        )
        self._parsed = [parse_query(sql, database) for sql in self.queries]
        self._conjuncts = [
            max(len(split_conjuncts(parsed.predicate)), 1)
            for parsed in self._parsed
        ]
        # One pristine archive, built once; every plan corrupts a copy.
        self._pristine = self._workdir / "pristine"
        manager = StatisticsManager(database)
        manager.update_statistics(
            sample_size=sample_size, seed=statistics_seed
        )
        save_statistics(manager, self._pristine)

    # ------------------------------------------------------------------
    def run(self, plans) -> ChaosReport:
        return ChaosReport([self.run_plan(plan) for plan in plans])

    def run_plan(self, plan: FaultPlan) -> PlanOutcome:
        rng = np.random.default_rng(plan.seed)
        injected: list[str] = []
        violations: list[str] = []

        archive = self._workdir / plan.name
        if archive.exists():
            shutil.rmtree(archive)
        shutil.copytree(self._pristine, archive)
        for spec in plan.archive_specs:
            injected.append(
                f"{spec.kind}: {apply_archive_fault(archive, spec, rng)}"
            )

        pressure = any(s.kind == "cache-pressure" for s in plan.runtime_specs)
        if pressure:
            injected.append("cache-pressure: plan cache capacity 2")
        session = Session(
            self.database,
            threshold=self.threshold,
            sample_size=self.sample_size,
            statistics_seed=self.statistics_seed,
            plan_cache_size=2 if pressure else 64,
        )
        try:
            session.attach_statistics(str(archive))
            faulty = self._inject_runtime_faults(session, plan, rng, injected)
            queries_run = self._drive_workload(
                session, plan, violations, injected
            )
            self._check_envelope(session, violations)
            # A stale-statistics plan rebuilds fresh statistics
            # mid-workload, which legitimately restores health.
            recovered = any(
                s.kind == "stale-statistics" for s in plan.runtime_specs
            )
            self._check_attribution(
                session, plan, faulty, violations, recovered=recovered
            )
        finally:
            session.close()
            shutil.rmtree(archive, ignore_errors=True)
        return PlanOutcome(
            plan=plan,
            injected=tuple(injected),
            violations=tuple(violations),
            degradations=tuple(session.degradations()),
            queries_run=queries_run,
        )

    # ------------------------------------------------------------------
    def _inject_runtime_faults(
        self, session, plan, rng, injected
    ) -> FaultyEstimator | None:
        """Apply drops and wire the faulty-estimator decorator."""
        faulty_holder: list[FaultyEstimator] = []
        error_rate = 0.0
        delay = 0.0
        for spec in plan.runtime_specs:
            if spec.kind == "estimator-error":
                error_rate = spec.rate
            elif spec.kind == "estimator-delay":
                delay = spec.delay_seconds
        if error_rate or delay:
            fault_rng = np.random.default_rng(plan.seed + 1)

            def decorate(inner):
                wrapper = FaultyEstimator(
                    inner, fault_rng, error_rate=error_rate,
                    delay_seconds=delay,
                )
                faulty_holder.append(wrapper)
                return wrapper

            session.estimator_decorator = decorate
            injected.append(
                f"estimator faults: rate={error_rate:g} delay={delay:g}s"
            )

        drops = [s for s in plan.runtime_specs if s.kind.startswith("drop-")]
        if drops:
            statistics = session._ensure_state().manager
            tables = self.database.table_names
            for spec in drops:
                table = spec.table or tables[int(rng.integers(0, len(tables)))]
                if spec.kind == "drop-synopsis":
                    statistics.drop_synopsis(table)
                elif spec.kind == "drop-sample":
                    statistics.drop_sample(table)
                else:
                    statistics.drop_histograms(table)
                injected.append(f"{spec.kind}: {table}")
        return faulty_holder[0] if faulty_holder else None

    def _drive_workload(self, session, plan, violations, injected) -> int:
        """Two rounds over the workload; invariants 1 and 3."""
        stale = any(
            s.kind == "stale-statistics" for s in plan.runtime_specs
        )
        queries_run = 0
        for round_index in range(2):
            if stale and round_index == 1:
                session.refresh_statistics(seed=plan.seed % 10_000 + 1)
                injected.append("stale-statistics: refreshed between rounds")
            for sql in self.queries:
                queries_run += 1
                try:
                    prepared = session.prepare(sql)
                    result = prepared.execute()
                    assert result.num_rows >= 0
                except Exception as exc:  # any escape breaks invariant 1
                    violations.append(
                        f"executable-plan: {sql!r} raised "
                        f"{type(exc).__name__}: {exc}"
                    )
                    continue
                self._check_cache_versioning(
                    session, sql, prepared, violations
                )
        return queries_run

    def _check_cache_versioning(self, session, sql, prepared, violations):
        """Invariant 3: no plan served across a statistics change."""
        current = session.statistics_version()
        if prepared.statistics_version != current:
            violations.append(
                f"cache-versioning: {sql!r} handle pinned to statistics "
                f"v{prepared.statistics_version}, session is at v{current}"
            )
        if not prepared.from_cache:
            return
        # A cached plan must be indistinguishable from planning fresh
        # under the statistics in force right now.
        try:
            parsed = prepared.query
            if session.config.estimator == "robust":
                parsed = replace(parsed, hint=prepared.threshold)
            fresh = session._optimizer(session._ensure_state()).optimize(parsed)
        except ReproError:
            return  # injected estimator fault during the probe: skip
        if fresh.estimated_cost != prepared.estimated_cost or (
            fresh.explain() != prepared.explain()
        ):
            violations.append(
                f"cache-versioning: cached plan for {sql!r} differs from "
                f"a fresh plan under statistics v{current}"
            )

    def _check_envelope(self, session, violations) -> None:
        """Invariant 2: fallback estimates stay inside the §3.5 band."""
        for sql, conjuncts in zip(self.queries, self._conjuncts):
            try:
                record = session.trace_query(sql)
            except ReproError as exc:
                violations.append(
                    f"fallback-envelope: tracing {sql!r} raised "
                    f"{type(exc).__name__}: {exc}"
                )
                continue
            violations.extend(span_violations(record, conjuncts))

    def _check_attribution(
        self, session, plan, faulty, violations, recovered: bool = False
    ) -> None:
        """Invariant 4: nothing degrades without a recorded reason."""
        events = session.degradations()
        reasons = {event.reason for event in events}
        expected = set()
        if plan.archive_specs:
            expected.add("statistics-load-failed")
        if faulty is not None and faulty.errors_fired:
            expected.add("estimator-failure")
        for reason in sorted(expected - reasons):
            violations.append(
                f"degradation-attributed: fault fired but no "
                f"{reason!r} event was recorded"
            )
        counter = session.metrics.counter(
            "repro_session_degradations_total",
            "Graceful degradations, by attributed reason.",
        )
        for reason in reasons:
            recorded = sum(
                1 for event in events if event.reason == reason
            )
            if counter.value(reason=reason) != recorded:
                violations.append(
                    "degradation-attributed: metrics counter for "
                    f"{reason!r} disagrees with the event log"
                )
        if events and not recovered and session.health != DEGRADED:
            violations.append(
                "degradation-attributed: events recorded but session "
                "health was reset without a clean recovery"
            )
