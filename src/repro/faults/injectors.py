"""Fault implementations: archive corruptors and the faulty estimator.

Archive corruptions reproduce the real-world failure modes of
persisted statistics — a crash mid-copy truncates a ``.npz``, a manual
edit desynchronizes the manifest from the arrays, statistics built
against yesterday's table reference rows that no longer exist. Each
corruptor mutates a *copy* of a saved archive; the loader is expected
to reject every one of them with a clean
:class:`~repro.errors.StatisticsError`, which the session converts
into attributed degraded-mode operation.

:class:`FaultyEstimator` wraps any
:class:`~repro.core.CardinalityEstimator` and makes it fail or stall
deterministically (seeded RNG), modeling estimation backends that time
out or crash under load.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.core.estimator import CardinalityEstimator
from repro.errors import EstimationError
from repro.faults.plan import FaultPlanError, FaultSpec


def _npz_targets(archive: pathlib.Path) -> list[pathlib.Path]:
    targets = sorted(archive.glob("*.npz"))
    if not targets:
        raise FaultPlanError(f"no .npz files to corrupt under {archive}")
    return targets


def _pick_npz(
    archive: pathlib.Path, spec: FaultSpec, rng: np.random.Generator
) -> pathlib.Path:
    if spec.table is not None:
        candidate = archive / f"{spec.table}.npz"
        if candidate.exists():
            return candidate
    targets = _npz_targets(archive)
    return targets[int(rng.integers(0, len(targets)))]


def apply_archive_fault(
    archive, spec: FaultSpec, rng: np.random.Generator
) -> str:
    """Corrupt a statistics archive copy in place.

    Returns a short description of what was done (for the report).
    Every mode leaves an archive that ``load_statistics`` must reject
    with :class:`~repro.errors.StatisticsError`.
    """
    archive = pathlib.Path(archive)
    manifest_path = archive / "manifest.json"
    if spec.kind == "archive-truncate-npz":
        target = _pick_npz(archive, spec, rng)
        data = target.read_bytes()
        target.write_bytes(data[: max(1, len(data) // 2)])
        return f"truncated {target.name} to {len(data) // 2} bytes"
    if spec.kind == "archive-manifest-mismatch":
        manifest = json.loads(manifest_path.read_text())
        tables = sorted(manifest.get("tables", {}))
        if not tables:
            raise FaultPlanError("manifest lists no tables to mismatch")
        name = (
            spec.table
            if spec.table in manifest["tables"]
            else tables[int(rng.integers(0, len(tables)))]
        )
        # Promise an array the .npz does not contain.
        manifest["tables"][name].setdefault("histograms", []).append(
            "nonexistent_column"
        )
        manifest_path.write_text(json.dumps(manifest))
        return f"manifest promises missing arrays for {name!r}"
    if spec.kind == "archive-oob-row-ids":
        target = _pick_npz(archive, spec, rng)
        with np.load(target) as handle:
            arrays = {key: handle[key] for key in handle.files}
        key = "sample_row_ids" if "sample_row_ids" in arrays else (
            "synopsis_row_ids" if "synopsis_row_ids" in arrays else None
        )
        if key is None:
            raise FaultPlanError(f"{target.name} holds no row-id arrays")
        ids = arrays[key].copy()
        ids[int(rng.integers(0, len(ids)))] = 2**40  # beyond any table
        arrays[key] = ids
        np.savez_compressed(target, **arrays)
        return f"out-of-range {key} in {target.name}"
    if spec.kind == "archive-missing-npz":
        target = _pick_npz(archive, spec, rng)
        target.unlink()
        return f"deleted {target.name}"
    if spec.kind == "archive-garbage-manifest":
        manifest_path.write_text('{"format_version": 1, "tables": [broken')
        return "manifest replaced with invalid JSON"
    raise FaultPlanError(f"{spec.kind!r} is not an archive fault")


class FaultyEstimator(CardinalityEstimator):
    """An estimator that deterministically fails or stalls.

    Wraps an inner estimator; each call first pays the configured
    delay, then fires :class:`~repro.errors.EstimationError` with
    probability ``error_rate`` (drawn from the seeded ``rng``), and
    only then delegates. Counters expose how often each fault fired so
    the harness can assert the session attributed every degradation.
    """

    def __init__(
        self,
        inner: CardinalityEstimator,
        rng: np.random.Generator,
        error_rate: float = 0.0,
        delay_seconds: float = 0.0,
    ) -> None:
        self.inner = inner
        self.rng = rng
        self.error_rate = error_rate
        self.delay_seconds = delay_seconds
        self.calls = 0
        self.errors_fired = 0
        self.delays_fired = 0

    def _maybe_fault(self) -> None:
        self.calls += 1
        if self.delay_seconds:
            self.delays_fired += 1
            time.sleep(self.delay_seconds)
        if self.error_rate and self.rng.random() < self.error_rate:
            self.errors_fired += 1
            raise EstimationError(
                f"injected estimator fault (call {self.calls})"
            )

    def estimate(self, tables, predicate, hint=None):
        self._maybe_fault()
        return self.inner.estimate(tables, predicate, hint=hint)

    def estimate_many(self, tables, predicate, thresholds):
        self._maybe_fault()
        return self.inner.estimate_many(tables, predicate, thresholds)

    def describe(self) -> str:
        return f"faulty({self.inner.describe()})"
