"""Confidence-threshold policy (paper Sections 3.1 and 6.2.5).

The confidence threshold ``T`` is the single knob trading performance
against predictability. The paper envisions a system-wide robustness
setting — "conservative", "moderate", or "aggressive", i.e. 95 %, 80 %,
and 50 % — overridable per query by a *query hint* embedded in the
statement. :class:`ConfidencePolicy` implements exactly that.
"""

from __future__ import annotations

from repro.errors import EstimationError

#: T = 95 %: "very stable query plans and few surprises" (Section 6.2.5).
CONSERVATIVE = 0.95
#: T = 80 %: the recommended general-purpose baseline.
MODERATE = 0.80
#: T = 50 %: the unbiased (median) setting.
AGGRESSIVE = 0.50

_NAMED_LEVELS = {
    "conservative": CONSERVATIVE,
    "moderate": MODERATE,
    "aggressive": AGGRESSIVE,
}


def resolve_threshold(value: float | str) -> float:
    """Normalize a threshold given as a fraction, percentage, or name."""
    if isinstance(value, str):
        named = _NAMED_LEVELS.get(value.lower())
        if named is not None:
            return named
        try:
            value = float(value)  # numeric strings, e.g. from a CLI
        except ValueError:
            raise EstimationError(
                f"unknown robustness level {value!r}; "
                f"choose from {sorted(_NAMED_LEVELS)} or give a percentage"
            ) from None
    threshold = float(value)
    if threshold > 1.0:  # given as a percentage, e.g. 80 for 80 %
        threshold /= 100.0
    if not 0.0 < threshold < 1.0:
        raise EstimationError(
            f"confidence threshold must lie strictly in (0, 1), got {value}"
        )
    return threshold


class ConfidencePolicy:
    """System default threshold plus optional per-query hint.

    >>> policy = ConfidencePolicy("moderate")
    >>> policy.threshold()
    0.8
    >>> policy.threshold(hint=0.5)
    0.5
    """

    def __init__(self, default: float | str = MODERATE) -> None:
        self._default = resolve_threshold(default)

    @property
    def default(self) -> float:
        """The system-wide default threshold."""
        return self._default

    def threshold(self, hint: float | str | None = None) -> float:
        """The effective threshold, honoring a per-query hint."""
        if hint is None:
            return self._default
        return resolve_threshold(hint)

    def __repr__(self) -> str:
        return f"ConfidencePolicy(default={self._default:.2f})"
