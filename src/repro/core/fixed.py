"""What-if estimation: force chosen selectivities.

:class:`FixedSelectivityEstimator` answers every estimation request
with a caller-supplied selectivity — globally or per table-set. Used
for what-if analysis ("which plan would win if the selectivity were
2 %?"), for constructing worst cases in tests, and for reproducing
plan diagrams over a selectivity grid without any statistics at all.
"""

from __future__ import annotations

from typing import Iterable

from repro.catalog import Database
from repro.core.estimate import CardinalityEstimate
from repro.core.estimator import CardinalityEstimator
from repro.errors import EstimationError
from repro.expressions import Expr


class FixedSelectivityEstimator(CardinalityEstimator):
    """Returns fixed selectivities instead of estimating.

    Parameters
    ----------
    database:
        Catalog, used to resolve root relations and base cardinalities.
    default:
        Selectivity returned for any expression carrying a predicate.
    overrides:
        Optional per-table-set overrides: ``{frozenset({"a","b"}): 0.02}``.
    """

    def __init__(
        self,
        database: Database,
        default: float = 0.1,
        overrides: dict[frozenset, float] | None = None,
    ) -> None:
        if not 0.0 <= default <= 1.0:
            raise EstimationError(f"selectivity must be in [0, 1], got {default}")
        self.database = database
        self.default = default
        self.overrides = dict(overrides or {})
        for key, value in self.overrides.items():
            if not 0.0 <= value <= 1.0:
                raise EstimationError(
                    f"override for {sorted(key)} out of range: {value}"
                )

    def estimate(
        self,
        tables: Iterable[str],
        predicate: Expr | None,
        hint: float | str | None = None,
    ) -> CardinalityEstimate:
        names = set(tables)
        if not names:
            raise EstimationError("estimate requires at least one table")
        root = self.database.root_relation(names)
        total = self.database.table(root).num_rows
        if predicate is None:
            selectivity = 1.0
        else:
            selectivity = self.overrides.get(frozenset(names), self.default)
        return CardinalityEstimate(
            tables=frozenset(names),
            selectivity=selectivity,
            cardinality=selectivity * total,
            root_table=root,
            source="fixed",
        )

    def describe(self) -> str:
        return f"fixed(sel={self.default:g})"

    def condition_selectivity(self, condition) -> float:
        """Join conditions get the same fixed selectivity as predicates."""
        return self.default
