"""A Bayesian-network selectivity estimator (scenario-diversity arm).

A sample-backed baseline between the AVI histogram product and the
paper's robust estimator: per table, a *Chow–Liu tree* — the maximum
mutual-information spanning tree over the table's discretized sample
columns — approximates the joint attribute distribution with pairwise
marginals (Halford et al., "An Approach Based on Bayesian Networks for
Query Selectivity Estimation"). Conjuncts on tree columns become soft
evidence and are answered by exact sum-product inference on the tree,
so *pairwise* correlations along tree edges are captured while the
model stays linear in the number of columns.

Everything the tree cannot express falls back one rung at a time:

- conjuncts touching several columns of one table, string columns, or
  columns missing from the sample → the direct sample fraction;
- cross-table join conditions → the CDF sketch via
  :meth:`CardinalityEstimator.condition_selectivity`;
- residual multi-table conjuncts → magic numbers.

Across tables the estimator multiplies per-table selectivities (the
same containment assumption as the histogram arm) — its edge over that
arm is *within-table* correlation only, which is precisely what the
star and snowflake scenarios vary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.estimate import CardinalityEstimate
from repro.core.estimator import CardinalityEstimator
from repro.core.magic import MagicNumbers
from repro.core.memo import EstimateCacheMixin
from repro.errors import EstimationError
from repro.expressions import Expr, classify_conjuncts, expr_key, split_conjuncts
from repro.stats import StatisticsManager

#: Upper bound on quantile bins per column. Small on purpose: with n
#: sample rows and k bins the edge joints hold n/k² rows per cell, and
#: the 500-row default sample needs k² ≪ n for the joints to be real.
MAX_BINS = 8

#: Laplace smoothing mass added to each joint table (spread over its
#: cells) so conditionals stay defined on empty cells.
SMOOTHING = 1.0


@dataclass(frozen=True)
class _ChowLiuTree:
    """The fitted per-table model: binned columns + tree factors."""

    #: Column name (unqualified) → node index.
    nodes: dict
    #: Per node: bin id of every sample row, shape (num_rows,).
    assignments: tuple
    #: Per node: number of bins.
    cardinalities: tuple
    #: Per node: smoothed marginal P(node), shape (bins,).
    marginals: tuple
    #: Tree edges as (parent node index, child node index), rooted at
    #: node 0; every non-root node appears exactly once as a child.
    edges: tuple
    #: Per edge: smoothed joint P(parent, child).
    joints: tuple


class BayesNetCardinalityEstimator(EstimateCacheMixin, CardinalityEstimator):
    """Chow–Liu tree inference over the per-table samples."""

    def __init__(
        self,
        statistics: StatisticsManager,
        magic: MagicNumbers | None = None,
        max_bins: int = MAX_BINS,
        memoize_estimates: bool = True,
    ) -> None:
        self.statistics = statistics
        self.magic = magic or MagicNumbers()
        self.max_bins = max_bins
        # Fitted trees per table, keyed behind the statistics version
        # (update_statistics rebuilds the samples the trees are fit to).
        self._trees: dict = {}
        self._trees_version = getattr(statistics, "version", 0)
        self._init_estimate_cache(memoize_estimates)

    # ------------------------------------------------------------------
    # estimator protocol
    # ------------------------------------------------------------------
    def estimate(
        self,
        tables: Iterable[str],
        predicate: Expr | None,
        hint: float | str | None = None,
    ) -> CardinalityEstimate:
        names = set(tables)
        if not names:
            raise EstimationError("estimate requires at least one table")
        if not self.memoize_estimates:
            return self._estimate_impl(names, predicate)

        key = (frozenset(names), expr_key(predicate))
        cached = self._estimate_cache_get(key)
        if cached is not None:
            return cached
        return self._estimate_cache_put(
            key, self._estimate_impl(names, predicate)
        )

    def estimate_many(
        self,
        tables: Iterable[str],
        predicate: Expr | None,
        thresholds: Sequence[float],
    ) -> tuple[CardinalityEstimate, ...]:
        """The network ignores the threshold: one estimate, repeated."""
        estimate = self.estimate(tables, predicate)
        return (estimate,) * len(thresholds)

    def describe(self) -> str:
        return "bayes-net"

    # ------------------------------------------------------------------
    def _estimate_impl(
        self, names: set[str], predicate: Expr | None
    ) -> CardinalityEstimate:
        root = self.statistics.database.root_relation(names)
        total = self.statistics.table_rows(root)

        classes = classify_conjuncts(predicate)
        selectivity = 1.0
        for name in sorted(names):
            table_predicate = classes.per_table.get(name)
            if table_predicate is not None:
                selectivity *= self._table_selectivity(name, table_predicate)
        for condition in classes.join_conditions:
            selectivity *= self.condition_selectivity(condition)
        for conjunct in classes.residual:
            selectivity *= self.magic.for_predicate(conjunct)

        if self.tracer is not None:
            from repro.obs.trace import EstimationSpan

            self.tracer.record_estimation(
                EstimationSpan(
                    tables=tuple(sorted(names)),
                    source="bayes",
                    quantile=selectivity,
                    point_estimate=selectivity * total,
                    predicate=None if predicate is None else str(predicate),
                )
            )

        return CardinalityEstimate(
            tables=frozenset(names),
            selectivity=selectivity,
            cardinality=selectivity * total,
            root_table=root,
            source="bayes",
        )

    # ------------------------------------------------------------------
    # per-table inference
    # ------------------------------------------------------------------
    def _table_selectivity(self, table_name: str, predicate: Expr) -> float:
        sample = self.statistics.sample_for(table_name)
        if sample is None or sample.size == 0:
            sel = 1.0
            for conjunct in split_conjuncts(predicate):
                sel *= self.magic.for_predicate(conjunct)
            return sel

        tree = self._tree_for(table_name)
        evidence: dict[int, np.ndarray] = {}
        selectivity = 1.0
        for conjunct in split_conjuncts(predicate):
            node = self._evidence_node(tree, table_name, conjunct)
            if node is None:
                # not expressible on the tree: direct sample fraction
                selectivity *= sample.count_satisfying(conjunct) / sample.size
                continue
            weights = self._conjunct_weights(tree, node, sample, conjunct)
            if node in evidence:
                evidence[node] = evidence[node] * weights
            else:
                evidence[node] = weights
        if evidence:
            selectivity *= self._probability_of_evidence(tree, evidence)
        return float(min(1.0, max(0.0, selectivity)))

    def _evidence_node(
        self, tree: _ChowLiuTree | None, table_name: str, conjunct: Expr
    ) -> int | None:
        """The tree node a conjunct constrains, or ``None``."""
        if tree is None:
            return None
        columns = {
            column
            for table, column in conjunct.columns()
            if table in (None, table_name)
        }
        if len(columns) != 1:
            return None
        return tree.nodes.get(next(iter(columns)))

    def _conjunct_weights(
        self, tree: _ChowLiuTree, node: int, sample, conjunct: Expr
    ) -> np.ndarray:
        """Soft evidence: per bin, the fraction of its sample rows
        satisfying the conjunct."""
        mask = np.asarray(conjunct.evaluate(sample.frame), dtype=bool)
        bins = tree.assignments[node]
        k = tree.cardinalities[node]
        hits = np.bincount(bins[mask], minlength=k).astype(float)
        totals = np.bincount(bins, minlength=k).astype(float)
        return np.divide(
            hits, totals, out=np.zeros(k, dtype=float), where=totals > 0
        )

    def _probability_of_evidence(
        self, tree: _ChowLiuTree, evidence: dict[int, np.ndarray]
    ) -> float:
        """Sum-product over the tree with soft evidence weights.

        One upward pass: each child sends its parent the message
        ``m[x_p] = Σ_{x_c} P(x_c | x_p) · w[x_c] · Π m_children``;
        processing ``tree.edges`` in reverse visits children before
        parents (edges are recorded in root-outward discovery order).
        """
        beliefs = [
            evidence.get(node, np.ones(k))
            for node, k in enumerate(tree.cardinalities)
        ]
        for index in range(len(tree.edges) - 1, -1, -1):
            parent, child = tree.edges[index]
            joint = tree.joints[index]  # shape (parent bins, child bins)
            conditional = joint / joint.sum(axis=1, keepdims=True)
            message = conditional @ beliefs[child]
            beliefs[parent] = beliefs[parent] * message
        return float(np.dot(tree.marginals[0], beliefs[0]))

    # ------------------------------------------------------------------
    # model fitting
    # ------------------------------------------------------------------
    def _tree_for(self, table_name: str) -> _ChowLiuTree | None:
        version = getattr(self.statistics, "version", 0)
        if version != self._trees_version:
            self._trees.clear()
            self._trees_version = version
        if table_name not in self._trees:
            self._trees[table_name] = self._fit_tree(table_name)
        return self._trees[table_name]

    def _fit_tree(self, table_name: str) -> _ChowLiuTree | None:
        sample = self.statistics.sample_for(table_name)
        if sample is None or sample.size == 0:
            return None
        prefix = f"{table_name}."
        nodes: dict[str, int] = {}
        assignments: list[np.ndarray] = []
        cardinalities: list[int] = []
        for qualified in sorted(sample.frame.column_names):
            if not qualified.startswith(prefix):
                continue
            values = np.asarray(sample.frame.column(qualified))
            if values.dtype.kind not in "iuf":
                continue  # strings and the like: sample-fraction fallback
            bins, k = self._discretize(values)
            if k < 2:
                continue  # constant column carries no information
            nodes[qualified[len(prefix):]] = len(assignments)
            assignments.append(bins)
            cardinalities.append(k)
        if not nodes:
            return None

        n = sample.size
        marginals = [
            (np.bincount(bins, minlength=k) + SMOOTHING / k) / (n + SMOOTHING)
            for bins, k in zip(assignments, cardinalities)
        ]
        edges, joints = self._spanning_tree(assignments, cardinalities, n)
        return _ChowLiuTree(
            nodes=nodes,
            assignments=tuple(assignments),
            cardinalities=tuple(cardinalities),
            marginals=tuple(marginals),
            edges=tuple(edges),
            joints=tuple(joints),
        )

    def _discretize(self, values: np.ndarray) -> tuple[np.ndarray, int]:
        """Quantile-bin ``values``; returns (bin ids, bin count)."""
        quantiles = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
        edges = np.unique(np.quantile(values, quantiles))
        bins = np.searchsorted(edges, values, side="right")
        return bins.astype(np.intp), len(edges) + 1

    def _spanning_tree(
        self,
        assignments: list[np.ndarray],
        cardinalities: list[int],
        n: int,
    ) -> tuple[list[tuple[int, int]], list[np.ndarray]]:
        """Prim over pairwise mutual information, rooted at node 0.

        Deterministic: candidate edges are scanned in (node, node)
        order and strict ``>`` keeps the first of any MI tie, so the
        tree never depends on dict iteration or float summation order
        beyond the MI values themselves.
        """
        count = len(assignments)
        if count < 2:
            return [], []

        joint_cache: dict[tuple[int, int], np.ndarray] = {}

        def joint(u: int, v: int) -> np.ndarray:
            key = (u, v) if u < v else (v, u)
            if key not in joint_cache:
                a, b = key
                ka, kb = cardinalities[a], cardinalities[b]
                counts = np.bincount(
                    assignments[a] * kb + assignments[b], minlength=ka * kb
                ).reshape(ka, kb)
                joint_cache[key] = (counts + SMOOTHING / (ka * kb)) / (
                    n + SMOOTHING
                )
            table = joint_cache[key]
            return table if (u, v) == key else table.T

        def mutual_information(u: int, v: int) -> float:
            p = joint(u, v)
            pu = p.sum(axis=1, keepdims=True)
            pv = p.sum(axis=0, keepdims=True)
            return float(np.sum(p * np.log(p / (pu * pv))))

        in_tree = {0}
        edges: list[tuple[int, int]] = []
        joints: list[np.ndarray] = []
        while len(in_tree) < count:
            best, best_mi = None, -np.inf
            for u in sorted(in_tree):
                for v in range(count):
                    if v in in_tree:
                        continue
                    mi = mutual_information(u, v)
                    if mi > best_mi:
                        best, best_mi = (u, v), mi
            parent, child = best
            in_tree.add(child)
            edges.append((parent, child))
            joints.append(joint(parent, child))
        return edges, joints
