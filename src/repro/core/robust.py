"""The robust cardinality estimator — the paper's Section 3.4 procedure.

Given an SPJ expression:

1. find the precomputed join synopsis whose root matches the
   expression's root relation;
2. count the synopsis tuples satisfying the predicate (``k`` of ``n``)
   and form the Beta posterior ``Beta(k + a, n − k + b)``;
3. invert the posterior cdf at the confidence threshold ``T`` and
   return ``cdf⁻¹(T) × |root|`` as the cardinality.

When the needed synopsis is missing, the estimator degrades gracefully
(Section 3.5): single-table samples combined under the AVI and
containment assumptions, then magic distributions as the last resort.
Estimation error from fallback assumptions is confined to the
subexpressions that actually lack statistics.

The sample counts ``(k, n)`` are threshold-independent — only the
final ``cdf⁻¹(T)`` inversion changes with ``T`` — so
:meth:`RobustCardinalityEstimator.estimate_many` prices a whole
threshold grid from one synopsis pass, reading the inversions out of a
precomputed :class:`~repro.core.posterior.BetaQuantileTable` row.
"""

from __future__ import annotations

import weakref
from typing import Iterable, Sequence

import numpy as np

from repro.core.confidence import ConfidencePolicy, MODERATE, resolve_threshold
from repro.core.estimate import CardinalityEstimate
from repro.core.estimator import CardinalityEstimator
from repro.core.magic import MagicDistribution, MagicNumbers
from repro.core.memo import EstimateCacheMixin
from repro.core.posterior import SelectivityPosterior, quantile_table
from repro.core.prior import JEFFREYS, Prior
from repro.errors import EstimationError
from repro.obs.trace import EstimationSpan
from repro.expressions import (
    Expr,
    expr_key,
    predicates_by_table,
    split_conjuncts,
)
from repro.stats import StatisticsManager


class RobustCardinalityEstimator(EstimateCacheMixin, CardinalityEstimator):
    """Sample-based Bayesian estimation with a confidence threshold.

    Parameters
    ----------
    statistics:
        The statistics manager holding samples and join synopses.
    prior:
        Beta prior over selectivity; the Jeffreys prior by default.
    policy:
        System-wide confidence threshold, overridable per call via the
        ``hint`` argument of :meth:`estimate`.
    magic:
        Fallback magic-number table for statistics-free predicates.
    magic_concentration:
        Pseudo-count of the magic *distributions* built from the magic
        numbers (higher = the fallback reacts less to the threshold).
    """

    def __init__(
        self,
        statistics: StatisticsManager,
        prior: Prior = JEFFREYS,
        policy: ConfidencePolicy | float | str = MODERATE,
        magic: MagicNumbers | None = None,
        magic_concentration: float = 4.0,
        cache_conjunct_masks: bool = True,
        memoize_estimates: bool = True,
    ) -> None:
        self.statistics = statistics
        self.prior = prior
        self.policy = (
            policy if isinstance(policy, ConfidencePolicy) else ConfidencePolicy(policy)
        )
        self.magic = magic or MagicNumbers()
        self.magic_concentration = magic_concentration
        # §6.1 notes the prototype "lacks even basic optimizations such
        # as memoizing". This is that optimization: during one
        # optimizer run the same conjuncts recur across many subsets,
        # so per-synopsis boolean masks are cached per conjunct and
        # ANDed, instead of re-evaluating whole predicates. Keyed
        # weakly on the synopsis object so rebuilding statistics can
        # never serve stale masks.
        self.cache_conjunct_masks = cache_conjunct_masks
        self._mask_cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        # Whole-estimate memoization on top of the mask cache: the
        # System-R DP re-prices the same (tables, predicate, threshold)
        # triple across queries of a grid, and each hit skips a
        # ``betaincinv`` inversion. Keyed on the statistics version so
        # ``update_statistics``/``drop_*`` invalidate the cache.
        self._init_estimate_cache(memoize_estimates)
        #: Posterior inversions served from a quantile-table row
        #: instead of per-threshold ``betaincinv`` calls.
        self.lut_hits = 0
        #: §3.5 fallback attribution: estimation passes that could not
        #: use a covering synopsis, counted by fallback source
        #: ("sample-avi" / "magic" / "mixed"). Memoized repeats of the
        #: same estimate are not re-counted — these are unique passes.
        self.fallback_counts: dict[str, int] = {}
        #: Optional hook called as ``listener(tables, source)`` on
        #: every fallback pass; the session wires this into its
        #: metrics registry so degradations are attributed live.
        self.fallback_listener = None
        #: Optional :class:`~repro.feedback.store.FeedbackProvider`.
        #: When set, stored observed cardinalities matching a lookup's
        #: ``(tables, expr_key)`` fold into the Beta posterior as
        #: extra pseudo-counts; such estimates carry
        #: ``source="feedback"`` and their spans record the
        #: unadjusted prior quantile beside the corrected one.
        self.feedback = None

    def _estimate_cache_token(self):
        # getattr: the mixin initializes (and probes) the token during
        # __init__, before the feedback attribute exists.
        version = getattr(self.statistics, "version", 0)
        feedback = getattr(self, "feedback", None)
        if feedback is None:
            return version
        return (version, feedback.generation)

    # ------------------------------------------------------------------
    def estimate(
        self,
        tables: Iterable[str],
        predicate: Expr | None,
        hint: float | str | None = None,
    ) -> CardinalityEstimate:
        names = set(tables)
        if not names:
            raise EstimationError("estimate requires at least one table")
        threshold = self.policy.threshold(hint)
        if not self.memoize_estimates:
            return self._estimate_impl(names, predicate, threshold)

        key = (frozenset(names), expr_key(predicate), threshold)
        cached = self._estimate_cache_get(key)
        if cached is not None:
            return cached
        return self._estimate_cache_put(
            key, self._estimate_impl(names, predicate, threshold)
        )

    def estimate_many(
        self,
        tables: Iterable[str],
        predicate: Expr | None,
        thresholds: Sequence[float],
    ) -> tuple[CardinalityEstimate, ...]:
        """One estimate per threshold from a single evidence pass.

        The synopsis mask and the ``(k, n)`` counts are computed once;
        every posterior inversion is a quantile-table row lookup. The
        returned estimates match :meth:`estimate` at each threshold
        bit for bit (``betaincinv`` is evaluated elementwise in both
        paths).
        """
        names = set(tables)
        if not names:
            raise EstimationError("estimate requires at least one table")
        if not thresholds:
            raise EstimationError("estimate_many requires at least one threshold")
        grid = tuple(resolve_threshold(t) for t in thresholds)
        if not self.memoize_estimates:
            return self._estimate_many_impl(names, predicate, grid)

        key = (frozenset(names), expr_key(predicate), grid)
        cached = self._estimate_cache_get(key)
        if cached is not None:
            return cached
        return self._estimate_cache_put(
            key, self._estimate_many_impl(names, predicate, grid)
        )

    # ------------------------------------------------------------------
    def _feedback_fold(self, names: set[str], predicate: Expr | None, total):
        """``(adjusted prior, attribution)`` for a lookup, or ``None``.

        Consults the bound :class:`FeedbackProvider` for stored
        observations of exactly this ``(tables, expr_key)`` pair and
        folds them into the prior as pseudo-counts — the posterior
        math downstream (scalar ``ppf`` and the vectorized quantile
        table alike) is unchanged.
        """
        if self.feedback is None:
            return None
        folded = self.feedback.pseudo_counts(
            names, expr_key(predicate), total
        )
        if folded is None:
            return None
        extra_alpha, extra_beta, attribution = folded
        return (
            self.feedback.adjusted_prior(
                self.prior, (extra_alpha, extra_beta)
            ),
            attribution,
        )

    def _feedback_attribution(
        self, attribution: dict, prior_quantile: float, total
    ) -> dict:
        """The span's feedback dict: provenance + the uncorrected path."""
        out = dict(attribution)
        out["prior_quantile"] = float(prior_quantile)
        out["prior_point_estimate"] = float(prior_quantile) * total
        return out

    def _estimate_impl(
        self, names: set[str], predicate: Expr | None, threshold: float
    ) -> CardinalityEstimate:
        root = self.statistics.database.root_relation(names)
        total = self.statistics.table_rows(root)

        synopsis = self.statistics.synopsis_covering(names)
        if synopsis is not None:
            k = self._count_satisfying(synopsis, predicate)
            fold = self._feedback_fold(names, predicate, total)
            prior = self.prior if fold is None else fold[0]
            posterior = SelectivityPosterior(k, synopsis.size, prior)
            selectivity = posterior.ppf(threshold)
            source = "synopsis" if fold is None else "feedback"
            if self.tracer is not None:
                feedback_info = None
                if fold is not None:
                    base = SelectivityPosterior(k, synopsis.size, self.prior)
                    feedback_info = self._feedback_attribution(
                        fold[1], base.ppf(threshold), total
                    )
                self._trace_lookup(
                    names, source, k, synopsis.size, threshold,
                    selectivity, selectivity * total, False, predicate,
                    prior_name=prior.name, feedback=feedback_info,
                )
            return CardinalityEstimate(
                tables=frozenset(names),
                selectivity=selectivity,
                cardinality=selectivity * total,
                root_table=root,
                source=source,
                posterior=posterior,
                threshold=threshold,
            )

        return self._estimate_fallback(names, predicate, threshold, root, total)

    def _estimate_many_impl(
        self, names: set[str], predicate: Expr | None, grid: tuple[float, ...]
    ) -> tuple[CardinalityEstimate, ...]:
        root = self.statistics.database.root_relation(names)
        total = self.statistics.table_rows(root)

        synopsis = self.statistics.synopsis_covering(names)
        if synopsis is not None:
            k = self._count_satisfying(synopsis, predicate)
            fold = self._feedback_fold(names, predicate, total)
            prior = self.prior if fold is None else fold[0]
            posterior = SelectivityPosterior(k, synopsis.size, prior)
            selectivities = quantile_table(
                synopsis.size, prior, grid
            ).row(k)
            self.lut_hits += 1
            source = "synopsis" if fold is None else "feedback"
            if self.tracer is not None:
                feedback_info = None
                if fold is not None:
                    base = quantile_table(
                        synopsis.size, self.prior, grid
                    ).row(k)
                    feedback_info = dict(fold[1])
                    feedback_info["prior_quantile"] = [
                        float(q) for q in base
                    ]
                    feedback_info["prior_point_estimate"] = [
                        float(q) * total for q in base
                    ]
                self._trace_lookup(
                    names, source, k, synopsis.size, grid,
                    tuple(float(s) for s in selectivities),
                    tuple(float(s) * total for s in selectivities),
                    True, predicate,
                    prior_name=prior.name, feedback=feedback_info,
                )
            return tuple(
                CardinalityEstimate(
                    tables=frozenset(names),
                    selectivity=float(s),
                    cardinality=float(s) * total,
                    root_table=root,
                    source=source,
                    posterior=posterior,
                    threshold=t,
                )
                for s, t in zip(selectivities, grid)
            )

        return self._estimate_fallback_many(names, predicate, grid, root, total)

    # ------------------------------------------------------------------
    def _trace_lookup(
        self,
        tables,
        source: str,
        k: int | None,
        n: int | None,
        threshold,
        quantile,
        point_estimate,
        lut_hit: bool,
        predicate: Expr | None,
        *,
        prior_name: str | None = None,
        feedback: dict | None = None,
    ) -> None:
        """Record one estimation-evidence span (tracing path only)."""
        if prior_name is None and source in ("synopsis", "sample"):
            prior_name = self.prior.name
        self.tracer.record_estimation(
            EstimationSpan(
                tables=tuple(sorted(tables)),
                source=source,
                k=None if k is None else int(k),
                n=None if n is None else int(n),
                prior=prior_name,
                threshold=threshold,
                quantile=quantile,
                point_estimate=point_estimate,
                lut_hit=lut_hit,
                predicate=None if predicate is None else str(predicate),
                feedback=feedback,
            )
        )

    # ------------------------------------------------------------------
    def _count_satisfying(self, synopsis, predicate: Expr | None) -> int:
        """Count synopsis tuples satisfying ``predicate``.

        With conjunct-mask caching, each top-level conjunct is
        evaluated once per synopsis and its boolean mask reused across
        the many overlapping subexpressions an optimizer run probes;
        the conjunction of cached masks equals evaluating the whole
        predicate directly.
        """
        if predicate is None:
            return synopsis.size
        if not self.cache_conjunct_masks:
            return synopsis.count_satisfying(predicate)
        per_synopsis = self._mask_cache.get(synopsis)
        if per_synopsis is None:
            per_synopsis = {}
            self._mask_cache[synopsis] = per_synopsis
        mask = np.ones(synopsis.size, dtype=bool)
        for conjunct in split_conjuncts(predicate):
            key = conjunct.cache_key()
            cached = per_synopsis.get(key)
            if cached is None:
                cached = np.asarray(
                    conjunct.evaluate(synopsis.frame), dtype=bool
                )
                per_synopsis[key] = cached
            mask &= cached
        return int(mask.sum())

    # ------------------------------------------------------------------
    # Section 3.5 fallbacks
    # ------------------------------------------------------------------
    def _estimate_fallback(
        self,
        names: set[str],
        predicate: Expr | None,
        threshold: float,
        root: str,
        total: int,
    ) -> CardinalityEstimate:
        """AVI-combine per-table estimates; magic where samples lack.

        For foreign-key joins under referential integrity, the
        containment assumption makes each join factor ``1 / |parent|``,
        so the combined cardinality is ``|root| × ∏ per-table
        selectivities`` — the error is confined to tables without
        samples and to the AVI combination itself.

        Stored feedback for exactly this ``(tables, expr_key)`` pair
        replaces the AVI combination outright: the observed joint
        cardinality is strictly better evidence than independence
        across marginals, so the posterior is built from the feedback
        pseudo-counts alone (``Beta(a + m·s, b + m·(1−s))``).
        """
        fold = self._feedback_fold(names, predicate, total)
        if fold is not None:
            # n=1/k=0 is the smallest posterior the math accepts; the
            # single pseudo-failure is negligible against the feedback
            # mass folded into the prior.
            prior, attribution = fold
            posterior = SelectivityPosterior(0, 1, prior)
            selectivity = posterior.ppf(threshold)
            if self.tracer is not None:
                base = SelectivityPosterior(0, 1, self.prior)
                self._trace_lookup(
                    names, "feedback", None, None, threshold,
                    selectivity, selectivity * total, False, predicate,
                    prior_name=prior.name,
                    feedback=self._feedback_attribution(
                        attribution, base.ppf(threshold), total
                    ),
                )
            return CardinalityEstimate(
                tables=frozenset(names),
                selectivity=selectivity,
                cardinality=selectivity * total,
                root_table=root,
                source="feedback",
                posterior=posterior,
                threshold=threshold,
            )

        per_table = predicates_by_table(predicate)
        unrouted = per_table.pop("", None)

        selectivity = 1.0
        used_sample = False
        used_magic = False
        for name in sorted(names):
            table_predicate = per_table.get(name)
            if table_predicate is None:
                continue
            sample = self.statistics.sample_for(name)
            if sample is not None:
                k = sample.count_satisfying(table_predicate)
                posterior = SelectivityPosterior(k, sample.size, self.prior)
                quantile = posterior.ppf(threshold)
                selectivity *= quantile
                used_sample = True
                if self.tracer is not None:
                    self._trace_lookup(
                        {name}, "sample", k, sample.size, threshold,
                        quantile, None, False, table_predicate,
                    )
            else:
                magic = self._magic_selectivity(table_predicate, threshold)
                selectivity *= magic
                used_magic = True
                if self.tracer is not None:
                    self._trace_lookup(
                        {name}, "magic", None, None, threshold,
                        magic, None, False, table_predicate,
                    )
        if unrouted is not None:
            # Cross-table or table-free conjuncts cannot be routed to a
            # single-table sample; charge them at magic selectivity.
            magic = self._magic_selectivity(unrouted, threshold)
            selectivity *= magic
            used_magic = True
            if self.tracer is not None:
                self._trace_lookup(
                    names, "magic", None, None, threshold,
                    magic, None, False, unrouted,
                )

        source = self._fallback_source(used_sample, used_magic)
        self._note_fallback(names, source)
        return CardinalityEstimate(
            tables=frozenset(names),
            selectivity=selectivity,
            cardinality=selectivity * total,
            root_table=root,
            source=source,
            threshold=threshold,
        )

    def _estimate_fallback_many(
        self,
        names: set[str],
        predicate: Expr | None,
        grid: tuple[float, ...],
        root: str,
        total: int,
    ) -> tuple[CardinalityEstimate, ...]:
        """The Section 3.5 fallback over a whole threshold grid.

        Each per-table sample is counted once; its ``n + 1``-row
        quantile table supplies the selectivity at every threshold.
        The multiplication order matches :meth:`_estimate_fallback`
        exactly, so each vector lane reproduces the scalar result —
        including the feedback short-circuit, evaluated lane-wise
        through the quantile table of the folded prior.
        """
        fold = self._feedback_fold(names, predicate, total)
        if fold is not None:
            prior, attribution = fold
            posterior = SelectivityPosterior(0, 1, prior)
            selectivities = quantile_table(1, prior, grid).row(0)
            self.lut_hits += 1
            if self.tracer is not None:
                base = quantile_table(1, self.prior, grid).row(0)
                feedback_info = dict(attribution)
                feedback_info["prior_quantile"] = [float(q) for q in base]
                feedback_info["prior_point_estimate"] = [
                    float(q) * total for q in base
                ]
                self._trace_lookup(
                    names, "feedback", None, None, grid,
                    tuple(float(s) for s in selectivities),
                    tuple(float(s) * total for s in selectivities),
                    True, predicate,
                    prior_name=prior.name, feedback=feedback_info,
                )
            return tuple(
                CardinalityEstimate(
                    tables=frozenset(names),
                    selectivity=float(s),
                    cardinality=float(s) * total,
                    root_table=root,
                    source="feedback",
                    posterior=posterior,
                    threshold=t,
                )
                for s, t in zip(selectivities, grid)
            )

        per_table = predicates_by_table(predicate)
        unrouted = per_table.pop("", None)

        selectivity = np.ones(len(grid))
        used_sample = False
        used_magic = False
        for name in sorted(names):
            table_predicate = per_table.get(name)
            if table_predicate is None:
                continue
            sample = self.statistics.sample_for(name)
            if sample is not None:
                k = sample.count_satisfying(table_predicate)
                quantiles = quantile_table(sample.size, self.prior, grid).row(k)
                selectivity = selectivity * quantiles
                self.lut_hits += 1
                used_sample = True
                if self.tracer is not None:
                    self._trace_lookup(
                        {name}, "sample", k, sample.size, grid,
                        tuple(float(q) for q in quantiles),
                        None, True, table_predicate,
                    )
            else:
                magic = self._magic_selectivity_many(table_predicate, grid)
                selectivity = selectivity * magic
                used_magic = True
                if self.tracer is not None:
                    self._trace_lookup(
                        {name}, "magic", None, None, grid,
                        tuple(float(q) for q in magic),
                        None, False, table_predicate,
                    )
        if unrouted is not None:
            magic = self._magic_selectivity_many(unrouted, grid)
            selectivity = selectivity * magic
            used_magic = True
            if self.tracer is not None:
                self._trace_lookup(
                    names, "magic", None, None, grid,
                    tuple(float(q) for q in magic),
                    None, False, unrouted,
                )

        source = self._fallback_source(used_sample, used_magic)
        self._note_fallback(names, source)
        return tuple(
            CardinalityEstimate(
                tables=frozenset(names),
                selectivity=float(s),
                cardinality=float(s) * total,
                root_table=root,
                source=source,
                threshold=t,
            )
            for s, t in zip(selectivity, grid)
        )

    def _note_fallback(self, names: set[str], source: str) -> None:
        """Attribute one §3.5 fallback pass (counter + optional hook)."""
        self.fallback_counts[source] = self.fallback_counts.get(source, 0) + 1
        if self.fallback_listener is not None:
            self.fallback_listener(frozenset(names), source)

    @staticmethod
    def _fallback_source(used_sample: bool, used_magic: bool) -> str:
        if used_magic and used_sample:
            return "mixed"
        if used_magic:
            return "magic"
        return "sample-avi"

    def _magic_selectivity(self, predicate: Expr, threshold: float) -> float:
        """Magic-distribution selectivity for an un-sampled predicate."""
        selectivity = 1.0
        for conjunct in split_conjuncts(predicate):
            mean = self.magic.for_predicate(conjunct)
            distribution = MagicDistribution(mean, self.magic_concentration)
            selectivity *= distribution.selectivity(threshold)
        return selectivity

    def _magic_selectivity_many(
        self, predicate: Expr, grid: tuple[float, ...]
    ) -> np.ndarray:
        """Magic-distribution selectivities over the threshold grid."""
        selectivity = np.ones(len(grid))
        for conjunct in split_conjuncts(predicate):
            mean = self.magic.for_predicate(conjunct)
            distribution = MagicDistribution(mean, self.magic_concentration)
            selectivity = selectivity * distribution.selectivity_many(grid)
        return selectivity

    def describe(self) -> str:
        return f"robust(T={self.policy.default:.0%}, prior={self.prior.name})"
