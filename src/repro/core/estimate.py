"""The result type returned by cardinality estimators."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.posterior import SelectivityPosterior


@dataclass(frozen=True)
class CardinalityEstimate:
    """A single cardinality estimate for one relational expression.

    Attributes
    ----------
    tables:
        The relations of the SPJ expression, as a frozenset of names.
    selectivity:
        Estimated fraction of the root relation's rows that survive
        all predicates (and, implicitly, the foreign-key joins).
    cardinality:
        Estimated output rows: ``selectivity × |root relation|``.
    root_table:
        The root of the FK join (whose cardinality anchors the result).
    source:
        Which statistic produced the estimate: ``"synopsis"``,
        ``"sample-avi"``, ``"histogram"``, ``"magic"``, ``"exact"``, or
        ``"mixed"`` (partial fallback).
    posterior:
        The full selectivity distribution, when the estimate came from
        a sample (``None`` for point-only estimators). Exposing the
        distribution is what lets callers reason about uncertainty.
    threshold:
        The confidence threshold used to collapse the posterior, when
        applicable.
    """

    tables: frozenset[str]
    selectivity: float
    cardinality: float
    root_table: str
    source: str
    posterior: SelectivityPosterior | None = None
    threshold: float | None = None

    def __str__(self) -> str:
        t = f" @T={self.threshold:.0%}" if self.threshold is not None else ""
        return (
            f"{'⋈'.join(sorted(self.tables))}: "
            f"{self.cardinality:.1f} rows "
            f"(sel={self.selectivity:.4%}, {self.source}{t})"
        )
