"""The result types returned by cardinality estimators."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.posterior import SelectivityPosterior


@dataclass(frozen=True)
class CardinalityEstimate:
    """A single cardinality estimate for one relational expression.

    Attributes
    ----------
    tables:
        The relations of the SPJ expression, as a frozenset of names.
    selectivity:
        Estimated fraction of the root relation's rows that survive
        all predicates (and, implicitly, the foreign-key joins).
    cardinality:
        Estimated output rows: ``selectivity × |root relation|``.
    root_table:
        The root of the FK join (whose cardinality anchors the result).
    source:
        Which statistic produced the estimate: ``"synopsis"``,
        ``"sample-avi"``, ``"histogram"``, ``"magic"``, ``"exact"``, or
        ``"mixed"`` (partial fallback).
    posterior:
        The full selectivity distribution, when the estimate came from
        a sample (``None`` for point-only estimators). Exposing the
        distribution is what lets callers reason about uncertainty.
    threshold:
        The confidence threshold used to collapse the posterior, when
        applicable.
    """

    tables: frozenset[str]
    selectivity: float
    cardinality: float
    root_table: str
    source: str
    posterior: SelectivityPosterior | None = None
    threshold: float | None = None

    def __str__(self) -> str:
        t = f" @T={self.threshold:.0%}" if self.threshold is not None else ""
        return (
            f"{'⋈'.join(sorted(self.tables))}: "
            f"{self.cardinality:.1f} rows "
            f"(sel={self.selectivity:.4%}, {self.source}{t})"
        )


@dataclass(frozen=True)
class VectorCardinalityEstimate(CardinalityEstimate):
    """One estimate per confidence threshold, sharing the evidence.

    ``selectivity`` and ``cardinality`` are numpy vectors over the
    threshold axis (the sample counts ``(k, n)`` behind them are
    threshold-independent, so they are computed once); ``threshold``
    holds the grid. The per-threshold scalar views in
    ``per_threshold`` are exactly what the scalar estimator would have
    returned for each threshold.
    """

    per_threshold: tuple[CardinalityEstimate, ...] = ()

    @classmethod
    def from_estimates(
        cls, estimates: "tuple[CardinalityEstimate, ...]"
    ) -> "VectorCardinalityEstimate":
        """Bundle per-threshold scalar estimates into one vector view."""
        first = estimates[0]
        return cls(
            tables=first.tables,
            selectivity=np.asarray([e.selectivity for e in estimates]),
            cardinality=np.asarray([e.cardinality for e in estimates]),
            root_table=first.root_table,
            source=first.source,
            posterior=first.posterior,
            threshold=tuple(e.threshold for e in estimates),
            per_threshold=tuple(estimates),
        )

    def at(self, index: int) -> CardinalityEstimate:
        """The scalar estimate at threshold position ``index``."""
        return self.per_threshold[index]

    def __str__(self) -> str:
        return (
            f"{'⋈'.join(sorted(self.tables))}: "
            f"{len(self.per_threshold)} thresholds, {self.source}"
        )
