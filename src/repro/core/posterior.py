"""The Beta posterior over selectivity (paper Section 3.3).

Observing ``X`` — that ``k`` of ``n`` uniformly-with-replacement
sampled tuples satisfy the predicate — and applying Bayes's rule with a
``Beta(a, b)`` prior yields

    f(z | X) ∝ z^(k+a-1) · (1-z)^(n-k+b-1),

the Beta distribution with shape ``(k + a, n − k + b)``; with the
Jeffreys prior this is the paper's equation (2),
``Beta(k + 1/2, n − k + 1/2)``.
"""

from __future__ import annotations

import numpy as np
from scipy import special as scipy_special
from scipy import stats as scipy_stats

from repro.core.prior import JEFFREYS, Prior
from repro.errors import EstimationError


class SelectivityPosterior:
    """Posterior distribution of a predicate's true selectivity.

    cdf/ppf go straight to the regularized incomplete beta function
    (``scipy.special``) — constructing a frozen ``scipy.stats.beta``
    object costs ~1 ms each, which would dominate optimization time at
    the paper's hundreds of estimator calls per query (§6.1).
    """

    def __init__(self, k: int, n: int, prior: Prior = JEFFREYS) -> None:
        if n <= 0:
            raise EstimationError(f"sample size must be positive, got {n}")
        if not 0 <= k <= n:
            raise EstimationError(f"satisfying count k={k} outside [0, {n}]")
        self.k = int(k)
        self.n = int(n)
        self.prior = prior
        self.alpha = k + prior.alpha
        self.beta = n - k + prior.beta
        self._frozen = None

    @property
    def _dist(self):
        """The frozen scipy distribution, built lazily (pdf only)."""
        if self._frozen is None:
            self._frozen = scipy_stats.beta(self.alpha, self.beta)
        return self._frozen

    # ------------------------------------------------------------------
    # Distribution interface
    # ------------------------------------------------------------------
    def pdf(self, z):
        """Posterior density at selectivity ``z`` (vectorized)."""
        return self._dist.pdf(z)

    def cdf(self, z):
        """Posterior probability that selectivity ≤ ``z`` (vectorized)."""
        z_array = np.clip(np.asarray(z, dtype=float), 0.0, 1.0)
        result = scipy_special.betainc(self.alpha, self.beta, z_array)
        return float(result) if np.isscalar(z) else result

    def ppf(self, t):
        """Inverse cdf: the selectivity at percentile ``t`` (vectorized).

        This is the paper's estimate: with confidence threshold ``T%``,
        the returned selectivity ``s`` satisfies ``Pr[p ≤ s | X] = T%``.
        """
        t_array = np.asarray(t, dtype=float)
        if np.any((t_array <= 0) | (t_array >= 1)):
            raise EstimationError("confidence threshold must lie strictly in (0, 1)")
        result = scipy_special.betaincinv(self.alpha, self.beta, t_array)
        return float(result) if np.isscalar(t) or t_array.ndim == 0 else result

    def ppf_vector(self, thresholds: tuple[float, ...]) -> np.ndarray:
        """``ppf`` over a threshold grid via the shared quantile table.

        Bit-identical to calling :meth:`ppf` per threshold
        (``betaincinv`` is a ufunc evaluated elementwise either way),
        but amortized: the whole ``(n + 1) × |thresholds|`` table is
        computed once per (sample size, prior, grid) and every
        subsequent inversion is a row lookup on the observed ``k``.
        """
        return quantile_table(self.n, self.prior, thresholds).row(self.k)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Posterior mean, ``(k + a) / (n + a + b)``."""
        return self.alpha / (self.alpha + self.beta)

    @property
    def variance(self) -> float:
        """Posterior variance."""
        total = self.alpha + self.beta
        return (self.alpha * self.beta) / (total * total * (total + 1))

    @property
    def std(self) -> float:
        """Posterior standard deviation."""
        return float(np.sqrt(self.variance))

    @property
    def mle(self) -> float:
        """The classical maximum-likelihood estimate ``k / n``.

        This is what a conventional sampling estimator (e.g. the join
        synopses of Acharya et al.) would report.
        """
        return self.k / self.n

    def credible_interval(self, level: float = 0.95) -> tuple[float, float]:
        """Central credible interval containing ``level`` posterior mass."""
        if not 0 < level < 1:
            raise EstimationError(f"level must be in (0, 1), got {level}")
        tail = (1.0 - level) / 2.0
        return (float(self.ppf(tail)), float(self.ppf(1.0 - tail)))

    def __repr__(self) -> str:
        return (
            f"SelectivityPosterior(k={self.k}, n={self.n}, "
            f"prior={self.prior.name}, Beta({self.alpha:g}, {self.beta:g}))"
        )


class BetaQuantileTable:
    """Precomputed beta quantiles for every possible sample count.

    For a fixed sample size ``n``, prior ``(a, b)``, and threshold grid
    ``(t_0, …, t_{m-1})``, the satisfying count ``k`` is an *integer*
    in ``[0, n]`` — so every posterior the estimator can form over that
    sample is one of ``n + 1`` Beta distributions. The table holds

        ``Q[k, j] = betaincinv(k + a, n − k + b, t_j)``,

    turning each posterior inversion into an O(1) row lookup instead
    of a ``betaincinv`` call. ``betaincinv`` is a ufunc, so the bulk
    evaluation produces bit-identical values to scalar calls.
    """

    __slots__ = ("n", "thresholds", "table")

    def __init__(
        self, n: int, prior: Prior, thresholds: tuple[float, ...]
    ) -> None:
        if n <= 0:
            raise EstimationError(f"sample size must be positive, got {n}")
        grid = np.asarray(thresholds, dtype=float)
        if grid.ndim != 1 or grid.size == 0:
            raise EstimationError("threshold grid must be a non-empty vector")
        if np.any((grid <= 0) | (grid >= 1)):
            raise EstimationError("confidence threshold must lie strictly in (0, 1)")
        self.n = int(n)
        self.thresholds = tuple(float(t) for t in grid)
        k = np.arange(self.n + 1, dtype=float)
        alpha = k + prior.alpha
        beta = self.n - k + prior.beta
        self.table = scipy_special.betaincinv(
            alpha[:, None], beta[:, None], grid[None, :]
        )

    def row(self, k: int) -> np.ndarray:
        """Quantiles at every threshold for ``k`` satisfying tuples."""
        if not 0 <= k <= self.n:
            raise EstimationError(f"satisfying count k={k} outside [0, {self.n}]")
        return self.table[int(k)]


#: Process-wide table cache. Tables depend only on (sample size, prior,
#: threshold grid) — never on the data — so they are shared across
#: statistics rebuilds, seeds, and estimator instances.
_TABLE_CACHE: dict[tuple, BetaQuantileTable] = {}
_TABLE_CACHE_MAX = 64


def quantile_table(
    n: int, prior: Prior, thresholds: tuple[float, ...]
) -> BetaQuantileTable:
    """The memoized :class:`BetaQuantileTable` for one configuration."""
    key = (int(n), prior.alpha, prior.beta, tuple(thresholds))
    table = _TABLE_CACHE.get(key)
    if table is None:
        if len(_TABLE_CACHE) >= _TABLE_CACHE_MAX:
            _TABLE_CACHE.pop(next(iter(_TABLE_CACHE)))
        table = BetaQuantileTable(n, prior, thresholds)
        _TABLE_CACHE[key] = table
    return table
