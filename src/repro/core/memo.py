"""Whole-estimate memoization shared by the cardinality estimators.

Both the robust and the histogram estimators memoize finished
estimates keyed on the statistics manager's ``version`` counter, so
``update_statistics``/``drop_*`` invalidate the cache automatically.
The check/clear logic used to be duplicated in both classes; this
mixin is the single home for it so the two cannot drift.
"""

from __future__ import annotations

from typing import Any


class EstimateCacheMixin:
    """Version-checked estimate memoization.

    Hosts expect ``self.statistics`` to be set before
    :meth:`_init_estimate_cache` is called, and route lookups through
    :meth:`_estimate_cache_get` / :meth:`_estimate_cache_put` (which
    maintain the hit/miss counters the experiment harness reports).
    """

    def _init_estimate_cache(self, memoize_estimates: bool) -> None:
        self.memoize_estimates = memoize_estimates
        self._estimate_cache: dict = {}
        self._estimate_cache_version = self._estimate_cache_token()
        self.estimate_cache_hits = 0
        self.estimate_cache_misses = 0

    def _estimate_cache_token(self):
        """The invalidation token the cache is keyed behind.

        The statistics version by default; hosts with additional
        freshness dimensions (the robust estimator's feedback
        generation) override this to extend the token.
        """
        return getattr(self.statistics, "version", 0)

    def _estimate_cache_get(self, key) -> Any | None:
        """The cached value for ``key``, dropping stale generations."""
        token = self._estimate_cache_token()
        if token != self._estimate_cache_version:
            self._estimate_cache.clear()
            self._estimate_cache_version = token
        cached = self._estimate_cache.get(key)
        if cached is not None:
            self.estimate_cache_hits += 1
        return cached

    def _estimate_cache_put(self, key, value):
        """Record a miss and store ``value`` under ``key``."""
        self.estimate_cache_misses += 1
        self._estimate_cache[key] = value
        return value
