"""GROUP BY result-size estimation from samples (paper Section 3.5).

Aggregation output size is the number of distinct grouping-attribute
combinations among the qualifying rows. We evaluate the predicate on
the join synopsis, form the distinct-value estimate of the surviving
sample rows with a standard estimator (GEE or Chao), and scale by the
estimated qualifying population.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.robust import RobustCardinalityEstimator
from repro.errors import EstimationError
from repro.expressions import Expr
from repro.stats.distinct import chao_estimator, gee_estimator


class GroupCountEstimator:
    """Estimates the number of groups a GROUP BY will produce."""

    def __init__(
        self,
        estimator: RobustCardinalityEstimator,
        method: str = "gee",
    ) -> None:
        if method not in ("gee", "chao"):
            raise EstimationError(f"unknown distinct estimator {method!r}")
        self.estimator = estimator
        self.method = method

    def estimate_groups(
        self,
        tables: Iterable[str],
        group_by: Sequence[str],
        predicate: Expr | None = None,
        hint: float | str | None = None,
    ) -> float:
        """Estimated distinct combinations of ``group_by`` columns.

        ``group_by`` columns are qualified names resolvable in the join
        synopsis covering ``tables``.
        """
        names = set(tables)
        if not group_by:
            raise EstimationError("group_by must name at least one column")
        statistics = self.estimator.statistics
        synopsis = statistics.synopsis_covering(names)
        if synopsis is None:
            raise EstimationError(
                f"no join synopsis covers tables {sorted(names)}"
            )
        frame = synopsis.frame
        if predicate is not None:
            mask = np.asarray(predicate.evaluate(frame), dtype=bool)
            frame = frame.mask(mask)

        keys = self._combined_keys(frame, group_by)
        # The qualifying population size comes from the robust
        # cardinality estimate, so the group count inherits the same
        # threshold semantics as row counts.
        cardinality = self.estimator.estimate(names, predicate, hint).cardinality
        population = max(1, int(round(cardinality)))
        if self.method == "gee":
            return gee_estimator(keys, population)
        return chao_estimator(keys, population)

    def _combined_keys(self, frame, group_by: Sequence[str]) -> np.ndarray:
        """Collapse multi-column group keys into one hashable array."""
        arrays = [frame.column(name) for name in group_by]
        if len(arrays) == 1:
            return arrays[0]
        as_strings = [array.astype(np.str_) for array in arrays]
        combined = as_strings[0]
        for array in as_strings[1:]:
            combined = np.char.add(np.char.add(combined, "\x1f"), array)
        return combined
