"""Prior distributions over query selectivity.

Priors are Beta distributions, which are conjugate to the Bernoulli
sampling process: observing ``k`` of ``n`` sample tuples satisfying the
predicate turns ``Beta(a, b)`` into ``Beta(k + a, n − k + b)``.

The paper (Section 3.3) discusses two non-informative choices — the
uniform prior ``Beta(1, 1)`` and the Jeffreys prior ``Beta(1/2, 1/2)``
— and adopts Jeffreys by default, noting the choice has little impact
(their Figure 4, our ``benchmarks/test_fig04_priors.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EstimationError


@dataclass(frozen=True)
class Prior:
    """A Beta(``alpha``, ``beta``) prior over selectivity."""

    alpha: float
    beta: float
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise EstimationError(
                f"Beta prior requires positive shapes, got ({self.alpha}, {self.beta})"
            )

    @property
    def mean(self) -> float:
        """The prior mean selectivity."""
        return self.alpha / (self.alpha + self.beta)

    @classmethod
    def from_name(cls, name: str) -> "Prior":
        """Look up a named prior: ``"jeffreys"`` or ``"uniform"``."""
        try:
            return _NAMED[name.lower()]
        except KeyError:
            raise EstimationError(
                f"unknown prior {name!r}; choose from {sorted(_NAMED)}"
            ) from None

    @classmethod
    def informative(cls, mean: float, concentration: float) -> "Prior":
        """A prior centred on ``mean`` with pseudo-count ``concentration``.

        Used for "magic distributions" (paper Section 3.5): workload
        knowledge expressed as a soft default selectivity.
        """
        if not 0 < mean < 1:
            raise EstimationError(f"prior mean must be in (0, 1), got {mean}")
        if concentration <= 0:
            raise EstimationError("concentration must be positive")
        return cls(mean * concentration, (1 - mean) * concentration, "informative")

    def __str__(self) -> str:
        return f"{self.name}:Beta({self.alpha:g},{self.beta:g})"


#: The Jeffreys non-informative prior, Beta(1/2, 1/2) — paper default.
JEFFREYS = Prior(0.5, 0.5, "jeffreys")

#: The uniform prior, Beta(1, 1).
UNIFORM = Prior(1.0, 1.0, "uniform")

_NAMED = {"jeffreys": JEFFREYS, "uniform": UNIFORM}
