"""Magic numbers and magic distributions (paper Section 3.5).

When no statistics exist for a predicate, classical systems fall back
to hard-coded "magic" selectivity constants (Selinger et al., 1979).
The paper proposes a refinement compatible with confidence thresholds:
a *magic distribution* — a soft prior whose percentile, rather than a
single constant, supplies the fallback estimate, so the conservative /
aggressive behaviour of the threshold survives even without data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.confidence import resolve_threshold
from repro.core.prior import Prior
from repro.expressions.expr import (
    Between,
    Comparison,
    Expr,
    InList,
    Not,
    Or,
    StringContains,
    StringStartsWith,
)


@dataclass(frozen=True)
class MagicNumbers:
    """The classical fallback selectivity constants."""

    equality: float = 0.1
    range: float = 0.25
    inequality: float = 1.0 / 3.0
    string_match: float = 0.1
    membership: float = 0.15
    default: float = 1.0 / 9.0

    def for_predicate(self, predicate: Expr) -> float:
        """The magic selectivity for one predicate atom."""
        if isinstance(predicate, Comparison):
            if predicate.op == "=":
                return self.equality
            if predicate.op == "!=":
                return 1.0 - self.equality
            return self.inequality
        if isinstance(predicate, Between):
            return self.range
        if isinstance(predicate, InList):
            return self.membership
        if isinstance(predicate, (StringContains, StringStartsWith)):
            return self.string_match
        if isinstance(predicate, Not):
            return 1.0 - self.for_predicate(predicate.operand)
        if isinstance(predicate, Or):
            miss = 1.0
            for operand in predicate.operands:
                miss *= 1.0 - self.for_predicate(operand)
            return 1.0 - miss
        return self.default


class MagicDistribution:
    """A magic *distribution*: a Beta prior replacing a magic number.

    The estimate returned for a statistics-free predicate becomes the
    ``T``-th percentile of this distribution, so raising the confidence
    threshold raises the assumed selectivity — the optimizer stays
    conservative even where it is flying blind.
    """

    def __init__(self, mean: float, concentration: float = 4.0) -> None:
        self._prior = Prior.informative(mean, concentration)
        self.mean = mean
        self.concentration = concentration

    def selectivity(self, threshold: float | str) -> float:
        """The fallback selectivity at confidence ``threshold``."""
        from scipy import special as scipy_special

        t = resolve_threshold(threshold)
        return float(
            scipy_special.betaincinv(self._prior.alpha, self._prior.beta, t)
        )

    def selectivity_many(self, thresholds) -> "np.ndarray":
        """Fallback selectivities for a whole threshold grid at once.

        Elementwise identical to :meth:`selectivity` per threshold
        (``betaincinv`` is a ufunc).
        """
        import numpy as np
        from scipy import special as scipy_special

        t = np.asarray([resolve_threshold(t) for t in thresholds], dtype=float)
        return scipy_special.betaincinv(self._prior.alpha, self._prior.beta, t)

    def __repr__(self) -> str:
        return (
            f"MagicDistribution(mean={self.mean:g}, "
            f"concentration={self.concentration:g})"
        )
