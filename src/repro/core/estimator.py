"""The estimator interface and the exact (ground-truth) estimator.

An estimator answers one question, asked repeatedly by the optimizer
during plan search: *how many rows does this SPJ subexpression
produce?* For the foreign-key SPJ expressions the paper considers, a
subexpression is fully described by its set of tables (joins are
implied by the FK edges) plus the conjunction of predicates on them,
and its cardinality is ``selectivity × |root relation|`` because each
FK join preserves the child's cardinality.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.catalog import Database
from repro.core.estimate import CardinalityEstimate
from repro.errors import EstimationError
from repro.expressions import Expr
from repro.stats.join_synopsis import fk_join_frame


class CardinalityEstimator:
    """Abstract base for cardinality estimators.

    This is the module interface the paper's architecture hinges on
    (§3.1): the optimizer, session service, and experiment harness all
    speak exactly this protocol, so estimators are drop-in
    replacements for one another. The protocol is three methods with
    *identical keyword signatures* across every implementation
    (enforced by ``tests/test_estimator_contract.py``):

    - ``estimate(tables, predicate, hint=None)`` — one point estimate;
    - ``estimate_many(tables, predicate, thresholds)`` — one estimate
      per confidence threshold, in grid order, semantically equal to
      looping ``estimate`` with each threshold as the hint;
    - ``describe()`` — a short label for reports.

    Subclasses must implement ``estimate``; ``estimate_many`` has a
    correct default that threshold-aware estimators override to share
    evidence gathering across the grid.
    """

    #: Optional :class:`repro.obs.Tracer`. When set, estimators record
    #: one estimation-evidence span per synopsis/sample/histogram
    #: lookup; the default ``None`` keeps every hot path to a single
    #: attribute check, so disabled tracing costs nothing.
    tracer = None

    def estimate(
        self,
        tables: Iterable[str],
        predicate: Expr | None,
        hint: float | str | None = None,
    ) -> CardinalityEstimate:
        """Estimate the output cardinality of an SPJ expression.

        ``tables`` are the relations of the expression (FK joins
        implied); ``predicate`` is the conjunction of all selections,
        referencing qualified columns; ``hint`` is an optional
        per-query confidence-threshold override (ignored by
        point-estimate baselines).
        """
        raise NotImplementedError

    def estimate_many(
        self,
        tables: Iterable[str],
        predicate: Expr | None,
        thresholds: Sequence[float],
    ) -> tuple[CardinalityEstimate, ...]:
        """One estimate per confidence threshold, in grid order.

        The default simply loops :meth:`estimate` with each threshold
        as the hint. Threshold-aware estimators override this to share
        the evidence gathering (synopsis masks, sample counts) across
        the whole grid; threshold-blind estimators inherit a correct,
        if redundant, implementation.
        """
        names = list(tables)
        return tuple(
            self.estimate(names, predicate, hint=t) for t in thresholds
        )

    def describe(self) -> str:
        """Short label used in experiment reports."""
        return type(self).__name__

    def condition_selectivity(self, condition) -> float:
        """Point selectivity of one cross-table join condition.

        ``condition`` is a
        :class:`repro.expressions.analysis.JoinCondition` — a
        column-vs-column comparison joining two tables that need not
        share an FK edge, so it cannot be folded into the rooted-tree
        ``estimate`` protocol. The default implementation answers from
        the CDF sketch over the per-table samples when the estimator
        carries a statistics manager (Repas et al.), falling back to
        the classical magic numbers otherwise. Always a scalar: the
        sketch is a point statistic, so confidence thresholds act only
        on the within-component predicates.
        """
        statistics = getattr(self, "statistics", None)
        if statistics is not None:
            from repro.core.sketch import InequalitySketch

            sketch = getattr(self, "_inequality_sketch", None)
            if sketch is None or sketch.statistics is not statistics:
                sketch = InequalitySketch(statistics)
                self._inequality_sketch = sketch
            selectivity = sketch.condition_selectivity(condition)
            if selectivity is not None:
                return selectivity
        from repro.core.magic import MagicNumbers

        return MagicNumbers().for_predicate(condition.expr)


class ExactCardinalityEstimator(CardinalityEstimator):
    """Ground truth: evaluates the expression on the full data.

    Far too slow for a real optimizer — it materializes the complete
    foreign-key join — but invaluable for tests, calibration, and for
    measuring estimation error against a known answer.
    """

    def __init__(self, database: Database) -> None:
        self.database = database

    def estimate(
        self,
        tables: Iterable[str],
        predicate: Expr | None,
        hint: float | str | None = None,
    ) -> CardinalityEstimate:
        names = set(tables)
        if not names:
            raise EstimationError("estimate requires at least one table")
        root = self.database.root_relation(names)
        frame, covered = fk_join_frame(self.database, root, restrict_to=names)
        if not names <= covered:
            raise EstimationError(
                f"tables {sorted(names)} not FK-joinable from root {root!r}"
            )
        if predicate is None:
            satisfied = frame.num_rows
        else:
            satisfied = int(
                np.asarray(predicate.evaluate(frame), dtype=bool).sum()
            )
        total = self.database.table(root).num_rows
        selectivity = satisfied / total if total else 0.0
        return CardinalityEstimate(
            tables=frozenset(names),
            selectivity=selectivity,
            cardinality=float(satisfied),
            root_table=root,
            source="exact",
        )

    def condition_selectivity(self, condition) -> float:
        """Exact pair fraction over the two full base columns."""
        from repro.core.sketch import pair_fraction

        left = self.database.table(condition.left_table).column(
            condition.left_column
        )
        right = self.database.table(condition.right_table).column(
            condition.right_column
        )
        return pair_fraction(left, condition.op, right)
