"""The paper's contribution: robust Bayesian cardinality estimation.

The pipeline (paper Section 3.4):

1. pick the precomputed join synopsis whose root matches the query
   expression;
2. evaluate the predicate on the synopsis and apply Bayes's rule,
   giving a Beta posterior over the true selectivity;
3. invert the posterior cdf at the user's confidence threshold ``T%``;
4. hand the resulting single-value estimate to an unmodified optimizer.

Higher thresholds make the optimizer conservative (predictable plans);
lower thresholds make it aggressive.
"""

from repro.core.prior import JEFFREYS, UNIFORM, Prior
from repro.core.posterior import (
    BetaQuantileTable,
    SelectivityPosterior,
    quantile_table,
)
from repro.core.confidence import (
    AGGRESSIVE,
    CONSERVATIVE,
    MODERATE,
    ConfidencePolicy,
    resolve_threshold,
)
from repro.core.estimate import CardinalityEstimate, VectorCardinalityEstimate
from repro.core.estimator import CardinalityEstimator, ExactCardinalityEstimator
from repro.core.fixed import FixedSelectivityEstimator
from repro.core.magic import MagicDistribution, MagicNumbers
from repro.core.histogram_estimator import HistogramCardinalityEstimator
from repro.core.bayesnet import BayesNetCardinalityEstimator
from repro.core.robust import RobustCardinalityEstimator
from repro.core.sketch import InequalitySketch, pair_fraction
from repro.core.distinct_extension import GroupCountEstimator

__all__ = [
    "AGGRESSIVE",
    "BayesNetCardinalityEstimator",
    "BetaQuantileTable",
    "CONSERVATIVE",
    "CardinalityEstimate",
    "CardinalityEstimator",
    "ConfidencePolicy",
    "ExactCardinalityEstimator",
    "FixedSelectivityEstimator",
    "GroupCountEstimator",
    "HistogramCardinalityEstimator",
    "InequalitySketch",
    "JEFFREYS",
    "MODERATE",
    "MagicDistribution",
    "MagicNumbers",
    "Prior",
    "RobustCardinalityEstimator",
    "SelectivityPosterior",
    "UNIFORM",
    "VectorCardinalityEstimate",
    "pair_fraction",
    "quantile_table",
    "resolve_threshold",
]
