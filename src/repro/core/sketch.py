"""CDF-sketch selectivity for inequality join conditions.

Following Repas et al. ("Selectivity Estimation of Inequality Joins in
Databases", PAPERS.md): each join column is summarized by a small
sorted sample approximating its CDF, and ``P(l <op> r)`` for
independently drawn ``l``, ``r`` is an exact pair count over the two
sketches — one sort plus a vectorized binary search, O(n log n)
instead of the O(n²) pair walk. The per-table samples the statistics
manager already maintains double as the sketches, so no new statistic
needs building.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError
from repro.expressions.analysis import JoinCondition

#: searchsorted side computing, for each left value ``x``, how many
#: sorted right values satisfy ``x <op> y``.
_PAIR_SIDES = {"<", "<=", ">", ">=", "="}


def pair_fraction(left_values, op: str, right_values) -> float:
    """Fraction of ``(l, r)`` value pairs satisfying ``l <op> r``.

    Exact over the two given value sets (usually samples); the sketch
    estimate of the join condition's selectivity under independence.
    """
    if op not in _PAIR_SIDES:
        raise EstimationError(f"unsupported join-condition operator {op!r}")
    left = np.asarray(left_values)
    right = np.sort(np.asarray(right_values), kind="stable")
    n_left, n_right = len(left), len(right)
    if n_left == 0 or n_right == 0:
        raise EstimationError("pair_fraction requires non-empty value sets")
    if op == "<":
        hits = n_right - np.searchsorted(right, left, side="right")
    elif op == "<=":
        hits = n_right - np.searchsorted(right, left, side="left")
    elif op == ">":
        hits = np.searchsorted(right, left, side="left")
    elif op == ">=":
        hits = np.searchsorted(right, left, side="right")
    else:  # "="
        hits = np.searchsorted(right, left, side="right") - np.searchsorted(
            right, left, side="left"
        )
    return float(hits.sum()) / (n_left * n_right)


class InequalitySketch:
    """Serves join-condition selectivities from a statistics manager.

    Wraps the per-table samples as CDF sketches; results are cached
    per condition and invalidated when the statistics version moves.
    Returns ``None`` when either side's sample (or column) is missing,
    so callers can fall back to magic numbers.
    """

    def __init__(self, statistics) -> None:
        self.statistics = statistics
        self._version: int | None = None
        self._cache: dict[tuple[str, str, str, str, str], float] = {}

    def _values(self, table: str, column: str) -> np.ndarray | None:
        sample = self.statistics.sample_for(table)
        if sample is None:
            return None
        qualified = f"{table}.{column}"
        if qualified not in sample.frame:
            return None
        return sample.frame.column(qualified)

    def condition_selectivity(self, condition: JoinCondition) -> float | None:
        """Sketch selectivity of one join condition, or ``None``."""
        if self._version != self.statistics.version:
            self._cache.clear()
            self._version = self.statistics.version
        key = (
            condition.left_table,
            condition.left_column,
            condition.op,
            condition.right_table,
            condition.right_column,
        )
        if key in self._cache:
            return self._cache[key]
        left = self._values(condition.left_table, condition.left_column)
        right = self._values(condition.right_table, condition.right_column)
        if left is None or right is None:
            return None
        selectivity = pair_fraction(left, condition.op, right)
        self._cache[key] = selectivity
        return selectivity
