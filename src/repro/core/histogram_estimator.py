"""The histogram/AVI baseline estimator.

This is the conventional estimation pipeline the paper measures
against: per-column equi-depth histograms give marginal selectivities,
conjunctions multiply them (the attribute-value-independence
assumption), and foreign-key joins apply the containment assumption.
On correlated data the AVI product is badly wrong — which is precisely
the failure mode Experiments 1–3 are built around.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.catalog.types import ColumnType, coerce_scalar
from repro.core.estimate import CardinalityEstimate
from repro.core.estimator import CardinalityEstimator
from repro.core.magic import MagicNumbers
from repro.core.memo import EstimateCacheMixin
from repro.errors import EstimationError
from repro.expressions import Expr, classify_conjuncts, expr_key, split_conjuncts
from repro.expressions.analysis import as_range_condition, in_list_atoms
from repro.stats import StatisticsManager


class HistogramCardinalityEstimator(EstimateCacheMixin, CardinalityEstimator):
    """Point estimation from 1-D histograms + AVI + containment."""

    def __init__(
        self,
        statistics: StatisticsManager,
        magic: MagicNumbers | None = None,
        memoize_estimates: bool = True,
    ) -> None:
        self.statistics = statistics
        self.magic = magic or MagicNumbers()
        # Same whole-estimate memoization as the robust estimator,
        # minus the threshold key (histograms ignore the hint). Keyed
        # on the statistics version so rebuilds invalidate the cache.
        self._init_estimate_cache(memoize_estimates)

    def estimate(
        self,
        tables: Iterable[str],
        predicate: Expr | None,
        hint: float | str | None = None,
    ) -> CardinalityEstimate:
        names = set(tables)
        if not names:
            raise EstimationError("estimate requires at least one table")
        if not self.memoize_estimates:
            return self._estimate_impl(names, predicate)

        key = (frozenset(names), expr_key(predicate))
        cached = self._estimate_cache_get(key)
        if cached is not None:
            return cached
        return self._estimate_cache_put(
            key, self._estimate_impl(names, predicate)
        )

    def estimate_many(
        self,
        tables: Iterable[str],
        predicate: Expr | None,
        thresholds: Sequence[float],
    ) -> tuple[CardinalityEstimate, ...]:
        """Histograms ignore the threshold: one estimate, repeated."""
        estimate = self.estimate(tables, predicate)
        return (estimate,) * len(thresholds)

    def _estimate_impl(
        self, names: set[str], predicate: Expr | None
    ) -> CardinalityEstimate:
        root = self.statistics.database.root_relation(names)
        total = self.statistics.table_rows(root)

        # classify_conjuncts (not predicates_by_table) so cross-table
        # join conditions are priced as joins via the CDF sketch rather
        # than magicked as unattributable leftover selections.
        classes = classify_conjuncts(predicate)

        selectivity = 1.0
        for name in sorted(names):
            table_predicate = classes.per_table.get(name)
            if table_predicate is not None:
                selectivity *= self._table_selectivity(name, table_predicate)
        for condition in classes.join_conditions:
            selectivity *= self.condition_selectivity(condition)
        for conjunct in classes.residual:
            selectivity *= self._avi_product(None, conjunct)

        if self.tracer is not None:
            from repro.obs.trace import EstimationSpan

            self.tracer.record_estimation(
                EstimationSpan(
                    tables=tuple(sorted(names)),
                    source="histogram",
                    quantile=selectivity,
                    point_estimate=selectivity * total,
                    predicate=None if predicate is None else str(predicate),
                )
            )

        return CardinalityEstimate(
            tables=frozenset(names),
            selectivity=selectivity,
            cardinality=selectivity * total,
            root_table=root,
            source="histogram",
        )

    # ------------------------------------------------------------------
    def _table_selectivity(self, table_name: str, predicate: Expr) -> float:
        """AVI product of per-conjunct histogram selectivities."""
        return self._avi_product(table_name, predicate)

    def _avi_product(self, table_name: str | None, predicate: Expr) -> float:
        selectivity = 1.0
        for conjunct in split_conjuncts(predicate):
            selectivity *= self._conjunct_selectivity(table_name, conjunct)
        return selectivity

    def _conjunct_selectivity(self, table_name: str | None, conjunct: Expr) -> float:
        condition = as_range_condition(conjunct)
        if condition is not None:
            owner = condition.table or table_name
            if owner is not None:
                estimate = self._range_selectivity(owner, condition)
                if estimate is not None:
                    return estimate
        membership = in_list_atoms(conjunct)
        if membership is not None:
            ref, values = membership
            owner = ref.table or table_name
            histogram = (
                self.statistics.histogram(owner, ref.name) if owner else None
            )
            if histogram is not None:
                column_type = self._column_type(owner, ref.name)
                if column_type is not None:
                    sel = sum(
                        histogram.selectivity_eq(coerce_scalar(v, column_type))
                        for v in values
                    )
                    return min(1.0, sel)
        return self.magic.for_predicate(conjunct)

    def _range_selectivity(self, table_name: str, condition) -> float | None:
        histogram = self.statistics.histogram(table_name, condition.column)
        if histogram is None:
            return None
        column_type = self._column_type(table_name, condition.column)
        if column_type is None:
            return None
        low = (
            coerce_scalar(condition.low, column_type)
            if condition.low is not None
            else None
        )
        high = (
            coerce_scalar(condition.high, column_type)
            if condition.high is not None
            else None
        )
        if condition.is_equality:
            return histogram.selectivity_eq(low)
        return histogram.selectivity_range(
            low,
            high,
            low_inclusive=condition.low_inclusive,
            high_inclusive=condition.high_inclusive,
        )

    def _column_type(self, table_name: str, column: str) -> ColumnType | None:
        database = self.statistics.database
        if table_name not in database:
            return None
        table = database.table(table_name)
        if column not in table:
            return None
        return table.schema.column_type(column)

    def describe(self) -> str:
        return "histogram-avi"
