"""The paper's Section 5 analytical model.

A two-plan world with linear cost functions, exact binomial sampling
distributions, and Beta-posterior threshold inversion — everything
needed to regenerate Figures 1 through 8 in closed form (no query
execution involved).
"""

from repro.analysis.model import (
    LinearCostPlan,
    PlanCostModel,
    figure2_plans,
    high_crossover_model,
    paper_default_model,
)
from repro.analysis.choice import (
    EstimationModel,
    expected_time_and_variance,
    plan_choice_probabilities,
    selectivity_estimates,
)
from repro.analysis.costdist import (
    cost_cdf,
    cost_pdf,
    cost_percentile,
    preference_flip_threshold,
)
from repro.analysis.lec_analysis import (
    lec_equivalent_threshold,
    lec_plan_choice,
    mean_variance_plan_choice,
    threshold_plan_choice,
)
from repro.analysis.sweeps import sample_size_sweep, threshold_sweep
from repro.analysis.tradeoff import (
    TradeoffPoint,
    sample_size_tradeoff_curve,
    tradeoff_curve,
    tradeoff_from_times,
)

__all__ = [
    "EstimationModel",
    "LinearCostPlan",
    "PlanCostModel",
    "TradeoffPoint",
    "cost_cdf",
    "cost_pdf",
    "cost_percentile",
    "expected_time_and_variance",
    "figure2_plans",
    "high_crossover_model",
    "lec_equivalent_threshold",
    "lec_plan_choice",
    "mean_variance_plan_choice",
    "paper_default_model",
    "threshold_plan_choice",
    "plan_choice_probabilities",
    "preference_flip_threshold",
    "sample_size_sweep",
    "sample_size_tradeoff_curve",
    "selectivity_estimates",
    "threshold_sweep",
    "tradeoff_curve",
    "tradeoff_from_times",
]
