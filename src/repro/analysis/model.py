"""Linear plan-cost models (paper Section 5.1).

Execution time of plan ``P_i`` is ``v_i · x + f_i`` where ``x = p·N``
is the number of qualifying tuples, ``v_i`` the incremental per-tuple
cost, and ``f_i`` the fixed overhead. The paper's constants make the
plans "roughly resemble a sequential scan plan and an index
intersection plan": ``N = 6,000,000``, ``f1 = 35``, ``v1 = 3.5e-6``,
``f2 = 5``, ``v2 = 3.5e-3``, giving a crossover at ``p_c ≈ 0.14 %``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class LinearCostPlan:
    """One query plan with cost linear in the number of selected rows."""

    name: str
    fixed: float
    per_row: float

    def cost(self, selectivity, n_rows: float):
        """Execution time at ``selectivity`` (scalar or array)."""
        return self.fixed + self.per_row * np.asarray(selectivity) * n_rows

    def inverse(self, cost: float, n_rows: float) -> float:
        """The selectivity at which this plan costs ``cost``."""
        if self.per_row == 0:
            raise ReproError(f"plan {self.name!r} has constant cost; not invertible")
        return (cost - self.fixed) / (self.per_row * n_rows)


@dataclass(frozen=True)
class PlanCostModel:
    """A table size plus the alternative plans the optimizer weighs."""

    n_rows: float
    plans: tuple[LinearCostPlan, ...]

    def __post_init__(self) -> None:
        if len(self.plans) < 2:
            raise ReproError("a plan-cost model needs at least two plans")

    def cost(self, plan_index: int, selectivity):
        """Cost of plan ``plan_index`` at ``selectivity``."""
        return self.plans[plan_index].cost(selectivity, self.n_rows)

    def costs(self, selectivity) -> np.ndarray:
        """Cost of every plan at ``selectivity``; shape (plans, ...)."""
        return np.stack(
            [plan.cost(selectivity, self.n_rows) for plan in self.plans]
        )

    def best_plan(self, selectivity):
        """Index of the cheapest plan at ``selectivity`` (vectorized)."""
        return np.argmin(self.costs(selectivity), axis=0)

    def optimal_cost(self, selectivity):
        """Cost achieved with perfect knowledge of the selectivity."""
        return np.min(self.costs(selectivity), axis=0)

    def crossover_points(self) -> list[float]:
        """Selectivities in (0, 1) where the optimal plan changes."""
        points = []
        for i in range(len(self.plans)):
            for j in range(i + 1, len(self.plans)):
                a, b = self.plans[i], self.plans[j]
                denominator = (a.per_row - b.per_row) * self.n_rows
                if denominator == 0:
                    continue
                p = (b.fixed - a.fixed) / denominator
                if 0 < p < 1 and self._is_active_crossover(p):
                    points.append(p)
        return sorted(set(points))

    def _is_active_crossover(self, p: float, epsilon: float = 1e-12) -> bool:
        """True when the argmin actually changes across ``p``."""
        below = self.best_plan(max(p * (1 - 1e-6), epsilon))
        above = self.best_plan(min(p * (1 + 1e-6), 1 - epsilon))
        return bool(below != above)


def paper_default_model() -> PlanCostModel:
    """The Section 5.1 model: crossover at ``p_c ≈ 0.14 %``."""
    return PlanCostModel(
        n_rows=6_000_000,
        plans=(
            LinearCostPlan("P1:seq-scan", fixed=35.0, per_row=3.5e-6),
            LinearCostPlan("P2:index-intersect", fixed=5.0, per_row=3.5e-3),
        ),
    )


def high_crossover_model(crossover: float = 0.052) -> PlanCostModel:
    """The Section 5.2.3 perturbation: crossover at ``≈ 5.2 %``.

    Keeps plan P1 and re-slopes P2 so the crossover lands at
    ``crossover``: ``v2 = (f1 − f2) / (p_c · N) + v1``.
    """
    if not 0 < crossover < 1:
        raise ReproError(f"crossover must be in (0, 1), got {crossover}")
    n_rows = 6_000_000.0
    f1, v1, f2 = 35.0, 3.5e-6, 5.0
    v2 = (f1 - f2) / (crossover * n_rows) + v1
    return PlanCostModel(
        n_rows=n_rows,
        plans=(
            LinearCostPlan("P1:seq-scan", fixed=f1, per_row=v1),
            LinearCostPlan("P2:index-intersect", fixed=f2, per_row=v2),
        ),
    )


def figure2_plans() -> PlanCostModel:
    """The implicit cost functions behind the paper's Figures 1–3.

    The paper never states them, but its worked numbers pin them down:
    with the Figure 2 posterior (50 of 200 sample tuples satisfying,
    Jeffreys prior → Beta(50.5, 150.5)) the text reports percentile
    costs 30.2 / 31.5 at T = 50 % and 33.5 / 31.9 at T = 80 %. Solving
    the two linear systems gives

        cost1(s) ≈ −2.46 + 130.4·s      (risky Plan 1)
        cost2(s) ≈ 27.54 +  15.8·s      (stable Plan 2)

    whose crossover is s ≈ 26.2 % — exactly the Figure 1 annotation —
    and whose percentile preference flips near T ≈ 65 % as Figure 3
    states.
    """
    return PlanCostModel(
        n_rows=1.0,
        plans=(
            LinearCostPlan("Plan 1", fixed=-2.46, per_row=130.4),
            LinearCostPlan("Plan 2", fixed=27.54, per_row=15.8),
        ),
    )
