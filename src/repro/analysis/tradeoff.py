"""The performance/predictability tradeoff summary (Figures 6, 9b–12).

The paper condenses each configuration (a confidence threshold, or a
sample size) into a single point: the average execution time across a
set of queries of varying selectivities, against the standard deviation
of execution time across those queries — "under the assumption that
any of the selectivities ... is equally likely to occur" (Section
5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.choice import EstimationModel, expected_time_and_variance
from repro.analysis.model import PlanCostModel
from repro.core.prior import JEFFREYS, Prior


@dataclass(frozen=True)
class TradeoffPoint:
    """One configuration's position in the tradeoff space."""

    label: str
    mean_time: float
    std_time: float


def tradeoff_curve(
    cost_model: PlanCostModel,
    sample_size: int = 1000,
    thresholds: Sequence[float] = (0.05, 0.20, 0.50, 0.80, 0.95),
    selectivities: np.ndarray | None = None,
    prior: Prior = JEFFREYS,
) -> list[TradeoffPoint]:
    """Analytical tradeoff points, one per threshold (Figure 6).

    Total variance decomposes over the uniformly-weighted selectivity
    mixture: ``Var = E_p[Var(time|p)] + Var_p(E[time|p])``.
    """
    grid = (
        np.arange(0.0, 0.0100001, 0.0005)
        if selectivities is None
        else np.asarray(selectivities)
    )
    points = []
    for threshold in thresholds:
        estimation = EstimationModel(sample_size, threshold, prior)
        expected, variance = expected_time_and_variance(cost_model, estimation, grid)
        mean_time = float(expected.mean())
        total_variance = float(variance.mean() + expected.var())
        points.append(
            TradeoffPoint(
                label=f"T={threshold:.0%}",
                mean_time=mean_time,
                std_time=float(np.sqrt(total_variance)),
            )
        )
    return points


def sample_size_tradeoff_curve(
    cost_model: PlanCostModel,
    sample_sizes: Sequence[int] = (50, 100, 250, 500, 1000, 2500),
    threshold: float = 0.50,
    selectivities: np.ndarray | None = None,
    prior: Prior = JEFFREYS,
) -> list[TradeoffPoint]:
    """Analytical counterpart of Figure 12: one point per sample size.

    Same mixture summary as :func:`tradeoff_curve`, but sweeping the
    sample size at a fixed threshold.
    """
    grid = (
        np.arange(0.0, 0.0100001, 0.0005)
        if selectivities is None
        else np.asarray(selectivities)
    )
    points = []
    for size in sample_sizes:
        estimation = EstimationModel(size, threshold, prior)
        expected, variance = expected_time_and_variance(cost_model, estimation, grid)
        total_variance = float(variance.mean() + expected.var())
        points.append(
            TradeoffPoint(
                label=f"n={size}",
                mean_time=float(expected.mean()),
                std_time=float(np.sqrt(total_variance)),
            )
        )
    return points


def tradeoff_from_times(label: str, times: Sequence[float]) -> TradeoffPoint:
    """Summarize measured execution times into a tradeoff point.

    Used by the experiment harness for Figures 9(b), 10(b), 11(b), and
    12: ``times`` holds one simulated execution time per (query
    selectivity, sample seed) pair.
    """
    array = np.asarray(list(times), dtype=float)
    return TradeoffPoint(
        label=label,
        mean_time=float(array.mean()),
        std_time=float(array.std()),
    )
