"""Execution-cost distributions from selectivity posteriors (Section 3.1).

The probability distribution for a plan's execution cost follows from
the selectivity posterior ``f(s)`` and the plan's (monotone) cost
function ``c = g(s)`` by a change of variable. These functions
regenerate the paper's Figures 2 and 3, and implement the
cdf-inversion shortcut of Section 3.1.1: ``cost_percentile`` inverts
the *selectivity* cdf and evaluates the cost function once, never
materializing the cost distribution.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.model import LinearCostPlan
from repro.core.posterior import SelectivityPosterior
from repro.errors import ReproError


def cost_pdf(
    plan: LinearCostPlan,
    posterior: SelectivityPosterior,
    costs: np.ndarray,
    n_rows: float = 1.0,
) -> np.ndarray:
    """Probability density of the plan's execution cost.

    For the linear cost ``c = f + v·N·s`` the change of variable gives
    ``pdf_c(c) = pdf_s((c − f) / (v·N)) / (v·N)``.
    """
    slope = plan.per_row * n_rows
    if slope <= 0:
        raise ReproError(f"plan {plan.name!r} has non-increasing cost")
    s = (np.asarray(costs, dtype=float) - plan.fixed) / slope
    density = np.where((s >= 0) & (s <= 1), posterior.pdf(np.clip(s, 0, 1)), 0.0)
    return density / slope


def cost_cdf(
    plan: LinearCostPlan,
    posterior: SelectivityPosterior,
    costs: np.ndarray,
    n_rows: float = 1.0,
) -> np.ndarray:
    """Cumulative probability that execution cost ≤ ``costs``."""
    slope = plan.per_row * n_rows
    if slope <= 0:
        raise ReproError(f"plan {plan.name!r} has non-increasing cost")
    s = (np.asarray(costs, dtype=float) - plan.fixed) / slope
    return posterior.cdf(np.clip(s, 0.0, 1.0))


def cost_percentile(
    plan: LinearCostPlan,
    posterior: SelectivityPosterior,
    threshold: float,
    n_rows: float = 1.0,
) -> float:
    """The ``T``-percentile execution cost, via the Section 3.1.1 shortcut.

    Inverts the selectivity cdf (one Beta ppf) and evaluates the cost
    function once: ``c' = g(cdf⁻¹(T))``. For monotone cost functions
    this equals inverting the cost cdf directly.
    """
    s = posterior.ppf(threshold)
    return float(plan.cost(s, n_rows))


def preference_flip_threshold(
    plan_risky: LinearCostPlan,
    plan_stable: LinearCostPlan,
    posterior: SelectivityPosterior,
    n_rows: float = 1.0,
    tolerance: float = 1e-6,
) -> float:
    """The confidence threshold where plan preference flips.

    Below the returned ``T`` the risky plan has the lower percentile
    cost; above it the stable plan does (Figure 3's ≈ 65 % annotation).
    Found by bisection on the percentile-cost difference.
    """
    def difference(threshold: float) -> float:
        return cost_percentile(
            plan_risky, posterior, threshold, n_rows
        ) - cost_percentile(plan_stable, posterior, threshold, n_rows)

    low, high = tolerance, 1.0 - tolerance
    if difference(low) >= 0 or difference(high) <= 0:
        raise ReproError("plan preference does not flip within (0, 1)")
    while high - low > tolerance:
        middle = (low + high) / 2.0
        if difference(middle) < 0:
            low = middle
        else:
            high = middle
    return (low + high) / 2.0
