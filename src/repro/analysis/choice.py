"""Plan-choice distributions under sampling (paper Section 5.1).

With true selectivity ``p`` and a sample of ``n`` tuples, the number of
satisfying tuples ``k`` is Binomial(n, p). Each ``k`` maps through the
Beta-posterior ppf to a selectivity estimate and hence to a plan
choice, so the plan actually executed — and therefore the execution
time — is a deterministic function of the random ``k``. Everything
below computes exact expectations over that randomness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.analysis.model import PlanCostModel
from repro.core.prior import JEFFREYS, Prior
from repro.errors import ReproError


@dataclass(frozen=True)
class EstimationModel:
    """The estimation side: sample size, threshold, and prior."""

    sample_size: int
    threshold: float
    prior: Prior = JEFFREYS

    def __post_init__(self) -> None:
        if self.sample_size <= 0:
            raise ReproError("sample_size must be positive")
        if not 0 < self.threshold < 1:
            raise ReproError("threshold must lie strictly in (0, 1)")


def selectivity_estimates(estimation: EstimationModel) -> np.ndarray:
    """The selectivity estimate for every possible ``k`` in ``0..n``.

    ``estimates[k] = BetaPPF(T; k + a, n − k + b)`` — the paper's
    cdf-inversion applied to each achievable sample outcome.
    """
    n = estimation.sample_size
    ks = np.arange(n + 1)
    return scipy_stats.beta.ppf(
        estimation.threshold,
        ks + estimation.prior.alpha,
        n - ks + estimation.prior.beta,
    )


def plan_for_each_k(
    cost_model: PlanCostModel, estimation: EstimationModel
) -> np.ndarray:
    """Index of the plan chosen for every sample outcome ``k``."""
    estimates = selectivity_estimates(estimation)
    return cost_model.best_plan(estimates)


def plan_choice_probabilities(
    cost_model: PlanCostModel,
    estimation: EstimationModel,
    selectivity: float,
) -> np.ndarray:
    """Probability that each plan is chosen at true ``selectivity``."""
    n = estimation.sample_size
    ks = np.arange(n + 1)
    pmf = scipy_stats.binom.pmf(ks, n, selectivity)
    chosen = plan_for_each_k(cost_model, estimation)
    probabilities = np.zeros(len(cost_model.plans))
    for plan_index in range(len(cost_model.plans)):
        probabilities[plan_index] = pmf[chosen == plan_index].sum()
    return probabilities


def expected_time_and_variance(
    cost_model: PlanCostModel,
    estimation: EstimationModel,
    selectivities: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """E[time] and Var[time] at each true selectivity (vectorized).

    The execution time given outcome ``k`` is the chosen plan's cost at
    the *true* selectivity; expectation and variance are over the
    binomial distribution of ``k``.
    """
    selectivities = np.atleast_1d(np.asarray(selectivities, dtype=float))
    n = estimation.sample_size
    ks = np.arange(n + 1)
    chosen = plan_for_each_k(cost_model, estimation)

    # costs[plan, p] — each plan's cost at each true selectivity.
    costs = cost_model.costs(selectivities)
    # time_by_k[k, p] — the executed time for each sample outcome.
    time_by_k = costs[chosen, :]

    # pmf[k, p] — binomial weights.
    pmf = scipy_stats.binom.pmf(ks[:, None], n, selectivities[None, :])
    expected = (pmf * time_by_k).sum(axis=0)
    second_moment = (pmf * time_by_k**2).sum(axis=0)
    variance = np.maximum(0.0, second_moment - expected**2)
    return expected, variance
