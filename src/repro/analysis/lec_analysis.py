"""Analytical comparison: least expected cost vs. confidence thresholds.

A small but clarifying result for the Section 5 model. When every
plan's cost is *linear* in the selectivity, ``E[cost_i(p)] = f_i +
v_i·N·E[p]`` — so the least-expected-cost choice is exactly the
least-cost plan at the posterior *mean*. Under the paper's framework
that corresponds to using the (data-dependent) confidence threshold

    T_eq(k, n) = posterior.cdf(posterior.mean),

which for a Beta posterior is slightly above 50 % for small k (the
posterior is right-skewed) and approaches 50 % as k grows. In other
words: for linear cost models, LEC is a mild, fixed point in the
paper's threshold spectrum — it cannot express the conservative
(T = 95 %) behaviour at all, which is the paper's argument for making
the trade explicit. With *non-linear* costs the equivalence breaks and
LEC must be computed by quadrature, which :func:`lec_plan_choice`
supports.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.analysis.model import PlanCostModel
from repro.core.posterior import SelectivityPosterior


def lec_equivalent_threshold(posterior: SelectivityPosterior) -> float:
    """The confidence threshold that mimics LEC under linear costs.

    ``cdf(E[p])`` — the percentile at which the posterior mean sits.
    """
    return float(posterior.cdf(posterior.mean))


def lec_plan_choice(
    cost_model: PlanCostModel,
    posterior: SelectivityPosterior,
    cost_transform: Callable[[np.ndarray], np.ndarray] | None = None,
    grid_size: int = 2001,
) -> int:
    """The plan index minimizing expected (transformed) cost.

    ``cost_transform`` maps raw cost to disutility (identity = plain
    LEC; a convex transform models risk aversion à la Chu et al.).
    Expectation uses quantile integration — ``E[g(p)] = ∫₀¹ g(ppf(u)) du``
    over midpoint quantiles — which is robust to the Beta posterior's
    density spikes at the interval ends.
    """
    selectivities = _quantile_grid(posterior, grid_size)
    costs = cost_model.costs(selectivities)  # (plans, grid)
    if cost_transform is not None:
        costs = cost_transform(costs)
    expected = costs.mean(axis=1)
    return int(np.argmin(expected))


def _quantile_grid(posterior: SelectivityPosterior, grid_size: int) -> np.ndarray:
    quantiles = (np.arange(grid_size) + 0.5) / grid_size
    return np.asarray(posterior.ppf(quantiles))


def threshold_plan_choice(
    cost_model: PlanCostModel,
    posterior: SelectivityPosterior,
    threshold: float,
) -> int:
    """The plan the paper's procedure picks at ``threshold``."""
    estimate = posterior.ppf(threshold)
    return int(cost_model.best_plan(estimate))


def mean_variance_plan_choice(
    cost_model: PlanCostModel,
    posterior: SelectivityPosterior,
    risk_weight: float,
    grid_size: int = 2001,
) -> int:
    """Chu et al.'s mean-variance utility: ``E[cost] + λ·Var[cost]``.

    ``risk_weight = 0`` reduces to plain LEC; larger values penalize
    cost variance, approaching the paper's conservative thresholds.
    """
    selectivities = _quantile_grid(posterior, grid_size)
    costs = cost_model.costs(selectivities)
    expected = costs.mean(axis=1)
    variance = np.maximum(0.0, (costs**2).mean(axis=1) - expected**2)
    return int(np.argmin(expected + risk_weight * variance))
