"""Parameter sweeps regenerating Figures 5, 7, and 8.

Each sweep returns a mapping from the swept parameter to the expected
execution-time curve over a selectivity grid, exactly as the paper
plots them.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.choice import EstimationModel, expected_time_and_variance
from repro.analysis.model import PlanCostModel
from repro.core.prior import JEFFREYS, Prior

#: The paper's Figure 5/7 selectivity grid: 0 % to 1 % in 0.05 % steps.
DEFAULT_SELECTIVITIES = np.arange(0.0, 0.0100001, 0.0005)

#: The confidence thresholds used throughout the paper's experiments.
PAPER_THRESHOLDS = (0.05, 0.20, 0.50, 0.80, 0.95)


def threshold_sweep(
    cost_model: PlanCostModel,
    sample_size: int = 1000,
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
    selectivities: np.ndarray | None = None,
    prior: Prior = JEFFREYS,
) -> dict[float, np.ndarray]:
    """E[execution time] per threshold over a selectivity grid (Fig. 5).

    Figure 8 is the same sweep with ``high_crossover_model()`` and a
    wider selectivity grid.
    """
    grid = (
        DEFAULT_SELECTIVITIES if selectivities is None else np.asarray(selectivities)
    )
    curves: dict[float, np.ndarray] = {}
    for threshold in thresholds:
        estimation = EstimationModel(sample_size, threshold, prior)
        expected, _ = expected_time_and_variance(cost_model, estimation, grid)
        curves[threshold] = expected
    return curves


def sample_size_sweep(
    cost_model: PlanCostModel,
    sample_sizes: Sequence[int] = (50, 100, 250, 500, 1000),
    threshold: float = 0.50,
    selectivities: np.ndarray | None = None,
    prior: Prior = JEFFREYS,
) -> dict[int, np.ndarray]:
    """E[execution time] per sample size at a fixed threshold (Fig. 7)."""
    grid = (
        DEFAULT_SELECTIVITIES if selectivities is None else np.asarray(selectivities)
    )
    curves: dict[int, np.ndarray] = {}
    for size in sample_sizes:
        estimation = EstimationModel(size, threshold, prior)
        expected, _ = expected_time_and_variance(cost_model, estimation, grid)
        curves[size] = expected
    return curves
