"""Expression trees with vectorized evaluation.

Expressions evaluate against a :class:`Frame` (a bag of named numpy
columns), so the *same* predicate object can run against a base table,
an intermediate join result, or a precomputed join synopsis. That last
case is the heart of the paper's estimator: selectivity is measured by
evaluating the query predicate directly on a random sample, which works
for "almost any type of query predicate, including arithmetic
expressions, substring matches, etc." (Section 3.2).
"""

from repro.expressions.frame import Frame
from repro.expressions.analysis import (
    JoinCondition,
    PredicateClasses,
    RangeCondition,
    as_join_condition,
    as_range_condition,
    classify_conjuncts,
    merge_range_conditions,
    predicates_by_table,
    split_conjuncts,
    split_sargable,
)
from repro.expressions.render import to_sql
from repro.expressions.expr import (
    And,
    Between,
    BinaryArithmetic,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
    Not,
    Or,
    StringContains,
    StringStartsWith,
    col,
    conjunction,
    expr_key,
    lit,
)

__all__ = [
    "And",
    "Between",
    "BinaryArithmetic",
    "ColumnRef",
    "Comparison",
    "Expr",
    "Frame",
    "InList",
    "Literal",
    "Not",
    "Or",
    "JoinCondition",
    "PredicateClasses",
    "RangeCondition",
    "as_join_condition",
    "as_range_condition",
    "classify_conjuncts",
    "merge_range_conditions",
    "predicates_by_table",
    "split_conjuncts",
    "split_sargable",
    "to_sql",
    "StringContains",
    "StringStartsWith",
    "col",
    "conjunction",
    "expr_key",
    "lit",
]
