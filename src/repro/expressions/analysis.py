"""Static analysis of predicate trees.

The optimizer needs to know which conjuncts are *sargable* (resolvable
by an index as a single-column range) and which predicates touch which
tables; the histogram estimator needs per-column atoms to apply the
attribute-value-independence combination. Both analyses live here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.expressions.expr import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
    conjunction,
)


def split_conjuncts(predicate: Expr | None) -> list[Expr]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if predicate is None:
        return []
    if isinstance(predicate, And):
        return list(predicate.operands)
    return [predicate]


def predicates_by_table(predicate: Expr | None) -> dict[str, Expr]:
    """Group conjuncts by the single table each references.

    Conjuncts referencing zero or multiple tables are collected under
    the key ``""``. Callers that must distinguish *join conditions*
    (column-vs-column comparisons across two tables) from other
    multi-table conjuncts should use :func:`classify_conjuncts`
    instead — treating a join condition as an opaque leftover selection
    both misprices it and, historically, dropped it from estimation.
    """
    grouped: dict[str, list[Expr]] = {}
    for conjunct in split_conjuncts(predicate):
        tables = conjunct.tables()
        key = tables.pop() if len(tables) == 1 else ""
        grouped.setdefault(key, []).append(conjunct)
    return {
        table: combined
        for table, conjuncts in grouped.items()
        if (combined := conjunction(conjuncts)) is not None
    }


#: Comparison operators a join condition may carry, with their
#: operand-swapped mirror (``a < b`` ≡ ``b > a``).
_SWAPPED_OPS = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


@dataclass(frozen=True, eq=False)
class JoinCondition:
    """A column-vs-column comparison joining two different tables.

    ``left``/``right`` are the qualified column names as written; the
    comparison reads ``left <op> right``. ``expr`` is the original
    conjunct (evaluable on any frame carrying both columns). ``eq`` is
    disabled because :class:`Expr` overloads ``==`` to build trees.
    """

    left_table: str
    left_column: str
    right_table: str
    right_column: str
    op: str
    expr: Expr

    @property
    def left(self) -> str:
        return f"{self.left_table}.{self.left_column}"

    @property
    def right(self) -> str:
        return f"{self.right_table}.{self.right_column}"

    @property
    def tables(self) -> frozenset[str]:
        return frozenset((self.left_table, self.right_table))

    @property
    def is_equality(self) -> bool:
        return self.op == "="

    def oriented(self, left_tables: set[str]) -> tuple[str, str, str]:
        """``(left_column, op, right_column)`` with the left operand
        drawn from ``left_tables`` (operands swapped and the operator
        mirrored when the condition was written the other way round)."""
        if self.left_table in left_tables:
            return self.left, self.op, self.right
        return self.right, _SWAPPED_OPS[self.op], self.left

    def crosses(self, left_tables: set[str], right_tables: set[str]) -> bool:
        """True when the two referenced tables straddle the partition."""
        return (
            self.left_table in left_tables and self.right_table in right_tables
        ) or (
            self.left_table in right_tables and self.right_table in left_tables
        )


def as_join_condition(conjunct: Expr) -> JoinCondition | None:
    """Recognize ``t1.a <op> t2.b`` (two distinct tables) as a join
    condition. Returns ``None`` for anything else — including
    column-vs-column comparisons within one table, which remain
    ordinary single-table selections."""
    if not isinstance(conjunct, Comparison):
        return None
    left, right = conjunct.left, conjunct.right
    if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
        return None
    if conjunct.op not in _SWAPPED_OPS:
        return None  # != joins are not supported as join conditions
    if left.table is None or right.table is None or left.table == right.table:
        return None
    return JoinCondition(
        left.table, left.name, right.table, right.name, conjunct.op, conjunct
    )


@dataclass(eq=False)
class PredicateClasses:
    """The three conjunct classes :func:`classify_conjuncts` separates."""

    #: Single-table selections, combined per table.
    per_table: dict[str, Expr]
    #: Column-vs-column comparisons across two tables.
    join_conditions: list[JoinCondition]
    #: Everything else referencing zero or several tables.
    residual: list[Expr]


def classify_conjuncts(predicate: Expr | None) -> PredicateClasses:
    """Split a predicate into selections, join conditions, and residual.

    The fixed replacement for routing everything multi-table through
    :func:`predicates_by_table`'s ``""`` bucket: join conditions come
    back as structured :class:`JoinCondition` objects (in conjunct
    order) so estimators and the optimizer can treat them as joins
    rather than as unattributable leftover selections.
    """
    per_table: dict[str, list[Expr]] = {}
    join_conditions: list[JoinCondition] = []
    residual: list[Expr] = []
    for conjunct in split_conjuncts(predicate):
        tables = conjunct.tables()
        if len(tables) == 1:
            per_table.setdefault(tables.pop(), []).append(conjunct)
            continue
        condition = as_join_condition(conjunct)
        if condition is not None:
            join_conditions.append(condition)
        else:
            residual.append(conjunct)
    combined = {
        table: combined_expr
        for table, conjuncts in per_table.items()
        if (combined_expr := conjunction(conjuncts)) is not None
    }
    return PredicateClasses(combined, join_conditions, residual)


@dataclass(frozen=True)
class RangeCondition:
    """A sargable single-column range: ``low <= column <= high``.

    ``low``/``high`` of ``None`` leave that side unbounded. Values are
    raw literals (date strings not yet converted); consumers coerce
    against the column's storage dtype.
    """

    table: str | None
    column: str
    low: object = None
    high: object = None
    low_inclusive: bool = True
    high_inclusive: bool = True

    @property
    def is_equality(self) -> bool:
        """True when the range pins the column to a single value."""
        return (
            self.low is not None
            and self.high is not None
            and self.low == self.high
            and self.low_inclusive
            and self.high_inclusive
        )


def as_range_condition(conjunct: Expr) -> RangeCondition | None:
    """Recognize ``column <op> literal`` / BETWEEN as a range condition.

    Returns ``None`` for anything an index cannot resolve directly
    (arithmetic, disjunctions, string matching, multi-column atoms).
    """
    if isinstance(conjunct, Between) and isinstance(conjunct.target, ColumnRef):
        ref = conjunct.target
        return RangeCondition(ref.table, ref.name, conjunct.low, conjunct.high)

    if isinstance(conjunct, Comparison):
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            left, right = right, left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
            return None
        value = right.value
        table, column = left.table, left.name
        if op == "=":
            return RangeCondition(table, column, value, value)
        if op == "<":
            return RangeCondition(table, column, None, value, high_inclusive=False)
        if op == "<=":
            return RangeCondition(table, column, None, value)
        if op == ">":
            return RangeCondition(table, column, value, None, low_inclusive=False)
        if op == ">=":
            return RangeCondition(table, column, value, None)
        return None  # != is not sargable as a single range

    return None


def merge_range_conditions(
    conditions: list[RangeCondition],
    unmergeable: list[RangeCondition] | None = None,
) -> dict[tuple[str | None, str], RangeCondition]:
    """Combine same-column ranges by intersection.

    ``a >= 5 AND a < 9`` becomes one range ``[5, 9)``. Contradictory
    ranges are kept as-is (an empty range is a valid, cheap plan).

    Ranges over the same column whose literals do not compare (a date
    string against a number, say) cannot be intersected; instead of
    raising a bare ``TypeError`` mid-planning, the offending condition
    is appended to ``unmergeable`` for the caller to route back into
    the residual predicate (the first-seen range keeps the merged
    slot), so no conjunct is ever silently dropped.
    """
    merged: dict[tuple[str | None, str], RangeCondition] = {}
    for condition in conditions:
        key = (condition.table, condition.column)
        if key not in merged:
            merged[key] = condition
            continue
        current = merged[key]
        try:
            low, low_inc = current.low, current.low_inclusive
            if condition.low is not None and (low is None or condition.low > low):
                low, low_inc = condition.low, condition.low_inclusive
            elif condition.low is not None and condition.low == low:
                low_inc = low_inc and condition.low_inclusive
            high, high_inc = current.high, current.high_inclusive
            if condition.high is not None and (high is None or condition.high < high):
                high, high_inc = condition.high, condition.high_inclusive
            elif condition.high is not None and condition.high == high:
                high_inc = high_inc and condition.high_inclusive
        except TypeError:
            # Heterogeneous literal types (e.g. '1995-01-01' vs 42):
            # not intersectable — hand the condition back instead of
            # crashing the planner.
            if unmergeable is not None:
                unmergeable.append(condition)
            continue
        merged[key] = RangeCondition(
            condition.table, condition.column, low, high, low_inc, high_inc
        )
    return merged


def split_sargable(
    predicate: Expr | None,
) -> tuple[list[RangeCondition], Expr | None]:
    """Split a predicate into sargable ranges and the residual remainder.

    Returns ``(ranges, residual)`` where AND-ing the ranges with the
    residual is equivalent to the original predicate. IN-lists over a
    column are treated as residual (they would need index OR-union,
    which we do not generate).
    """
    ranges: list[RangeCondition] = []
    residual: list[Expr] = []
    for conjunct in split_conjuncts(predicate):
        condition = as_range_condition(conjunct)
        if condition is not None:
            ranges.append(condition)
        else:
            residual.append(conjunct)
    return ranges, conjunction(residual)


def in_list_atoms(conjunct: Expr) -> tuple[ColumnRef, list] | None:
    """Recognize ``column IN (v1, ..., vk)``, for histogram estimation."""
    if isinstance(conjunct, InList) and isinstance(conjunct.target, ColumnRef):
        return conjunct.target, list(conjunct.values)
    return None
