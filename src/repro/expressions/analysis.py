"""Static analysis of predicate trees.

The optimizer needs to know which conjuncts are *sargable* (resolvable
by an index as a single-column range) and which predicates touch which
tables; the histogram estimator needs per-column atoms to apply the
attribute-value-independence combination. Both analyses live here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.expressions.expr import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
    conjunction,
)


def split_conjuncts(predicate: Expr | None) -> list[Expr]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if predicate is None:
        return []
    if isinstance(predicate, And):
        return list(predicate.operands)
    return [predicate]


def predicates_by_table(predicate: Expr | None) -> dict[str, Expr]:
    """Group conjuncts by the single table each references.

    Conjuncts referencing zero or multiple tables are collected under
    the key ``""`` (the caller decides how to treat them; for the SPJ
    queries of the paper every selection references one table).
    """
    grouped: dict[str, list[Expr]] = {}
    for conjunct in split_conjuncts(predicate):
        tables = conjunct.tables()
        key = tables.pop() if len(tables) == 1 else ""
        grouped.setdefault(key, []).append(conjunct)
    return {
        table: combined
        for table, conjuncts in grouped.items()
        if (combined := conjunction(conjuncts)) is not None
    }


@dataclass(frozen=True)
class RangeCondition:
    """A sargable single-column range: ``low <= column <= high``.

    ``low``/``high`` of ``None`` leave that side unbounded. Values are
    raw literals (date strings not yet converted); consumers coerce
    against the column's storage dtype.
    """

    table: str | None
    column: str
    low: object = None
    high: object = None
    low_inclusive: bool = True
    high_inclusive: bool = True

    @property
    def is_equality(self) -> bool:
        """True when the range pins the column to a single value."""
        return (
            self.low is not None
            and self.high is not None
            and self.low == self.high
            and self.low_inclusive
            and self.high_inclusive
        )


def as_range_condition(conjunct: Expr) -> RangeCondition | None:
    """Recognize ``column <op> literal`` / BETWEEN as a range condition.

    Returns ``None`` for anything an index cannot resolve directly
    (arithmetic, disjunctions, string matching, multi-column atoms).
    """
    if isinstance(conjunct, Between) and isinstance(conjunct.target, ColumnRef):
        ref = conjunct.target
        return RangeCondition(ref.table, ref.name, conjunct.low, conjunct.high)

    if isinstance(conjunct, Comparison):
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            left, right = right, left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
            return None
        value = right.value
        table, column = left.table, left.name
        if op == "=":
            return RangeCondition(table, column, value, value)
        if op == "<":
            return RangeCondition(table, column, None, value, high_inclusive=False)
        if op == "<=":
            return RangeCondition(table, column, None, value)
        if op == ">":
            return RangeCondition(table, column, value, None, low_inclusive=False)
        if op == ">=":
            return RangeCondition(table, column, value, None)
        return None  # != is not sargable as a single range

    return None


def merge_range_conditions(
    conditions: list[RangeCondition],
) -> dict[tuple[str | None, str], RangeCondition]:
    """Combine same-column ranges by intersection.

    ``a >= 5 AND a < 9`` becomes one range ``[5, 9)``. Contradictory
    ranges are kept as-is (an empty range is a valid, cheap plan).
    """
    merged: dict[tuple[str | None, str], RangeCondition] = {}
    for condition in conditions:
        key = (condition.table, condition.column)
        if key not in merged:
            merged[key] = condition
            continue
        current = merged[key]
        low, low_inc = current.low, current.low_inclusive
        if condition.low is not None and (low is None or condition.low > low):
            low, low_inc = condition.low, condition.low_inclusive
        elif condition.low is not None and condition.low == low:
            low_inc = low_inc and condition.low_inclusive
        high, high_inc = current.high, current.high_inclusive
        if condition.high is not None and (high is None or condition.high < high):
            high, high_inc = condition.high, condition.high_inclusive
        elif condition.high is not None and condition.high == high:
            high_inc = high_inc and condition.high_inclusive
        merged[key] = RangeCondition(
            condition.table, condition.column, low, high, low_inc, high_inc
        )
    return merged


def split_sargable(
    predicate: Expr | None,
) -> tuple[list[RangeCondition], Expr | None]:
    """Split a predicate into sargable ranges and the residual remainder.

    Returns ``(ranges, residual)`` where AND-ing the ranges with the
    residual is equivalent to the original predicate. IN-lists over a
    column are treated as residual (they would need index OR-union,
    which we do not generate).
    """
    ranges: list[RangeCondition] = []
    residual: list[Expr] = []
    for conjunct in split_conjuncts(predicate):
        condition = as_range_condition(conjunct)
        if condition is not None:
            ranges.append(condition)
        else:
            residual.append(conjunct)
    return ranges, conjunction(residual)


def in_list_atoms(conjunct: Expr) -> tuple[ColumnRef, list] | None:
    """Recognize ``column IN (v1, ..., vk)``, for histogram estimation."""
    if isinstance(conjunct, InList) and isinstance(conjunct.target, ColumnRef):
        return conjunct.target, list(conjunct.values)
    return None
