"""Frames: named numpy columns flowing between operators.

A frame maps *qualified* column names (``table.column``) to arrays of
equal length. Frames are produced by scans, joins, samples, and join
synopses; expressions evaluate against them.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import ExpressionError


class Frame:
    """An ordered mapping of qualified column names to numpy arrays."""

    def __init__(self, columns: Mapping[str, np.ndarray]) -> None:
        self._columns: dict[str, np.ndarray] = dict(columns)
        lengths = {len(array) for array in self._columns.values()}
        if len(lengths) > 1:
            raise ExpressionError(f"ragged frame (lengths {sorted(lengths)})")
        self._num_rows = lengths.pop() if lengths else 0

    @classmethod
    def from_table(cls, table) -> "Frame":
        """Build a frame over a whole table with qualified names."""
        return cls(
            {table.qualified(name): table.column(name) for name in table.schema.column_names}
        )

    @classmethod
    def from_table_rows(cls, table, row_ids: np.ndarray) -> "Frame":
        """Build a frame over selected rows of a table."""
        return cls(
            {
                table.qualified(name): array
                for name, array in table.take(row_ids).items()
            }
        )

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return self._num_rows

    @property
    def column_names(self) -> list[str]:
        """Qualified column names in insertion order."""
        return list(self._columns)

    def column(self, qualified_name: str) -> np.ndarray:
        """Return the array stored under ``qualified_name``.

        As a convenience, an unqualified name resolves when exactly one
        frame column has that suffix.
        """
        if qualified_name in self._columns:
            return self._columns[qualified_name]
        suffix = f".{qualified_name}"
        matches = [name for name in self._columns if name.endswith(suffix)]
        if len(matches) == 1:
            return self._columns[matches[0]]
        if len(matches) > 1:
            raise ExpressionError(
                f"ambiguous column {qualified_name!r}: matches {matches}"
            )
        raise ExpressionError(
            f"no column {qualified_name!r} in frame with {self.column_names}"
        )

    def __contains__(self, qualified_name: str) -> bool:
        try:
            self.column(qualified_name)
        except ExpressionError:
            return False
        return True

    def mask(self, keep: np.ndarray) -> "Frame":
        """Return a new frame with only the rows where ``keep`` is True."""
        if keep.dtype != np.bool_ or len(keep) != self._num_rows:
            raise ExpressionError("mask must be a boolean array of frame length")
        return Frame({name: array[keep] for name, array in self._columns.items()})

    def take(self, row_ids: np.ndarray) -> "Frame":
        """Return a new frame with rows gathered by position."""
        return Frame({name: array[row_ids] for name, array in self._columns.items()})

    def select(self, names: list[str]) -> "Frame":
        """Return a new frame with only the listed (qualified) columns."""
        return Frame({name: self.column(name) for name in names})

    def merged_with(self, other: "Frame") -> "Frame":
        """Column-wise concatenation of two row-aligned frames."""
        if other.num_rows != self._num_rows:
            raise ExpressionError(
                f"cannot merge frames of {self._num_rows} and {other.num_rows} rows"
            )
        overlap = set(self._columns) & set(other._columns)
        if overlap:
            raise ExpressionError(f"duplicate columns when merging: {sorted(overlap)}")
        combined = dict(self._columns)
        combined.update(other._columns)
        return Frame(combined)

    def __repr__(self) -> str:
        return f"Frame(rows={self._num_rows}, columns={self.column_names})"
