"""Frames: named numpy columns flowing between operators.

A frame maps *qualified* column names (``table.column``) to arrays of
equal length. Frames are produced by scans, joins, samples, and join
synopses; expressions evaluate against them.

Frames come in two flavours sharing one class:

* **Eager** frames (the default, and the only kind that existed before
  the scale work) materialize a fresh copy of every column on every
  ``mask``/``take``. Simple, but a ``SeqScan → join → join`` chain
  gathers each column once per operator whether or not anything ever
  reads it.
* **Lazy** frames (``lazy=True``) represent each column as a *source*:
  a base array plus an optional selection vector of row positions.
  ``mask`` and ``take`` merely compose selection vectors — O(result
  rows) total, independent of column count — and a column is gathered
  (``base[sel]``) only the first time something actually reads it,
  after which the materialized array is memoized. Projection pruning
  falls out for free: columns no operator touches are never copied.

The two paths are bit-identical: ``base[sel][rows]`` and
``base[sel[rows]]`` are the same exact gather, and boolean masks are
converted to position vectors with ``np.flatnonzero`` (``a[keep]`` and
``a[np.flatnonzero(keep)]`` agree element-for-element and dtype-for-
dtype). The engine asserts this equivalence in its test suite.

Frames are immutable by contract: no caller may write into an array
obtained from :meth:`column`. Lazy frames additionally share base
arrays (and possibly selection vectors) with their inputs, so the
contract is what makes sharing safe.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import ExpressionError


class _Source:
    """One column's backing store: a base array plus an optional
    selection vector of row positions into it (``None`` = identity)."""

    __slots__ = ("base", "sel")

    def __init__(self, base: np.ndarray, sel: np.ndarray | None) -> None:
        self.base = base
        self.sel = sel

    def __len__(self) -> int:
        return len(self.base) if self.sel is None else len(self.sel)

    def gather(self) -> np.ndarray:
        """Materialize the column (identity sources return the base)."""
        return self.base if self.sel is None else self.base[self.sel]


class Frame:
    """An ordered mapping of qualified column names to numpy arrays."""

    def __init__(self, columns: Mapping[str, np.ndarray], *, lazy: bool = False) -> None:
        sources: dict[str, _Source] = {}
        cache: dict[str, np.ndarray] = {}
        lengths = set()
        for name, array in dict(columns).items():
            sources[name] = _Source(array, None)
            cache[name] = array
            lengths.add(len(array))
        if len(lengths) > 1:
            raise ExpressionError(f"ragged frame (lengths {sorted(lengths)})")
        self._sources = sources
        self._cache = cache
        self._num_rows = lengths.pop() if lengths else 0
        self._lazy = lazy

    @classmethod
    def _from_sources(
        cls,
        sources: dict[str, _Source],
        num_rows: int,
        lazy: bool,
        cache: dict[str, np.ndarray] | None = None,
    ) -> "Frame":
        frame = cls.__new__(cls)
        frame._sources = sources
        frame._cache = cache if cache is not None else {}
        frame._num_rows = num_rows
        frame._lazy = lazy
        return frame

    @classmethod
    def from_table(cls, table, *, lazy: bool = False) -> "Frame":
        """Build a frame over a whole table with qualified names.

        Never copies (columns reference the table's arrays); ``lazy``
        only affects how later ``mask``/``take`` calls behave.
        """
        sources = {
            table.qualified(name): _Source(table.column(name), None)
            for name in table.schema.column_names
        }
        return cls._from_sources(sources, table.num_rows, lazy)

    @classmethod
    def from_table_rows(cls, table, row_ids: np.ndarray, *, lazy: bool = False) -> "Frame":
        """Build a frame over selected rows of a table.

        The eager flavour gathers every column immediately (the
        historical behaviour); the lazy flavour wraps the table's
        arrays with ``row_ids`` as a shared selection vector, copying
        nothing until a column is read.
        """
        if lazy:
            sel = np.asarray(row_ids, dtype=np.int64)
            sources = {
                table.qualified(name): _Source(table.column(name), sel)
                for name in table.schema.column_names
            }
            return cls._from_sources(sources, len(sel), True)
        return cls(
            {
                table.qualified(name): array
                for name, array in table.take(row_ids).items()
            }
        )

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return self._num_rows

    @property
    def is_lazy(self) -> bool:
        """Whether ``mask``/``take`` compose selection vectors."""
        return self._lazy

    @property
    def column_names(self) -> list[str]:
        """Qualified column names in insertion order."""
        return list(self._sources)

    @property
    def materialized_columns(self) -> list[str]:
        """Names of columns whose arrays exist in memory right now.

        On an eager frame this is every column; on a lazy frame, only
        the columns something has read. Used by tests and benchmarks to
        assert projection pruning ("untouched columns are never
        gathered").
        """
        return [name for name in self._sources if name in self._cache]

    def _resolve(self, qualified_name: str) -> str:
        """Resolve a (possibly unqualified) name to a stored key."""
        if qualified_name in self._sources:
            return qualified_name
        suffix = f".{qualified_name}"
        matches = [name for name in self._sources if name.endswith(suffix)]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise ExpressionError(
                f"ambiguous column {qualified_name!r}: matches {matches}"
            )
        raise ExpressionError(
            f"no column {qualified_name!r} in frame with {self.column_names}"
        )

    def column(self, qualified_name: str) -> np.ndarray:
        """Return the array stored under ``qualified_name``.

        As a convenience, an unqualified name resolves when exactly one
        frame column has that suffix. On lazy frames the first read of
        a column gathers and memoizes it.
        """
        key = self._resolve(qualified_name)
        array = self._cache.get(key)
        if array is None:
            array = self._sources[key].gather()
            self._cache[key] = array
        return array

    def __contains__(self, qualified_name: str) -> bool:
        try:
            self._resolve(qualified_name)
        except ExpressionError:
            return False
        return True

    def mask(self, keep: np.ndarray) -> "Frame":
        """Return a new frame with only the rows where ``keep`` is True."""
        if keep.dtype != np.bool_ or len(keep) != self._num_rows:
            raise ExpressionError("mask must be a boolean array of frame length")
        if not self._lazy:
            return Frame(
                {name: self.column(name)[keep] for name in self._sources}
            )
        return self._compose(np.flatnonzero(keep))

    def take(self, row_ids: np.ndarray) -> "Frame":
        """Return a new frame with rows gathered by position."""
        if not self._lazy:
            return Frame(
                {name: self.column(name)[row_ids] for name in self._sources}
            )
        rows = np.asarray(row_ids)
        if rows.dtype == np.bool_:
            raise ExpressionError("take() requires positions; use mask() for booleans")
        return self._compose(rows.astype(np.int64, copy=False))

    def _compose(self, row_ids: np.ndarray) -> "Frame":
        """Selection-vector composition: the zero-copy mask/take core.

        Columns sharing one selection vector (the common case: all
        columns of one scan) compose it once, so the cost is O(result
        rows) per *distinct* vector, not per column — and no data
        column is touched at all.
        """
        composed: dict[int, np.ndarray] = {}
        sources: dict[str, _Source] = {}
        for name, src in self._sources.items():
            sel_id = id(src.sel)
            sel = composed.get(sel_id)
            if sel is None:
                sel = row_ids if src.sel is None else src.sel[row_ids]
                composed[sel_id] = sel
            sources[name] = _Source(src.base, sel)
        return Frame._from_sources(sources, len(row_ids), True)

    def select(self, names: list[str]) -> "Frame":
        """Return a new frame with only the listed (qualified) columns.

        On lazy frames this also drops the pruned columns' source
        references, releasing their base arrays for garbage collection
        once no other frame shares them.
        """
        sources: dict[str, _Source] = {}
        cache: dict[str, np.ndarray] = {}
        for name in names:
            key = self._resolve(name)
            sources[name] = self._sources[key]
            if key in self._cache:
                cache[name] = self._cache[key]
        num_rows = self._num_rows if sources else 0
        return Frame._from_sources(sources, num_rows, self._lazy, cache)

    def merged_with(self, other: "Frame") -> "Frame":
        """Column-wise concatenation of two row-aligned frames."""
        if other.num_rows != self._num_rows:
            raise ExpressionError(
                f"cannot merge frames of {self._num_rows} and {other.num_rows} rows"
            )
        overlap = set(self._sources) & set(other._sources)
        if overlap:
            raise ExpressionError(f"duplicate columns when merging: {sorted(overlap)}")
        sources = dict(self._sources)
        sources.update(other._sources)
        cache = dict(self._cache)
        cache.update(other._cache)
        return Frame._from_sources(
            sources, self._num_rows, self._lazy or other._lazy, cache
        )

    def eager(self) -> "Frame":
        """A fully-materialized copy of this frame (for comparisons)."""
        return Frame({name: self.column(name) for name in self._sources})

    def __repr__(self) -> str:
        kind = "lazy, " if self._lazy else ""
        return f"Frame({kind}rows={self._num_rows}, columns={self.column_names})"
