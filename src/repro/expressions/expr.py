"""Expression tree nodes and the fluent construction API.

Construction reads naturally::

    from repro.expressions import col

    predicate = (
        col("lineitem.l_shipdate").between("1997-07-01", "1997-09-30")
        & (col("lineitem.l_quantity") > 25)
    )

Every node implements ``evaluate(frame) -> numpy array`` (boolean for
predicates) and reports the columns and tables it references, which the
optimizer uses to route predicates and the estimator uses to pick the
right join synopsis.

Because ``==`` on expressions builds a :class:`Comparison` (the SQL
reading), expression nodes are not hashable and must not be placed in
sets or used as dict keys; ``columns()`` therefore reports plain
``(table, column)`` tuples.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.catalog.types import date_ordinal
from repro.errors import ExpressionError
from repro.expressions.frame import Frame

#: A column reference as reported by ``Expr.columns()``:
#: ``(table_name_or_None, column_name)``.
ColumnKey = tuple[str | None, str]


def _coerce_against(value: Any, array: np.ndarray) -> Any:
    """Adapt a Python literal to the dtype of the column it meets.

    The visible case is ISO date strings compared against DATE columns
    (stored as int64 ordinals).
    """
    if isinstance(value, str) and array.dtype.kind in ("i", "u", "f"):
        return date_ordinal(value)
    return value


class Expr:
    """Base class for all expression nodes."""

    def evaluate(self, frame: Frame) -> np.ndarray:
        """Evaluate this expression over every row of ``frame``."""
        raise NotImplementedError

    def columns(self) -> set[ColumnKey]:
        """All ``(table, column)`` pairs referenced by the expression."""
        raise NotImplementedError

    def tables(self) -> set[str]:
        """Names of all tables referenced (qualified columns only)."""
        return {table for table, _ in self.columns() if table is not None}

    # Comparisons build predicates, so truth-testing an expression is
    # almost always a bug ("if a == b" when "if a.same_as(b)" was meant).
    def __bool__(self) -> bool:
        raise ExpressionError(
            "expressions have no truth value; evaluate(frame) them instead"
        )

    __hash__ = None  # type: ignore[assignment]

    def cache_key(self) -> str:
        """Stable memo key for this (immutable) expression.

        Estimator and optimizer caches key on the expression's repr;
        recomputing it walks the whole tree on every lookup, so the
        string is computed once and stored on the node. Nodes are never
        mutated after construction, so the cached key cannot go stale.
        """
        key = getattr(self, "_cache_key", None)
        if key is None:
            key = repr(self)
            self._cache_key = key
        return key

    # -- comparison operators ------------------------------------------
    def __eq__(self, other) -> "Comparison":  # type: ignore[override]
        return Comparison(self, _as_expr(other), "=")

    def __ne__(self, other) -> "Comparison":  # type: ignore[override]
        return Comparison(self, _as_expr(other), "!=")

    def __lt__(self, other) -> "Comparison":
        return Comparison(self, _as_expr(other), "<")

    def __le__(self, other) -> "Comparison":
        return Comparison(self, _as_expr(other), "<=")

    def __gt__(self, other) -> "Comparison":
        return Comparison(self, _as_expr(other), ">")

    def __ge__(self, other) -> "Comparison":
        return Comparison(self, _as_expr(other), ">=")

    # -- arithmetic operators ------------------------------------------
    def __add__(self, other) -> "BinaryArithmetic":
        return BinaryArithmetic(self, _as_expr(other), "+")

    def __radd__(self, other) -> "BinaryArithmetic":
        return BinaryArithmetic(_as_expr(other), self, "+")

    def __sub__(self, other) -> "BinaryArithmetic":
        return BinaryArithmetic(self, _as_expr(other), "-")

    def __rsub__(self, other) -> "BinaryArithmetic":
        return BinaryArithmetic(_as_expr(other), self, "-")

    def __mul__(self, other) -> "BinaryArithmetic":
        return BinaryArithmetic(self, _as_expr(other), "*")

    def __rmul__(self, other) -> "BinaryArithmetic":
        return BinaryArithmetic(_as_expr(other), self, "*")

    def __truediv__(self, other) -> "BinaryArithmetic":
        return BinaryArithmetic(self, _as_expr(other), "/")

    # -- boolean connectives -------------------------------------------
    def __and__(self, other) -> "And":
        return And([self, _as_expr(other)])

    def __or__(self, other) -> "Or":
        return Or([self, _as_expr(other)])

    def __invert__(self) -> "Not":
        return Not(self)

    # -- fluent predicate helpers --------------------------------------
    def between(self, low, high) -> "Between":
        """Inclusive range predicate, like SQL BETWEEN."""
        return Between(self, low, high)

    def isin(self, values: Iterable) -> "InList":
        """Membership predicate, like SQL IN."""
        return InList(self, list(values))

    def contains(self, substring: str) -> "StringContains":
        """Substring-match predicate, like SQL LIKE '%s%'."""
        return StringContains(self, substring)

    def startswith(self, prefix: str) -> "StringStartsWith":
        """Prefix-match predicate, like SQL LIKE 's%'."""
        return StringStartsWith(self, prefix)


def _as_expr(value) -> Expr:
    return value if isinstance(value, Expr) else Literal(value)


class ColumnRef(Expr):
    """A reference to ``table.column`` (or an unqualified ``column``)."""

    def __init__(self, table: str | None, name: str) -> None:
        if not name:
            raise ExpressionError("column name must be non-empty")
        self.table = table
        self.name = name

    @property
    def qualified(self) -> str:
        """``table.column`` when qualified, else the bare name."""
        return f"{self.table}.{self.name}" if self.table else self.name

    @property
    def key(self) -> ColumnKey:
        """The ``(table, column)`` tuple identifying this reference."""
        return (self.table, self.name)

    def evaluate(self, frame: Frame) -> np.ndarray:
        return frame.column(self.qualified)

    def columns(self) -> set[ColumnKey]:
        return {self.key}

    def same_as(self, other: "ColumnRef") -> bool:
        """Structural identity (``==`` builds a predicate instead)."""
        return (
            isinstance(other, ColumnRef)
            and self.table == other.table
            and self.name == other.name
        )

    def __repr__(self) -> str:
        return self.qualified


class Literal(Expr):
    """A constant broadcast to every row."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, frame: Frame) -> np.ndarray:
        return np.full(frame.num_rows, self.value)

    def columns(self) -> set[ColumnKey]:
        return set()

    def __repr__(self) -> str:
        return repr(self.value)


_COMPARATORS: dict[str, Callable[[Any, Any], np.ndarray]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITHMETIC: dict[str, Callable[[Any, Any], np.ndarray]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


class Comparison(Expr):
    """A binary comparison yielding a boolean column."""

    def __init__(self, left: Expr, right: Expr, op: str) -> None:
        if op not in _COMPARATORS:
            raise ExpressionError(f"unknown comparison operator {op!r}")
        self.left = left
        self.right = right
        self.op = op

    def evaluate(self, frame: Frame) -> np.ndarray:
        left_lit = isinstance(self.left, Literal)
        right_lit = isinstance(self.right, Literal)
        if right_lit and not left_lit:
            # Compare against the coerced scalar: broadcasting yields
            # the same booleans as materializing the literal into a
            # full column, without the O(n) allocation per predicate.
            left = self.left.evaluate(frame)
            right = _coerce_against(self.right.value, left)
        elif left_lit and not right_lit:
            right = self.right.evaluate(frame)
            left = _coerce_against(self.left.value, right)
        else:
            left = self.left.evaluate(frame)
            right = self.right.evaluate(frame)
            if right_lit:
                right = np.full(
                    frame.num_rows, _coerce_against(self.right.value, left)
                )
            if left_lit:
                left = np.full(
                    frame.num_rows, _coerce_against(self.left.value, right)
                )
        result = _COMPARATORS[self.op](left, right)
        return np.asarray(result, dtype=bool)

    def columns(self) -> set[ColumnKey]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class BinaryArithmetic(Expr):
    """Element-wise arithmetic between two expressions."""

    def __init__(self, left: Expr, right: Expr, op: str) -> None:
        if op not in _ARITHMETIC:
            raise ExpressionError(f"unknown arithmetic operator {op!r}")
        self.left = left
        self.right = right
        self.op = op

    def evaluate(self, frame: Frame) -> np.ndarray:
        left = self.left.evaluate(frame)
        right = self.right.evaluate(frame)
        return _ARITHMETIC[self.op](left, right)

    def columns(self) -> set[ColumnKey]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class Between(Expr):
    """Inclusive range predicate over an expression."""

    def __init__(self, target: Expr, low, high) -> None:
        self.target = target
        self.low = low
        self.high = high

    def evaluate(self, frame: Frame) -> np.ndarray:
        values = self.target.evaluate(frame)
        low = _coerce_against(self.low, values)
        high = _coerce_against(self.high, values)
        # Deferred import: expressions is a lower layer than engine, so
        # the kernel dispatch is looked up at call time (and BETWEEN is
        # hot enough on 6M-row scans to warrant the fused kernel).
        from repro.engine import kernels

        return kernels.eval_between(values, low, high)

    def columns(self) -> set[ColumnKey]:
        return self.target.columns()

    def __repr__(self) -> str:
        return f"({self.target!r} BETWEEN {self.low!r} AND {self.high!r})"


class InList(Expr):
    """Membership predicate over an explicit value list."""

    def __init__(self, target: Expr, values: Sequence) -> None:
        if not len(values):
            raise ExpressionError("IN list must be non-empty")
        self.target = target
        self.values = list(values)

    def evaluate(self, frame: Frame) -> np.ndarray:
        column = self.target.evaluate(frame)
        coerced = [_coerce_against(v, column) for v in self.values]
        return np.isin(column, coerced)

    def columns(self) -> set[ColumnKey]:
        return self.target.columns()

    def __repr__(self) -> str:
        return f"({self.target!r} IN {self.values!r})"


class StringContains(Expr):
    """Substring-match predicate (SQL ``LIKE '%needle%'``)."""

    def __init__(self, target: Expr, substring: str) -> None:
        self.target = target
        self.substring = substring

    def evaluate(self, frame: Frame) -> np.ndarray:
        values = self.target.evaluate(frame)
        return np.char.find(values.astype(np.str_), self.substring) >= 0

    def columns(self) -> set[ColumnKey]:
        return self.target.columns()

    def __repr__(self) -> str:
        return f"contains({self.target!r}, {self.substring!r})"


class StringStartsWith(Expr):
    """Prefix-match predicate (SQL ``LIKE 'prefix%'``)."""

    def __init__(self, target: Expr, prefix: str) -> None:
        self.target = target
        self.prefix = prefix

    def evaluate(self, frame: Frame) -> np.ndarray:
        values = self.target.evaluate(frame)
        return np.char.startswith(values.astype(np.str_), self.prefix)

    def columns(self) -> set[ColumnKey]:
        return self.target.columns()

    def __repr__(self) -> str:
        return f"startswith({self.target!r}, {self.prefix!r})"


class And(Expr):
    """Conjunction of predicates (nested ANDs are flattened)."""

    def __init__(self, operands: Sequence[Expr]) -> None:
        flattened: list[Expr] = []
        for operand in operands:
            if isinstance(operand, And):
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        if not flattened:
            raise ExpressionError("AND requires at least one operand")
        self.operands = flattened

    def evaluate(self, frame: Frame) -> np.ndarray:
        result = np.ones(frame.num_rows, dtype=bool)
        for operand in self.operands:
            result &= np.asarray(operand.evaluate(frame), dtype=bool)
            if not result.any():
                break
        return result

    def columns(self) -> set[ColumnKey]:
        refs: set[ColumnKey] = set()
        for operand in self.operands:
            refs |= operand.columns()
        return refs

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(o) for o in self.operands) + ")"


class Or(Expr):
    """Disjunction of predicates (nested ORs are flattened)."""

    def __init__(self, operands: Sequence[Expr]) -> None:
        flattened: list[Expr] = []
        for operand in operands:
            if isinstance(operand, Or):
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        if not flattened:
            raise ExpressionError("OR requires at least one operand")
        self.operands = flattened

    def evaluate(self, frame: Frame) -> np.ndarray:
        result = np.zeros(frame.num_rows, dtype=bool)
        for operand in self.operands:
            result |= np.asarray(operand.evaluate(frame), dtype=bool)
        return result

    def columns(self) -> set[ColumnKey]:
        refs: set[ColumnKey] = set()
        for operand in self.operands:
            refs |= operand.columns()
        return refs

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(o) for o in self.operands) + ")"


class Not(Expr):
    """Negation of a predicate."""

    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def evaluate(self, frame: Frame) -> np.ndarray:
        return ~np.asarray(self.operand.evaluate(frame), dtype=bool)

    def columns(self) -> set[ColumnKey]:
        return self.operand.columns()

    def __repr__(self) -> str:
        return f"NOT {self.operand!r}"


def col(qualified_name: str) -> ColumnRef:
    """Build a column reference from ``"table.column"`` or ``"column"``."""
    if "." in qualified_name:
        table, _, name = qualified_name.partition(".")
        if not table or not name:
            raise ExpressionError(f"malformed column reference: {qualified_name!r}")
        return ColumnRef(table, name)
    return ColumnRef(None, qualified_name)


def lit(value) -> Literal:
    """Build a literal expression."""
    return Literal(value)


def expr_key(expr: Expr | None) -> str:
    """The cache key of ``expr``, with a fixed sentinel for ``None``."""
    return "<none>" if expr is None else expr.cache_key()


def conjunction(predicates: Sequence[Expr | None]) -> Expr | None:
    """AND together the non-``None`` predicates; ``None`` when empty."""
    present = [p for p in predicates if p is not None]
    if not present:
        return None
    if len(present) == 1:
        return present[0]
    return And(present)
