"""Rendering expression trees back to SQL text.

``to_sql(expr)`` produces text that :func:`repro.sql.parse_predicate`
parses back into an equivalent tree — used for debugging, logging, and
the round-trip property tests that fuzz the parser.
"""

from __future__ import annotations

from repro.errors import ExpressionError
from repro.expressions.expr import (
    And,
    Between,
    BinaryArithmetic,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
    Not,
    Or,
    StringContains,
    StringStartsWith,
)


def _literal(value) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        if "'" in value:
            raise ExpressionError(
                f"cannot render string with quotes to SQL: {value!r}"
            )
        return f"'{escaped}'"
    if isinstance(value, bool):
        return "1" if value else "0"
    return repr(value)


def to_sql(expression: Expr) -> str:
    """Render ``expression`` as SQL text (parenthesized, unambiguous)."""
    if isinstance(expression, ColumnRef):
        return expression.qualified
    if isinstance(expression, Literal):
        return _literal(expression.value)
    if isinstance(expression, Comparison):
        operator = "<>" if expression.op == "!=" else expression.op
        return f"({to_sql(expression.left)} {operator} {to_sql(expression.right)})"
    if isinstance(expression, BinaryArithmetic):
        return f"({to_sql(expression.left)} {expression.op} {to_sql(expression.right)})"
    if isinstance(expression, Between):
        return (
            f"({to_sql(expression.target)} BETWEEN "
            f"{_literal(expression.low)} AND {_literal(expression.high)})"
        )
    if isinstance(expression, InList):
        values = ", ".join(_literal(v) for v in expression.values)
        return f"({to_sql(expression.target)} IN ({values}))"
    if isinstance(expression, StringContains):
        return f"({to_sql(expression.target)} LIKE '%{expression.substring}%')"
    if isinstance(expression, StringStartsWith):
        return f"({to_sql(expression.target)} LIKE '{expression.prefix}%')"
    if isinstance(expression, And):
        return "(" + " AND ".join(to_sql(o) for o in expression.operands) + ")"
    if isinstance(expression, Or):
        return "(" + " OR ".join(to_sql(o) for o in expression.operands) + ")"
    if isinstance(expression, Not):
        return f"(NOT {to_sql(expression.operand)})"
    raise ExpressionError(f"cannot render {type(expression).__name__} to SQL")
