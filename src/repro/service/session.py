"""The query session service: SQL in, plan/result/trace out.

This is the repository's one public entry point — the fixed "above"
that the paper's architecture implies (§3.1: only the cardinality
estimation module changes; the optimizer and everything on top stay
put). A :class:`Session` owns a database, its statistics, one
estimator configuration, and a bounded plan cache; callers speak SQL
(or :class:`~repro.optimizer.SPJQuery`) and get back
:class:`PreparedQuery` handles they can execute, explain, or inspect,
without ever hand-wiring ``StatisticsManager`` + estimator +
``Optimizer`` + engine.

Plan caching is *statistics-versioned*: cache keys include
``StatisticsManager.version``, so rebuilding statistics (new sample
seed, different sample size, dropped synopsis) silently invalidates
every cached plan — the next prepare or execute re-plans against the
new Beta posteriors. Prepared handles notice staleness at execution
time and transparently re-plan, which is the PARQO-style contract:
plans follow the statistics, callers never see a stale plan.

Thread safety: the plan cache is lock-striped with per-key
singleflight (two threads preparing the same query plan it exactly
once), statistics builds are serialized by a session lock, and metrics
go through the session's :class:`~repro.obs.MetricsRegistry`.

Statistics hot-swap under load: the session's (manager, estimator)
pair lives in one immutable-slot :class:`_StatsState` that swaps are a
*single* attribute assignment of. A prepare takes one snapshot of that
state and derives both its cache-key version and its estimator from
it, so a swap landing mid-prepare can never mix old statistics with a
new version (or vice versa) — the racing prepare plans entirely
against the old snapshot, whose cache key embeds the old version and
is structurally unreachable after the swap. ``refresh_statistics`` is
copy-on-refresh for the same reason: it builds a *fresh* manager and
swaps it in rather than mutating the one in-flight readers hold.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Sequence

from repro.catalog import Database
from repro.core import (
    BayesNetCardinalityEstimator,
    CardinalityEstimator,
    ExactCardinalityEstimator,
    HistogramCardinalityEstimator,
    JEFFREYS,
    MODERATE,
    Prior,
    RobustCardinalityEstimator,
    resolve_threshold,
)
from repro.cost import CostModel
from repro.engine import ExecOptions, ExecutionContext, ScanCache
from repro.errors import EstimationError, ReproError, StatisticsError
from repro.expressions import Frame
from repro.feedback import FeedbackConfig, FeedbackStore, SessionFeedback
from repro.obs import (
    DegradationEvent,
    MetricsRegistry,
    QueryTrace,
    Tracer,
    execution_span,
)
from repro.obs.summarize import explain_trace
from repro.optimizer import Optimizer, PlannedQuery, SPJQuery
from repro.selection import (
    BayesNetPolicy,
    HistogramPolicy,
    PenaltyPolicy,
    SelectionPolicy,
    ThresholdPolicy,
    resolve_policy,
    sample_quantiles,
)
from repro.service.cache import PlanCache
from repro.service.fingerprint import canonical_sql, query_fingerprint
from repro.sql import parse_query
from repro.stats import StatisticsManager, load_statistics


class SessionError(ReproError):
    """The session was configured or used inconsistently."""


#: Estimator kinds a session can be configured with.
ESTIMATOR_KINDS = ("robust", "histogram", "bayes", "exact")

#: Session health states (the degraded-mode state machine).
HEALTHY = "healthy"
DEGRADED = "degraded"


@dataclass(frozen=True)
class SessionConfig:
    """Everything that makes two sessions plan identically.

    The estimator configuration half of the plan-cache key: two
    sessions over the same database, statistics version, and config
    would produce byte-identical plans, so their entries are
    interchangeable.
    """

    estimator: str = "robust"
    threshold: float | str = MODERATE
    prior: Prior = JEFFREYS
    sample_size: int = 500
    histogram_buckets: int = 250
    statistics_seed: int | None = 0
    plan_cache_size: int = 256
    cache_stripes: int = 8
    enable_star_plans: bool = True
    #: Unified selection policy (:class:`~repro.selection.SelectionPolicy`
    #: or a spec string like ``"cvar:0.9:32"``). When set it *wins*:
    #: ``estimator`` is forced to the policy's estimator family and, for
    #: threshold policies, ``threshold`` follows ``policy.q``. The
    #: legacy ``estimator=``/``threshold=`` pair keeps working and is
    #: equivalent to the matching :class:`ThresholdPolicy` /
    #: :class:`HistogramPolicy`.
    policy: SelectionPolicy | float | str | None = None

    def __post_init__(self) -> None:
        if self.policy is not None:
            resolved = resolve_policy(self.policy)
            object.__setattr__(self, "policy", resolved)
            object.__setattr__(self, "estimator", resolved.estimator_kind)
            if isinstance(resolved, ThresholdPolicy):
                object.__setattr__(self, "threshold", resolved.q)
        if self.estimator not in ESTIMATOR_KINDS:
            raise SessionError(
                f"unknown estimator {self.estimator!r}; "
                f"choose from {ESTIMATOR_KINDS}"
            )

    @property
    def resolved_threshold(self) -> float | None:
        """The default threshold as a fraction (``None`` when the
        estimator has no notion of thresholds)."""
        if self.estimator != "robust":
            return None
        return resolve_threshold(self.threshold)

    @property
    def resolved_policy(self) -> SelectionPolicy | None:
        """The default selection policy this config plans under.

        Derived from the legacy knobs when ``policy`` was not given:
        robust sessions default to ``ThresholdPolicy(threshold)``,
        histogram sessions to ``HistogramPolicy()``. Exact sessions
        have no selection policy (``None``) — there is nothing to
        select *by* when estimates are ground truth.
        """
        if self.policy is not None:
            return self.policy
        if self.estimator == "robust":
            return ThresholdPolicy(self.threshold)
        if self.estimator == "histogram":
            return HistogramPolicy()
        if self.estimator == "bayes":
            return BayesNetPolicy()
        return None

    def cache_key(self) -> tuple:
        """The config component of every plan-cache key."""
        return (
            self.estimator,
            self.prior.alpha,
            self.prior.beta,
            self.sample_size,
            self.histogram_buckets,
            self.enable_star_plans,
        )


@dataclass
class QueryResult:
    """One executed query: rows plus provenance."""

    frame: Frame
    simulated_seconds: float
    prepared: "PreparedQuery"
    #: Whether the plan came from the session cache (vs. a fresh
    #: planning pass, including transparent re-plans after a
    #: statistics bump).
    plan_cached: bool

    @property
    def num_rows(self) -> int:
        return self.frame.num_rows

    def column(self, name: str):
        return self.frame.column(name)

    @property
    def column_names(self) -> list[str]:
        return list(self.frame.column_names)


class PreparedQuery:
    """A planned statement bound to one session.

    Cheap to re-execute: the plan is reused until the session's
    statistics change, at which point :meth:`execute` transparently
    re-plans (and re-binds this handle to the fresh plan).
    """

    def __init__(
        self,
        session: "Session",
        query: SPJQuery,
        planned: PlannedQuery,
        policy: SelectionPolicy | None,
        statistics_version: int,
        from_cache: bool,
        degraded_reason: str | None = None,
    ) -> None:
        self.session = session
        self.query = query
        self.planned = planned
        #: Effective :class:`~repro.selection.SelectionPolicy` the plan
        #: was selected under (``None`` for exact sessions).
        self.policy = policy
        #: Effective confidence threshold the plan was produced under
        #: (``None`` for threshold-blind selection — histogram, exact,
        #: and penalty policies). Kept for back-compat with pre-policy
        #: callers.
        self.threshold = (
            policy.q if isinstance(policy, ThresholdPolicy) else None
        )
        #: ``StatisticsManager.version`` the plan was produced against.
        self.statistics_version = statistics_version
        #: Whether this handle was served from the session plan cache.
        self.from_cache = from_cache
        #: Set when the plan came from the degraded (§3.5 magic-only)
        #: path after the configured estimator failed; such plans are
        #: never cached.
        self.degraded_reason = degraded_reason
        self.fingerprint = query_fingerprint(query)

    # ------------------------------------------------------------------
    @property
    def sql(self) -> str:
        """Canonical (hint-free) SQL of the prepared statement."""
        return canonical_sql(self.query)

    @property
    def plan(self):
        return self.planned.plan

    @property
    def estimated_cost(self) -> float:
        return self.planned.estimated_cost

    @property
    def estimated_rows(self) -> float:
        return self.planned.estimated_rows

    @property
    def selection(self) -> dict | None:
        """Penalty-selection provenance (``None`` unless the plan was
        chosen by a :class:`~repro.selection.PenaltyPolicy`)."""
        return self.planned.selection

    def is_stale(self) -> bool:
        """True when statistics moved past the plan's version."""
        return self.session.statistics_version() != self.statistics_version

    def explain(self) -> str:
        """The plan tree with cost/row annotations."""
        return self.planned.explain()

    def execute(self) -> QueryResult:
        """Run the plan (re-planning first if statistics moved)."""
        return self.session._execute_prepared(self)

    def __repr__(self) -> str:
        policy = self.policy.spec() if self.policy is not None else None
        return (
            f"PreparedQuery({self.sql!r}, policy={policy}, "
            f"stats_v{self.statistics_version})"
        )


class _StatsState:
    """One atomically-swapped statistics binding.

    Bundles a statistics manager with the estimator lazily built over
    it, so readers that grab one ``session._state`` reference see a
    *consistent* pair: the estimator in a state always answers from
    that state's manager. Swaps (attach, refresh, decorator changes)
    install a whole new state object in one attribute assignment —
    atomic under the interpreter — instead of mutating fields that a
    concurrent prepare might read half-updated.

    ``estimator`` memoization is a benign race: two threads may both
    build, last write wins, and either instance answers identically
    (estimators are pure functions of statistics + config).
    """

    __slots__ = ("manager", "estimator", "ready")

    def __init__(
        self,
        manager: StatisticsManager | None = None,
        *,
        ready: bool = False,
    ) -> None:
        self.manager = manager
        self.estimator: CardinalityEstimator | None = None
        #: Whether the manager is fully built and safe for lock-free
        #: reads. Unready states funnel every reader through the
        #: session statistics lock until the build completes.
        self.ready = ready

    @property
    def version(self) -> int:
        return self.manager.version if self.manager is not None else 0


class Session:
    """The public facade: parse, plan, cache, execute, explain.

    Parameters
    ----------
    database:
        The catalog and data to serve queries against.
    statistics:
        An existing :class:`~repro.stats.StatisticsManager` to share
        (e.g. with another session over the same database). By default
        the session builds its own, lazily, on first use.
    config / keyword overrides:
        Estimator kind, default confidence threshold, prior, sample
        size, plan-cache bound — see :class:`SessionConfig`. Keyword
        arguments override the corresponding ``config`` field.
    metrics:
        A :class:`~repro.obs.MetricsRegistry` to report into; the
        session creates a private one by default (``session.metrics``).

    >>> session = Session(database, threshold="conservative")
    >>> result = session.execute("SELECT COUNT(*) FROM lineitem")
    """

    def __init__(
        self,
        database: Database,
        *,
        statistics: StatisticsManager | None = None,
        config: SessionConfig | None = None,
        cost_model: CostModel | None = None,
        metrics: MetricsRegistry | None = None,
        **overrides,
    ) -> None:
        base = config or SessionConfig()
        if overrides:
            base = replace(base, **overrides)
        self.database = database
        self.config = base
        self.cost_model = cost_model or CostModel()
        self.metrics = metrics or MetricsRegistry()
        self.plan_cache = PlanCache(
            capacity=base.plan_cache_size, stripes=base.cache_stripes
        )
        # Parsed-statement cache (SQL text -> SPJQuery). Parsing is
        # deterministic and the parse tree is treated as immutable, so
        # repeat prepares of the same text skip the parser entirely.
        # Follows the plan cache's capacity policy: size 0 disables it.
        self._parse_cache = PlanCache(
            capacity=base.plan_cache_size, stripes=base.cache_stripes
        )
        self._state = _StatsState(
            statistics,
            ready=statistics is not None and statistics.version > 0,
        )
        self._statistics_lock = threading.Lock()
        # Shared scan cache for this session's executions. The session
        # is bound to one immutable Database object for its lifetime
        # (statistics refreshes rebuild statistics, not table data), so
        # base-scan results stay valid across statements. The cache is
        # internally locked with singleflight misses, so concurrent
        # executors share leaf materializations safely.
        self._scan_cache = ScanCache()
        self._closed = False
        # Degraded-mode state machine: HEALTHY until a degradation is
        # recorded, back to HEALTHY on a successful attach/refresh.
        self._health = HEALTHY
        self._degradations: list[DegradationEvent] = []
        self._estimator_decorator = None
        # The estimation-feedback loop (off until enable_feedback()).
        self._feedback: SessionFeedback | None = None

    @property
    def estimator_decorator(self):
        """Optional estimator middleware ``decorator(estimator) ->
        estimator`` applied to every non-traced estimator build; the
        fault-injection harness uses it to make estimators fail or
        stall deterministically. Assigning (or clearing) it rebinds
        the session's estimator on next use."""
        return self._estimator_decorator

    @estimator_decorator.setter
    def estimator_decorator(self, value) -> None:
        self._estimator_decorator = value
        with self._statistics_lock:
            # Swap in a fresh state sharing the manager so the memoized
            # estimator is rebuilt (with the new decorator) on next use.
            state = self._state
            fresh = _StatsState(state.manager, ready=state.ready)
            self._state = fresh

    # ------------------------------------------------------------------
    # Statistics lifecycle
    # ------------------------------------------------------------------
    @property
    def statistics(self) -> StatisticsManager | None:
        """The session's statistics (``None`` until first build for
        statistics-backed estimators; always ``None``-safe to read)."""
        return self._state.manager

    def statistics_version(self) -> int:
        """The current statistics version (0 before any build)."""
        return self._state.version

    def _ensure_state(self) -> _StatsState:
        """The current statistics state, built if need be.

        This is the one read point every planning path goes through:
        callers hold the returned snapshot for the whole prepare, so
        the version they key the cache with and the estimator they plan
        with always come from the same statistics. Ready states are
        returned lock-free; unbuilt ones funnel through the session
        lock until exactly one thread finishes the build.
        """
        state = self._state
        if self.config.estimator == "exact" or state.ready:
            return state
        with self._statistics_lock:
            state = self._state
            if state.ready:
                return state
            manager = state.manager
            if manager is None:
                manager = StatisticsManager(self.database)
            if manager.version == 0:
                started = time.perf_counter()
                manager.update_statistics(
                    sample_size=self.config.sample_size,
                    histogram_buckets=self.config.histogram_buckets,
                    seed=self.config.statistics_seed,
                )
                self.metrics.gauge(
                    "repro_session_statistics_build_seconds",
                    "Wall time of the last statistics build.",
                ).set(time.perf_counter() - started)
            state = _StatsState(manager, ready=True)
            self._state = state
            return state

    def refresh_statistics(
        self, seed=None, sample_size: int | None = None
    ) -> int:
        """Rebuild statistics, invalidating every cached plan.

        Returns the new statistics version. The plan cache needs no
        explicit flush: keys embed the version, so old entries can
        never be served again and age out of the LRU.

        The rebuild is copy-on-refresh: it builds a *new* manager and
        swaps it in atomically, so a prepare racing the refresh plans
        against a consistent old snapshot instead of half-rebuilt
        statistics. Callers sharing the previous manager object keep
        their (now frozen) copy.
        """
        if self.config.estimator == "exact":
            raise SessionError("exact sessions have no statistics to refresh")
        if sample_size is not None:
            self.config = replace(self.config, sample_size=sample_size)
        with self._statistics_lock:
            fresh = StatisticsManager(self.database)
            started = time.perf_counter()
            fresh.update_statistics(
                sample_size=self.config.sample_size,
                histogram_buckets=self.config.histogram_buckets,
                seed=self.config.statistics_seed if seed is None else seed,
            )
            self.metrics.gauge(
                "repro_session_statistics_build_seconds",
                "Wall time of the last statistics build.",
            ).set(time.perf_counter() - started)
            self.metrics.counter(
                "repro_session_statistics_refreshes_total",
                "Statistics rebuilds requested on the session.",
            ).inc()
            self._state = _StatsState(fresh, ready=True)
            self._set_health(HEALTHY)
            return fresh.version

    def attach_statistics(
        self,
        source: StatisticsManager | str,
        *,
        strict: bool = False,
    ) -> int:
        """Swap in statistics (a manager, or a saved-archive path).

        The attach runs a health check
        (:meth:`~repro.stats.StatisticsManager.health_issues`). A clean
        bill restores :data:`HEALTHY`; load failures and health issues
        record attributed :class:`~repro.obs.DegradationEvent`\\ s and
        put the session in :data:`DEGRADED` mode — the session keeps
        serving queries through the §3.5 fallbacks rather than failing
        (``strict=True`` raises on a load failure instead).

        Loaded managers carry a process-unique statistics version, so
        every cached plan from the previous statistics is structurally
        invalidated — attaching can never serve a plan planned under
        different statistics. Returns the statistics version in force
        after the attach.
        """
        self._check_open()
        if self.config.estimator == "exact":
            raise SessionError("exact sessions have no statistics to attach")
        if isinstance(source, StatisticsManager):
            manager = source
        else:
            try:
                manager = load_statistics(self.database, source)
            except StatisticsError as exc:
                if strict:
                    raise
                self._record_degradation(
                    "statistics-load-failed", str(exc), component="statistics"
                )
                return self.statistics_version()
        issues = manager.health_issues()
        with self._statistics_lock:
            # One assignment swaps manager + estimator together: racing
            # prepares keep their old snapshot or get this one, never a
            # mix (the estimator rebinds lazily *on the new state*).
            # An unbuilt manager stays unready so the next prepare
            # builds it under the session lock, as on first use.
            self._state = _StatsState(manager, ready=manager.version > 0)
        if issues:
            self._record_degradation(
                "statistics-health",
                "; ".join(issues),
                component="statistics",
            )
        else:
            self._set_health(HEALTHY)
        self.metrics.counter(
            "repro_session_statistics_attaches_total",
            "Statistics managers attached to the session.",
        ).inc(result="degraded" if issues else "healthy")
        return manager.version

    # ------------------------------------------------------------------
    # Degraded-mode state machine
    # ------------------------------------------------------------------
    @property
    def health(self) -> str:
        """:data:`HEALTHY` or :data:`DEGRADED`."""
        return self._health

    def degradations(self) -> list[DegradationEvent]:
        """Every degradation recorded on this session, in order."""
        return list(self._degradations)

    def _set_health(self, state: str) -> None:
        self._health = state
        self.metrics.gauge(
            "repro_session_degraded",
            "1 while the session is in degraded mode, else 0.",
        ).set(1.0 if state == DEGRADED else 0.0)

    def _record_degradation(
        self, reason: str, detail: str, component: str
    ) -> DegradationEvent:
        """Attribute one degradation: event list + metrics + state."""
        event = DegradationEvent(
            reason=reason,
            detail=detail,
            component=component,
            statistics_version=self.statistics_version(),
        )
        self._degradations.append(event)
        self.metrics.counter(
            "repro_session_degradations_total",
            "Graceful degradations, by attributed reason.",
        ).inc(reason=reason)
        self._set_health(DEGRADED)
        return event

    # ------------------------------------------------------------------
    # Estimation feedback loop
    # ------------------------------------------------------------------
    @property
    def feedback(self) -> SessionFeedback | None:
        """The session's feedback controller (``None`` until enabled)."""
        return self._feedback

    def enable_feedback(
        self,
        store: FeedbackStore | None = None,
        config: FeedbackConfig | None = None,
    ) -> SessionFeedback:
        """Turn on the estimation observatory for this session.

        From this point every execution harvests its plan's observed
        cardinalities into the session's :class:`FeedbackStore`
        (namespaced by the statistics epoch the plan ran under) and
        feeds the plan-level q-error to the accuracy ledger. The next
        prepare folds matching observations into the Beta posterior as
        extra pseudo-counts, and — when neither a hint nor a per-call
        threshold was given — routes the confidence threshold by the
        query class's observed q-error severity. Drift events surface
        through the session degradation log (reason
        ``"estimation-drift"``) without changing serving behaviour
        beyond the routed threshold.

        Pass a ``store`` to share (or persist) feedback across
        sessions; by default the controller owns a private in-memory
        store. Idempotent: a second call returns the existing
        controller (arguments must then be omitted).
        """
        self._check_open()
        if self.config.estimator != "robust":
            raise SessionError(
                "the feedback loop needs a robust session (posterior "
                f"folding has no target on {self.config.estimator!r})"
            )
        if self._feedback is not None:
            if store is not None or config is not None:
                raise SessionError(
                    "feedback is already enabled on this session"
                )
            return self._feedback
        self._feedback = SessionFeedback(
            store=store,
            config=config,
            registry=self.metrics,
            on_degradation=self._note_estimation_drift,
        )
        with self._statistics_lock:
            # Fresh state (sharing the manager) so the memoized
            # estimator is rebuilt with the feedback provider bound.
            state = self._state
            self._state = _StatsState(state.manager, ready=state.ready)
        return self._feedback

    def _note_estimation_drift(self, event: DegradationEvent) -> None:
        """Ledger drift events land in the session degradation log."""
        self._degradations.append(event)
        self.metrics.counter(
            "repro_session_degradations_total",
            "Graceful degradations, by attributed reason.",
        ).inc(reason=event.reason)
        self._set_health(DEGRADED)

    # ------------------------------------------------------------------
    # Estimator / optimizer wiring
    # ------------------------------------------------------------------
    def _build_estimator(
        self, state: _StatsState, tracer: Tracer | None = None
    ):
        """A fresh estimator honoring the session config, bound to the
        statistics snapshot in ``state``."""
        kind = self.config.estimator
        if kind == "exact":
            estimator = ExactCardinalityEstimator(self.database)
        else:
            statistics = state.manager
            if kind == "robust":
                estimator = RobustCardinalityEstimator(
                    statistics,
                    prior=self.config.prior,
                    policy=self.config.resolved_threshold,
                )
                estimator.fallback_listener = self._note_fallback_estimate
                if self._feedback is not None:
                    # Fenced to this snapshot's epoch: the provider
                    # refuses observations harvested under any other
                    # statistics version.
                    estimator.feedback = self._feedback.provider_for(
                        state.version
                    )
            elif kind == "bayes":
                estimator = BayesNetCardinalityEstimator(statistics)
            else:
                estimator = HistogramCardinalityEstimator(statistics)
        if tracer is not None:
            estimator.tracer = tracer
        elif self.estimator_decorator is not None:
            estimator = self.estimator_decorator(estimator)
        return estimator

    def _note_fallback_estimate(self, tables, source: str) -> None:
        """§3.5 fallback attribution hook wired into robust estimators."""
        self.metrics.counter(
            "repro_session_fallback_estimates_total",
            "Estimation passes routed through the §3.5 fallbacks, "
            "by fallback source.",
        ).inc(source=source)

    def _fallback_estimator(self) -> RobustCardinalityEstimator:
        """The last-resort planner estimator: §3.5 magic-only routing.

        Built over an *empty* statistics manager, so every estimate
        takes the fallback path — base-table cardinalities stay exact,
        predicates price at magic-distribution percentiles. It always
        answers, which is what keeps the planner total under injected
        estimator faults.
        """
        estimator = RobustCardinalityEstimator(
            StatisticsManager(self.database),
            prior=self.config.prior,
            policy=self.config.resolved_threshold
            if self.config.estimator == "robust"
            else MODERATE,
        )
        estimator.fallback_listener = self._note_fallback_estimate
        return estimator

    def _shared_estimator(self, state: _StatsState) -> CardinalityEstimator:
        # Benign race: two threads may both build; last write wins and
        # either instance answers identically (estimators are pure
        # functions of statistics + config). The memo lives on the
        # state, so a statistics swap can never pair an old estimator
        # with a new version.
        if state.estimator is None:
            state.estimator = self._build_estimator(state)
        return state.estimator

    def _optimizer(
        self, state: _StatsState, tracer: Tracer | None = None
    ) -> Optimizer:
        estimator = (
            self._build_estimator(state, tracer)
            if tracer is not None
            else self._shared_estimator(state)
        )
        return Optimizer(
            self.database,
            estimator,
            self.cost_model,
            enable_star_plans=self.config.enable_star_plans,
            tracer=tracer,
        )

    # ------------------------------------------------------------------
    # Prepare
    # ------------------------------------------------------------------
    def _coerce_query(self, query: str | SPJQuery) -> SPJQuery:
        if isinstance(query, str):
            cached = self._parse_cache.get(query)
            if cached is not None:
                return cached
            parsed = parse_query(query, self.database)
            self._parse_cache.put(query, parsed)
            return parsed
        if isinstance(query, SPJQuery):
            return query
        raise SessionError(
            f"expected SQL text or SPJQuery, got {type(query).__name__}"
        )

    def _effective_policy(
        self,
        query: SPJQuery,
        threshold: float | str | None = None,
        policy: SelectionPolicy | float | str | None = None,
    ) -> SelectionPolicy | None:
        """Hint > per-call override > routed > session default.

        Returns the :class:`~repro.selection.SelectionPolicy` this
        statement plans under (``None`` for exact sessions). A per-call
        ``policy`` must match the session's estimator family — the
        estimator is session state, not per-statement state. The legacy
        per-call ``threshold`` is sugar for ``ThresholdPolicy`` and,
        as before, is ignored by threshold-blind estimators.
        """
        if threshold is not None and policy is not None:
            raise SessionError(
                "pass either threshold= or policy=, not both "
                "(threshold is shorthand for a ThresholdPolicy)"
            )
        if policy is not None:
            resolved = resolve_policy(policy)
            if resolved.estimator_kind != self.config.estimator:
                raise SessionError(
                    f"policy {resolved.spec()!r} needs a "
                    f"{resolved.estimator_kind!r} session, this one is "
                    f"{self.config.estimator!r}"
                )
            if self.config.estimator == "robust" and query.hint is not None:
                return ThresholdPolicy(query.hint)
            return resolved
        if self.config.estimator != "robust":
            return self.config.resolved_policy
        if query.hint is not None:
            return ThresholdPolicy(query.hint)
        if threshold is not None:
            return ThresholdPolicy(threshold)
        if self._feedback is not None:
            routed = self._feedback.route(query)
            if routed is not None:
                return routed
        return self.config.resolved_policy

    def _cache_key(
        self, fingerprint: str, policy: SelectionPolicy | None, version: int
    ) -> tuple:
        # The feedback generation keys the cache alongside the
        # statistics version: a new observation invalidates exactly the
        # plans whose posteriors it would now fold into.
        generation = (
            self._feedback.generation if self._feedback is not None else None
        )
        return (
            fingerprint,
            self.config.cache_key(),
            policy.cache_key() if policy is not None else None,
            version,
            generation,
        )

    def _plan_with_policy(
        self,
        optimizer: Optimizer,
        state: _StatsState,
        parsed: SPJQuery,
        policy: SelectionPolicy | None,
        fingerprint: str,
    ) -> PlannedQuery:
        """One planning pass under ``policy`` (the selection-mode fork).

        Threshold policies plan the hinted scalar path; penalty
        policies draw their deterministic posterior samples and run the
        penalty-vectorized pass; histogram/exact plan unhinted.
        """
        if isinstance(policy, PenaltyPolicy):
            quantiles = sample_quantiles(
                policy,
                query_key=fingerprint,
                statistics_token=state.manager.sampling_token(),
            )
            return optimizer.optimize_penalty(
                replace(parsed, hint=None),
                quantiles,
                risk=policy.risk,
                alpha=policy.alpha,
            )
        target = parsed
        if isinstance(policy, ThresholdPolicy):
            target = replace(parsed, hint=policy.q)
        return optimizer.optimize(target)

    def prepare(
        self,
        query: str | SPJQuery,
        threshold: float | str | None = None,
        *,
        policy: SelectionPolicy | float | str | None = None,
    ) -> PreparedQuery:
        """Parse (if needed), plan, and cache one statement.

        Preparing the same statement twice is a cache hit — the
        returned handle carries the *same* plan object. A per-call
        ``policy`` (or legacy ``threshold``, or an ``OPTION
        (CONFIDENCE …)`` hint in the SQL) plans that statement under a
        different selection policy with its own cache entry.
        """
        self._check_open()
        parsed = self._coerce_query(query)
        effective = self._effective_policy(parsed, threshold, policy)
        # One snapshot serves the whole prepare: the cache-key version
        # and the planning estimator both come from it, so a hot-swap
        # landing mid-prepare can't mix statistics generations.
        state = self._ensure_state()
        version = state.version
        fingerprint = query_fingerprint(parsed)
        key = self._cache_key(fingerprint, effective, version)

        def plan() -> PlannedQuery:
            started = time.perf_counter()
            planned = self._plan_with_policy(
                self._optimizer(state), state, parsed, effective, fingerprint
            )
            self.metrics.gauge(
                "repro_session_last_plan_seconds",
                "Wall time of the most recent planning pass.",
            ).set(time.perf_counter() - started)
            return planned

        try:
            planned, was_cached = self.plan_cache.get_or_create(key, plan)
        except (EstimationError, StatisticsError) as exc:
            return self._prepare_degraded(parsed, effective, version, exc)
        self._count_prepare(was_cached)
        return PreparedQuery(
            self, parsed, planned, effective, version, was_cached
        )

    def _prepare_degraded(
        self,
        parsed: SPJQuery,
        effective: SelectionPolicy | None,
        version: int,
        exc: ReproError,
    ) -> PreparedQuery:
        """Plan through the §3.5 magic-only path after an estimator failure.

        The degradation is attributed (event + metrics), and the
        resulting plan is handed back **uncached** — the plan cache
        only ever holds plans produced by the configured estimator, so
        a transient estimator fault can't poison it. Penalty policies
        degrade to the scalar magic-only plan too: without a working
        posterior there is nothing to sample.
        """
        event = self._record_degradation(
            "estimator-failure",
            f"{type(exc).__name__}: {exc}",
            component="planner",
        )
        target = parsed
        if isinstance(effective, ThresholdPolicy):
            target = replace(parsed, hint=effective.q)
        elif isinstance(effective, PenaltyPolicy):
            target = replace(parsed, hint=None)
        optimizer = Optimizer(
            self.database,
            self._fallback_estimator(),
            self.cost_model,
            enable_star_plans=self.config.enable_star_plans,
        )
        planned = optimizer.optimize(target)
        self._count_prepare(False)
        return PreparedQuery(
            self, parsed, planned, effective, version, False,
            degraded_reason=event.reason,
        )

    def prepare_many(
        self, query: str | SPJQuery, thresholds: Sequence[float | str]
    ) -> list[PreparedQuery]:
        """Prepare one statement across a whole confidence grid.

        Missing grid points are planned together by one vectorized
        :meth:`~repro.optimizer.Optimizer.optimize_many` pass (per-lane
        plans are bit-identical to scalar ``optimize`` at the same
        threshold, see PR 2), then cached individually — so a later
        ``prepare(query, threshold=t)`` hits any lane planted here.
        """
        self._check_open()
        if self.config.estimator != "robust":
            raise SessionError(
                "prepare_many needs a threshold-aware (robust) session"
            )
        if not thresholds:
            raise SessionError("prepare_many needs at least one threshold")
        parsed = self._coerce_query(query)
        grid = [ThresholdPolicy(t) for t in thresholds]
        state = self._ensure_state()
        version = state.version
        fingerprint = query_fingerprint(parsed)

        keyed = [
            (p, self._cache_key(fingerprint, p, version)) for p in grid
        ]
        found: dict[ThresholdPolicy, PlannedQuery] = {}
        hits: set[ThresholdPolicy] = set()
        for lane_policy, key in keyed:
            cached = self.plan_cache.get(key)
            if cached is not None:
                found[lane_policy] = cached
                hits.add(lane_policy)
        missing = [p for p in grid if p not in found]
        if missing:
            hintless = replace(parsed, hint=None)
            try:
                planned_grid = self._optimizer(state).optimize_many(
                    hintless, tuple(p.q for p in missing)
                )
            except (EstimationError, StatisticsError):
                # Degrade lane by lane through the scalar path (which
                # attributes the failure and plans uncached via §3.5).
                return [self.prepare(hintless, p.q) for p in grid]
            for lane_policy, planned in zip(missing, planned_grid):
                key = self._cache_key(fingerprint, lane_policy, version)
                self.plan_cache.put(key, planned)
                found[lane_policy] = planned

        prepared = []
        for lane_policy in grid:
            was_cached = lane_policy in hits
            self._count_prepare(was_cached)
            prepared.append(
                PreparedQuery(
                    self, parsed, found[lane_policy], lane_policy, version,
                    was_cached,
                )
            )
        return prepared

    def _count_prepare(self, was_cached: bool) -> None:
        self.metrics.counter(
            "repro_session_prepares_total",
            "Statements prepared, by plan-cache outcome.",
        ).inc(result="hit" if was_cached else "miss")

    # ------------------------------------------------------------------
    # Execute
    # ------------------------------------------------------------------
    def execute(
        self, query: str | SPJQuery | PreparedQuery,
        threshold: float | str | None = None,
        *,
        policy: SelectionPolicy | float | str | None = None,
    ) -> QueryResult:
        """Plan (through the cache) and run one statement."""
        if isinstance(query, PreparedQuery):
            return self._execute_prepared(query)
        return self._execute_prepared(
            self.prepare(query, threshold, policy=policy)
        )

    def _execute_prepared(self, prepared: PreparedQuery) -> QueryResult:
        self._check_open()
        if prepared.is_stale():
            # Statistics moved: transparently re-plan (a cache miss
            # under the new version) and re-bind the handle.
            fresh = self.prepare(prepared.query, policy=prepared.policy)
            prepared.planned = fresh.planned
            prepared.statistics_version = fresh.statistics_version
            prepared.from_cache = fresh.from_cache
            self.metrics.counter(
                "repro_session_replans_total",
                "Transparent re-plans after a statistics version bump.",
            ).inc()
        ctx = ExecutionContext(
            self.database, ExecOptions(scan_cache=self._scan_cache)
        )
        started = time.perf_counter()
        frame = prepared.plan.execute(ctx)
        wall = time.perf_counter() - started
        simulated = self.cost_model.time_from_counters(ctx.counters)
        if self._feedback is not None and prepared.degraded_reason is None:
            # Harvest observed cardinalities into the epoch this plan
            # was produced under and ledger its plan-level q-error.
            # Degraded (magic-only) plans are skipped: their estimates
            # say nothing about the configured estimator's accuracy.
            self._feedback.observe(
                prepared.query,
                prepared.plan,
                self.database,
                estimated_rows=prepared.estimated_rows,
                actual_rows=frame.num_rows,
                statistics_version=prepared.statistics_version,
            )
        self.metrics.counter(
            "repro_session_executes_total", "Statements executed."
        ).inc()
        self.metrics.histogram(
            "repro_session_simulated_seconds",
            "Simulated execution time of session statements.",
        ).observe(simulated)
        self.metrics.gauge(
            "repro_session_last_execute_wall_seconds",
            "Wall time of the most recent plan execution.",
        ).set(wall)
        return QueryResult(
            frame=frame,
            simulated_seconds=simulated,
            prepared=prepared,
            plan_cached=prepared.from_cache,
        )

    # ------------------------------------------------------------------
    # Explain / trace
    # ------------------------------------------------------------------
    def trace_query(
        self,
        query: str | SPJQuery,
        threshold: float | str | None = None,
        execute: bool = False,
        label: str | None = None,
        *,
        policy: SelectionPolicy | float | str | None = None,
    ) -> dict:
        """Plan (and optionally run) with full tracing, returning the
        JSON-ready :class:`~repro.obs.QueryTrace` record.

        Traced planning bypasses the plan cache — the point is fresh
        estimation-evidence spans — and never pollutes it. Under a
        penalty policy the optimizer span carries the per-plan penalty
        distributions (``optimizer.selection``).
        """
        self._check_open()
        parsed = self._coerce_query(query)
        effective = self._effective_policy(parsed, threshold, policy)
        state = self._ensure_state()
        fingerprint = query_fingerprint(parsed)
        tracer = Tracer()
        optimizer = self._optimizer(state, tracer)
        started = time.perf_counter()
        planned = self._plan_with_policy(
            optimizer, state, parsed, effective, fingerprint
        )
        optimize_seconds = time.perf_counter() - started
        execution = None
        if execute:
            ctx = ExecutionContext(self.database)
            frame = planned.plan.execute(ctx)
            simulated = self.cost_model.time_from_counters(ctx.counters)
            execution = execution_span(
                planned.plan,
                self.database,
                self.cost_model,
                simulated_seconds=simulated,
                actual_rows=frame.num_rows,
                estimated_rows=planned.estimated_rows,
                estimated_cost=planned.estimated_cost,
            )
        return QueryTrace(
            template=label or "session",
            config=optimizer.estimator.describe(),
            seed=self.config.statistics_seed
            if isinstance(self.config.statistics_seed, int)
            else None,
            estimation=tracer.drain_estimations(),
            optimizer=planned.trace,
            execution=execution,
            timing={"optimize_seconds": optimize_seconds},
        ).as_dict()

    def explain(
        self,
        query: str | SPJQuery,
        threshold: float | str | None = None,
        analyze: bool = False,
        *,
        policy: SelectionPolicy | float | str | None = None,
    ) -> str:
        """The "why this plan" explanation for one statement.

        Combines the plan tree with the traced provenance (estimation
        evidence, DP statistics, winner vs. runner-up); ``analyze=True``
        also executes the plan and appends the per-operator work
        breakdown, EXPLAIN-ANALYZE style.
        """
        record = self.trace_query(
            query, threshold, execute=analyze, policy=policy
        )
        prepared = self.prepare(query, threshold, policy=policy)
        plan_tree = prepared.explain()
        provenance = explain_trace([record], record["trace_id"])
        return f"{plan_tree}\n\n{provenance}"

    # ------------------------------------------------------------------
    # Experiments
    # ------------------------------------------------------------------
    def run_experiment(
        self,
        template,
        params,
        configs=None,
        seeds: Sequence[int] = tuple(range(4)),
        workers: int | None = None,
        execution_cache: bool = True,
        vectorize_thresholds: bool = True,
        trace: bool = False,
        scan_cache: bool = True,
    ):
        """Run a Section-6 style experiment grid against this database.

        Delegates to :class:`~repro.experiments.ExperimentRunner` with
        the session's database, cost model, and sample size, then
        publishes the harness's perf counters into ``session.metrics``.
        Experiment statistics are rebuilt per seed inside the runner
        (the paper's protocol) — the session's own statistics and plan
        cache are untouched.
        """
        self._check_open()
        from repro.experiments import ExperimentRunner

        runner = ExperimentRunner(
            self.database,
            template,
            self.cost_model,
            sample_size=self.config.sample_size,
            histogram_buckets=self.config.histogram_buckets,
            seeds=seeds,
            workers=workers,
            execution_cache=execution_cache,
            vectorize_thresholds=vectorize_thresholds,
            trace=trace,
            scan_cache=scan_cache,
        )
        result = runner.run(params, configs)
        result.perf.publish(self.metrics)
        return result

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def cache_stats(self) -> dict:
        """Plan-cache counters, also mirrored into ``metrics``."""
        stats = self.plan_cache.stats()
        gauge = self.metrics.gauge(
            "repro_session_plan_cache",
            "Plan-cache occupancy and counters.",
        )
        for name in ("size", "hits", "misses", "evictions"):
            gauge.set(float(stats[name]), stat=name)
        gauge.set(stats["hit_rate"], stat="hit_rate")
        return stats

    def describe(self) -> str:
        """One-line session summary for logs and reports."""
        default_policy = self.config.resolved_policy
        knob = (
            f", {default_policy.describe()}"
            if default_policy is not None
            and not isinstance(default_policy, (HistogramPolicy, BayesNetPolicy))
            else ""
        )
        if self._feedback is not None:
            knob += ", feedback"
        flag = ", DEGRADED" if self._health == DEGRADED else ""
        return (
            f"Session({self.config.estimator}{knob}, "
            f"n={self.config.sample_size}, "
            f"cache={self.config.plan_cache_size}, "
            f"stats_v{self.statistics_version()}{flag})"
        )

    def _check_open(self) -> None:
        if self._closed:
            raise SessionError("session is closed")

    def close(self) -> None:
        """Release cached plans; further use raises ``SessionError``."""
        self.cache_stats()  # final metrics snapshot
        self.plan_cache.clear()
        self._parse_cache.clear()
        self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return self.describe()
