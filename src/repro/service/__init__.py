"""The query session service — the repository's public facade.

``Session`` is the one entry point for SQL-in → plan → execute →
result/trace-out; ``PreparedQuery`` is the cached-plan handle it hands
back. Everything underneath (statistics, estimators, the optimizer,
the engine) stays wired exactly as the paper prescribes — callers just
stop re-wiring it by hand.

>>> from repro import Session
>>> session = Session(database, threshold="moderate")
>>> prepared = session.prepare("SELECT COUNT(*) FROM lineitem")
>>> result = prepared.execute()
>>> print(session.explain("SELECT COUNT(*) FROM lineitem"))
"""

from repro.service.cache import PlanCache, PlanCacheError
from repro.service.fingerprint import canonical_sql, query_fingerprint
from repro.service.session import (
    DEGRADED,
    HEALTHY,
    PreparedQuery,
    QueryResult,
    Session,
    SessionConfig,
    SessionError,
)

__all__ = [
    "DEGRADED",
    "HEALTHY",
    "PlanCache",
    "PlanCacheError",
    "PreparedQuery",
    "QueryResult",
    "Session",
    "SessionConfig",
    "SessionError",
    "canonical_sql",
    "query_fingerprint",
]
