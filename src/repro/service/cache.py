"""A bounded, lock-striped LRU cache with per-key singleflight.

The session layer keys plans on ``(query fingerprint, estimator
config, statistics version)``, so entries for stale statistics age out
of the LRU naturally — a version bump changes the key, misses, and
re-plans; the old version's entries are never served again and are
evicted as fresh traffic displaces them.

Concurrency model: the key space is partitioned across N stripes, each
guarded by its own lock, so sessions serving many threads don't
serialize on one global mutex. Within a stripe, concurrent requests
for the *same* missing key are collapsed ("singleflight"): the first
caller computes the value while followers wait on an event and share
the result, so an expensive planning pass runs exactly once no matter
how many threads ask for it simultaneously.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, TypeVar

from repro.errors import ReproError

V = TypeVar("V")


class PlanCacheError(ReproError):
    """The cache was configured or used inconsistently."""


class _InFlight:
    """One in-progress computation that followers can wait on."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value = None
        self.error: BaseException | None = None


class _Stripe:
    """One shard of the key space: an LRU dict plus its lock.

    Hit/miss/eviction counters live *on the stripe* and are mutated
    only under the stripe's own lock — the cache-wide totals are
    aggregated at read time. A hit therefore touches exactly one lock
    (the stripe's, which it already holds), never a process-wide stats
    mutex that would serialize otherwise-uncontended stripes.
    """

    __slots__ = ("lock", "entries", "inflight", "capacity",
                 "hits", "misses", "evictions")

    def __init__(self, capacity: int) -> None:
        self.lock = threading.Lock()
        self.entries: OrderedDict = OrderedDict()
        self.inflight: dict = {}
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class PlanCache:
    """Bounded LRU over hashable keys, striped for concurrency.

    Parameters
    ----------
    capacity:
        Total entry bound across all stripes. ``0`` disables caching:
        every :meth:`get_or_create` computes (used by benchmarks to
        measure the uncached baseline through the same code path).
    stripes:
        Number of independently locked shards. Each stripe holds at
        most ``ceil(capacity / stripes)`` entries, so the bound is
        exact for ``stripes=1`` and within a stripe's rounding above.
    """

    def __init__(self, capacity: int = 256, stripes: int = 8) -> None:
        if capacity < 0:
            raise PlanCacheError(f"capacity must be >= 0, got {capacity}")
        if stripes < 1:
            raise PlanCacheError(f"stripes must be >= 1, got {stripes}")
        self.capacity = capacity
        stripes = min(stripes, capacity) or 1
        per_stripe = -(-capacity // stripes) if capacity else 0
        self._stripes = [_Stripe(per_stripe) for _ in range(stripes)]

    # Aggregated-at-read counters (kept as properties so callers and
    # older tests that read ``cache.hits`` keep working).
    @property
    def hits(self) -> int:
        return sum(s.hits for s in self._stripes)

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self._stripes)

    @property
    def evictions(self) -> int:
        return sum(s.evictions for s in self._stripes)

    # ------------------------------------------------------------------
    def _stripe_for(self, key: Hashable) -> _Stripe:
        return self._stripes[hash(key) % len(self._stripes)]

    def get_or_create(
        self, key: Hashable, factory: Callable[[], V]
    ) -> tuple[V, bool]:
        """Return ``(value, was_cached)``, computing on first request.

        ``factory`` runs at most once per key per generation: losers of
        the insertion race wait for the winner's result (and re-raise
        the winner's exception, without caching it). With ``capacity
        0`` the factory always runs and nothing is retained.
        """
        stripe = self._stripe_for(key)
        if self.capacity == 0:
            with stripe.lock:
                stripe.misses += 1
            return factory(), False

        while True:
            with stripe.lock:
                if key in stripe.entries:
                    stripe.entries.move_to_end(key)
                    stripe.hits += 1
                    return stripe.entries[key], True
                flight = stripe.inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    stripe.inflight[key] = flight
                    leader = True
                else:
                    leader = False
            if leader:
                break
            flight.event.wait()
            if flight.error is None:
                with stripe.lock:
                    stripe.hits += 1
                return flight.value, True
            # The leader failed; loop and retry as a fresh leader.
            with stripe.lock:
                if stripe.inflight.get(key) is flight:
                    del stripe.inflight[key]

        try:
            value = factory()
        except BaseException as exc:
            with stripe.lock:
                flight.error = exc
                if stripe.inflight.get(key) is flight:
                    del stripe.inflight[key]
            flight.event.set()
            raise
        with stripe.lock:
            stripe.entries[key] = value
            stripe.entries.move_to_end(key)
            while len(stripe.entries) > stripe.capacity:
                stripe.entries.popitem(last=False)
                stripe.evictions += 1
            if stripe.inflight.get(key) is flight:
                del stripe.inflight[key]
            stripe.misses += 1
        flight.value = value
        flight.event.set()
        return value, False

    # ------------------------------------------------------------------
    def get(self, key: Hashable):
        """Peek without computing; ``None`` on miss (not counted)."""
        stripe = self._stripe_for(key)
        with stripe.lock:
            if key in stripe.entries:
                stripe.entries.move_to_end(key)
                return stripe.entries[key]
        return None

    def put(self, key: Hashable, value) -> None:
        """Insert (or refresh) an entry, evicting LRU past capacity.

        A ``put`` also supersedes any in-flight :meth:`get_or_create`
        for the same key: followers waiting on the leader's factory
        are released immediately with this value instead of blocking
        on a computation whose result is already cached.
        """
        if self.capacity == 0:
            return
        stripe = self._stripe_for(key)
        with stripe.lock:
            stripe.entries[key] = value
            stripe.entries.move_to_end(key)
            while len(stripe.entries) > stripe.capacity:
                stripe.entries.popitem(last=False)
                stripe.evictions += 1
            flight = stripe.inflight.pop(key, None)
        if flight is not None:
            flight.value = value
            flight.event.set()

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        for stripe in self._stripes:
            with stripe.lock:
                stripe.entries.clear()

    def __len__(self) -> int:
        return sum(len(stripe.entries) for stripe in self._stripes)

    def __contains__(self, key: Hashable) -> bool:
        stripe = self._stripe_for(key)
        with stripe.lock:
            return key in stripe.entries

    def stats(self) -> dict:
        """Counters plus occupancy, JSON-ready.

        Totals are aggregated from the per-stripe counters at read
        time; each stripe's triple is read under its own lock, so the
        totals never include a torn per-stripe update (a cross-stripe
        snapshot taken mid-traffic is monotonic, not frozen).
        """
        hits = misses = evictions = 0
        for stripe in self._stripes:
            with stripe.lock:
                hits += stripe.hits
                misses += stripe.misses
                evictions += stripe.evictions
        total = hits + misses
        return {
            "capacity": self.capacity,
            "stripes": len(self._stripes),
            "size": len(self),
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_rate": hits / total if total else 0.0,
        }
