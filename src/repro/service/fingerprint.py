"""Query fingerprints: the plan-cache identity of an SPJ query.

Two queries share a fingerprint exactly when the optimizer would treat
them identically *apart from the confidence threshold*: the canonical
SQL rendering (``query_to_sql``) normalizes table order, predicate
spelling, and clause layout, and the per-query hint is stripped because
the threshold is part of the estimator configuration in the cache key,
not of the query text. Hashing the canonical form keeps keys small and
constant-size regardless of predicate depth.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace

from repro.optimizer import SPJQuery
from repro.sql import query_to_sql


def canonical_sql(query: SPJQuery) -> str:
    """The canonical, hint-free SQL rendering of ``query``."""
    if query.hint is not None:
        query = replace(query, hint=None)
    return query_to_sql(query)


def query_fingerprint(query: SPJQuery) -> str:
    """A stable hex digest identifying ``query`` up to its hint."""
    return hashlib.sha256(canonical_sql(query).encode("utf-8")).hexdigest()[:20]
