"""Index structures: sorted (B-tree-equivalent) and hash indexes.

The paper's experiments rely on nonclustered indexes for the "risky"
plans (index intersection, indexed nested-loop join, star semijoin).
A sorted array plus binary search is functionally equivalent to a
B-tree for the read-only workloads we run, so that is what we build.
"""

from repro.indexes.sorted_index import SortedIndex
from repro.indexes.hash_index import HashIndex
from repro.indexes.rid import intersect_rid_sets, union_rid_lists

__all__ = ["HashIndex", "SortedIndex", "intersect_rid_sets", "union_rid_lists"]
