"""Sorted secondary index: the B-tree equivalent for a read-only store.

The index keeps the column values in sorted order together with the
row ids (RIDs) that produced them. Range and equality lookups are two
binary searches followed by a slice — the same leaf-scan behaviour a
B-tree gives, which is what the cost model charges for.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_


class SortedIndex:
    """Index over one column supporting equality and range lookup.

    Parameters
    ----------
    values:
        The column to index. Strings and numerics both work; the sort
        order is numpy's.
    """

    def __init__(self, values: np.ndarray) -> None:
        if values.ndim != 1:
            raise IndexError_("SortedIndex requires a 1-D column")
        order = np.argsort(values, kind="stable")
        self._keys = values[order]
        self._rids = order.astype(np.int64)

    @property
    def num_entries(self) -> int:
        """Number of indexed rows."""
        return len(self._keys)

    def lookup_eq(self, value) -> np.ndarray:
        """RIDs of rows whose key equals ``value`` (sorted by key order)."""
        lo = np.searchsorted(self._keys, value, side="left")
        hi = np.searchsorted(self._keys, value, side="right")
        return self._rids[lo:hi]

    def lookup_range(
        self,
        low=None,
        high=None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """RIDs of rows with key in the given (optionally open) range.

        ``low=None`` / ``high=None`` leave that side unbounded.
        """
        lo = 0
        hi = len(self._keys)
        if low is not None:
            side = "left" if low_inclusive else "right"
            lo = int(np.searchsorted(self._keys, low, side=side))
        if high is not None:
            side = "right" if high_inclusive else "left"
            hi = int(np.searchsorted(self._keys, high, side=side))
        if hi <= lo:
            return np.empty(0, dtype=np.int64)
        return self._rids[lo:hi]

    def count_range(
        self,
        low=None,
        high=None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> int:
        """Number of rows in the range, without materializing RIDs."""
        lo = 0
        hi = len(self._keys)
        if low is not None:
            side = "left" if low_inclusive else "right"
            lo = int(np.searchsorted(self._keys, low, side=side))
        if high is not None:
            side = "right" if high_inclusive else "left"
            hi = int(np.searchsorted(self._keys, high, side=side))
        return max(0, hi - lo)

    def lookup_many_eq(self, values: np.ndarray) -> np.ndarray:
        """Concatenated RIDs for every key in ``values`` (vectorized).

        Equivalent to concatenating :meth:`lookup_eq` over ``values``;
        used by semijoin plans that probe one index with many keys.
        """
        if not len(values):
            return np.empty(0, dtype=np.int64)
        lo = np.searchsorted(self._keys, values, side="left")
        hi = np.searchsorted(self._keys, values, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        within = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
        positions = np.repeat(lo.astype(np.int64), counts) + within
        return self._rids[positions]

    def min_key(self):
        """Smallest indexed key (raises on an empty index)."""
        if not len(self._keys):
            raise IndexError_("empty index has no min key")
        return self._keys[0]

    def max_key(self):
        """Largest indexed key (raises on an empty index)."""
        if not len(self._keys):
            raise IndexError_("empty index has no max key")
        return self._keys[-1]
