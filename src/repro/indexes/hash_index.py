"""Hash index: equality lookups from key to row ids.

Used for primary-key lookups when building join synopses and for the
inner side of indexed nested-loop joins.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_


class HashIndex:
    """Maps each distinct key to the numpy array of RIDs holding it."""

    def __init__(self, values: np.ndarray) -> None:
        if values.ndim != 1:
            raise IndexError_("HashIndex requires a 1-D column")
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        boundaries = np.flatnonzero(sorted_values[1:] != sorted_values[:-1]) + 1
        groups = np.split(order.astype(np.int64), boundaries)
        starts = np.concatenate(([0], boundaries)) if len(values) else []
        self._buckets: dict = {}
        for start, rids in zip(starts, groups):
            self._buckets[sorted_values[start].item()] = rids
        self._num_entries = len(values)

    @property
    def num_entries(self) -> int:
        """Number of indexed rows."""
        return self._num_entries

    @property
    def num_keys(self) -> int:
        """Number of distinct keys."""
        return len(self._buckets)

    def lookup(self, value) -> np.ndarray:
        """RIDs whose key equals ``value`` (empty array when absent)."""
        if hasattr(value, "item"):
            value = value.item()
        return self._buckets.get(value, _EMPTY)

    def lookup_many(self, values: np.ndarray) -> np.ndarray:
        """Concatenated RIDs for every value in ``values``.

        Duplicate input values contribute their RIDs once per occurrence,
        matching nested-loop join semantics.
        """
        hits = [self.lookup(value) for value in values]
        if not hits:
            return _EMPTY
        return np.concatenate(hits)

    def __contains__(self, value) -> bool:
        if hasattr(value, "item"):
            value = value.item()
        return value in self._buckets


_EMPTY = np.empty(0, dtype=np.int64)
