"""RID-set algebra for index-intersection and semijoin plans.

An index-intersection plan (paper Section 2.1) resolves each predicate
to a RID set via a secondary index, intersects the sets, and fetches
only the surviving rows. The star-semijoin plan of Experiment 3 does
the same across foreign-key indexes.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

_EMPTY = np.empty(0, dtype=np.int64)


def intersect_rid_sets(rid_sets: Sequence[np.ndarray]) -> np.ndarray:
    """Intersect RID arrays, returning sorted unique RIDs.

    Intersection proceeds smallest-set-first so the work is bounded by
    the most selective predicate, as a real executor would do.
    """
    if not rid_sets:
        return _EMPTY
    ordered = sorted(rid_sets, key=len)
    result = np.unique(ordered[0])
    for rids in ordered[1:]:
        if not len(result):
            return _EMPTY
        result = np.intersect1d(result, rids, assume_unique=False)
    return result


def union_rid_lists(rid_lists: Iterable[np.ndarray]) -> np.ndarray:
    """Union RID arrays, returning sorted unique RIDs."""
    chunks = [rids for rids in rid_lists if len(rids)]
    if not chunks:
        return _EMPTY
    return np.unique(np.concatenate(chunks))
