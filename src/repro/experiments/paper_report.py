"""One-command reproduction: regenerate every paper figure into a report.

:func:`generate_report` runs the Section 5 analytical sweeps and the
Section 6 experiment grids at a configurable scale and writes a single
markdown report with every data series — the "reproduce the paper"
artifact for people who don't want to read pytest output.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

import numpy as np

from repro.analysis import (
    figure2_plans,
    high_crossover_model,
    paper_default_model,
    sample_size_tradeoff_curve,
    threshold_sweep,
    tradeoff_curve,
)
from repro.analysis.sweeps import DEFAULT_SELECTIVITIES, PAPER_THRESHOLDS
from repro.core import SelectivityPosterior
from repro.experiments.report import (
    format_selectivity_table,
    format_tradeoff_table,
)
from repro.experiments.runner import ExperimentRunner
from repro.workloads import (
    PartCorrelationTemplate,
    ShippingDatesTemplate,
    StarConfig,
    StarJoinTemplate,
    TpchConfig,
    build_star_database,
    build_tpch_database,
)


@dataclass(frozen=True)
class ReportConfig:
    """Scale knobs for the report run."""

    lineitem_rows: int = 30_000
    fact_rows: int = 40_000
    seeds: int = 4
    sample_size: int = 500
    points: int = 8
    #: Seed-parallel worker processes; ``None`` uses every CPU core.
    workers: int | None = None


def generate_report(
    output_path: str | pathlib.Path,
    config: ReportConfig | None = None,
) -> pathlib.Path:
    """Write the full figure-by-figure report to ``output_path``.

    Returns the path written. Runtime is dominated by the Section 6
    grids — about a minute at the default scale.
    """
    config = config or ReportConfig()
    sections = ["# Reproduction report\n"]
    sections.append(
        "Regenerated with "
        f"`lineitem_rows={config.lineitem_rows}`, "
        f"`fact_rows={config.fact_rows}`, `seeds={config.seeds}`, "
        f"`sample_size={config.sample_size}`.\n"
    )

    sections.append(_analytical_section())
    sections.append(_experiment_sections(config))

    path = pathlib.Path(output_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(sections))
    return path


# ----------------------------------------------------------------------
def _analytical_section() -> str:
    lines = ["## Section 5 (analytical, exact)\n"]

    model = figure2_plans()
    [crossover] = model.crossover_points()
    posterior = SelectivityPosterior(50, 200)
    lines.append(
        f"**Figures 1–3.** Implied plan costs cross at {crossover:.1%}; "
        f"percentile costs at T=50 %: "
        f"{model.cost(0, posterior.ppf(0.5)):.1f} / "
        f"{model.cost(1, posterior.ppf(0.5)):.1f}; at T=80 %: "
        f"{model.cost(0, posterior.ppf(0.8)):.1f} / "
        f"{model.cost(1, posterior.ppf(0.8)):.1f} "
        "(paper: 30.2/31.5 and 33.5/31.9).\n"
    )

    worked = SelectivityPosterior(10, 100)
    lines.append(
        "**Figure 4.** Worked estimates at T=20/50/80 %: "
        + " / ".join(f"{worked.ppf(t):.1%}" for t in (0.2, 0.5, 0.8))
        + " (paper: 7.8 % / 10.1 % / 12.8 %).\n"
    )

    lines.append("**Figure 5.** Expected time (s) by threshold, n=1000:\n")
    curves = threshold_sweep(paper_default_model(), 1000)
    header = "| selectivity | " + " | ".join(
        f"T={t:.0%}" for t in PAPER_THRESHOLDS
    ) + " |"
    lines.append(header)
    lines.append("|" + "---|" * (len(PAPER_THRESHOLDS) + 1))
    for i in range(0, len(DEFAULT_SELECTIVITIES), 2):
        row = [f"{DEFAULT_SELECTIVITIES[i]:.2%}"] + [
            f"{curves[t][i]:.1f}" for t in PAPER_THRESHOLDS
        ]
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")

    lines.append("**Figure 6.** Tradeoff points (n=1000):\n")
    lines.append("| threshold | mean(s) | std(s) |")
    lines.append("|---|---|---|")
    for point in tradeoff_curve(paper_default_model(), 1000):
        lines.append(
            f"| {point.label} | {point.mean_time:.2f} | {point.std_time:.2f} |"
        )
    lines.append("")

    lines.append("**Figures 7/12 (analytical).** Sample-size tradeoff, T=50 %:\n")
    lines.append("| sample | mean(s) | std(s) |")
    lines.append("|---|---|---|")
    for point in sample_size_tradeoff_curve(paper_default_model()):
        lines.append(
            f"| {point.label} | {point.mean_time:.2f} | {point.std_time:.2f} |"
        )
    lines.append("")

    grid = np.arange(0.0, 0.20001, 0.02)
    high = threshold_sweep(
        high_crossover_model(), 1000, thresholds=(0.05, 0.5, 0.95),
        selectivities=grid,
    )
    spread = np.stack(list(high.values()))
    worst = float(
        ((spread.max(axis=0) - spread.min(axis=0)) / spread.mean(axis=0))[2:].max()
    )
    lines.append(
        "**Figure 8.** At a ≈5.2 % crossover the T=5/50/95 % curves differ "
        f"by at most {worst:.0%} beyond 2 % selectivity — thresholds barely "
        "matter, as the paper argues.\n"
    )
    return "\n".join(lines)


def _experiment_sections(config: ReportConfig) -> str:
    lines = ["## Section 6 (simulated system experiments)\n"]

    tpch = build_tpch_database(TpchConfig(num_lineitem=config.lineitem_rows, seed=7))

    exp1 = ShippingDatesTemplate()
    targets = list(np.linspace(0.0, 0.012, config.points))
    params = exp1.params_for_targets(tpch, targets, step=4)
    result = ExperimentRunner(
        tpch,
        exp1,
        sample_size=config.sample_size,
        seeds=range(config.seeds),
        workers=config.workers,
    ).run(params)
    lines.append("### Experiment 1 / Figure 9\n")
    lines.append("```")
    lines.append(format_selectivity_table(result))
    lines.append("")
    lines.append(format_tradeoff_table(result))
    lines.append("```\n")

    exp2 = PartCorrelationTemplate()
    targets = list(np.linspace(0.0, 0.010, config.points))
    params = exp2.params_for_targets(tpch, targets, step=20)
    result = ExperimentRunner(
        tpch,
        exp2,
        sample_size=config.sample_size,
        seeds=range(config.seeds),
        workers=config.workers,
    ).run(params)
    lines.append("### Experiment 2 / Figure 10\n")
    lines.append("```")
    lines.append(format_selectivity_table(result))
    lines.append("")
    lines.append(format_tradeoff_table(result))
    lines.append("```\n")

    star_config = StarConfig(num_fact=config.fact_rows, seed=7)
    star = build_star_database(star_config)
    exp3 = StarJoinTemplate(star_config.num_dim)
    shifts = np.linspace(100, 0, config.points).astype(int)
    params = [
        (int(s), exp3.true_selectivity(star, int(s))) for s in shifts
    ]
    result = ExperimentRunner(
        star,
        exp3,
        sample_size=config.sample_size,
        seeds=range(config.seeds),
        workers=config.workers,
    ).run(params)
    lines.append("### Experiment 3 / Figure 11\n")
    lines.append("```")
    lines.append(format_selectivity_table(result))
    lines.append("")
    lines.append(format_tradeoff_table(result))
    lines.append("```\n")

    return "\n".join(lines)
