"""Performance instrumentation and caching for the experiment harness.

The paper's prototype "lacks even basic optimizations such as
memoizing" and pays a 30–40 % estimation overhead (§6.1); the harness
layer here is where we claw that back at experiment scale:

* :class:`PlanExecutionCache` — simulated execution time is a pure
  function of (database, physical plan, query parameter), so within
  one statistics seed every distinct ``(param, plan signature)`` pair
  is executed once and the ``(time, actual_rows)`` result reused
  across estimator configurations that chose the same plan.
* :class:`PerfStats` — cache hit/miss counters and per-phase
  wall-clock timers (``stats_build``, ``optimize``, ``execute``),
  merged across seeds/workers and exposed on ``ExperimentResult`` so
  benchmarks can track the perf trajectory over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog import Database
from repro.cost import CostModel
from repro.engine import ExecOptions, ExecutionContext, PhysicalOperator, ScanCache


@dataclass
class PerfStats:
    """Counters and timers for one experiment run.

    Counters and phase timers are summed across seeds (and worker
    processes); ``wall_seconds`` is the end-to-end time observed by the
    coordinating process, so with ``workers > 1`` it is smaller than
    the sum of the phase timers.
    """

    workers: int = 1
    execution_cache: bool = True
    vectorize_thresholds: bool = True
    scan_cache: bool = True
    exec_cache_hits: int = 0
    exec_cache_misses: int = 0
    estimate_cache_hits: int = 0
    estimate_cache_misses: int = 0
    #: Base-table scans answered from the shared scan cache instead of
    #: re-filtering (plan-execution cache *misses* still share leaves).
    scan_cache_hits: int = 0
    scan_cache_misses: int = 0
    #: Posterior inversions answered from a quantile-table row instead
    #: of per-threshold ``betaincinv`` calls.
    lut_hits: int = 0
    #: Multi-threshold ``optimize_many`` passes (each replaces one
    #: ``optimize`` per grouped threshold).
    vector_passes: int = 0
    stats_build_seconds: float = 0.0
    optimize_seconds: float = 0.0
    execute_seconds: float = 0.0
    wall_seconds: float = 0.0

    @property
    def executions(self) -> int:
        """Plans actually executed (cache misses)."""
        return self.exec_cache_misses

    @property
    def exec_cache_hit_rate(self) -> float:
        total = self.exec_cache_hits + self.exec_cache_misses
        return self.exec_cache_hits / total if total else 0.0

    @property
    def estimate_cache_hit_rate(self) -> float:
        total = self.estimate_cache_hits + self.estimate_cache_misses
        return self.estimate_cache_hits / total if total else 0.0

    @property
    def scan_cache_hit_rate(self) -> float:
        total = self.scan_cache_hits + self.scan_cache_misses
        return self.scan_cache_hits / total if total else 0.0

    def merge(self, other: "PerfStats") -> None:
        """Fold one seed's counters and phase timers into this total."""
        self.exec_cache_hits += other.exec_cache_hits
        self.exec_cache_misses += other.exec_cache_misses
        self.estimate_cache_hits += other.estimate_cache_hits
        self.estimate_cache_misses += other.estimate_cache_misses
        self.scan_cache_hits += other.scan_cache_hits
        self.scan_cache_misses += other.scan_cache_misses
        self.lut_hits += other.lut_hits
        self.vector_passes += other.vector_passes
        self.stats_build_seconds += other.stats_build_seconds
        self.optimize_seconds += other.optimize_seconds
        self.execute_seconds += other.execute_seconds

    def format_summary(self) -> str:
        """Human-readable summary with the derived rates spelled out.

        The raw-counter dump (``as_dict``) kept the hit *rates* and
        LUT counters effectively invisible in ``--perf`` output; this
        is the reporting-side fix for that asymmetry. All ratios guard
        division by zero (a run with no cacheable work prints 0 %).
        """
        exec_total = self.exec_cache_hits + self.exec_cache_misses
        est_total = self.estimate_cache_hits + self.estimate_cache_misses
        lines = [
            "perf summary:",
            f"  workers: {self.workers}  "
            f"(execution cache {'on' if self.execution_cache else 'off'}, "
            f"threshold vectorization "
            f"{'on' if self.vectorize_thresholds else 'off'})",
            f"  execution cache: {self.exec_cache_hits} hits / "
            f"{self.exec_cache_misses} misses over {exec_total} lookups "
            f"({self.exec_cache_hit_rate:.1%} hit rate)",
            f"  estimate cache: {self.estimate_cache_hits} hits / "
            f"{self.estimate_cache_misses} misses over {est_total} lookups "
            f"({self.estimate_cache_hit_rate:.1%} hit rate)",
            f"  scan cache: {self.scan_cache_hits} hits / "
            f"{self.scan_cache_misses} misses "
            f"({self.scan_cache_hit_rate:.1%} hit rate, "
            f"{'on' if self.scan_cache else 'off'})",
            f"  quantile-table hits: {self.lut_hits}  "
            f"vectorized planning passes: {self.vector_passes}",
            f"  phases: stats {self.stats_build_seconds:.3f}s | "
            f"optimize {self.optimize_seconds:.3f}s | "
            f"execute {self.execute_seconds:.3f}s | "
            f"wall {self.wall_seconds:.3f}s",
        ]
        return "\n".join(lines)

    def publish(self, registry) -> None:
        """Absorb these counters into a
        :class:`~repro.obs.MetricsRegistry` (counters for monotonic
        totals, gauges for the phase timers and derived hit rates)."""
        counts = registry.counter(
            "repro_perf_events_total", "Harness cache/vectorization events."
        )
        counts.inc(self.exec_cache_hits, event="exec_cache_hit")
        counts.inc(self.exec_cache_misses, event="exec_cache_miss")
        counts.inc(self.estimate_cache_hits, event="estimate_cache_hit")
        counts.inc(self.estimate_cache_misses, event="estimate_cache_miss")
        counts.inc(self.scan_cache_hits, event="scan_cache_hit")
        counts.inc(self.scan_cache_misses, event="scan_cache_miss")
        counts.inc(self.lut_hits, event="lut_hit")
        counts.inc(self.vector_passes, event="vector_pass")
        seconds = registry.gauge(
            "repro_phase_seconds", "Summed wall time per harness phase."
        )
        seconds.set(self.stats_build_seconds, phase="stats_build")
        seconds.set(self.optimize_seconds, phase="optimize")
        seconds.set(self.execute_seconds, phase="execute")
        seconds.set(self.wall_seconds, phase="wall")
        rates = registry.gauge(
            "repro_cache_hit_rate", "Cache hit rates (0..1), by cache."
        )
        rates.set(self.exec_cache_hit_rate, cache="execution")
        rates.set(self.estimate_cache_hit_rate, cache="estimate")
        rates.set(self.scan_cache_hit_rate, cache="scan")
        registry.gauge("repro_workers", "Worker processes used.").set(
            self.workers
        )

    def as_dict(self) -> dict:
        """JSON-ready snapshot (used by ``BENCH_runner.json``)."""
        return {
            "workers": self.workers,
            "execution_cache": self.execution_cache,
            "vectorize_thresholds": self.vectorize_thresholds,
            "exec_cache_hits": self.exec_cache_hits,
            "exec_cache_misses": self.exec_cache_misses,
            "exec_cache_hit_rate": round(self.exec_cache_hit_rate, 4),
            "estimate_cache_hits": self.estimate_cache_hits,
            "estimate_cache_misses": self.estimate_cache_misses,
            "estimate_cache_hit_rate": round(self.estimate_cache_hit_rate, 4),
            "scan_cache": self.scan_cache,
            "scan_cache_hits": self.scan_cache_hits,
            "scan_cache_misses": self.scan_cache_misses,
            "scan_cache_hit_rate": round(self.scan_cache_hit_rate, 4),
            "lut_hits": self.lut_hits,
            "vector_passes": self.vector_passes,
            "stats_build_seconds": round(self.stats_build_seconds, 4),
            "optimize_seconds": round(self.optimize_seconds, 4),
            "execute_seconds": round(self.execute_seconds, 4),
            "wall_seconds": round(self.wall_seconds, 4),
        }


@dataclass
class PlanExecutionCache:
    """Reuse plan executions keyed on ``(key, plan signature)``.

    The signature (:meth:`PhysicalOperator.signature`) captures every
    execution-relevant detail of the operator tree — tables, indexes,
    predicates, join keys, tree shape — but none of the optimizer's
    cost annotations, so two estimator configurations that picked the
    same physical plan share one execution. ``key`` scopes the reuse
    (the query parameter in grid runs, the query index in mixes); the
    caller guarantees the underlying data is fixed for the cache's
    lifetime.
    """

    enabled: bool = True
    #: Share base-table scan results across the plan executions this
    #: cache performs (two *different* plans for one parameter still
    #: share their leaves). Counter-neutral: operators replay the same
    #: :class:`WorkCounters` arithmetic on hits, so ``(time, rows)``
    #: results — the experiment records — are bit-identical either way.
    scan_cache: bool = True
    hits: int = 0
    misses: int = 0
    _store: dict = field(default_factory=dict, repr=False)
    _scans: ScanCache | None = field(default=None, repr=False)

    def execute(
        self,
        database: Database,
        cost_model: CostModel,
        key,
        plan: PhysicalOperator,
    ) -> tuple[float, int]:
        """Execute ``plan`` (or reuse), returning ``(time, rows)``."""
        if self.enabled:
            cache_key = (key, plan.signature())
            cached = self._store.get(cache_key)
            if cached is not None:
                self.hits += 1
                return cached
        self.misses += 1
        if self.scan_cache and self._scans is None:
            self._scans = ScanCache()
        ctx = ExecutionContext(database, ExecOptions(scan_cache=self._scans))
        frame = plan.execute(ctx)
        result = (cost_model.time_from_counters(ctx.counters), frame.num_rows)
        if self.enabled:
            self._store[cache_key] = result
        return result

    def scan_stats(self) -> tuple[int, int]:
        """``(hits, misses)`` of the shared scan cache (zeros if off)."""
        if self._scans is None:
            return (0, 0)
        return (self._scans.hits, self._scans.misses)
