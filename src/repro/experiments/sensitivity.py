"""Plan-sensitivity analysis: plan choices and regret across a sweep.

Inspired by plan diagrams: sweep a query template's parameter, record
which plan each estimator configuration picks at each point, and
measure *regret* — how much slower the chosen plan runs than the plan
an oracle (exact cardinalities) would have picked. Regret isolates the
cost of estimation error from the cost intrinsic to the query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog import Database
from repro.core import CardinalityEstimator, ExactCardinalityEstimator
from repro.cost import CostModel
from repro.experiments.perf import PlanExecutionCache
from repro.optimizer import Optimizer
from repro.workloads.templates import QueryTemplate


@dataclass(frozen=True)
class SweepPoint:
    """One (parameter, estimator) cell of the sensitivity sweep."""

    param: int
    selectivity: float
    plan: str
    time: float
    oracle_plan: str
    oracle_time: float

    @property
    def regret(self) -> float:
        """Extra simulated seconds paid versus the oracle's plan."""
        return max(0.0, self.time - self.oracle_time)

    @property
    def chose_oracle_plan(self) -> bool:
        return self.plan == self.oracle_plan


@dataclass
class SensitivityReport:
    """All sweep points for one estimator configuration."""

    name: str
    points: list[SweepPoint] = field(default_factory=list)

    @property
    def total_regret(self) -> float:
        return sum(point.regret for point in self.points)

    @property
    def mean_regret(self) -> float:
        return self.total_regret / len(self.points) if self.points else 0.0

    @property
    def agreement_rate(self) -> float:
        """Fraction of sweep points where the oracle's plan was chosen."""
        if not self.points:
            return 1.0
        return sum(p.chose_oracle_plan for p in self.points) / len(self.points)

    def switch_points(self) -> list[tuple[float, str, str]]:
        """Selectivities where the chosen plan changes along the sweep."""
        switches = []
        ordered = sorted(self.points, key=lambda p: p.selectivity)
        for previous, current in zip(ordered, ordered[1:]):
            if previous.plan != current.plan:
                switches.append(
                    (current.selectivity, previous.plan, current.plan)
                )
        return switches


def plan_shape(plan) -> str:
    """Compact signature of an operator tree."""
    return ">".join(type(op).__name__ for op in plan.walk())


def sensitivity_sweep(
    database: Database,
    template: QueryTemplate,
    estimators: dict[str, CardinalityEstimator],
    params: list[int],
    cost_model: CostModel | None = None,
) -> dict[str, SensitivityReport]:
    """Run the sweep for each named estimator against the oracle.

    Returns one :class:`SensitivityReport` per estimator name.
    """
    model = cost_model or CostModel()
    oracle = Optimizer(database, ExactCardinalityEstimator(database), model)
    # The oracle pass primes the cache: an estimator that picks the
    # oracle's plan at a sweep point reuses that execution outright.
    cache = PlanExecutionCache()

    # Oracle pass: the best achievable plan and time at each parameter.
    oracle_results: dict[int, tuple[str, float, float]] = {}
    for param in params:
        query = template.instantiate(param)
        planned = oracle.optimize(query)
        simulated, _ = cache.execute(database, model, param, planned.plan)
        oracle_results[param] = (
            plan_shape(planned.plan),
            simulated,
            template.true_selectivity(database, param),
        )

    reports: dict[str, SensitivityReport] = {}
    for name, estimator in estimators.items():
        optimizer = Optimizer(database, estimator, model)
        report = SensitivityReport(name)
        for param in params:
            query = template.instantiate(param)
            planned = optimizer.optimize(query)
            simulated, _ = cache.execute(database, model, param, planned.plan)
            oracle_plan, oracle_time, selectivity = oracle_results[param]
            report.points.append(
                SweepPoint(
                    param=param,
                    selectivity=selectivity,
                    plan=plan_shape(planned.plan),
                    time=simulated,
                    oracle_plan=oracle_plan,
                    oracle_time=oracle_time,
                )
            )
        reports[name] = report
    return reports


def format_sensitivity(reports: dict[str, SensitivityReport]) -> str:
    """Summarize sweeps: regret and oracle-agreement per estimator."""
    lines = [
        f"{'estimator':<16} {'mean regret(s)':>14} {'agreement':>10} {'switches':>9}"
    ]
    for name, report in reports.items():
        lines.append(
            f"{name:<16} {report.mean_regret:>14.4f} "
            f"{report.agreement_rate:>10.0%} {len(report.switch_points()):>9d}"
        )
    return "\n".join(lines)
