"""Cardinality auditing: estimated vs. actual rows per plan operator.

The paper's whole premise is that estimates are uncertain; this module
makes the error observable. :func:`audit_plan` executes every subtree
of a planned query and reports, per operator, the optimizer's estimate
next to the actual output cardinality and their q-error — an
``EXPLAIN ANALYZE`` for the simulated engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog import Database
from repro.engine import ExecutionContext, PhysicalOperator
from repro.obs.trace import QERROR_FLOOR
from repro.optimizer import PlannedQuery


@dataclass(frozen=True)
class AuditEntry:
    """One operator's estimated-vs-actual comparison."""

    label: str
    depth: int
    estimated_rows: float | None
    actual_rows: int

    @property
    def q_error(self) -> float | None:
        """Symmetric ratio error (≥ 1); ``None`` without an estimate."""
        if self.estimated_rows is None:
            return None
        estimated = max(self.estimated_rows, QERROR_FLOOR)
        actual = max(float(self.actual_rows), QERROR_FLOOR)
        return max(estimated / actual, actual / estimated)


def audit_plan(planned: PlannedQuery, database: Database) -> list[AuditEntry]:
    """Execute every subtree of ``planned`` and collect audit entries.

    Subtrees are re-executed independently (cheap for the shallow SPJ
    plans this optimizer emits), so the plan itself is not modified.
    Entries are returned in pre-order, matching ``explain()`` layout.
    """
    entries: list[AuditEntry] = []

    def visit(operator: PhysicalOperator, depth: int) -> None:
        frame = operator.execute(ExecutionContext(database))
        entries.append(
            AuditEntry(
                label=operator.label(),
                depth=depth,
                estimated_rows=operator.est_rows,
                actual_rows=frame.num_rows,
            )
        )
        for child in operator.children():
            visit(child, depth + 1)

    visit(planned.plan, 0)
    return entries


def format_audit(entries: list[AuditEntry]) -> str:
    """Render audit entries as an EXPLAIN-ANALYZE-style text tree."""
    lines = [f"{'operator':<64} {'est rows':>10} {'actual':>8} {'q-err':>6}"]
    for entry in entries:
        label = "  " * entry.depth + entry.label
        estimated = (
            f"{entry.estimated_rows:10.1f}" if entry.estimated_rows is not None
            else f"{'-':>10}"
        )
        q = f"{entry.q_error:6.2f}" if entry.q_error is not None else f"{'-':>6}"
        lines.append(f"{label:<64} {estimated} {entry.actual_rows:8d} {q}")
    return "\n".join(lines)


def worst_q_error(entries: list[AuditEntry]) -> float:
    """The largest per-operator q-error in the audit (1.0 if none)."""
    errors = [e.q_error for e in entries if e.q_error is not None]
    return max(errors, default=1.0)
