"""Threshold advisor: pick a confidence threshold for *your* workload.

Section 6.2.5 gives rules of thumb (80 % general-purpose, 95 % when
predictability is paramount) and closes with "as future work, we plan
to further refine and validate these conclusions through additional
experimentation". This module automates that experimentation: given a
database and a representative workload, it measures each candidate
threshold's (mean, std) latency profile and recommends the threshold
minimizing the scalarized objective

    score(T) = mean_time(T) + risk_aversion · std_time(T)

``risk_aversion = 0`` optimizes raw throughput; large values approach
"predictability is paramount". The λ-scalarization is the same
mean-variance utility family Chu et al. propose — here applied *once,
offline*, to pick the knob, after which the production optimizer runs
the paper's cheap single-inversion procedure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.tradeoff import TradeoffPoint, tradeoff_from_times
from repro.catalog import Database
from repro.cost import CostModel
from repro.engine import ExecutionContext
from repro.core import RobustCardinalityEstimator
from repro.errors import ReproError
from repro.optimizer import Optimizer, SPJQuery
from repro.stats import StatisticsManager


@dataclass(frozen=True)
class ThresholdRecommendation:
    """The advisor's output."""

    threshold: float
    risk_aversion: float
    profile: TradeoffPoint
    #: Profiles of every candidate, for inspection.
    candidates: tuple[TradeoffPoint, ...]

    def __str__(self) -> str:
        return (
            f"T={self.threshold:.0%} (mean {self.profile.mean_time:.4f}s, "
            f"std {self.profile.std_time:.4f}s at λ={self.risk_aversion:g})"
        )


def recommend_threshold(
    database: Database,
    workload: Sequence[SPJQuery],
    risk_aversion: float = 1.0,
    candidate_thresholds: Sequence[float] = (0.05, 0.20, 0.50, 0.80, 0.95),
    sample_size: int = 500,
    seeds: Sequence[int] = (0, 1, 2),
    cost_model: CostModel | None = None,
) -> ThresholdRecommendation:
    """Measure each candidate threshold on ``workload`` and recommend one.

    ``workload`` is a list of representative queries (e.g. from
    production templates). Each candidate threshold optimizes and runs
    the whole workload once per statistics seed; the recommendation
    minimizes ``mean + risk_aversion · std`` of the simulated latency.
    """
    if not workload:
        raise ReproError("the advisor needs at least one workload query")
    if risk_aversion < 0:
        raise ReproError("risk_aversion must be non-negative")
    model = cost_model or CostModel()

    times: dict[float, list[float]] = {t: [] for t in candidate_thresholds}
    for seed in seeds:
        statistics = StatisticsManager(database)
        statistics.update_statistics(sample_size=sample_size, seed=seed)
        for threshold in candidate_thresholds:
            optimizer = Optimizer(
                database,
                RobustCardinalityEstimator(statistics, policy=threshold),
                model,
            )
            for query in workload:
                planned = optimizer.optimize(query)
                ctx = ExecutionContext(database)
                planned.plan.execute(ctx)
                times[threshold].append(model.time_from_counters(ctx.counters))

    profiles = {
        threshold: tradeoff_from_times(f"T={threshold:.0%}", measured)
        for threshold, measured in times.items()
    }
    best = min(
        candidate_thresholds,
        key=lambda t: profiles[t].mean_time + risk_aversion * profiles[t].std_time,
    )
    return ThresholdRecommendation(
        threshold=best,
        risk_aversion=risk_aversion,
        profile=profiles[best],
        candidates=tuple(profiles[t] for t in candidate_thresholds),
    )
