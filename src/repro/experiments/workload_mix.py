"""Heterogeneous workload runs and latency percentiles.

The paper's motivation (Section 2.1) is an application issuing many
queries over time: "users develop expectations about application
responsiveness ... a query that occasionally takes significantly
longer than usual can lead to the perception of performance problems,
even if the execution time is low on average." The natural metric is
the *latency distribution* — p50/p95/p99 — across a realistic mixture
of queries, which is what this harness measures per estimator
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.catalog import Database
from repro.cost import CostModel
from repro.errors import ReproError
from repro.experiments.perf import PlanExecutionCache
from repro.experiments.runner import EstimatorConfig, default_configs
from repro.optimizer import Optimizer
from repro.random_state import RngLike, ensure_rng
from repro.stats import StatisticsManager
from repro.workloads.templates import QueryTemplate


@dataclass(frozen=True)
class MixComponent:
    """One template in the mixture, with a sampling weight."""

    template: QueryTemplate
    weight: float = 1.0


@dataclass(frozen=True)
class LatencyProfile:
    """Summary of one configuration's simulated latency distribution."""

    name: str
    mean: float
    p50: float
    p95: float
    p99: float
    worst: float

    @classmethod
    def from_times(cls, name: str, times: Sequence[float]) -> "LatencyProfile":
        array = np.asarray(list(times), dtype=float)
        if array.size == 0:
            raise ReproError("cannot profile an empty latency sample")
        return cls(
            name=name,
            mean=float(array.mean()),
            p50=float(np.percentile(array, 50)),
            p95=float(np.percentile(array, 95)),
            p99=float(np.percentile(array, 99)),
            worst=float(array.max()),
        )


def run_workload_mix(
    database: Database,
    components: Sequence[MixComponent],
    num_queries: int = 100,
    configs: Sequence[EstimatorConfig] | None = None,
    sample_size: int = 500,
    statistics_seed: RngLike = 0,
    workload_seed: RngLike = 1,
    cost_model: CostModel | None = None,
) -> dict[str, LatencyProfile]:
    """Run a random query mixture under each configuration.

    The same query sequence (template choices and parameters) is used
    for every configuration, so profiles differ only through plan
    choices. Returns one :class:`LatencyProfile` per configuration.
    """
    if not components:
        raise ReproError("workload mix needs at least one component")
    configs = list(configs) if configs is not None else default_configs()
    model = cost_model or CostModel()
    rng = ensure_rng(workload_seed)

    weights = np.array([component.weight for component in components], float)
    if weights.min() <= 0:
        raise ReproError("component weights must be positive")
    weights /= weights.sum()

    # One shared query sequence.
    queries = []
    for _ in range(num_queries):
        component = components[int(rng.choice(len(components), p=weights))]
        low, high = component.template.param_range()
        param = int(rng.integers(low, high + 1))
        queries.append(component.template.instantiate(param))

    statistics = StatisticsManager(database)
    statistics.update_statistics(sample_size=sample_size, seed=statistics_seed)

    # Configurations that choose the same plan for the same query share
    # one execution (the query index scopes the reuse).
    cache = PlanExecutionCache()
    profiles: dict[str, LatencyProfile] = {}
    for config in configs:
        optimizer = Optimizer(database, config.build(statistics), model)
        times = []
        for index, query in enumerate(queries):
            planned = optimizer.optimize(query)
            simulated, _ = cache.execute(database, model, index, planned.plan)
            times.append(simulated)
        profiles[config.name] = LatencyProfile.from_times(config.name, times)
    return profiles


def format_latency_profiles(profiles: dict[str, LatencyProfile]) -> str:
    """Render profiles as an aligned text table."""
    header = f"{'config':<12} {'mean':>8} {'p50':>8} {'p95':>8} {'p99':>8} {'worst':>8}"
    lines = [header, "-" * len(header)]
    for profile in profiles.values():
        lines.append(
            f"{profile.name:<12} {profile.mean:>8.4f} {profile.p50:>8.4f} "
            f"{profile.p95:>8.4f} {profile.p99:>8.4f} {profile.worst:>8.4f}"
        )
    return "\n".join(lines)
