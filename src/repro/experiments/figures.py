"""ASCII chart rendering for figure curves.

The repository ships no plotting dependency, so figures render as
Unicode terminal charts: multiple named series over a shared x-axis,
one glyph per series. Used by the CLI and handy in notebooks and test
output.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import ReproError

_GLYPHS = "ox+*#@%&"


def render_ascii_chart(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[float],
    title: str = "",
    width: int = 64,
    height: int = 16,
    x_format: str = "{:.2%}",
    y_format: str = "{:.1f}",
) -> str:
    """Render named y-series over shared ``x_values`` as text.

    Each series is drawn with its own glyph; a legend follows the
    chart. Points are nearest-cell rasterized; later series overdraw
    earlier ones where they collide.
    """
    names = list(series)
    if not names:
        raise ReproError("render_ascii_chart needs at least one series")
    if len(names) > len(_GLYPHS):
        raise ReproError(f"at most {len(_GLYPHS)} series supported")
    x = np.asarray(list(x_values), dtype=float)
    if x.size < 2:
        raise ReproError("need at least two x values")
    columns = {}
    for name in names:
        y = np.asarray(list(series[name]), dtype=float)
        if y.shape != x.shape:
            raise ReproError(
                f"series {name!r} has {y.size} points for {x.size} x values"
            )
        columns[name] = y

    all_y = np.concatenate(list(columns.values()))
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(x.min()), float(x.max())

    grid = [[" "] * width for _ in range(height)]
    for glyph, name in zip(_GLYPHS, names):
        y = columns[name]
        cols = np.round((x - x_lo) / (x_hi - x_lo) * (width - 1)).astype(int)
        rows = np.round((y - y_lo) / (y_hi - y_lo) * (height - 1)).astype(int)
        for column, row in zip(cols, rows):
            grid[height - 1 - row][column] = glyph

    label_width = max(len(y_format.format(v)) for v in (y_lo, y_hi))
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        if i == 0:
            label = y_format.format(y_hi)
        elif i == height - 1:
            label = y_format.format(y_lo)
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    left = x_format.format(x_lo)
    right = x_format.format(x_hi)
    padding = max(0, width - len(left) - len(right))
    lines.append(" " * (label_width + 2) + left + " " * padding + right)
    legend = "   ".join(
        f"{glyph}={name}" for glyph, name in zip(_GLYPHS, names)
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)
