"""The Section 6 experiment harness.

Runs a grid of (estimator configuration × query parameter × sample
seed), optimizing and executing each query, and summarizes simulated
execution times the way the paper's figures do: time-vs-selectivity
curves per configuration, and mean/std tradeoff points per
configuration.
"""

from repro.experiments.perf import PerfStats, PlanExecutionCache
from repro.experiments.runner import (
    EstimatorConfig,
    ExperimentResult,
    ExperimentRunner,
    RunRecord,
    default_configs,
    penalty_configs,
    policy_arm,
    scenario_configs,
)
from repro.experiments.report import (
    format_selectivity_table,
    format_tradeoff_table,
    selectivity_csv,
    tradeoff_csv,
)
from repro.experiments.audit import (
    AuditEntry,
    audit_plan,
    format_audit,
    worst_q_error,
)
from repro.experiments.sensitivity import (
    SensitivityReport,
    SweepPoint,
    format_sensitivity,
    sensitivity_sweep,
)
from repro.experiments.advisor import (
    ThresholdRecommendation,
    recommend_threshold,
)
from repro.experiments.figures import render_ascii_chart
from repro.experiments.paper_report import ReportConfig, generate_report
from repro.experiments.workload_mix import (
    LatencyProfile,
    MixComponent,
    format_latency_profiles,
    run_workload_mix,
)

__all__ = [
    "AuditEntry",
    "LatencyProfile",
    "MixComponent",
    "SensitivityReport",
    "SweepPoint",
    "ThresholdRecommendation",
    "audit_plan",
    "format_audit",
    "format_latency_profiles",
    "format_sensitivity",
    "ReportConfig",
    "generate_report",
    "recommend_threshold",
    "render_ascii_chart",
    "run_workload_mix",
    "selectivity_csv",
    "sensitivity_sweep",
    "tradeoff_csv",
    "worst_q_error",
    "EstimatorConfig",
    "ExperimentResult",
    "ExperimentRunner",
    "PerfStats",
    "PlanExecutionCache",
    "RunRecord",
    "default_configs",
    "penalty_configs",
    "policy_arm",
    "scenario_configs",
    "format_selectivity_table",
    "format_tradeoff_table",
]
