"""Text reports matching the paper's figure series.

Each figure in Section 6 is either a time-vs-selectivity family of
curves (subfigure a) or a mean-vs-std tradeoff scatter (subfigure b);
these formatters print the same rows/series as aligned text tables.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult


def format_selectivity_table(result: ExperimentResult) -> str:
    """Time-vs-selectivity table: one row per selectivity, one column
    per estimator configuration (Figures 9a, 10a, 11a)."""
    configs = result.config_names
    header = ["selectivity"] + configs
    rows = [header]
    for selectivity in result.selectivities:
        row = [f"{selectivity:8.4%}"]
        for config in configs:
            row.append(f"{result.mean_time(config, selectivity):10.4f}")
        rows.append(row)
    return _align(rows, title=f"{result.template}: mean simulated time (s)")


def format_tradeoff_table(result: ExperimentResult) -> str:
    """Tradeoff table: mean vs std per configuration (Figures 9b–12)."""
    rows = [["config", "mean_time", "std_time"]]
    for point in result.tradeoff_points():
        rows.append(
            [point.label, f"{point.mean_time:10.4f}", f"{point.std_time:10.4f}"]
        )
    return _align(
        rows, title=f"{result.template}: performance vs predictability"
    )


def selectivity_csv(result: ExperimentResult) -> str:
    """The Figure-(a) series as CSV text (one row per selectivity)."""
    configs = result.config_names
    lines = [",".join(["selectivity"] + configs)]
    for selectivity in result.selectivities:
        cells = [f"{selectivity:.6f}"] + [
            f"{result.mean_time(config, selectivity):.6f}" for config in configs
        ]
        lines.append(",".join(cells))
    return "\n".join(lines)


def tradeoff_csv(result: ExperimentResult) -> str:
    """The Figure-(b) tradeoff points as CSV text."""
    lines = ["config,mean_time,std_time"]
    for point in result.tradeoff_points():
        lines.append(f"{point.label},{point.mean_time:.6f},{point.std_time:.6f}")
    return "\n".join(lines)


def _align(rows: list[list[str]], title: str) -> str:
    widths = [
        max(len(row[i]) for row in rows) for i in range(len(rows[0]))
    ]
    lines = [title, "-" * len(title)]
    for row in rows:
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)
