"""Experiment execution: optimize and run query grids.

The measurement protocol mirrors Section 6.2: for each random sample
seed, rebuild the precomputed statistics; for each estimator
configuration, optimize every query of the selectivity grid with that
configuration and execute the chosen plan; record the simulated
execution time. Results are averaged over seeds, because "cardinality
estimation performance can vary depending on the particular random
choice of tuples for the samples".

Seeds are independent by construction — each rebuilds its own
:class:`~repro.stats.StatisticsManager` — so the grid fans out over a
process pool (``workers=``), with results merged in seed order so the
:class:`ExperimentResult` is identical regardless of worker count.
Within one seed, simulated time is a pure function of (database, plan,
parameter), so each distinct ``(param, plan signature)`` pair is
executed once and reused across configurations via
:class:`~repro.experiments.perf.PlanExecutionCache`.
"""

from __future__ import annotations

import functools
import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.analysis.tradeoff import TradeoffPoint, tradeoff_from_times
from repro.catalog import Database
from repro.core import (
    BayesNetCardinalityEstimator,
    CardinalityEstimator,
    FixedSelectivityEstimator,
    HistogramCardinalityEstimator,
    RobustCardinalityEstimator,
)
from repro.cost import CostModel
from repro.errors import ReproError
from repro.experiments.perf import PerfStats, PlanExecutionCache
from repro.obs.execution import execution_span
from repro.obs.trace import QueryTrace, plan_shape
from repro.obs.tracer import Tracer
from repro.optimizer import Optimizer
from repro.selection import (
    PenaltyPolicy,
    SelectionPolicy,
    ThresholdPolicy,
    resolve_policy,
    sample_quantiles,
)
from repro.service.fingerprint import query_fingerprint
from repro.stats import StatisticsManager
from repro.workloads.templates import QueryTemplate

#: The thresholds used throughout the paper's experiments.
PAPER_THRESHOLDS = (0.05, 0.20, 0.50, 0.80, 0.95)


@dataclass(frozen=True)
class EstimatorConfig:
    """A named way to build an estimator from fresh statistics.

    ``threshold``/``group`` mark configurations that differ only in
    their confidence threshold: configs sharing a ``group`` (with
    ``threshold`` set) are planned together by one threshold-vectorized
    ``optimize_many`` pass instead of one ``optimize`` per config.
    Either field left ``None`` keeps the scalar per-config path.

    ``policy`` switches the config to policy-driven selection: a
    :class:`~repro.selection.PenaltyPolicy` plans every query through
    ``optimize_penalty`` with its deterministic posterior samples
    (seeded per query from the statistics build, so records are
    bit-identical across worker counts). Penalty configs are never
    threshold-grouped — the penalty pass is already vectorized over its
    own sample grid.
    """

    name: str
    build: Callable[[StatisticsManager], CardinalityEstimator]
    threshold: float | None = None
    group: str | None = None
    policy: SelectionPolicy | None = None


def _build_robust(
    statistics: StatisticsManager, threshold: float
) -> CardinalityEstimator:
    return RobustCardinalityEstimator(statistics, policy=threshold)


def _build_histogram(statistics: StatisticsManager) -> CardinalityEstimator:
    return HistogramCardinalityEstimator(statistics)


def _build_bayes(statistics: StatisticsManager) -> CardinalityEstimator:
    return BayesNetCardinalityEstimator(statistics)


def _build_fixed(
    statistics: StatisticsManager, default: float
) -> CardinalityEstimator:
    return FixedSelectivityEstimator(statistics.database, default=default)


def default_configs(
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
    include_histogram: bool = True,
) -> list[EstimatorConfig]:
    """Robust estimators at the paper's thresholds + histogram baseline.

    Builders are partials of module-level functions (not lambdas) so
    the configs pickle cleanly into worker processes.
    """
    configs = [
        EstimatorConfig(
            name=f"T={threshold:.0%}",
            build=functools.partial(_build_robust, threshold=threshold),
            threshold=threshold,
            group="robust",
        )
        for threshold in thresholds
    ]
    if include_histogram:
        configs.append(
            EstimatorConfig(name="Histograms", build=_build_histogram)
        )
    return configs


def scenario_configs(
    threshold: float = 0.8, fixed_default: float = 0.1
) -> list[EstimatorConfig]:
    """The four-arm estimator grid of the scenario-diversity benchmark.

    One arm per estimation philosophy: the paper's robust posterior
    quantile, the AVI histogram product, the Chow-Liu Bayesian network,
    and the fixed-selectivity strawman. Run over the star, snowflake,
    and inequality-join workloads this grid separates *within-table*
    correlation (bayes beats histogram), *cross-table* correlation
    (only robust sees it), and estimation-free planning (fixed).
    """
    return [
        EstimatorConfig(
            name=f"T={threshold:.0%}",
            build=functools.partial(_build_robust, threshold=threshold),
            threshold=threshold,
            group="robust",
        ),
        EstimatorConfig(name="Histograms", build=_build_histogram),
        EstimatorConfig(name="BayesNet", build=_build_bayes),
        EstimatorConfig(
            name="Fixed",
            build=functools.partial(_build_fixed, default=fixed_default),
        ),
    ]


def penalty_configs(
    samples: int = 24, cvar_alpha: float = 0.9
) -> list[EstimatorConfig]:
    """The PARQO-style penalty-selection arms.

    One expected-penalty arm and one CVaR-α arm, both drawing
    ``samples`` deterministic posterior samples per query. The robust
    estimator is built at the median (the reference lane's quantile);
    the policy, not the estimator default, decides the plan.
    """
    policies = (
        PenaltyPolicy(samples=samples),
        PenaltyPolicy(samples=samples, risk="cvar", alpha=cvar_alpha),
    )
    return [
        EstimatorConfig(
            name=policy.describe(),
            build=functools.partial(_build_robust, threshold=0.5),
            policy=policy,
        )
        for policy in policies
    ]


def policy_arm(policy) -> EstimatorConfig:
    """One experiment arm for an arbitrary selection policy.

    Accepts anything :func:`~repro.selection.resolve_policy` does — a
    :class:`~repro.selection.SelectionPolicy`, a bare threshold, or a
    spec string like ``"cvar:0.9:24"``. Threshold arms join the
    ``"robust"`` group so they ride the vectorized multi-threshold
    pass alongside :func:`default_configs`.
    """
    policy = resolve_policy(policy)
    if isinstance(policy, PenaltyPolicy):
        return EstimatorConfig(
            name=policy.describe(),
            build=functools.partial(_build_robust, threshold=0.5),
            policy=policy,
        )
    if isinstance(policy, ThresholdPolicy):
        return EstimatorConfig(
            name=f"T={policy.q:.0%}",
            build=functools.partial(_build_robust, threshold=policy.q),
            threshold=policy.q,
            group="robust",
        )
    return EstimatorConfig(name="Histograms", build=_build_histogram)


@dataclass(frozen=True)
class RunRecord:
    """One optimized-and-executed query."""

    config: str
    param: int
    selectivity: float
    seed: int
    time: float
    plan: str
    actual_rows: int


@dataclass
class ExperimentResult:
    """All records of one experiment, with the paper's summaries.

    Summary lookups go through a lazily-built ``(config, param) →
    times`` index instead of rescanning the record list per curve
    point; the index is rebuilt whenever records were appended since it
    was last built. Curve points are grouped on the integer ``param``
    (two parameters that happen to round to the same printed
    selectivity stay distinct points).
    """

    template: str
    records: list[RunRecord] = field(default_factory=list)
    #: Instrumentation for the run that produced the records. Excluded
    #: from equality: results are compared by their records, which are
    #: bit-identical across worker counts; timers never are.
    perf: PerfStats = field(default_factory=PerfStats, compare=False)
    #: JSON-ready :class:`~repro.obs.QueryTrace` records (one per
    #: executed query) when the runner was built with ``trace=True``;
    #: merged in seed order, so deterministic (modulo the wall-clock
    #: ``timing`` subtrees) for any worker count. Excluded from
    #: equality for the same reason as ``perf``.
    traces: list[dict] = field(default_factory=list, compare=False)

    def __post_init__(self) -> None:
        self._indexed = -1
        self._times: dict[tuple[str, int], list[float]] = {}
        self._plans: dict[str, dict[str, int]] = {}
        self._param_selectivity: dict[int, float] = {}
        self._config_order: dict[str, None] = {}

    def append(self, record: RunRecord) -> None:
        """Add one record (the index refreshes on next lookup)."""
        self.records.append(record)

    def _ensure_index(self) -> None:
        if self._indexed == len(self.records):
            return
        times: dict[tuple[str, int], list[float]] = {}
        plans: dict[str, dict[str, int]] = {}
        param_selectivity: dict[int, float] = {}
        config_order: dict[str, None] = {}
        for record in self.records:
            times.setdefault((record.config, record.param), []).append(
                record.time
            )
            per_config = plans.setdefault(record.config, {})
            per_config[record.plan] = per_config.get(record.plan, 0) + 1
            param_selectivity.setdefault(record.param, record.selectivity)
            config_order.setdefault(record.config, None)
        self._times = times
        self._plans = plans
        self._param_selectivity = param_selectivity
        self._config_order = config_order
        self._indexed = len(self.records)

    @property
    def config_names(self) -> list[str]:
        self._ensure_index()
        return list(self._config_order)

    @property
    def params(self) -> list[int]:
        """Grid parameters, ordered by their true selectivity."""
        self._ensure_index()
        return sorted(
            self._param_selectivity,
            key=lambda p: (self._param_selectivity[p], p),
        )

    @property
    def selectivities(self) -> list[float]:
        self._ensure_index()
        return sorted(set(self._param_selectivity.values()))

    def mean_time_for_param(self, config: str, param: int) -> float:
        """Mean simulated time over seeds for one grid parameter."""
        self._ensure_index()
        times = self._times.get((config, param))
        if not times:
            raise ReproError(f"no records for {config!r} at param {param}")
        return float(np.mean(times))

    def mean_time(self, config: str, selectivity: float) -> float:
        """Mean simulated time over seeds for one curve point."""
        self._ensure_index()
        times: list[float] = []
        for param, value in self._param_selectivity.items():
            if value == selectivity:
                times.extend(self._times.get((config, param), ()))
        if not times:
            raise ReproError(f"no records for {config!r} at {selectivity}")
        return float(np.mean(times))

    def curve(self, config: str) -> list[tuple[float, float]]:
        """The (selectivity, mean time) series for one configuration."""
        self._ensure_index()
        return [
            (
                self._param_selectivity[param],
                self.mean_time_for_param(config, param),
            )
            for param in self.params
        ]

    def tradeoff_point(self, config: str) -> TradeoffPoint:
        """Mean/std of time across all runs of one configuration."""
        self._ensure_index()
        times: list[float] = []
        for param in self.params:
            times.extend(self._times.get((config, param), ()))
        if not times:
            raise ReproError(f"no records for {config!r}")
        return tradeoff_from_times(config, times)

    def tradeoff_points(self) -> list[TradeoffPoint]:
        """One tradeoff point per configuration, in config order."""
        return [self.tradeoff_point(name) for name in self.config_names]

    def plan_counts(self, config: str) -> dict[str, int]:
        """How often each plan shape was chosen by a configuration."""
        self._ensure_index()
        return dict(self._plans.get(config, {}))


def _threshold_groups(
    configs: Sequence[EstimatorConfig],
) -> dict[str, list[EstimatorConfig]]:
    """Config groups eligible for one vectorized planning pass each.

    A group qualifies when at least two configs share its name and all
    carry an explicit threshold — a single-member "group" gains nothing
    over the scalar path.
    """
    groups: dict[str, list[EstimatorConfig]] = {}
    for config in configs:
        if config.group is not None and config.threshold is not None:
            groups.setdefault(config.group, []).append(config)
    return {
        name: members for name, members in groups.items() if len(members) >= 2
    }


def _run_seed(
    database: Database,
    template: QueryTemplate,
    cost_model: CostModel,
    sample_size: int,
    histogram_buckets: int,
    params: Sequence[tuple[int, float]],
    configs: Sequence[EstimatorConfig],
    execution_cache: bool,
    seed: int,
    vectorize_thresholds: bool = True,
    trace: bool = False,
    scan_cache: bool = True,
) -> tuple[list[RunRecord], PerfStats, list[dict]]:
    """One seed's slice of the grid — the unit of parallelism.

    With ``trace=True`` a per-seed :class:`~repro.obs.Tracer` collects
    estimation, optimizer, and execution spans, and the JSON-ready
    trace records ride back to the coordinator alongside the run
    records (sinks never enter worker processes). Tracing does not
    change the records: the spans are read-only observations, and the
    per-operator work breakdown re-executes subtrees in fresh contexts.
    """
    perf = PerfStats(execution_cache=execution_cache, scan_cache=scan_cache)
    tracer = Tracer() if trace else None
    traces: list[dict] = []
    started = time.perf_counter()
    statistics = StatisticsManager(database)
    statistics.update_statistics(
        sample_size=sample_size,
        histogram_buckets=histogram_buckets,
        seed=seed,
    )
    perf.stats_build_seconds += time.perf_counter() - started

    # Threshold-vectorized planning: configs that differ only in their
    # threshold are planned together — one optimize_many per (group,
    # param) replaces |group| optimize passes. The plans are stashed by
    # (config, param) and the execution loop below consumes them in the
    # original order, so the records are identical to the scalar path.
    groups = _threshold_groups(configs) if vectorize_thresholds else {}
    grouped_names = {
        config.name for members in groups.values() for config in members
    }
    group_plans: dict[tuple[str, int], object] = {}
    group_traces: dict[tuple[str, int], dict] = {}
    for members in groups.values():
        grid = tuple(config.threshold for config in members)
        estimator = members[0].build(statistics)
        if tracer is not None:
            estimator.tracer = tracer
        optimizer = Optimizer(database, estimator, cost_model, tracer=tracer)
        for param, _selectivity in params:
            query = template.instantiate(param)
            started = time.perf_counter()
            planned_grid = optimizer.optimize_many(query, grid)
            elapsed = time.perf_counter() - started
            perf.optimize_seconds += elapsed
            perf.vector_passes += 1
            shared_spans = (
                tracer.drain_estimations() if tracer is not None else None
            )
            for config, planned in zip(members, planned_grid):
                group_plans[(config.name, param)] = planned.plan
                if tracer is not None:
                    # One vectorized pass gathered the evidence for the
                    # whole threshold group: each lane's trace links the
                    # same estimation spans plus its own optimizer span.
                    group_traces[(config.name, param)] = {
                        "estimation": shared_spans,
                        "optimizer": planned.trace,
                        "estimated_rows": planned.estimated_rows,
                        "estimated_cost": planned.estimated_cost,
                        "optimize_seconds": elapsed,
                    }
        perf.lut_hits += getattr(estimator, "lut_hits", 0)
        perf.estimate_cache_hits += getattr(estimator, "estimate_cache_hits", 0)
        perf.estimate_cache_misses += getattr(
            estimator, "estimate_cache_misses", 0
        )

    cache = PlanExecutionCache(enabled=execution_cache, scan_cache=scan_cache)
    records: list[RunRecord] = []
    for config in configs:
        if config.name in grouped_names:
            estimator = None
            optimizer = None
        else:
            estimator = config.build(statistics)
            if tracer is not None:
                estimator.tracer = tracer
            optimizer = Optimizer(database, estimator, cost_model, tracer=tracer)
        for param, selectivity in params:
            pending = None
            if config.name in grouped_names:
                plan = group_plans[(config.name, param)]
                if tracer is not None:
                    pending = group_traces[(config.name, param)]
            else:
                query = template.instantiate(param)
                started = time.perf_counter()
                if isinstance(config.policy, PenaltyPolicy):
                    quantiles = sample_quantiles(
                        config.policy,
                        query_key=query_fingerprint(query),
                        statistics_token=statistics.sampling_token(),
                    )
                    planned = optimizer.optimize_penalty(
                        query,
                        quantiles,
                        risk=config.policy.risk,
                        alpha=config.policy.alpha,
                    )
                else:
                    planned = optimizer.optimize(query)
                elapsed = time.perf_counter() - started
                perf.optimize_seconds += elapsed
                plan = planned.plan
                if tracer is not None:
                    pending = {
                        "estimation": tracer.drain_estimations(),
                        "optimizer": planned.trace,
                        "estimated_rows": planned.estimated_rows,
                        "estimated_cost": planned.estimated_cost,
                        "optimize_seconds": elapsed,
                    }

            hits_before = cache.hits
            started = time.perf_counter()
            simulated, actual_rows = cache.execute(
                database, cost_model, param, plan
            )
            exec_elapsed = time.perf_counter() - started
            perf.execute_seconds += exec_elapsed
            records.append(
                RunRecord(
                    config=config.name,
                    param=param,
                    selectivity=selectivity,
                    seed=seed,
                    time=simulated,
                    plan=plan_shape(plan),
                    actual_rows=actual_rows,
                )
            )
            if tracer is not None:
                traces.append(
                    QueryTrace(
                        template=template.name,
                        config=config.name,
                        seed=seed,
                        param=param,
                        selectivity=selectivity,
                        estimation=pending["estimation"],
                        optimizer=pending["optimizer"],
                        execution=execution_span(
                            plan,
                            database,
                            cost_model,
                            simulated_seconds=simulated,
                            actual_rows=actual_rows,
                            estimated_rows=pending["estimated_rows"],
                            estimated_cost=pending["estimated_cost"],
                            cache_hit=cache.hits > hits_before,
                        ),
                        timing={
                            "optimize_seconds": pending["optimize_seconds"],
                            "execute_wall_seconds": exec_elapsed,
                        },
                    ).as_dict()
                )
        if estimator is not None:
            perf.lut_hits += getattr(estimator, "lut_hits", 0)
            perf.estimate_cache_hits += getattr(
                estimator, "estimate_cache_hits", 0
            )
            perf.estimate_cache_misses += getattr(
                estimator, "estimate_cache_misses", 0
            )
    perf.exec_cache_hits = cache.hits
    perf.exec_cache_misses = cache.misses
    perf.scan_cache_hits, perf.scan_cache_misses = cache.scan_stats()
    return records, perf, traces


#: Per-worker payload installed once by the pool initializer, so the
#: database and configs are pickled per worker instead of per seed.
_WORKER_PAYLOAD: dict | None = None


def _init_worker(payload: dict) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload


def _run_seed_in_worker(
    seed: int,
) -> tuple[list[RunRecord], PerfStats, list[dict]]:
    return _run_seed(seed=seed, **_WORKER_PAYLOAD)


class ExperimentRunner:
    """Drives one experiment scenario end to end.

    Parameters
    ----------
    workers:
        Process count for fanning seeds out; ``None`` (the default)
        uses ``os.cpu_count()``. ``workers=1`` is the exact serial
        path; any N produces an identical :class:`ExperimentResult`,
        merged in seed order.
    execution_cache:
        Reuse plan executions within a seed across estimator
        configurations that chose the same plan (on by default; the
        records are identical either way).
    scan_cache:
        Share base-table scan results across plan executions within a
        seed, so two different plans over the same parameter reuse
        their common leaves (on by default; counters are replayed on
        hits, so the records are identical either way).
    vectorize_thresholds:
        Plan threshold-grouped configs with one multi-threshold
        ``optimize_many`` pass per (group, param) instead of one
        ``optimize`` per config (on by default; the records are
        identical either way).
    trace:
        Collect end-to-end query traces (estimation, optimizer, and
        execution spans) on ``ExperimentResult.traces``, JSON-ready
        for :func:`repro.obs.write_traces`. Off by default: disabled
        tracing is a handful of ``is None`` checks, so the measured
        run is unchanged.
    """

    def __init__(
        self,
        database: Database,
        template: QueryTemplate,
        cost_model: CostModel | None = None,
        sample_size: int = 500,
        histogram_buckets: int = 250,
        seeds: Sequence[int] = tuple(range(12)),
        workers: int | None = None,
        execution_cache: bool = True,
        vectorize_thresholds: bool = True,
        trace: bool = False,
        scan_cache: bool = True,
    ) -> None:
        self.database = database
        self.template = template
        self.cost_model = cost_model or CostModel()
        self.sample_size = sample_size
        self.histogram_buckets = histogram_buckets
        self.seeds = list(seeds)
        self.workers = workers
        self.execution_cache = execution_cache
        self.vectorize_thresholds = vectorize_thresholds
        self.trace = trace
        self.scan_cache = scan_cache

    def run(
        self,
        params: Sequence[tuple[int, float]],
        configs: Sequence[EstimatorConfig] | None = None,
    ) -> ExperimentResult:
        """Execute the full grid.

        ``params`` holds ``(parameter, true selectivity)`` pairs, e.g.
        from :meth:`QueryTemplate.params_for_targets`.
        """
        configs = list(configs) if configs is not None else default_configs()
        payload = {
            "database": self.database,
            "template": self.template,
            "cost_model": self.cost_model,
            "sample_size": self.sample_size,
            "histogram_buckets": self.histogram_buckets,
            "params": list(params),
            "configs": configs,
            "execution_cache": self.execution_cache,
            "vectorize_thresholds": self.vectorize_thresholds,
            "trace": self.trace,
            "scan_cache": self.scan_cache,
        }
        workers = self._resolve_workers(payload)

        started = time.perf_counter()
        if workers > 1:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(payload,),
            ) as pool:
                # map() yields in submission order: the merge below is
                # deterministic in seed order regardless of which
                # worker finishes first.
                seed_outputs = list(pool.map(_run_seed_in_worker, self.seeds))
        else:
            seed_outputs = [
                _run_seed(seed=seed, **payload) for seed in self.seeds
            ]

        result = ExperimentResult(template=self.template.name)
        result.perf.workers = workers
        result.perf.execution_cache = self.execution_cache
        result.perf.vectorize_thresholds = self.vectorize_thresholds
        result.perf.scan_cache = self.scan_cache
        for records, perf, traces in seed_outputs:
            result.records.extend(records)
            result.perf.merge(perf)
            result.traces.extend(traces)
        result.perf.wall_seconds = time.perf_counter() - started
        return result

    def _resolve_workers(self, payload: dict) -> int:
        """Clamp the worker count and verify the grid can fan out."""
        workers = self.workers if self.workers is not None else os.cpu_count() or 1
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        workers = min(workers, len(self.seeds))
        if workers > 1:
            try:
                pickle.dumps(payload)
            except Exception as exc:  # lambda configs, unpicklable models
                warnings.warn(
                    "experiment payload is not picklable "
                    f"({exc}); falling back to workers=1",
                    RuntimeWarning,
                    stacklevel=3,
                )
                workers = 1
        return workers


