"""Experiment execution: optimize and run query grids.

The measurement protocol mirrors Section 6.2: for each random sample
seed, rebuild the precomputed statistics; for each estimator
configuration, optimize every query of the selectivity grid with that
configuration and execute the chosen plan; record the simulated
execution time. Results are averaged over seeds, because "cardinality
estimation performance can vary depending on the particular random
choice of tuples for the samples".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.analysis.tradeoff import TradeoffPoint, tradeoff_from_times
from repro.catalog import Database
from repro.core import (
    CardinalityEstimator,
    HistogramCardinalityEstimator,
    RobustCardinalityEstimator,
)
from repro.cost import CostModel
from repro.engine import ExecutionContext
from repro.errors import ReproError
from repro.optimizer import Optimizer
from repro.stats import StatisticsManager
from repro.workloads.templates import QueryTemplate

#: The thresholds used throughout the paper's experiments.
PAPER_THRESHOLDS = (0.05, 0.20, 0.50, 0.80, 0.95)


@dataclass(frozen=True)
class EstimatorConfig:
    """A named way to build an estimator from fresh statistics."""

    name: str
    build: Callable[[StatisticsManager], CardinalityEstimator]


def default_configs(
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
    include_histogram: bool = True,
) -> list[EstimatorConfig]:
    """Robust estimators at the paper's thresholds + histogram baseline."""
    configs = [
        EstimatorConfig(
            name=f"T={threshold:.0%}",
            build=lambda stats, t=threshold: RobustCardinalityEstimator(
                stats, policy=t
            ),
        )
        for threshold in thresholds
    ]
    if include_histogram:
        configs.append(
            EstimatorConfig(
                name="Histograms",
                build=lambda stats: HistogramCardinalityEstimator(stats),
            )
        )
    return configs


@dataclass(frozen=True)
class RunRecord:
    """One optimized-and-executed query."""

    config: str
    param: int
    selectivity: float
    seed: int
    time: float
    plan: str
    actual_rows: int


@dataclass
class ExperimentResult:
    """All records of one experiment, with the paper's summaries."""

    template: str
    records: list[RunRecord] = field(default_factory=list)

    @property
    def config_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.config, None)
        return list(seen)

    @property
    def selectivities(self) -> list[float]:
        return sorted({record.selectivity for record in self.records})

    def mean_time(self, config: str, selectivity: float) -> float:
        """Mean simulated time over seeds for one curve point."""
        times = [
            r.time
            for r in self.records
            if r.config == config and r.selectivity == selectivity
        ]
        if not times:
            raise ReproError(f"no records for {config!r} at {selectivity}")
        return float(np.mean(times))

    def curve(self, config: str) -> list[tuple[float, float]]:
        """The (selectivity, mean time) series for one configuration."""
        return [
            (selectivity, self.mean_time(config, selectivity))
            for selectivity in self.selectivities
        ]

    def tradeoff_point(self, config: str) -> TradeoffPoint:
        """Mean/std of time across all runs of one configuration."""
        times = [r.time for r in self.records if r.config == config]
        if not times:
            raise ReproError(f"no records for {config!r}")
        return tradeoff_from_times(config, times)

    def tradeoff_points(self) -> list[TradeoffPoint]:
        """One tradeoff point per configuration, in config order."""
        return [self.tradeoff_point(name) for name in self.config_names]

    def plan_counts(self, config: str) -> dict[str, int]:
        """How often each plan shape was chosen by a configuration."""
        counts: dict[str, int] = {}
        for record in self.records:
            if record.config == config:
                counts[record.plan] = counts.get(record.plan, 0) + 1
        return counts


class ExperimentRunner:
    """Drives one experiment scenario end to end."""

    def __init__(
        self,
        database: Database,
        template: QueryTemplate,
        cost_model: CostModel | None = None,
        sample_size: int = 500,
        histogram_buckets: int = 250,
        seeds: Sequence[int] = tuple(range(12)),
    ) -> None:
        self.database = database
        self.template = template
        self.cost_model = cost_model or CostModel()
        self.sample_size = sample_size
        self.histogram_buckets = histogram_buckets
        self.seeds = list(seeds)

    def run(
        self,
        params: Sequence[tuple[int, float]],
        configs: Sequence[EstimatorConfig] | None = None,
    ) -> ExperimentResult:
        """Execute the full grid.

        ``params`` holds ``(parameter, true selectivity)`` pairs, e.g.
        from :meth:`QueryTemplate.params_for_targets`.
        """
        configs = list(configs) if configs is not None else default_configs()
        result = ExperimentResult(template=self.template.name)
        for seed in self.seeds:
            statistics = StatisticsManager(self.database)
            statistics.update_statistics(
                sample_size=self.sample_size,
                histogram_buckets=self.histogram_buckets,
                seed=seed,
            )
            for config in configs:
                estimator = config.build(statistics)
                optimizer = Optimizer(self.database, estimator, self.cost_model)
                for param, selectivity in params:
                    record = self._run_one(
                        optimizer, config.name, param, selectivity, seed
                    )
                    result.records.append(record)
        return result

    def _run_one(
        self,
        optimizer: Optimizer,
        config_name: str,
        param: int,
        selectivity: float,
        seed: int,
    ) -> RunRecord:
        query = self.template.instantiate(param)
        planned = optimizer.optimize(query)
        ctx = ExecutionContext(self.database)
        output = planned.plan.execute(ctx)
        simulated = self.cost_model.time_from_counters(ctx.counters)
        return RunRecord(
            config=config_name,
            param=param,
            selectivity=selectivity,
            seed=seed,
            time=simulated,
            plan=_plan_shape(planned.plan),
            actual_rows=output.num_rows,
        )


def _plan_shape(plan) -> str:
    """A compact signature of the plan's operator tree."""
    names = [type(op).__name__ for op in plan.walk()]
    return ">".join(names)
