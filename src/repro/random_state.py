"""Helpers for deterministic random number generation.

All randomness in the library flows through :class:`numpy.random.Generator`
objects. Public functions accept either a seed (int), an existing
generator, or ``None`` (fresh entropy) and normalize via :func:`ensure_rng`.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def derive_seed(*components) -> int:
    """A deterministic 64-bit seed derived from identity components.

    Hashes the canonical ``repr`` of every component (strings, ints,
    floats, tuples — anything with a stable ``repr``) with SHA-256, so
    the same components produce the same seed in every process and on
    every platform. This is how the penalty-selection sampler keys its
    posterior draws to ``(query, statistics, policy)``: byte-identical
    inputs give byte-identical samples regardless of worker count.
    """
    digest = hashlib.sha256()
    for component in components:
        digest.update(repr(component).encode("utf-8"))
        digest.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
    return int.from_bytes(digest.digest()[:8], "big")


def derive_rng(*components) -> np.random.Generator:
    """A deterministic generator seeded by :func:`derive_seed`."""
    return np.random.default_rng(np.random.SeedSequence(derive_seed(*components)))


def ensure_rng(seed: RngLike) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an ``int`` (deterministic generator), an existing
    generator (returned unchanged), or ``None`` (OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from a single seed.

    Uses :class:`numpy.random.SeedSequence` spawning so the derived
    streams are statistically independent and reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        children = seed.bit_generator.seed_seq.spawn(count)  # type: ignore[attr-defined]
        return [np.random.default_rng(child) for child in children]
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
